//! The workspace-reuse purity contract (see
//! `sim-engine/src/workspace.rs`): handing the SAME per-worker
//! [`SimWorkspace`] to many runs back-to-back — different configs,
//! modes, seeds, thread counts, even through the checkpoint-resume
//! path — must produce results byte-identical to building fresh state
//! for every run. The scratch reset at the start of each run is what
//! makes reports pure functions of `(config, options, seed)` again.

use srcsim::ml::Dataset;
use srcsim::sim_engine::runner::with_threads;
use srcsim::sim_engine::{CheckpointSpec, NullSink, ScenarioRunner, SimWorkspace};
use srcsim::src_core::ThroughputPredictionModel;
use srcsim::storage_node::{
    run_trace_windowed, run_trace_windowed_in, DisciplineKind, NodeConfig, NodeReport,
};
use srcsim::system_sim::config::Mode;
use srcsim::system_sim::{run_system, run_system_in, RunOptions, SystemConfig, SystemReport};
use srcsim::workload::micro::{generate_micro, MicroConfig};
use srcsim::workload::source::WorkloadSpec;
use srcsim::workload::{Trace, WorkloadFeatures};
use std::sync::Arc;

/// A tiny synthetic TPM (read tput ~ 10/w Gbps), cheap enough for
/// debug builds — the cache/controller machinery it exercises is the
/// same as a fully trained model's.
fn tiny_tpm() -> Arc<ThroughputPredictionModel> {
    let ch = WorkloadFeatures {
        read_ratio: 0.5,
        read_iat_mean_us: 10.0,
        write_iat_mean_us: 10.0,
        read_size_mean: 30_000.0,
        write_size_mean: 30_000.0,
        read_flow_bpus: 3_000.0,
        write_flow_bpus: 3_000.0,
        ..Default::default()
    };
    let mut x = Vec::new();
    let mut y = Vec::new();
    for _rep in 0..8 {
        for w in 1..=12u32 {
            let mut row = ch.to_vec();
            row.push(w as f64);
            x.push(row);
            y.push(vec![10.0 / w as f64, 2.0 + w as f64]);
        }
    }
    Arc::new(ThroughputPredictionModel::train(&Dataset::new(x, y), 40, 0))
}

/// Small but non-trivial full-system cells: both modes, several seeds.
fn system_cells() -> Vec<(SystemConfig, u64)> {
    let mut cells = Vec::new();
    for (mode, seed) in [
        (Mode::DcqcnOnly, 11u64),
        (Mode::DcqcnSrc, 12),
        (Mode::DcqcnSrc, 13),
        (Mode::DcqcnOnly, 14),
    ] {
        let cfg = SystemConfig {
            mode,
            n_initiators: 2,
            n_targets: 2,
            workloads: vec![WorkloadSpec::Micro(MicroConfig {
                read_count: 120,
                write_count: 120,
                ..MicroConfig::default()
            })],
            ..SystemConfig::default()
        };
        cells.push((cfg, seed));
    }
    cells
}

fn report_json(r: &SystemReport) -> String {
    serde_json::to_string(r).expect("report serializes")
}

/// Lossless comparable form of a [`NodeReport`]: Rust's `f64` Debug
/// formatting is shortest-round-trip, so equal strings mean equal bits.
fn node_digest(r: &NodeReport) -> String {
    format!("{r:?}")
}

/// Many full-system cells through one reused workspace, serially, with
/// an SRC cell (prediction cache, controller) between DCQCN-only
/// cells — every report byte-identical to a fresh-state run, including
/// an immediate re-run of the first cell after the workspace was
/// dirtied by every other cell shape.
#[test]
fn system_runs_reuse_workspace_byte_identical() {
    let tpm = tiny_tpm();
    let cells = system_cells();
    let opts = |cfg: &SystemConfig, seed: u64| {
        let o = RunOptions::seeded(seed);
        match cfg.mode {
            Mode::DcqcnOnly => o,
            Mode::DcqcnSrc => o.tpm(tpm.clone()),
        }
    };
    let fresh: Vec<String> = cells
        .iter()
        .map(|(cfg, seed)| report_json(&run_system(cfg, opts(cfg, *seed), &mut NullSink)))
        .collect();
    let mut ws = SimWorkspace::new();
    for round in 0..2 {
        for ((cfg, seed), want) in cells.iter().zip(&fresh) {
            let got = report_json(&run_system_in(
                cfg,
                opts(cfg, *seed),
                &mut ws,
                &mut NullSink,
            ));
            assert_eq!(&got, want, "round {round} seed {seed} diverged");
        }
    }
}

/// The parallel sweep form: `run_cells_with_workspace` at 1 and 4
/// threads matches the fresh-per-cell serial reference.
#[test]
fn system_sweep_with_workspace_matches_at_any_thread_count() {
    let tpm = tiny_tpm();
    let cells = system_cells();
    let run_cell = |ws: &mut SimWorkspace, (cfg, seed): &(SystemConfig, u64)| {
        let o = RunOptions::seeded(*seed);
        let o = match cfg.mode {
            Mode::DcqcnOnly => o,
            Mode::DcqcnSrc => o.tpm(tpm.clone()),
        };
        report_json(&run_system_in(cfg, o, ws, &mut NullSink))
    };
    let reference: Vec<String> = cells
        .iter()
        .map(|cell| run_cell(&mut SimWorkspace::new(), cell))
        .collect();
    for threads in [1usize, 4] {
        let got = with_threads(threads, || {
            ScenarioRunner::from_env()
                .run_cells_with_workspace(&cells, |ws, _, cell| run_cell(ws, cell))
        });
        assert_eq!(got, reference, "threads={threads}");
    }
}

fn node_trace(seed: u64, n: usize) -> Trace {
    generate_micro(
        &MicroConfig {
            read_count: n,
            write_count: n,
            read_iat_mean_us: 10.0,
            write_iat_mean_us: 10.0,
            read_size_mean: 28_000.0,
            write_size_mean: 28_000.0,
            ..MicroConfig::default()
        },
        seed,
    )
}

/// The device-level trace runner: different weights and traces through
/// one workspace, byte-identical to fresh runs.
#[test]
fn trace_runner_reuse_byte_identical() {
    let traces: Vec<(Trace, u32)> = (0..4)
        .map(|i| (node_trace(20 + i, 150 + 40 * i as usize), 1 << i))
        .collect();
    let fresh: Vec<String> = traces
        .iter()
        .map(|(t, w)| {
            let cfg = NodeConfig {
                discipline: DisciplineKind::Ssq { weight: *w },
                ..NodeConfig::default()
            };
            node_digest(&run_trace_windowed(&cfg, t))
        })
        .collect();
    let mut ws = SimWorkspace::new();
    for round in 0..2 {
        for ((t, w), want) in traces.iter().zip(&fresh) {
            let cfg = NodeConfig {
                discipline: DisciplineKind::Ssq { weight: *w },
                ..NodeConfig::default()
            };
            let got = node_digest(&run_trace_windowed_in(&cfg, t, &mut ws));
            assert_eq!(&got, want, "round {round} weight {w} diverged");
        }
    }
}

/// Checkpoint-resume with per-worker workspaces: a resumed sweep whose
/// live cells run through reused workspaces returns results
/// byte-identical to the plain (fresh-state, no-checkpoint) sweep.
#[test]
fn checkpoint_resume_with_workspace_byte_identical() {
    let traces: Vec<Trace> = (0..6).map(|i| node_trace(40 + i, 120)).collect();
    let cfg = NodeConfig::default();
    let run_fresh = |t: &Trace| node_digest(&run_trace_windowed(&cfg, t));
    let reference: Vec<String> = traces.iter().map(run_fresh).collect();

    let path = std::env::temp_dir().join(format!(
        "srcsim-ws-resume-{}.ckpt.jsonl",
        std::process::id()
    ));
    for threads in [1usize, 4] {
        let _ = std::fs::remove_file(&path);
        let spec = CheckpointSpec::new(&path, "workspace-reuse resume v1");
        // Interrupted first pass: cells past index 2 panic, so some
        // subset of the grid commits before the panic reaches us.
        let interrupted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_threads(threads, || {
                ScenarioRunner::from_env().run_cells_resumable_with(
                    Some(&spec),
                    7,
                    &traces,
                    |ws, i, t| {
                        assert!(i < 3, "simulated interrupt at cell {i}");
                        node_digest(&run_trace_windowed_in(&cfg, t, ws))
                    },
                )
            })
        }));
        assert!(interrupted.is_err(), "first pass must be interrupted");
        // Resume: cached prefix replays from the manifest, the rest is
        // recomputed through reused per-worker workspaces.
        let resumed: Vec<String> = with_threads(threads, || {
            ScenarioRunner::from_env().run_cells_resumable_with(
                Some(&spec),
                7,
                &traces,
                |ws, _, t| node_digest(&run_trace_windowed_in(&cfg, t, ws)),
            )
        });
        assert_eq!(resumed, reference, "threads={threads} resumed");
    }
    let _ = std::fs::remove_file(&path);
}
