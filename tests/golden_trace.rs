//! Golden-trace regression anchor for the Fig. 9 scripted run.
//!
//! `tests/fixtures/fig9_trace_quick_seed42.jsonl` is the JSON-lines
//! telemetry trace the `fig9_dynamic` binary writes in quick mode at
//! seed 42 — the scripted convergence run merged with the congested
//! fabric slice, exactly as `run_buffered` assembles it. The fixture
//! was captured from a verified run and is byte-identical in both
//! sink modes (buffered `RingSink` and streaming `FileSink`).
//!
//! Any change to event ordering — the timing-wheel event queue, the
//! allocation-free step plumbing, scheduler chunking — that perturbs
//! the simulation shows up here as a byte diff, turning "determinism
//! preserved" from a claim into a test.

use srcsim::sim_engine::runner::with_threads;
use srcsim::sim_engine::RingSink;
use srcsim::system_sim::experiments::{fig9, fig9_fabric_slice, Scale};

const SEED: u64 = 42;
const FIXTURE: &str = include_str!("fixtures/fig9_trace_quick_seed42.jsonl");

/// Reproduce the exact trace `fig9_dynamic` writes in buffered quick
/// mode: scripted run and fabric slice into RingSinks, reports merged,
/// serialized as JSON lines.
fn quick_trace() -> String {
    let scale = Scale::quick();
    let mut sink = RingSink::new(1 << 20);
    let _ = fig9(&scale, SEED, &mut sink);
    let mut rep = sink.into_report();
    let mut fabric_sink = RingSink::new(1 << 20);
    let _ = fig9_fabric_slice(&scale, SEED, &mut fabric_sink);
    rep.merge(fabric_sink.into_report());
    rep.to_json_lines()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn fig9_quick_trace_matches_committed_fixture() {
    let got = with_threads(1, quick_trace);
    if got != FIXTURE {
        // A full diff of 600 KB is useless in a test log; report the
        // first divergent line instead.
        let line = got
            .lines()
            .zip(FIXTURE.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1);
        panic!(
            "fig9 quick trace diverged from the committed fixture \
             ({} vs {} lines, first differing line: {:?})",
            got.lines().count(),
            FIXTURE.lines().count(),
            line
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn fig9_quick_trace_identical_at_four_threads() {
    // The scripted run is single-threaded today, but the contract is
    // thread-count independence of every committed artifact.
    let got = with_threads(4, quick_trace);
    assert!(
        got == FIXTURE,
        "fig9 quick trace at threads=4 diverged from the fixture"
    );
}
