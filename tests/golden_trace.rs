//! Golden-trace regression anchor for the Fig. 9 scripted run.
//!
//! `tests/fixtures/fig9_trace_quick_seed42.jsonl` is the JSON-lines
//! telemetry trace the `fig9_dynamic` binary writes in quick mode at
//! seed 42 — the scripted convergence run merged with the congested
//! fabric slice, exactly as `run_buffered` assembles it. The fixture
//! was captured from a verified run and is byte-identical in both
//! sink modes (buffered `RingSink` and streaming `FileSink`).
//!
//! Any change to event ordering — the timing-wheel event queue, the
//! allocation-free step plumbing, scheduler chunking — that perturbs
//! the simulation shows up here as a byte diff, turning "determinism
//! preserved" from a claim into a test.

use srcsim::sim_engine::runner::with_threads;
use srcsim::sim_engine::RingSink;
use srcsim::ssd_sim::SsdConfig;
use srcsim::system_sim::config::spread_source;
use srcsim::system_sim::experiments::{
    fig9, fig9_fabric_slice, paper_background, paper_pfc, train_tpm, Scale,
};
use srcsim::system_sim::{run_system, Mode, RunOptions, SystemConfig};
use srcsim::workload::micro::MicroConfig;
use srcsim::workload::WorkloadSpec;

const SEED: u64 = 42;
const FIXTURE: &str = include_str!("fixtures/fig9_trace_quick_seed42.jsonl");
const SRC_FIXTURE: &str = include_str!("fixtures/src_cell_trace_quick_seed42.jsonl");

/// Reproduce the exact trace `fig9_dynamic` writes in buffered quick
/// mode: scripted run and fabric slice into RingSinks, reports merged,
/// serialized as JSON lines.
fn quick_trace() -> String {
    let scale = Scale::quick();
    let mut sink = RingSink::new(1 << 20);
    let _ = fig9(&scale, SEED, &mut sink);
    let mut rep = sink.into_report();
    let mut fabric_sink = RingSink::new(1 << 20);
    let _ = fig9_fabric_slice(&scale, SEED, &mut fabric_sink);
    rep.merge(fabric_sink.into_report());
    rep.to_json_lines()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn fig9_quick_trace_matches_committed_fixture() {
    let got = with_threads(1, quick_trace);
    if got != FIXTURE {
        // A full diff of 600 KB is useless in a test log; report the
        // first divergent line instead.
        let line = got
            .lines()
            .zip(FIXTURE.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1);
        panic!(
            "fig9 quick trace diverged from the committed fixture \
             ({} vs {} lines, first differing line: {:?})",
            got.lines().count(),
            FIXTURE.lines().count(),
            line
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn fig9_quick_trace_identical_at_four_threads() {
    // The scripted run is single-threaded today, but the contract is
    // thread-count independence of every committed artifact.
    let got = with_threads(4, quick_trace);
    assert!(
        got == FIXTURE,
        "fig9 quick trace at threads=4 diverged from the fixture"
    );
}

/// DCQCN-SRC quick cell: the fig9 fabric slice's topology and workload,
/// but with the SRC controller in the loop (`Mode::DcqcnSrc`, TPM
/// trained on SSD-B at the same seed). Pins the SRC-mode trace
/// vocabulary the DCQCN-only fixture above cannot see — SRC decisions,
/// SSQ weight changes, and the fast-path finalize counters
/// (`tpm_cache_hits`/`tpm_cache_misses`, `bursts_coalesced`).
fn src_cell_trace() -> String {
    let scale = Scale::quick();
    let ssd = SsdConfig::ssd_b();
    let tpm = train_tpm(&ssd, &scale, SEED);
    let n = (scale.requests_per_target / 2).max(150);
    let spec = WorkloadSpec::Micro(MicroConfig {
        read_iat_mean_us: 10.0,
        write_iat_mean_us: 10.0,
        read_size_mean: 40_000.0,
        write_size_mean: 40_000.0,
        read_count: n,
        write_count: n,
        ..MicroConfig::default()
    });
    let assignments = spread_source(&spec, SEED, 1, 2);
    let cfg = SystemConfig::builder()
        .n_initiators(1)
        .n_targets(2)
        .ssd(ssd)
        .workload(spec)
        .background(paper_background(&assignments))
        .pfc(paper_pfc())
        .mode(Mode::DcqcnSrc)
        .build();
    let mut sink = RingSink::new(1 << 20);
    let _ = run_system(
        &cfg,
        RunOptions::assignments(&assignments).tpm(tpm),
        &mut sink,
    );
    sink.into_report().to_json_lines()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn src_cell_quick_trace_matches_committed_fixture() {
    let got = with_threads(1, src_cell_trace);
    if got != SRC_FIXTURE {
        let line = got
            .lines()
            .zip(SRC_FIXTURE.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1);
        panic!(
            "SRC quick cell trace diverged from the committed fixture \
             ({} vs {} lines, first differing line: {:?})",
            got.lines().count(),
            SRC_FIXTURE.lines().count(),
            line
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn src_cell_quick_trace_identical_at_four_threads() {
    let got = with_threads(4, src_cell_trace);
    assert!(
        got == SRC_FIXTURE,
        "SRC quick cell trace at threads=4 diverged from the fixture"
    );
}

/// Rewrites the committed fixtures from the current simulator — run
/// explicitly after an *intentional* trace-vocabulary change:
/// `SRCSIM_REGEN_FIXTURES=1 cargo test --release regen_fixtures -- --ignored`
#[test]
#[ignore = "fixture regeneration; run explicitly with SRCSIM_REGEN_FIXTURES=1"]
fn regen_fixtures() {
    if std::env::var_os("SRCSIM_REGEN_FIXTURES").is_none() {
        return;
    }
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::write(
        dir.join("src_cell_trace_quick_seed42.jsonl"),
        with_threads(1, src_cell_trace),
    )
    .unwrap();
}
