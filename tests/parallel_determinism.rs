//! The executor determinism contract (see `sim-engine/src/runner.rs`):
//! every sweep refactored onto the [`ScenarioRunner`] must produce
//! byte-identical results at `threads = 1` and `threads = 4`, because
//! cell seeds are pure functions of `(base_seed, cell_index)` and
//! results are written back by index.
//!
//! The cheap checks run in every build; the full experiment grids are
//! ignored in debug builds (run `cargo test --release -- --include-ignored`).

use srcsim::ml::{Dataset, ModelKind, RandomForest, RandomForestParams, Regressor};
use srcsim::sim_engine::runner::with_threads;
use srcsim::ssd_sim::SsdConfig;
use srcsim::storage_node::weight_sweep;
use srcsim::system_sim::experiments::{fig5, table3, Scale};
use srcsim::workload::micro::{generate_micro, MicroConfig};

#[test]
fn weight_sweep_identical_serial_and_parallel() {
    let trace = generate_micro(
        &MicroConfig {
            read_iat_mean_us: 20.0,
            write_iat_mean_us: 20.0,
            read_size_mean: 24_000.0,
            write_size_mean: 24_000.0,
            read_count: 300,
            write_count: 300,
            ..MicroConfig::default()
        },
        11,
    );
    let ssd = SsdConfig::ssd_a();
    let weights = [1u32, 2, 4, 8];
    let serial = with_threads(1, || weight_sweep(&ssd, &trace, &weights));
    let parallel = with_threads(4, || weight_sweep(&ssd, &trace, &weights));
    assert_eq!(serial, parallel);
}

#[test]
fn forest_identical_serial_and_parallel() {
    let x: Vec<Vec<f64>> = (0..150)
        .map(|i| vec![i as f64 * 0.3, ((i * 7) % 11) as f64])
        .collect();
    let y: Vec<Vec<f64>> = x.iter().map(|r| vec![2.0 * r[0] - r[1]]).collect();
    let data = Dataset::new(x, y);
    let params = RandomForestParams {
        n_trees: 12,
        ..Default::default()
    };
    let fit_predict = |threads: usize| {
        with_threads(threads, || {
            let f = RandomForest::fit(&data, &params, 5);
            (
                f.predict_one(&[10.0, 3.0]),
                f.predict_one(&[40.0, 7.0]),
                f.feature_importance(),
            )
        })
    };
    assert_eq!(fit_predict(1), fit_predict(4));
}

#[test]
fn kfold_identical_serial_and_parallel() {
    let x: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64, (i % 9) as f64]).collect();
    let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0] * 1.5 + r[1]]).collect();
    let data = Dataset::new(x, y);
    let serial = with_threads(1, || {
        srcsim::ml::cv::k_fold_r2(&data, &ModelKind::RandomForest, 4, 3)
    });
    let parallel = with_threads(4, || {
        srcsim::ml::cv::k_fold_r2(&data, &ModelKind::RandomForest, 4, 3)
    });
    // Bit-identical, not approximately equal: fold scores are summed in
    // fold order regardless of completion order.
    assert_eq!(serial.to_bits(), parallel.to_bits());
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn fig5_grid_identical_serial_and_parallel() {
    let ssd = SsdConfig::ssd_a();
    let scale = Scale::quick();
    let serial = with_threads(1, || fig5(&ssd, &scale, 42));
    let parallel = with_threads(4, || fig5(&ssd, &scale, 42));
    assert_eq!(serial, parallel);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn table3_identical_serial_and_parallel() {
    let ssd = SsdConfig::ssd_a();
    let scale = Scale::quick();
    let serial = with_threads(1, || table3(&ssd, &scale, 42));
    let parallel = with_threads(4, || table3(&ssd, &scale, 42));
    for ((ls, rs), (lp, rp)) in serial.iter().zip(parallel.iter()) {
        assert_eq!(ls, lp);
        assert_eq!(rs.to_bits(), rp.to_bits(), "{ls}: {rs} vs {rp}");
    }
}
