//! The heterogeneous-fleet contract: a homogeneous `ssds` vector is
//! bit-for-bit the legacy single-`ssd` configuration, the fleet sweep
//! is deterministic across executor thread counts, and the builder
//! rejects malformed fleets.
//!
//! The heavy grids are ignored in debug builds (run
//! `cargo test --release -- --include-ignored`).

use srcsim::sim_engine::runner::with_threads;
use srcsim::sim_engine::NullSink;
use srcsim::ssd_sim::SsdConfig;
use srcsim::system_sim::config::{spread_trace, Mode, SystemConfig};
use srcsim::system_sim::experiments::{
    ext_heterogeneous, paper_background, paper_pfc, train_tpm, Scale, TrainKnob,
};
use srcsim::system_sim::{run_system, RunOptions, SystemReport};
use srcsim::workload::micro::{generate_micro, MicroConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn quick() -> Scale {
    Scale {
        requests_per_target: 600,
        train: TrainKnob::Quick,
    }
}

fn report_bits(r: &SystemReport) -> String {
    serde_json::to_string(r).expect("report serializes")
}

/// A homogeneous `ssds` vector through a per-Target TPM fleet must
/// reproduce the broadcast-singleton [`run_system`] outputs
/// bit-for-bit, in both modes, on the Table IV and Fig. 10 style grids.
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn homogeneous_fleet_matches_single_ssd_bitwise() {
    let ssd = SsdConfig::ssd_a();
    let tpm = train_tpm(&ssd, &quick(), 42);
    // (label, micro config, n_initiators, n_targets)
    let cells = [
        (
            "table4-4:1",
            MicroConfig {
                read_iat_mean_us: 9.2,
                write_iat_mean_us: 9.2,
                read_size_mean: 44_000.0,
                write_size_mean: 23_000.0,
                read_count: 600 * 4,
                write_count: 600 * 4,
                ..MicroConfig::default()
            },
            1usize,
            4usize,
        ),
        (
            "fig10-heavy-2:1",
            MicroConfig {
                read_count: 600 * 2,
                write_count: 600 * 2,
                ..MicroConfig::heavy()
            },
            1,
            2,
        ),
    ];
    for (label, micro, n_init, n_tgt) in cells {
        let trace = generate_micro(&micro, 31);
        let assignments = spread_trace(&trace, n_init, n_tgt);
        let legacy_base = SystemConfig::builder()
            .n_initiators(n_init)
            .n_targets(n_tgt)
            .ssd(ssd.clone())
            .background(paper_background(&assignments))
            .pfc(paper_pfc())
            .build();
        let fleet_base = legacy_base
            .to_builder()
            .ssds(vec![ssd.clone(); n_tgt])
            .build();
        let tpms: Vec<_> = (0..n_tgt).map(|_| tpm.clone()).collect();
        for mode in [Mode::DcqcnOnly, Mode::DcqcnSrc] {
            let mut legacy_opts = RunOptions::assignments(&assignments);
            let mut fleet_opts = RunOptions::assignments(&assignments);
            if mode == Mode::DcqcnSrc {
                legacy_opts = legacy_opts.tpm(tpm.clone());
                fleet_opts = fleet_opts.tpm_fleet(&tpms);
            }
            let legacy = run_system(
                &legacy_base.to_builder().mode(mode.clone()).build(),
                legacy_opts,
                &mut NullSink,
            );
            let fleet = run_system(
                &fleet_base.to_builder().mode(mode.clone()).build(),
                fleet_opts,
                &mut NullSink,
            );
            assert_eq!(
                report_bits(&legacy),
                report_bits(&fleet),
                "{label} {mode:?}: homogeneous fleet diverged from single-ssd run"
            );
        }
    }
}

/// The heterogeneous in-cast sweep must produce identical rows at
/// executor threads 1 and 4 (the [`ScenarioRunner`] determinism
/// contract extends to fleet cells).
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn ext_heterogeneous_identical_serial_and_parallel() {
    let tpm_a = train_tpm(&SsdConfig::ssd_a(), &quick(), 42);
    let tpm_b = train_tpm(&SsdConfig::ssd_b(), &quick(), 42);
    let serial = with_threads(1, || {
        ext_heterogeneous(&quick(), tpm_a.clone(), tpm_b.clone(), 17)
    });
    let parallel = with_threads(4, || {
        ext_heterogeneous(&quick(), tpm_a.clone(), tpm_b.clone(), 17)
    });
    assert_eq!(serial.len(), 4);
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "fleet sweep must not depend on executor thread count"
    );
}

/// An explicit fleet whose length disagrees with `n_targets` is a
/// configuration bug and must fail at `build()`, whichever order the
/// setters ran in; the one-element broadcast shorthand stays valid.
#[test]
fn builder_rejects_fleet_size_mismatch() {
    let a = SsdConfig::ssd_a();
    let b = SsdConfig::ssd_b();

    let too_short = catch_unwind(AssertUnwindSafe(|| {
        SystemConfig::builder()
            .n_targets(3)
            .ssds(vec![a.clone(), b.clone()])
            .build()
    }));
    assert!(too_short.is_err(), "2 ssds for 3 targets must panic");

    let too_long = catch_unwind(AssertUnwindSafe(|| {
        SystemConfig::builder()
            .ssds(vec![a.clone(), b.clone(), a.clone()])
            .n_targets(2)
            .build()
    }));
    assert!(too_long.is_err(), "3 ssds for 2 targets must panic");

    let empty = catch_unwind(AssertUnwindSafe(|| {
        SystemConfig::builder().ssds(Vec::new()).build()
    }));
    assert!(empty.is_err(), "empty fleet must panic");

    // The shorthand and a matching explicit fleet both build, in either
    // setter order.
    let shorthand = SystemConfig::builder().ssd(b.clone()).n_targets(4).build();
    assert_eq!(shorthand.ssd_for(3), &b);
    let explicit = SystemConfig::builder()
        .n_targets(2)
        .ssds(vec![a.clone(), b.clone()])
        .build();
    assert_eq!(explicit.ssd_for(0), &a);
    assert_eq!(explicit.ssd_for(1), &b);
    assert!(explicit.is_heterogeneous());
    assert!(!shorthand.is_heterogeneous());

    // Per-target override on top of the shorthand materializes a fleet.
    let patched = SystemConfig::builder()
        .n_targets(3)
        .ssd(a.clone())
        .ssd_for_target(1, b.clone())
        .build();
    assert_eq!(patched.ssd_for(0), &a);
    assert_eq!(patched.ssd_for(1), &b);
    assert_eq!(patched.ssd_for(2), &a);
}
