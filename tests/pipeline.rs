//! Cross-crate integration: the complete SRC pipeline from workload
//! generation through device sweeps, model training, and Algorithm 1,
//! exercised through the public facade.

use srcsim::ml::r2_score_multi;
use srcsim::src_core::algorithm::predict_weight_ratio;
use srcsim::src_core::tpm::{
    generate_training_samples, samples_to_dataset, ThroughputPredictionModel, TrainingConfig,
};
use srcsim::ssd_sim::SsdConfig;
use srcsim::storage_node::{run_trace_windowed, weight_sweep, DisciplineKind, NodeConfig};
use srcsim::workload::micro::{generate_micro, MicroConfig};
use srcsim::workload::{extract_features, IoType};

fn heavy_trace(seed: u64) -> srcsim::workload::Trace {
    generate_micro(
        &MicroConfig {
            read_iat_mean_us: 9.0,
            write_iat_mean_us: 9.0,
            read_size_mean: 36_000.0,
            write_size_mean: 36_000.0,
            read_count: 1_500,
            write_count: 1_500,
            ..MicroConfig::default()
        },
        seed,
    )
}

/// Train a TPM on real sweeps, then verify Algorithm 1 chooses a weight
/// whose *measured* read throughput lands near the demanded rate — the
/// control loop closed against the actual device, not the model.
#[test]
fn algorithm1_decision_verified_against_device() {
    let ssd = SsdConfig::ssd_a();
    // A slightly richer grid than quick(): the closed-loop check below
    // needs prediction error below the weight-step granularity.
    let cfg = TrainingConfig {
        seeds_per_cell: 2,
        ..TrainingConfig::quick()
    };
    let tpm = ThroughputPredictionModel::train_for_device(&ssd, &cfg, 5);
    let trace = heavy_trace(9);
    let ch = extract_features(trace.requests());

    // Baseline read throughput at w = 1.
    let base = weight_sweep(&ssd, &trace, &[1])[0].read_gbps;
    assert!(
        base > 0.5,
        "workload should produce real throughput: {base}"
    );

    // Demand roughly half the baseline.
    let demanded = base * 0.5;
    let w = predict_weight_ratio(&tpm, demanded, &ch, 0.1, 16);
    assert!(
        w > 1,
        "halving the rate requires raising the weight, got {w}"
    );

    // Measure what that weight actually does on the device.
    let measured = weight_sweep(&ssd, &trace, &[w])[0].read_gbps;
    let err = (measured - demanded).abs() / demanded;
    assert!(
        err < 0.5,
        "control error too large: demanded {demanded:.2}, got {measured:.2} (w={w})"
    );
    // And it must actually throttle relative to baseline.
    assert!(
        measured < base * 0.85,
        "w={w} failed to throttle: {measured} vs {base}"
    );
}

/// The TPM generalizes across seeds: train on one set of traces, test on
/// sweeps of unseen traces from the same workload family.
#[test]
fn tpm_generalizes_to_unseen_traces() {
    let ssd = SsdConfig::ssd_a();
    let cfg = TrainingConfig::quick();
    let train = samples_to_dataset(&generate_training_samples(&ssd, &cfg, 1));
    let test = samples_to_dataset(&generate_training_samples(&ssd, &cfg, 999));
    let tpm = ThroughputPredictionModel::train(&train, 30, 0);
    let mut y_pred = Vec::new();
    for x in &test.x {
        let (w, ch_vec) = x.split_last().expect("nonempty row");
        let ch = vec_to_features(ch_vec);
        let (r, wr) = tpm.predict(&ch, *w as u32);
        y_pred.push(vec![r, wr]);
    }
    let r2 = r2_score_multi(&test.y, &y_pred);
    assert!(r2 > 0.6, "cross-seed generalization too weak: r2={r2}");
}

fn vec_to_features(v: &[f64]) -> srcsim::workload::WorkloadFeatures {
    srcsim::workload::WorkloadFeatures {
        read_ratio: v[0],
        read_iat_mean_us: v[1],
        read_iat_scv: v[2],
        write_iat_mean_us: v[3],
        write_iat_scv: v[4],
        read_size_mean: v[5],
        read_size_scv: v[6],
        write_size_mean: v[7],
        write_size_scv: v[8],
        read_flow_bpus: v[9],
        write_flow_bpus: v[10],
    }
}

/// SSQ at w=1 and FIFO process the same workload with similar aggregate
/// throughput when nothing is gated (the mechanism costs nothing when
/// unused).
#[test]
fn ssq_at_w1_is_not_worse_than_fifo() {
    let trace = heavy_trace(3);
    let fifo = run_trace_windowed(
        &NodeConfig {
            ssd: SsdConfig::ssd_a(),
            discipline: DisciplineKind::Fifo,
            merge_cap: None,
        },
        &trace,
    );
    let ssq = run_trace_windowed(
        &NodeConfig {
            ssd: SsdConfig::ssd_a(),
            discipline: DisciplineKind::Ssq { weight: 1 },
            merge_cap: None,
        },
        &trace,
    );
    let f = fifo.aggregated_tput().as_gbps_f64();
    let s = ssq.aggregated_tput().as_gbps_f64();
    assert!(
        s > f * 0.9,
        "SSQ at w=1 should be near FIFO: ssq={s:.2} fifo={f:.2}"
    );
}

/// Reads and writes of the same LBA complete in submission order through
/// the whole storage stack, even at high write weight.
#[test]
fn consistency_preserved_through_stack() {
    use sim_engine::SimTime;
    use srcsim::workload::{Request, Trace};
    // Interleaved same-LBA chain plus background traffic.
    let mut reqs = Vec::new();
    for i in 0..50u64 {
        reqs.push(Request {
            id: i * 2,
            op: if i % 2 == 0 {
                IoType::Write
            } else {
                IoType::Read
            },
            lba: 42, // same LBA chain
            size: 4096,
            arrival: SimTime::from_us(i * 30),
        });
        reqs.push(Request {
            id: i * 2 + 1,
            op: IoType::Write,
            lba: 10_000 + i * 100,
            size: 16 * 1024,
            arrival: SimTime::from_us(i * 30 + 5),
        });
    }
    let trace = Trace::from_requests(reqs);
    let report = srcsim::storage_node::run_trace(
        &NodeConfig {
            ssd: SsdConfig::ssd_a(),
            discipline: DisciplineKind::Ssq { weight: 8 },
            merge_cap: None,
        },
        &trace,
    );
    assert_eq!(report.reads_completed + report.writes_completed, 100);
}
