//! The trace-replay contract: the committed fio-JSONL fixture parses
//! cleanly, the replayed in-cast sweep is deterministic across executor
//! thread counts, an interrupted replay sweep resumes byte-identically
//! from its checkpoint manifest, and a replayed recording can train a
//! TPM end-to-end via fitted per-class profiles.
//!
//! The heavy sweeps are ignored in debug builds (run
//! `cargo test --release -- --include-ignored`).

use srcsim::sim_engine::checkpoint::committed_cells;
use srcsim::sim_engine::runner::with_threads;
use srcsim::sim_engine::CheckpointSpec;
use srcsim::src_core::tpm::replay_training_samples;
use srcsim::src_core::ThroughputPredictionModel;
use srcsim::ssd_sim::SsdConfig;
use srcsim::system_sim::experiments::{ext_replay_checkpointed, Scale, TrainKnob};
use srcsim::workload::source::ReplaySpec;
use srcsim::workload::trace_io::{read_fio_jsonl, FioReadOptions};
use srcsim::workload::{extract_features, IoType, Trace};
use std::fs;
use std::io::BufReader;
use std::path::PathBuf;
use std::sync::Arc;

fn quick() -> Scale {
    Scale {
        requests_per_target: 600,
        train: TrainKnob::Quick,
    }
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/replay_incast_seed2026.jsonl")
}

fn fixture_trace() -> Trace {
    let f = fs::File::open(fixture_path()).expect("open committed replay fixture");
    read_fio_jsonl(BufReader::new(f), &FioReadOptions::default()).expect("fixture parses")
}

/// The quick-scale replay of the fixture: a 2400-request prefix, enough
/// to drive every in-cast cell into congestion.
fn quick_replay() -> ReplaySpec {
    ReplaySpec::new("fixture", fixture_trace()).truncate(600 * 4)
}

/// Cheap sanity on the committed fixture itself: well-formed, the
/// expected shape, monotone arrivals, both I/O classes present.
#[test]
fn committed_fixture_parses_and_is_monotone() {
    let trace = fixture_trace();
    assert_eq!(trace.len(), 5_600);
    let reqs = trace.requests();
    assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    assert!((0..reqs.len()).all(|i| reqs[i].id == i as u64));
    assert!(trace.class_stats(IoType::Read).count > 0);
    assert!(trace.class_stats(IoType::Write).count > 0);
    assert!(reqs.iter().all(|r| r.size > 0));
}

/// The replayed in-cast sweep must produce identical rows at executor
/// threads 1 and 4 (the `ScenarioRunner` determinism contract extends
/// to replay cells).
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn ext_replay_identical_serial_and_parallel() {
    let ssd = SsdConfig::ssd_a();
    let replay = quick_replay();
    let cfg = quick().training_config();
    let tpm = Arc::new(
        ThroughputPredictionModel::train_for_replay(&ssd, &replay.trace, &cfg, 42)
            .expect("fixture large enough to fit profiles"),
    );
    let serial = with_threads(1, || {
        ext_replay_checkpointed(&ssd, &replay, tpm.clone(), 47, None)
    });
    let parallel = with_threads(4, || {
        ext_replay_checkpointed(&ssd, &replay, tpm.clone(), 47, None)
    });
    assert_eq!(serial.len(), 4);
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "replay sweep must not depend on executor thread count"
    );
}

/// Kill the replay sweep after its first cells (simulated by truncating
/// the manifest to a prefix, exactly the on-disk state a killed serial
/// run leaves), resume at a different thread count, and require
/// byte-identical rows.
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn ext_replay_resumes_byte_identical() {
    let ssd = SsdConfig::ssd_a();
    let replay = quick_replay();
    let cfg = quick().training_config();
    let tpm = Arc::new(
        ThroughputPredictionModel::train_for_replay(&ssd, &replay.trace, &cfg, 42)
            .expect("fixture large enough to fit profiles"),
    );
    let reference = with_threads(4, || {
        ext_replay_checkpointed(&ssd, &replay, tpm.clone(), 47, None)
    });

    let path = std::env::temp_dir().join(format!(
        "srcsim-replay-resume-{}.ckpt.jsonl",
        std::process::id()
    ));
    let _ = fs::remove_file(&path);
    let spec = CheckpointSpec::new(&path, "replay resume test v1");
    let full = with_threads(1, || {
        ext_replay_checkpointed(&ssd, &replay, tpm.clone(), 47, Some(&spec))
    });
    assert_eq!(
        serde_json::to_string(&full).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "checkpointing must not change results"
    );
    assert_eq!(committed_cells(&path).unwrap(), 4);

    // Keep the header plus the first 2 committed cells, then resume in
    // parallel.
    let text = fs::read_to_string(&path).unwrap();
    let prefix: String = text.lines().take(1 + 2).map(|l| format!("{l}\n")).collect();
    fs::write(&path, prefix).unwrap();
    assert_eq!(committed_cells(&path).unwrap(), 2);

    let resumed = with_threads(4, || {
        ext_replay_checkpointed(&ssd, &replay, tpm.clone(), 47, Some(&spec))
    });
    assert_eq!(
        serde_json::to_string(&resumed).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "resumed replay sweep must be byte-identical"
    );
    assert_eq!(committed_cells(&path).unwrap(), 4);
    let _ = fs::remove_file(&path);
}

/// A replayed recording trains a TPM end-to-end: per-class profiles are
/// fitted to the fixture, workloads regenerated from them sweep the
/// weight grid, and the trained forest predicts sane throughputs for
/// the recording's own features.
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn replayed_trace_trains_tpm_end_to_end() {
    let ssd = SsdConfig::ssd_a();
    let trace = fixture_trace();
    let cfg = quick().training_config();

    let samples = replay_training_samples(&ssd, &trace, &cfg, 42)
        .expect("fixture large enough to fit profiles");
    let cells = cfg.iat_means_us.len() * cfg.seeds_per_cell;
    assert_eq!(samples.len(), cells * cfg.weights.len());
    assert!(samples.iter().all(|s| s.read_gbps.is_finite()
        && s.write_gbps.is_finite()
        && s.read_gbps >= 0.0
        && s.write_gbps >= 0.0));

    let tpm = ThroughputPredictionModel::train_for_replay(&ssd, &trace, &cfg, 42)
        .expect("fixture large enough to fit profiles");
    let ch = extract_features(trace.requests());
    for w in [1u32, 4, 8] {
        let (r, wr) = tpm.predict(&ch, w);
        assert!(r.is_finite() && wr.is_finite() && r >= 0.0 && wr >= 0.0);
        assert!(r < 200.0 && wr < 200.0, "predictions in a physical range");
    }

    // Too-small recordings refuse to fit rather than train nonsense.
    let tiny = Trace::from_requests(trace.requests()[..1].to_vec());
    assert!(replay_training_samples(&ssd, &tiny, &cfg, 42).is_none());
}
