//! The checkpoint/resume contract (see `sim-engine/src/checkpoint.rs`):
//! a sweep interrupted after k of n cells and then resumed must (a)
//! recompute only the missing cells and (b) return results
//! byte-identical to an uninterrupted run, at any thread count. A torn
//! manifest tail (SIGKILL mid-append) is truncated and recomputed; a
//! tampered committed record is a hard error.
//!
//! The cheap checks run in every build; the full TPM training sweep is
//! ignored in debug builds (run `cargo test --release -- --include-ignored`).

use srcsim::sim_engine::checkpoint::committed_cells;
use srcsim::sim_engine::runner::with_threads;
use srcsim::sim_engine::{CheckpointSpec, ScenarioRunner};
use srcsim::src_core::tpm::{generate_training_samples_checkpointed, TrainingConfig};
use srcsim::ssd_sim::SsdConfig;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Fresh per-process manifest path under the system temp dir.
fn tmp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "srcsim-ckpt-resume-{}-{name}.ckpt.jsonl",
        std::process::id()
    ));
    let _ = fs::remove_file(&p);
    p
}

/// A cheap pure cell: mixed integer/float payload derived only from
/// `(index, cell)`, so resumed results must match bit-for-bit.
fn compute(i: usize, c: u64) -> (u64, f64) {
    let x = (c as f64).sqrt() * (i as f64 + 0.25);
    (c.wrapping_mul(0x9e37_79b9) ^ i as u64, x.sin() * 1e6)
}

/// Strict byte identity: compare floats by bit pattern, not `==`.
fn bits(v: &[(u64, f64)]) -> Vec<(u64, u64)> {
    v.iter().map(|&(a, b)| (a, b.to_bits())).collect()
}

#[test]
fn interrupted_sweep_resumes_byte_identical() {
    const N: usize = 12;
    const K: usize = 5; // cells computed before the simulated interrupt
    let cells: Vec<u64> = (0..N as u64).map(|c| c * 3 + 1).collect();

    for threads in [1usize, 4] {
        let path = tmp(&format!("interrupt-t{threads}"));
        let spec = CheckpointSpec::new(&path, "resume-test grid v1");
        let runner = ScenarioRunner::from_env;

        let reference: Vec<(u64, f64)> = with_threads(threads, || {
            runner().run_cells_resumable(None, 99, &cells, |i, &c| compute(i, c))
        });

        // Interrupt: the closure panics once K cells have been computed.
        // Exactly K closures complete (and commit) before the panic
        // reaches the caller; the worker threads all join first.
        let computed = AtomicUsize::new(0);
        let boom = catch_unwind(AssertUnwindSafe(|| {
            with_threads(threads, || {
                runner().run_cells_resumable(Some(&spec), 99, &cells, |i, &c| {
                    if computed.fetch_add(1, Ordering::SeqCst) >= K {
                        panic!("simulated interrupt");
                    }
                    compute(i, c)
                })
            })
        }));
        assert!(boom.is_err(), "interrupt must reach the caller");
        let committed = committed_cells(&path).unwrap();
        assert_eq!(
            committed, K,
            "threads={threads}: cells committed before interrupt"
        );

        // Resume: only the missing cells are recomputed, and the result
        // is byte-identical to the uninterrupted run.
        let recomputed = AtomicUsize::new(0);
        let resumed: Vec<(u64, f64)> = with_threads(threads, || {
            runner().run_cells_resumable(Some(&spec), 99, &cells, |i, &c| {
                recomputed.fetch_add(1, Ordering::SeqCst);
                compute(i, c)
            })
        });
        assert_eq!(
            recomputed.load(Ordering::SeqCst),
            N - committed,
            "threads={threads}: resume must recompute exactly the missing cells"
        );
        assert_eq!(bits(&resumed), bits(&reference), "threads={threads}");
        assert_eq!(committed_cells(&path).unwrap(), N);

        // Third run: everything cached, the closure must never fire,
        // and deserialized payloads still match bit-for-bit.
        let cached: Vec<(u64, f64)> = with_threads(threads, || {
            runner().run_cells_resumable(Some(&spec), 99, &cells, |_, _| -> (u64, f64) {
                panic!("cached cell recomputed")
            })
        });
        assert_eq!(bits(&cached), bits(&reference), "threads={threads}");

        let _ = fs::remove_file(&path);
    }
}

#[test]
fn torn_tail_is_recovered_but_corruption_is_fatal() {
    let cells: Vec<u64> = (0..6).collect();
    let path = tmp("recovery");
    let spec = CheckpointSpec::new(&path, "recovery grid v1");
    let runner = ScenarioRunner::serial();

    let reference: Vec<(u64, f64)> =
        runner.run_cells_resumable(Some(&spec), 7, &cells, |i, &c| compute(i, c));

    // A SIGKILL mid-append leaves a final line with no newline: the torn
    // tail is truncated away and its cell recomputed.
    let intact = fs::read_to_string(&path).unwrap();
    fs::write(&path, format!("{intact}{{\"kind\":\"cell\",\"index\":5")).unwrap();
    let resumed: Vec<(u64, f64)> =
        runner.run_cells_resumable(Some(&spec), 7, &cells, |i, &c| compute(i, c));
    assert_eq!(bits(&resumed), bits(&reference));
    assert_eq!(committed_cells(&path).unwrap(), cells.len());

    // A newline-terminated line that does not parse is real corruption,
    // not a torn tail: hard error.
    fs::write(&path, format!("{intact}this is not json\n")).unwrap();
    let boom = catch_unwind(AssertUnwindSafe(|| {
        let _: Vec<(u64, f64)> =
            runner.run_cells_resumable(Some(&spec), 7, &cells, |i, &c| compute(i, c));
    }));
    assert!(boom.is_err(), "committed garbage must be rejected");

    // The documented escape hatch: delete the manifest, recompute from
    // scratch, same bytes.
    fs::remove_file(&path).unwrap();
    let fresh: Vec<(u64, f64)> =
        runner.run_cells_resumable(Some(&spec), 7, &cells, |i, &c| compute(i, c));
    assert_eq!(bits(&fresh), bits(&reference));
    let _ = fs::remove_file(&path);
}

/// End-to-end on a real sweep: kill a TPM training run after its first
/// cells (simulated by truncating the manifest to a prefix, exactly the
/// on-disk state a killed serial run leaves), resume at a different
/// thread count, and require byte-identical samples.
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn tpm_training_resumes_byte_identical() {
    let ssd = SsdConfig::ssd_a();
    let cfg = TrainingConfig {
        requests_per_class: 400,
        ..TrainingConfig::quick()
    };
    let n_cells =
        cfg.iat_means_us.len() * cfg.size_means.len() * cfg.read_mixes.len() * cfg.seeds_per_cell;

    let reference = with_threads(4, || {
        generate_training_samples_checkpointed(&ssd, &cfg, 42, None)
    });

    let path = tmp("tpm");
    let spec = CheckpointSpec::new(&path, "tpm resume test v1");
    let full = with_threads(1, || {
        generate_training_samples_checkpointed(&ssd, &cfg, 42, Some(&spec))
    });
    assert_eq!(full, reference, "checkpointing must not change results");
    assert_eq!(committed_cells(&path).unwrap(), n_cells);

    // Keep the header plus the first 3 committed cells — the prefix a
    // killed serial run leaves behind — then resume in parallel.
    let text = fs::read_to_string(&path).unwrap();
    let prefix: String = text.lines().take(1 + 3).map(|l| format!("{l}\n")).collect();
    fs::write(&path, prefix).unwrap();
    assert_eq!(committed_cells(&path).unwrap(), 3);

    let resumed = with_threads(4, || {
        generate_training_samples_checkpointed(&ssd, &cfg, 42, Some(&spec))
    });
    assert_eq!(
        resumed, reference,
        "resumed training sweep must be byte-identical"
    );
    assert_eq!(committed_cells(&path).unwrap(), n_cells);
    let _ = fs::remove_file(&path);
}
