//! The fault-injection contract: an empty [`FaultPlan`] reproduces
//! fault-free runs bit-for-bit, active plans are deterministic across
//! executor thread counts, the retry budget's accounting is exact, and
//! checkpointed fault sweeps key their manifests on the plan.
//!
//! The heavy sweeps are ignored in debug builds (run
//! `cargo test --release -- --include-ignored`).

use srcsim::sim_engine::checkpoint::committed_cells;
use srcsim::sim_engine::runner::with_threads;
use srcsim::sim_engine::{
    CheckpointSpec, FaultEvent, FaultKind, FaultPlan, FaultScope, NullSink, SimDuration, SimTime,
};
use srcsim::ssd_sim::SsdConfig;
use srcsim::system_sim::config::{spread_trace, Mode, SystemConfig};
use srcsim::system_sim::experiments::{
    ext_faults_checkpointed, ext_faults_fingerprint, faults_for_incast, train_tpm, Scale, TrainKnob,
};
use srcsim::system_sim::{run_system, RobustnessConfig, RunOptions, SystemReport};
use srcsim::workload::micro::{generate_micro, MicroConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn micro_assignments(
    n_per_class: usize,
    n_init: usize,
    n_tgt: usize,
    seed: u64,
) -> Vec<srcsim::system_sim::config::Assignment> {
    let t = generate_micro(
        &MicroConfig {
            read_count: n_per_class,
            write_count: n_per_class,
            read_iat_mean_us: 15.0,
            write_iat_mean_us: 15.0,
            read_size_mean: 24_000.0,
            write_size_mean: 24_000.0,
            ..MicroConfig::default()
        },
        seed,
    );
    spread_trace(&t, n_init, n_tgt)
}

fn report_bits(r: &SystemReport) -> String {
    serde_json::to_string(r).expect("report serializes")
}

fn quick() -> Scale {
    Scale {
        requests_per_target: 300,
        train: TrainKnob::Quick,
    }
}

/// An empty fault plan — whether defaulted in the config, set
/// explicitly on the config, or passed through [`RunOptions`] — must
/// reproduce the fault-free run bit-for-bit: zero extra events, zero
/// robustness machinery, identical serialized report.
#[test]
fn empty_plan_reproduces_fault_free_run_bitwise() {
    let a = micro_assignments(120, 1, 2, 7);
    let cfg = SystemConfig {
        mode: Mode::DcqcnOnly,
        ..SystemConfig::default()
    };
    let baseline = run_system(&cfg, RunOptions::assignments(&a), &mut NullSink);
    assert_eq!(
        (baseline.timeouts, baseline.retries, baseline.abandoned),
        (0, 0, 0)
    );

    let empty = FaultPlan::seeded(99);
    let via_opts = run_system(
        &cfg,
        RunOptions::assignments(&a).faults(&empty),
        &mut NullSink,
    );
    assert_eq!(
        report_bits(&baseline),
        report_bits(&via_opts),
        "empty plan via RunOptions diverged from the fault-free run"
    );

    let cfg_with_plan = cfg.to_builder().faults(FaultPlan::default()).build();
    let via_cfg = run_system(&cfg_with_plan, RunOptions::assignments(&a), &mut NullSink);
    assert_eq!(
        report_bits(&baseline),
        report_bits(&via_cfg),
        "empty plan via SystemConfig diverged from the fault-free run"
    );
}

/// A run under an active plan must be a pure function of
/// `(config, plan, seed)` — the same cell computed twice, and computed
/// under different executor thread budgets, is bit-identical.
#[test]
fn active_plan_run_is_reproducible() {
    let a = micro_assignments(100, 1, 2, 11);
    let plan = faults_for_incast(1.0, SimDuration::from_ms(3), 1, 2, 13);
    let cfg = SystemConfig {
        mode: Mode::DcqcnOnly,
        ..SystemConfig::default()
    };
    let run = |threads: usize| {
        with_threads(threads, || {
            run_system(
                &cfg,
                RunOptions::assignments(&a).faults(&plan),
                &mut NullSink,
            )
        })
    };
    let first = run(1);
    let again = run(1);
    let parallel = run(4);
    assert_eq!(report_bits(&first), report_bits(&again), "rerun diverged");
    assert_eq!(
        report_bits(&first),
        report_bits(&parallel),
        "thread budget leaked into an active-plan run"
    );
}

/// A Target that drops out for the whole run exhausts every routed
/// request's retry budget with exact accounting: `budget + 1` timeouts
/// and `budget` retries per abandoned request, zero completions, zero
/// availability.
#[test]
fn retry_budget_exhaustion_accounting() {
    let a = micro_assignments(40, 1, 1, 5);
    let total = a.len() as u64;
    let plan = FaultPlan::seeded(3).with(FaultEvent {
        scope: FaultScope::Target { index: 0 },
        kind: FaultKind::TargetDropout,
        start: SimTime::ZERO,
        duration: SimDuration::from_ms(60_000),
    });
    let rb = RobustnessConfig {
        timeout: SimDuration::from_us(300),
        retry_budget: 2,
        backoff_base: SimDuration::from_us(50),
    };
    let r = run_system(
        &SystemConfig {
            mode: Mode::DcqcnOnly,
            n_targets: 1,
            ..SystemConfig::default()
        },
        RunOptions::assignments(&a).faults(&plan).robustness(rb),
        &mut NullSink,
    );
    assert_eq!(r.abandoned, total, "every request must be abandoned");
    assert_eq!(r.reads_completed + r.writes_completed, 0);
    assert_eq!(r.timeouts, total * 3, "budget+1 timeouts per request");
    assert_eq!(r.retries, total * 2, "budget retries per request");
    assert_eq!(r.per_target_abandoned, vec![total]);
    assert_eq!(r.availability(0), 0.0);
}

/// The full fault sweep is deterministic across executor thread counts,
/// and its intensity-0 rows are clean (no timeouts, retries, or
/// abandoned work; full availability).
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn ext_faults_identical_serial_and_parallel() {
    let scale = quick();
    let tpm = train_tpm(&SsdConfig::ssd_a(), &scale, 42);
    let serial = with_threads(1, || {
        ext_faults_checkpointed(&SsdConfig::ssd_a(), &scale, tpm.clone(), 29, None)
    });
    let parallel = with_threads(4, || {
        ext_faults_checkpointed(&SsdConfig::ssd_a(), &scale, tpm.clone(), 29, None)
    });
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "fault sweep must not depend on executor thread count"
    );
    for row in serial.iter().filter(|r| r.intensity == 0.0) {
        assert_eq!(
            (row.timeouts, row.retries, row.abandoned),
            (0, 0, 0),
            "{}: intensity 0 must be fault-free",
            row.ratio
        );
        assert_eq!(row.min_availability, 1.0);
    }
}

/// Checkpointed fault sweeps resume bit-identically, and the manifest
/// fingerprint embeds the resolved fault plans — so changing the plan
/// (via its seed) is configuration drift that rejects the stale
/// manifest instead of silently replaying it.
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn ext_faults_checkpoint_resume_keyed_on_plan() {
    let scale = quick();
    let ssd = SsdConfig::ssd_a();
    let fp = ext_faults_fingerprint(&ssd, &scale, 29);
    assert!(
        fp.contains("PacketLoss") && fp.contains("TargetDropout"),
        "fingerprint must embed the resolved plans: {fp}"
    );
    assert_ne!(
        fp,
        ext_faults_fingerprint(&ssd, &scale, 30),
        "a different plan seed must change the fingerprint"
    );

    let path = std::env::temp_dir().join(format!(
        "srcsim-faults-resume-{}.ckpt.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let spec = CheckpointSpec::new(&path, &fp);
    let tpm = train_tpm(&ssd, &scale, 42);
    let first = ext_faults_checkpointed(&ssd, &scale, tpm.clone(), 29, Some(&spec));
    let n_cells = first.len();
    assert_eq!(committed_cells(&path).unwrap(), n_cells);
    // Rerun: fully cached, rows byte-identical, nothing re-appended.
    let resumed = ext_faults_checkpointed(&ssd, &scale, tpm.clone(), 29, Some(&spec));
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&resumed).unwrap(),
        "cached replay diverged"
    );
    assert_eq!(committed_cells(&path).unwrap(), n_cells);
    // Same manifest file under a different plan's fingerprint: fatal.
    let drifted = CheckpointSpec::new(&path, &ext_faults_fingerprint(&ssd, &scale, 30));
    let boom = catch_unwind(AssertUnwindSafe(|| {
        ext_faults_checkpointed(&ssd, &scale, tpm.clone(), 30, Some(&drifted))
    }));
    assert!(boom.is_err(), "plan drift must reject the stale manifest");
    let _ = std::fs::remove_file(&path);
}
