//! Cross-crate full-system scenarios beyond the paper's experiments:
//! Clos fabric runs, all three Table II devices, conservation checks.
//!
//! The heavier ones are ignored in debug builds (run
//! `cargo test --release -- --include-ignored`).

use srcsim::net_sim::ClosConfig;
use srcsim::sim_engine::NullSink;
use srcsim::ssd_sim::SsdConfig;
use srcsim::system_sim::config::{
    per_target_traces, spread_trace, Mode, SystemConfig, TopologyKind,
};
use srcsim::system_sim::{run_system, RunOptions};
use srcsim::workload::micro::{generate_micro, MicroConfig};

fn micro_assignments(
    n_per_class: usize,
    n_init: usize,
    n_tgt: usize,
    seed: u64,
) -> Vec<srcsim::system_sim::config::Assignment> {
    let t = generate_micro(
        &MicroConfig {
            read_count: n_per_class,
            write_count: n_per_class,
            read_iat_mean_us: 15.0,
            write_iat_mean_us: 15.0,
            read_size_mean: 28_000.0,
            write_size_mean: 28_000.0,
            ..MicroConfig::default()
        },
        seed,
    );
    spread_trace(&t, n_init, n_tgt)
}

/// The full system runs over the paper's actual Clos fabric (multi-hop,
/// ECMP, spine crossing) — not just the star used by the experiments.
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn full_system_on_clos_fabric() {
    let cfg = SystemConfig {
        topology: TopologyKind::Clos(ClosConfig {
            pods: 2,
            hosts_per_pod: 8,
            spines: 2,
            ..ClosConfig::default()
        }),
        n_initiators: 2,
        n_targets: 4,
        mode: Mode::DcqcnOnly,
        ..SystemConfig::default()
    };
    let a = micro_assignments(400, 2, 4, 3);
    let r = run_system(&cfg, RunOptions::assignments(&a), &mut NullSink);
    assert_eq!(r.reads_completed, 400);
    assert_eq!(r.writes_completed, 400);
    assert_eq!(
        r.read_bytes,
        a.iter()
            .filter(|x| x.request.op.is_read())
            .map(|x| x.request.size)
            .sum::<u64>()
    );
    assert!(r.read_latency_us.mean() > 0.0);
}

/// Every Table II device completes the same workload end to end; the
/// low-latency SSD-B finishes fastest.
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn all_table_ii_devices_run_end_to_end() {
    let a = micro_assignments(500, 1, 2, 5);
    let run = |ssd: SsdConfig| {
        let cfg = SystemConfig {
            ssds: vec![ssd],
            mode: Mode::DcqcnOnly,
            ..SystemConfig::default()
        };
        run_system(&cfg, RunOptions::assignments(&a), &mut NullSink)
    };
    let ra = run(SsdConfig::ssd_a());
    let rb = run(SsdConfig::ssd_b());
    let rc = run(SsdConfig::ssd_c());
    for r in [&ra, &rb, &rc] {
        assert_eq!(r.reads_completed + r.writes_completed, 1000);
    }
    assert!(
        rb.makespan < ra.makespan,
        "SSD-B ({:?}) should beat SSD-A ({:?})",
        rb.makespan,
        ra.makespan
    );
    assert!(
        rb.read_latency_us.mean() < ra.read_latency_us.mean(),
        "SSD-B reads should be faster"
    );
}

/// Write bytes counted at Targets equal the bytes the Initiators sent;
/// read bytes delivered equal the bytes requested (system-level
/// conservation, both modes).
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn byte_conservation_both_modes() {
    let a = micro_assignments(600, 1, 2, 9);
    let expect_read: u64 = a
        .iter()
        .filter(|x| x.request.op.is_read())
        .map(|x| x.request.size)
        .sum();
    let expect_write: u64 = a
        .iter()
        .filter(|x| !x.request.op.is_read())
        .map(|x| x.request.size)
        .sum();

    let only = run_system(
        &SystemConfig {
            mode: Mode::DcqcnOnly,
            ..SystemConfig::default()
        },
        RunOptions::assignments(&a),
        &mut NullSink,
    );
    assert_eq!(only.read_bytes, expect_read);
    assert_eq!(only.write_bytes, expect_write);

    let tpm = srcsim::system_sim::experiments::train_tpm(
        &SsdConfig::ssd_a(),
        &srcsim::system_sim::experiments::Scale::quick(),
        1,
    );
    let src = run_system(
        &SystemConfig {
            mode: Mode::DcqcnSrc,
            ..SystemConfig::default()
        },
        RunOptions::assignments(&a).tpm(tpm),
        &mut NullSink,
    );
    assert_eq!(src.read_bytes, expect_read);
    assert_eq!(src.write_bytes, expect_write);
}

/// Burst coalescing is a pure event-count optimization: the whole
/// `SystemReport` — every latency quantile, series bin, decision, and
/// counter — is byte-identical with the fast path on or off, in both
/// modes. Only the coalescing counters themselves (which measure the
/// fast path, not the simulation) differ, so they are zeroed before
/// the comparison and checked separately.
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn coalescing_does_not_change_the_report() {
    let canon = |mut r: srcsim::system_sim::SystemReport| {
        r.bursts_coalesced = 0;
        r.packets_coalesced = 0;
        serde_json::to_string(&r).unwrap()
    };
    let a = micro_assignments(400, 1, 2, 13);

    let only_cfg = SystemConfig {
        mode: Mode::DcqcnOnly,
        ..SystemConfig::default()
    };
    let on = run_system(&only_cfg, RunOptions::assignments(&a), &mut NullSink);
    let off = run_system(
        &only_cfg,
        RunOptions::assignments(&a).no_coalescing(),
        &mut NullSink,
    );
    assert!(
        on.packets_coalesced > 0,
        "fast path never fired — the equivalence check would be vacuous"
    );
    assert_eq!(off.packets_coalesced, 0);
    assert_eq!(canon(on), canon(off));

    let tpm = srcsim::system_sim::experiments::train_tpm(
        &SsdConfig::ssd_a(),
        &srcsim::system_sim::experiments::Scale::quick(),
        1,
    );
    let src_cfg = SystemConfig {
        mode: Mode::DcqcnSrc,
        ..SystemConfig::default()
    };
    let on = run_system(
        &src_cfg,
        RunOptions::assignments(&a).tpm(tpm.clone()),
        &mut NullSink,
    );
    let off = run_system(
        &src_cfg,
        RunOptions::assignments(&a).tpm(tpm).no_coalescing(),
        &mut NullSink,
    );
    assert!(on.packets_coalesced > 0);
    // Cache *hits* under load are pinned by the SRC golden-trace
    // fixture (tests/golden_trace.rs); this workload is too light to
    // guarantee congestion notifications, so only equality is asserted
    // here.
    assert_eq!(
        (on.tpm_cache_hits, on.tpm_cache_misses),
        (off.tpm_cache_hits, off.tpm_cache_misses),
        "the prediction cache must behave identically under both pumps"
    );
    assert_eq!(canon(on), canon(off));
}

/// Per-target traces keep target affinity: a request assigned to target
/// 1 is served by target 1's SSD (observable through deterministic
/// per-target workloads with distinct sizes).
#[test]
fn per_target_affinity() {
    let t0 = generate_micro(
        &MicroConfig {
            read_count: 50,
            write_count: 0,
            read_size_mean: 16_000.0,
            ..MicroConfig::default()
        },
        1,
    );
    let t1 = generate_micro(
        &MicroConfig {
            read_count: 0,
            write_count: 50,
            write_size_mean: 16_000.0,
            ..MicroConfig::default()
        },
        2,
    );
    let a = per_target_traces(&[t0, t1], 1);
    assert!(a
        .iter()
        .filter(|x| x.target == 0)
        .all(|x| x.request.op.is_read()));
    assert!(a
        .iter()
        .filter(|x| x.target == 1)
        .all(|x| !x.request.op.is_read()));
    let r = run_system(
        &SystemConfig {
            mode: Mode::DcqcnOnly,
            ..SystemConfig::default()
        },
        RunOptions::assignments(&a),
        &mut NullSink,
    );
    assert_eq!(r.reads_completed, 50);
    assert_eq!(r.writes_completed, 50);
}
