//! The `srcsim` command-line tool: run the paper's scenarios, sweep
//! devices, and replay your own block traces, without writing code.
//!
//! ```text
//! srcsim motivation                     Fig. 2 arithmetic
//! srcsim sweep [a|b|c] [iat_us] [KB]    weight sweep on a device
//! srcsim replay <trace.csv> [w]         run a CSV trace through a Target
//! srcsim fit <trace.csv>                fit MMPP profiles to a trace
//! srcsim storm [quick|full]             DCQCN vs DCQCN-SRC congestion storm
//! ```

use srcsim::sim_engine::NullSink;
use srcsim::ssd_sim::SsdConfig;
use srcsim::storage_node::{run_trace, weight_sweep, DisciplineKind, NodeConfig};
use srcsim::system_sim::experiments::{fig7_fig8, train_tpm, Scale};
use srcsim::system_sim::motivation::{self, MotivationParams};
use srcsim::workload::micro::{generate_micro, MicroConfig};
use srcsim::workload::trace_io;
use std::io::BufReader;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  srcsim motivation\n  srcsim sweep [a|b|c] [iat_us] [size_kb]\n  \
         srcsim replay <trace.csv> [weight]\n  srcsim fit <trace.csv>\n  \
         srcsim storm [quick|full]"
    );
    ExitCode::from(2)
}

fn device(tag: Option<&str>) -> SsdConfig {
    match tag {
        Some("b") => SsdConfig::ssd_b(),
        Some("c") => SsdConfig::ssd_c(),
        _ => SsdConfig::ssd_a(),
    }
}

fn cmd_motivation() -> ExitCode {
    let p = MotivationParams::default();
    for (label, o) in [
        ("no congestion", motivation::no_congestion(&p)),
        ("DCQCN only", motivation::dcqcn_only(&p)),
        ("DCQCN + SRC", motivation::with_src(&p)),
    ] {
        println!(
            "{label:<16} reads={:<4} writes={:<4} total={}",
            o.reads,
            o.writes,
            o.total()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let ssd = device(args.first().map(String::as_str));
    let iat: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10.0);
    let size_kb: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32.0);
    let trace = generate_micro(
        &MicroConfig {
            read_iat_mean_us: iat,
            write_iat_mean_us: iat,
            read_size_mean: size_kb * 1000.0,
            write_size_mean: size_kb * 1000.0,
            read_count: 3_000,
            write_count: 3_000,
            ..MicroConfig::default()
        },
        42,
    );
    println!("weight sweep: IAT {iat} us, size {size_kb} KB per class");
    println!("{:>4} {:>12} {:>12}", "w", "read Gbps", "write Gbps");
    for p in weight_sweep(&ssd, &trace, &[1, 2, 3, 4, 6, 8]) {
        println!(
            "{:>4} {:>12.2} {:>12.2}",
            p.weight, p.read_gbps, p.write_gbps
        );
    }
    ExitCode::SUCCESS
}

fn load_trace(path: &str) -> Result<srcsim::workload::Trace, ExitCode> {
    let file = std::fs::File::open(path).map_err(|e| {
        eprintln!("cannot open {path}: {e}");
        ExitCode::FAILURE
    })?;
    trace_io::read_csv(BufReader::new(file)).map_err(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let weight: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1).max(1); // SSQ weights start at 1
    let trace = match load_trace(path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    println!(
        "replaying {} requests at weight ratio {weight} on SSD-A ...",
        trace.len()
    );
    let r = run_trace(
        &NodeConfig {
            discipline: DisciplineKind::Ssq { weight },
            ..NodeConfig::default()
        },
        &trace,
    );
    println!(
        "reads  : {:>8}  {:>10} bytes  mean latency {:>9.1} us",
        r.reads_completed,
        r.read_bytes,
        r.read_latency_us.mean()
    );
    println!(
        "writes : {:>8}  {:>10} bytes  mean latency {:>9.1} us",
        r.writes_completed,
        r.write_bytes,
        r.write_latency_us.mean()
    );
    println!(
        "tput   : read {:.2} Gbps, write {:.2} Gbps (trimmed), makespan {:.1} ms",
        r.read_tput().as_gbps_f64(),
        r.write_tput().as_gbps_f64(),
        r.makespan.as_ms_f64()
    );
    ExitCode::SUCCESS
}

fn cmd_fit(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let trace = match load_trace(path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    let (r, w) = trace_io::fit_profiles(&trace);
    let print = |label: &str, p: Option<srcsim::workload::synthetic::StreamProfile>| match p {
        Some(p) => println!(
            "{label}: iat mean {:.2} us (SCV {:.2}), size mean {:.0} B (SCV {:.2})",
            p.iat_mean_us, p.iat_scv, p.size_mean, p.size_scv
        ),
        None => println!("{label}: not enough requests to fit"),
    };
    print("read ", r);
    print("write", w);
    println!("(feed these to workload::synthetic::SyntheticConfig to generate more)");
    ExitCode::SUCCESS
}

fn cmd_storm(args: &[String]) -> ExitCode {
    let scale = match args.first().map(String::as_str) {
        Some("full") => Scale::full(),
        _ => Scale::quick(),
    };
    let ssd = SsdConfig::ssd_a();
    eprintln!("training TPM ...");
    let tpm = train_tpm(&ssd, &scale, 42);
    eprintln!("running both modes ...");
    let r = fig7_fig8(&ssd, &scale, tpm, 7, (&mut NullSink, &mut NullSink));
    let p = |label: &str, rep: &srcsim::system_sim::SystemReport| {
        println!(
            "{label:<12} read={:>5.2} write={:>5.2} aggregate={:>5.2} Gbps  pauses={}",
            rep.read_tput().as_gbps_f64(),
            rep.write_tput().as_gbps_f64(),
            rep.aggregated_tput().as_gbps_f64(),
            rep.pauses_total
        );
    };
    p("DCQCN-only", &r.dcqcn_only);
    p("DCQCN-SRC", &r.dcqcn_src);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("motivation") => cmd_motivation(),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("fit") => cmd_fit(&args[1..]),
        Some("storm") => cmd_storm(&args[1..]),
        _ => usage(),
    }
}
