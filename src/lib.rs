//! **srcsim** — a full-system reproduction of *SRC: Mitigate I/O
//! Throughput Degradation in Network Congestion Control of Disaggregated
//! Storage Systems* (Jia et al., IPDPS 2023), in pure Rust.
//!
//! The workspace builds every layer of the paper's simulated testbed:
//!
//! | layer | crate |
//! |---|---|
//! | discrete-event substrate | [`sim_engine`] |
//! | I/O workload models (micro + MMPP synthetic) | [`workload`] |
//! | regression models (Table I's five families) | [`ml`] |
//! | MQSim-like SSD | [`ssd_sim`] |
//! | NVMe queueing (FIFO + the paper's SSQ) | [`nvme_queues`] |
//! | Target storage stack | [`storage_node`] |
//! | RDMA/RoCE network with DCQCN, ECN, PFC | [`net_sim`] |
//! | NVMe-oF protocol | [`fabric`] |
//! | **SRC itself** (monitor, TPM, Algorithm 1) | [`src_core`] |
//! | the whole disaggregated system + experiments | [`system_sim`] |
//!
//! # Quick start
//!
//! ```
//! use srcsim::system_sim::motivation::{self, MotivationParams};
//!
//! // The paper's Fig. 2 numbers: DCQCN-only wastes a third of the
//! // system's throughput; SRC restores it.
//! let p = MotivationParams::default();
//! assert_eq!(motivation::dcqcn_only(&p).total(), 6.0);
//! assert_eq!(motivation::with_src(&p).total(), 9.0);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the per-figure reproduction harness.

pub use fabric;
pub use ml;
pub use net_sim;
pub use nvme_queues;
pub use sim_engine;
pub use src_core;
pub use ssd_sim;
pub use storage_node;
pub use system_sim;
pub use workload;
