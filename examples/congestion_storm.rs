//! End-to-end congestion storm: one Initiator reading and writing
//! against two Targets over a DCQCN fabric while background tenants
//! squeeze the Initiator's link — the paper's Fig. 7 scenario at
//! example scale, run once with plain DCQCN and once with SRC.
//!
//! Run with: `cargo run --release --example congestion_storm`

use srcsim::sim_engine::NullSink;
use srcsim::ssd_sim::SsdConfig;
use srcsim::system_sim::experiments::{fig7_fig8, train_tpm, Scale, TrainKnob};
use srcsim::system_sim::SystemReport;

fn print_run(label: &str, r: &SystemReport) {
    println!(
        "{label:<12} read={:>5.2} Gbps  write={:>5.2} Gbps  aggregate={:>5.2} Gbps  \
         pauses={:<4} gate-closures={:<4} makespan={:.1} ms",
        r.read_tput().as_gbps_f64(),
        r.write_tput().as_gbps_f64(),
        r.aggregated_tput().as_gbps_f64(),
        r.pauses_total,
        r.gate_closures.len(),
        r.makespan.as_ms_f64(),
    );
}

fn sparkline(bins: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if bins.is_empty() {
        return String::new();
    }
    let max = bins.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    let step = (bins.len() as f64 / width as f64).max(1.0);
    (0..width.min(bins.len()))
        .map(|i| {
            let v = bins[(i as f64 * step) as usize];
            BARS[((v / max) * 7.0).round() as usize]
        })
        .collect()
}

fn main() {
    println!("=== congestion storm: DCQCN-only vs DCQCN-SRC ===\n");
    let scale = Scale {
        requests_per_target: 1500,
        train: TrainKnob::Quick,
    };
    let ssd = SsdConfig::ssd_a();
    println!("training the throughput prediction model on SSD-A ...");
    let tpm = train_tpm(&ssd, &scale, 42);
    println!("running both modes ...\n");
    let r = fig7_fig8(&ssd, &scale, tpm, 7, (&mut NullSink, &mut NullSink));

    print_run("DCQCN-only", &r.dcqcn_only);
    print_run("DCQCN-SRC", &r.dcqcn_src);

    println!("\nper-ms write throughput at the Targets (whole run):");
    println!("  only {}", sparkline(r.dcqcn_only.write_series.bins(), 72));
    println!("  src  {}", sparkline(r.dcqcn_src.write_series.bins(), 72));

    println!("\nper-ms read throughput at the Initiator:");
    println!("  only {}", sparkline(r.dcqcn_only.read_series.bins(), 72));
    println!("  src  {}", sparkline(r.dcqcn_src.read_series.bins(), 72));

    let only = r.dcqcn_only.aggregated_tput().as_gbps_f64();
    let src = r.dcqcn_src.aggregated_tput().as_gbps_f64();
    println!(
        "\nSRC keeps the aggregate at {:.2} Gbps vs {:.2} Gbps under plain DCQCN \
         ({:+.0} %).",
        src,
        only,
        (src - only) / only * 100.0
    );
    let max_w = r
        .dcqcn_src
        .decisions
        .iter()
        .flatten()
        .map(|d| d.weight)
        .max()
        .unwrap_or(1);
    println!("SRC's dynamic adjustment pushed the write:read weight ratio up to {max_w}.");
}
