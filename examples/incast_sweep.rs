//! In-cast ratio sweep (the paper's Table IV): how the Targets:Initiators
//! ratio changes SRC's benefit, at example scale.
//!
//! Run with: `cargo run --release --example incast_sweep`

use srcsim::ssd_sim::SsdConfig;
use srcsim::system_sim::experiments::{table4, train_tpm, Scale, TrainKnob};

fn main() {
    println!("=== Table IV: in-cast ratio analysis ===\n");
    let scale = Scale {
        requests_per_target: 900,
        train: TrainKnob::Quick,
    };
    let ssd = SsdConfig::ssd_a();
    println!("training the throughput prediction model on SSD-A ...");
    let tpm = train_tpm(&ssd, &scale, 42);
    println!("sweeping in-cast ratios (each row = 2 full-system runs) ...\n");
    let rows = table4(&ssd, &scale, tpm, 31);

    println!(
        "{:>8} {:>14} {:>14} {:>13}",
        "ratio", "DCQCN-SRC", "DCQCN-only", "improvement"
    );
    for row in &rows {
        println!(
            "{:>8} {:>11.2} Gbps {:>11.2} Gbps {:>11.1} %",
            row.ratio, row.src_gbps, row.only_gbps, row.improvement_pct
        );
    }
    println!(
        "\nAs in the paper, the benefit shrinks when load spreads over more \
         Targets (weighted round-robin fades out) and when more Initiators \
         relieve the congestion."
    );
}
