//! Quickstart: the paper's Fig. 2 motivation example, then a real
//! device-level weight sweep showing the same effect emerge from the
//! simulated SSD.
//!
//! Run with: `cargo run --release --example quickstart`

use srcsim::ssd_sim::SsdConfig;
use srcsim::storage_node::weight_sweep;
use srcsim::system_sim::motivation::{self, MotivationParams};
use srcsim::workload::micro::{generate_micro, MicroConfig};

fn main() {
    println!("=== SRC quickstart ===\n");

    // ------------------------------------------------------------------
    // 1. The analytical motivation (paper Fig. 2).
    let p = MotivationParams::default();
    let a = motivation::no_congestion(&p);
    let b = motivation::dcqcn_only(&p);
    let c = motivation::with_src(&p);
    println!("Fig. 2 toy model (requests per time unit):");
    println!(
        "  {:<16} reads={:<4} writes={:<4} total={}",
        "no congestion",
        a.reads,
        a.writes,
        a.total()
    );
    println!(
        "  {:<16} reads={:<4} writes={:<4} total={}",
        "DCQCN only",
        b.reads,
        b.writes,
        b.total()
    );
    println!(
        "  {:<16} reads={:<4} writes={:<4} total={}",
        "DCQCN + SRC",
        c.reads,
        c.writes,
        c.total()
    );
    println!();

    // ------------------------------------------------------------------
    // 2. The same effect on the simulated SSD: sweeping the separate
    //    submission queue's write:read weight ratio shifts throughput
    //    from reads to writes under a saturating workload.
    println!("SSQ weight sweep on SSD-A (saturating 40 KB / 8 µs workload):");
    let trace = generate_micro(
        &MicroConfig {
            read_iat_mean_us: 8.0,
            write_iat_mean_us: 8.0,
            read_size_mean: 40_000.0,
            write_size_mean: 40_000.0,
            read_count: 4_000,
            write_count: 4_000,
            ..MicroConfig::default()
        },
        42,
    );
    println!(
        "  {:>3} {:>12} {:>12} {:>12}",
        "w", "read Gbps", "write Gbps", "total Gbps"
    );
    for point in weight_sweep(&SsdConfig::ssd_a(), &trace, &[1, 2, 4, 8]) {
        println!(
            "  {:>3} {:>12.2} {:>12.2} {:>12.2}",
            point.weight,
            point.read_gbps,
            point.write_gbps,
            point.read_gbps + point.write_gbps
        );
    }
    println!("\nRead throughput falls and write throughput rises with w —");
    println!("that knob is what SRC turns when DCQCN demands a lower");
    println!("sending rate, instead of letting data rot in the NIC queue.");
}
