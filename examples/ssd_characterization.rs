//! Device characterization: sweep the SSQ weight ratio across a grid of
//! workloads on each of the paper's three SSDs (Table II) — the Fig. 5
//! experiment as an interactive tool.
//!
//! Run with: `cargo run --release --example ssd_characterization [a|b|c]`

use srcsim::ssd_sim::SsdConfig;
use srcsim::storage_node::weight_sweep;
use srcsim::workload::micro::{generate_micro, MicroConfig};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "a".into());
    let (label, ssd) = match which.as_str() {
        "b" => ("SSD-B", SsdConfig::ssd_b()),
        "c" => ("SSD-C", SsdConfig::ssd_c()),
        _ => ("SSD-A", SsdConfig::ssd_a()),
    };
    println!("=== Fig. 5 weight-ratio characterization on {label} ===");
    println!(
        "(queue depth {}, {} x {} chips, page {:?}, read {} / write {})\n",
        ssd.queue_depth,
        ssd.channels,
        ssd.chips_per_channel,
        ssd.page,
        ssd.read_latency,
        ssd.write_latency,
    );

    let weights = [1u32, 2, 3, 4, 6, 8];
    println!(
        "{:>8} {:>8} | {}",
        "IAT(us)",
        "size(KB)",
        weights
            .iter()
            .map(|w| format!("   w={w}: R/W Gbps "))
            .collect::<String>()
    );
    for &iat in &[10.0, 15.0, 20.0, 25.0] {
        for &size in &[10_000.0, 20_000.0, 30_000.0, 40_000.0] {
            let trace = generate_micro(
                &MicroConfig {
                    read_iat_mean_us: iat,
                    write_iat_mean_us: iat,
                    read_size_mean: size,
                    write_size_mean: size,
                    read_count: 2_000,
                    write_count: 2_000,
                    ..MicroConfig::default()
                },
                7,
            );
            let pts = weight_sweep(&ssd, &trace, &weights);
            let cells: String = pts
                .iter()
                .map(|p| format!(" {:>5.2}/{:<5.2}  ", p.read_gbps, p.write_gbps))
                .collect();
            println!("{:>8.0} {:>8.0} | {}", iat, size / 1000.0, cells);
        }
    }
    println!("\nHeavy cells (short IAT, large sizes): read falls / write rises with w.");
    println!("Light cells: the weighted round-robin fades out — the paper's Sec. III-B.");
}
