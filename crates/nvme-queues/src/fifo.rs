//! The default NVMe queuing mechanism (paper Fig. 4-a): a single FIFO
//! submission queue, fetched in order while the device queue depth
//! allows.

use crate::QueueDiscipline;
use std::collections::VecDeque;
use workload::{IoType, Request};

/// Plain FIFO submission queue with a shared queue-depth budget.
#[derive(Debug)]
pub struct FifoQueues {
    queue: VecDeque<Request>,
    qd: usize,
    outstanding: usize,
}

impl FifoQueues {
    /// Create with the device queue depth.
    ///
    /// # Panics
    /// Panics if `qd == 0`.
    pub fn new(qd: usize) -> Self {
        assert!(qd > 0, "queue depth must be positive");
        FifoQueues {
            queue: VecDeque::new(),
            qd,
            outstanding: 0,
        }
    }
}

impl QueueDiscipline for FifoQueues {
    fn enqueue(&mut self, cmd: Request) {
        self.queue.push_back(cmd);
    }

    fn fetch_gated(&mut self, read_allowed: bool) -> Option<Request> {
        if self.outstanding >= self.qd {
            return None;
        }
        // Head-of-line blocking: a gated read at the head stalls the
        // whole queue, writes included.
        if !read_allowed && self.queue.front().is_some_and(|r| r.op.is_read()) {
            return None;
        }
        let cmd = self.queue.pop_front()?;
        self.outstanding += 1;
        Some(cmd)
    }

    fn on_complete(&mut self, _op: IoType) {
        debug_assert!(self.outstanding > 0, "completion without outstanding");
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn queued_of(&self, op: IoType) -> usize {
        self.queue.iter().filter(|r| r.op == op).count()
    }

    fn outstanding(&self) -> usize {
        self.outstanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::SimTime;

    fn req(id: u64, op: IoType) -> Request {
        Request {
            id,
            op,
            lba: id * 10,
            size: 4096,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = FifoQueues::new(4);
        for i in 0..4 {
            q.enqueue(req(i, IoType::Read));
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.fetch().map(|r| r.id)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn qd_limits_outstanding() {
        let mut q = FifoQueues::new(2);
        for i in 0..5 {
            q.enqueue(req(i, IoType::Write));
        }
        assert!(q.fetch().is_some());
        assert!(q.fetch().is_some());
        assert!(q.fetch().is_none(), "QD=2 exhausted");
        assert_eq!(q.outstanding(), 2);
        q.on_complete(IoType::Write);
        assert!(q.fetch().is_some());
        assert_eq!(q.queued(), 2);
    }

    #[test]
    fn queued_of_counts_classes() {
        let mut q = FifoQueues::new(8);
        q.enqueue(req(0, IoType::Read));
        q.enqueue(req(1, IoType::Write));
        q.enqueue(req(2, IoType::Read));
        assert_eq!(q.queued_of(IoType::Read), 2);
        assert_eq!(q.queued_of(IoType::Write), 1);
        assert!(!q.is_idle());
    }

    #[test]
    fn weight_ratio_is_fixed() {
        let mut q = FifoQueues::new(1);
        assert_eq!(q.weight_ratio(), 1);
        q.set_weight_ratio(9); // no-op
        assert_eq!(q.weight_ratio(), 1);
    }

    #[test]
    #[should_panic(expected = "queue depth must be positive")]
    fn zero_qd_rejected() {
        let _ = FifoQueues::new(0);
    }
}
