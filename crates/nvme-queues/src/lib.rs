//! NVMe driver submission-queue disciplines.
//!
//! Two disciplines are provided behind the [`QueueDiscipline`] trait:
//!
//! * [`fifo::FifoQueues`] — the default NVMe queuing of Fig. 4-a: one
//!   FIFO submission queue, commands fetched in order up to the device
//!   queue depth. This is what the DCQCN-only baseline runs.
//! * [`ssq::SsqQueues`] — the paper's separate submission queue
//!   (Fig. 4-b, Sec. III-A): reads and writes land in RSQ/WSQ, a
//!   weighted round-robin with per-queue tokens arbitrates fetches, the
//!   device queue depth is partitioned between the classes in proportion
//!   to the weights, and a consistency checker routes same-LBA dependent
//!   requests into their predecessor's queue so I/O order is preserved.
//!
//! The discipline is pure queueing logic — no simulated time. The
//! storage-node loop decides *when* to fetch (whenever the SSD has
//! capacity and the transmit queue has room).
//!
//! # Example
//!
//! ```
//! use nvme_queues::{QueueDiscipline, SsqQueues};
//! use workload::{IoType, Request};
//! use sim_engine::SimTime;
//!
//! let mut ssq = SsqQueues::new(64, 3); // write:read weight 3
//! for i in 0..8 {
//!     ssq.enqueue(Request { id: i, op: IoType::Read, lba: i * 100,
//!         size: 4096, arrival: SimTime::ZERO });
//!     ssq.enqueue(Request { id: 100 + i, op: IoType::Write,
//!         lba: 10_000 + i * 100, size: 4096, arrival: SimTime::ZERO });
//! }
//! // Under backlog, fetches favor writes 3:1.
//! let first = ssq.fetch().unwrap();
//! assert_eq!(first.op, IoType::Write);
//! ```

pub mod fifo;
pub mod ssq;

pub use fifo::FifoQueues;
pub use ssq::SsqQueues;

use workload::{IoType, Request};

/// One arbitration outcome (telemetry): which class the discipline
/// fetched and whether the fetch charged a weighted-round-robin token.
///
/// Disciplines are pure queueing logic with no simulated clock, so the
/// decision carries no timestamp; the owner of the event loop stamps
/// drained decisions with its own `SimTime` when forwarding them to a
/// trace sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchDecision {
    /// I/O class of the fetched command.
    pub op: IoType,
    /// `true` when the fetch spent a token of its class; `false` on the
    /// fade-out path (preferred queue empty, served free of charge).
    pub charged: bool,
    /// Write:read weight ratio in force when the decision was made.
    pub weight: u32,
}

/// A submission-queue discipline: accepts commands from the NVMe-oF
/// target driver, hands them to the device, and tracks the in-flight
/// budget (device queue depth).
pub trait QueueDiscipline: Send {
    /// Accept a command from above.
    fn enqueue(&mut self, cmd: Request);

    /// Fetch the next command for the device, if the discipline allows
    /// one right now. Increments the outstanding count for its class.
    fn fetch(&mut self) -> Option<Request> {
        self.fetch_gated(true)
    }

    /// Fetch with a read gate: when `read_allowed` is false (the
    /// transmit queue toward the network is full, so retrieved read data
    /// has nowhere to go), read commands must not be fetched.
    ///
    /// This is where the two disciplines diverge under congestion: the
    /// FIFO queue suffers head-of-line blocking (a read at the head
    /// stalls every write behind it — paper Sec. II-B), while the SSQ
    /// keeps serving WSQ (paper Sec. III-A).
    fn fetch_gated(&mut self, read_allowed: bool) -> Option<Request>;

    /// Notify that a previously fetched command of class `op` completed.
    fn on_complete(&mut self, op: IoType);

    /// Commands waiting in the queue(s).
    fn queued(&self) -> usize;

    /// Waiting commands of one class.
    fn queued_of(&self, op: IoType) -> usize;

    /// Commands currently outstanding at the device.
    fn outstanding(&self) -> usize;

    /// Update the write:read weight ratio (no-op for the FIFO baseline).
    fn set_weight_ratio(&mut self, _w: u32) {}

    /// Current write:read weight ratio (1 for the FIFO baseline).
    fn weight_ratio(&self) -> u32 {
        1
    }

    /// True when nothing is queued or outstanding.
    fn is_idle(&self) -> bool {
        self.queued() == 0 && self.outstanding() == 0
    }

    /// Enqueue with block-layer-style merging where the discipline
    /// supports it; returns `true` when the request was absorbed into an
    /// existing command (default: plain enqueue, never merges).
    fn enqueue_or_merge(&mut self, cmd: Request) -> bool {
        self.enqueue(cmd);
        false
    }

    /// Configure the merge cap (no-op where unsupported).
    fn set_merge_cap(&mut self, _cap: Option<u64>) {}

    /// Turn fetch-decision telemetry on or off (default: discipline
    /// does not support telemetry; no-op).
    fn set_telemetry(&mut self, _on: bool) {}

    /// Drain accumulated [`FetchDecision`]s in decision order (default:
    /// none). Cheap when telemetry is off.
    fn drain_decisions(&mut self) -> Vec<FetchDecision> {
        Vec::new()
    }
}
