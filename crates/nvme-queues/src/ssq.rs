//! The separate submission queue (SSQ) mechanism — paper Sec. III-A,
//! Fig. 4-b.
//!
//! * Reads land in RSQ, writes in WSQ (unless the consistency checker
//!   reroutes a dependent request — see below).
//! * A weighted round-robin arbitrates fetches: RSQ holds `1` token and
//!   WSQ holds `w` tokens per round; fetching a command takes one token
//!   of the command's own I/O class; when no tokens remain the round
//!   resets. If the token-preferred queue is empty, the arbiter serves
//!   the other queue *without* charging tokens — which is exactly why the
//!   weight knob fades out under light load (paper Sec. III-B, Table IV).
//! * The device queue depth is partitioned between the classes in
//!   proportion to the weights; a class may borrow the whole budget when
//!   the other class is completely idle.
//! * Consistency checking: a request overlapping the LBA range of a
//!   *waiting* request is placed in that request's queue, so dependent
//!   I/O never reorders; its fetch still charges a token of its own I/O
//!   class, preserving the demanded weight ratio.

use crate::{FetchDecision, QueueDiscipline};
use std::collections::{HashMap, VecDeque};
use workload::{IoType, Request};

/// Which physical queue a command waits in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Sq {
    Rsq,
    Wsq,
}

/// The SSQ discipline.
#[derive(Debug)]
pub struct SsqQueues {
    rsq: VecDeque<Request>,
    wsq: VecDeque<Request>,
    qd: usize,
    /// Write:read weight ratio (`w >= 1`; read weight is fixed at 1).
    weight_w: u32,
    tokens_r: u32,
    tokens_w: u32,
    outstanding_r: usize,
    outstanding_w: usize,
    /// sector -> id of the most recent *waiting* command touching it.
    sector_owner: HashMap<u64, u64>,
    /// id -> queue, for commands still waiting.
    waiting: HashMap<u64, Sq>,
    /// Fetch counters per class (for tests/metrics).
    fetched_r: u64,
    fetched_w: u64,
    /// Fetches served without charging a token (fade-out path).
    free_fetches: u64,
    /// Consistency checking on/off (ablation knob; on by default).
    consistency: bool,
    /// Block-layer-style merging of contiguous same-class requests into
    /// the queue tail, capped at this many bytes (None = off).
    merge_cap: Option<u64>,
    /// Requests absorbed by merging.
    merges: u64,
    /// Telemetry: when on, every fetch appends a [`FetchDecision`].
    telemetry: bool,
    decisions: Vec<FetchDecision>,
}

impl SsqQueues {
    /// Create with the device queue depth and an initial weight ratio.
    ///
    /// # Panics
    /// Panics if `qd == 0` or `w == 0`.
    pub fn new(qd: usize, w: u32) -> Self {
        assert!(qd > 0, "queue depth must be positive");
        assert!(w >= 1, "weight ratio must be at least 1");
        SsqQueues {
            rsq: VecDeque::new(),
            wsq: VecDeque::new(),
            qd,
            weight_w: w,
            tokens_r: 1,
            tokens_w: w,
            outstanding_r: 0,
            outstanding_w: 0,
            sector_owner: HashMap::new(),
            waiting: HashMap::new(),
            fetched_r: 0,
            fetched_w: 0,
            free_fetches: 0,
            consistency: true,
            merge_cap: None,
            merges: 0,
            telemetry: false,
            decisions: Vec::new(),
        }
    }

    /// Enable block-layer-style request merging (the paper's Sec. V
    /// future-work direction: "extend our design as an I/O scheduler in
    /// the block layer on Targets"): a request contiguous with the tail
    /// of its class queue coalesces into it, up to `cap` bytes.
    pub fn set_merge_cap(&mut self, cap: Option<u64>) {
        self.merge_cap = cap;
    }

    /// Requests absorbed into earlier commands by merging.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Enqueue with merging: returns `true` when the request was
    /// absorbed into the tail of its class queue (no separate command —
    /// and thus no separate completion — will exist for it).
    pub fn enqueue_or_merge(&mut self, cmd: Request) -> bool {
        if let Some(cap) = self.merge_cap {
            // Merging must not bypass the consistency checker: if any of
            // the request's sectors is owned by a waiting request other
            // than the merge target, fall through to the rerouting
            // enqueue path.
            let tail_id = match cmd.op {
                IoType::Read => self.rsq.back().map(|t| t.id),
                IoType::Write => self.wsq.back().map(|t| t.id),
            };
            let depends_elsewhere = (cmd.lba..cmd.lba_end()).any(|sector| {
                self.sector_owner.get(&sector).is_some_and(|owner| {
                    Some(*owner) != tail_id && self.waiting.contains_key(owner)
                })
            });
            let queue = match cmd.op {
                IoType::Read => &mut self.rsq,
                IoType::Write => &mut self.wsq,
            };
            if let (Some(tail), false) = (queue.back_mut(), depends_elsewhere) {
                if tail.op == cmd.op && tail.lba_end() == cmd.lba && tail.size + cmd.size <= cap {
                    tail.size += cmd.size;
                    let tail_id = tail.id;
                    let (lo, hi) = (cmd.lba, cmd.lba_end());
                    for sector in lo..hi {
                        self.sector_owner.insert(sector, tail_id);
                    }
                    self.merges += 1;
                    return true;
                }
            }
        }
        self.enqueue(cmd);
        false
    }

    /// Enable/disable the same-LBA consistency checker (ablation knob —
    /// disabling it breaks ordering of dependent I/O; see DESIGN.md).
    pub fn set_consistency_checking(&mut self, on: bool) {
        self.consistency = on;
    }

    /// Whether consistency checking is active.
    pub fn consistency_checking(&self) -> bool {
        self.consistency
    }

    /// Per-class queue-depth caps `(read_cap, write_cap)` derived from
    /// the weight ratio: writes get `w/(w+1)` of QD, reads the rest, each
    /// at least 1.
    pub fn qd_partition(&self) -> (usize, usize) {
        if self.qd == 1 {
            // A QD-1 device cannot be partitioned; both classes share
            // the single slot (the total-outstanding check still caps
            // concurrency at 1).
            return (1, 1);
        }
        let w = self.weight_w as f64;
        let write_cap = ((self.qd as f64) * w / (w + 1.0)).round() as usize;
        let write_cap = write_cap.clamp(1, self.qd - 1);
        (self.qd - write_cap, write_cap)
    }

    /// Fetches per class so far `(reads, writes)`.
    pub fn fetch_counts(&self) -> (u64, u64) {
        (self.fetched_r, self.fetched_w)
    }

    /// Number of fetches served without token accounting because the
    /// preferred queue was empty.
    pub fn free_fetches(&self) -> u64 {
        self.free_fetches
    }

    fn queue_of(&self, sq: Sq) -> &VecDeque<Request> {
        match sq {
            Sq::Rsq => &self.rsq,
            Sq::Wsq => &self.wsq,
        }
    }

    /// Would a fetch from `sq` respect the per-class QD cap and the
    /// read gate?
    ///
    /// The gate only applies to RSQ: a consistency-rerouted read at the
    /// head of WSQ is fetched even when reads are gated — otherwise one
    /// dependent read would head-of-line-block the whole write queue,
    /// recreating under SSQ exactly the stall the mechanism exists to
    /// avoid. Rerouted reads are rare (same-LBA dependencies), so the
    /// backpressure goal is unaffected.
    fn head_eligible(&self, sq: Sq, read_allowed: bool) -> bool {
        let Some(head) = self.queue_of(sq).front() else {
            return false;
        };
        if head.op.is_read() && !read_allowed && sq == Sq::Rsq {
            return false;
        }
        let (r_cap, w_cap) = self.qd_partition();
        let total = self.outstanding_r + self.outstanding_w;
        if total >= self.qd {
            return false;
        }
        match head.op {
            IoType::Read => {
                self.outstanding_r < r_cap
                    // Borrow the idle write budget when writes are
                    // completely absent.
                    || (self.wsq.is_empty() && self.outstanding_w == 0)
            }
            IoType::Write => {
                self.outstanding_w < w_cap || (self.rsq.is_empty() && self.outstanding_r == 0)
            }
        }
    }

    fn pop(&mut self, sq: Sq, charge_token: bool) -> Request {
        let cmd = match sq {
            Sq::Rsq => self.rsq.pop_front(),
            Sq::Wsq => self.wsq.pop_front(),
        }
        .expect("pop from checked nonempty queue");
        // Charge a token of the command's own class (paper: "removes one
        // token from the corresponding SQ that holds the same I/O type").
        if charge_token {
            match cmd.op {
                IoType::Read => self.tokens_r = self.tokens_r.saturating_sub(1),
                IoType::Write => self.tokens_w = self.tokens_w.saturating_sub(1),
            }
        } else {
            self.free_fetches += 1;
        }
        if self.telemetry {
            self.decisions.push(FetchDecision {
                op: cmd.op,
                charged: charge_token,
                weight: self.weight_w,
            });
        }
        match cmd.op {
            IoType::Read => {
                self.outstanding_r += 1;
                self.fetched_r += 1;
            }
            IoType::Write => {
                self.outstanding_w += 1;
                self.fetched_w += 1;
            }
        }
        // Drop the consistency bookkeeping for this command.
        self.waiting.remove(&cmd.id);
        let end = cmd.lba_end();
        for sector in cmd.lba..end {
            if self.sector_owner.get(&sector) == Some(&cmd.id) {
                self.sector_owner.remove(&sector);
            }
        }
        cmd
    }
}

impl QueueDiscipline for SsqQueues {
    fn enqueue(&mut self, cmd: Request) {
        // Consistency checking: if any sector of this request is touched
        // by a still-waiting request, follow it into its queue.
        let mut target = match cmd.op {
            IoType::Read => Sq::Rsq,
            IoType::Write => Sq::Wsq,
        };
        if self.consistency {
            // Follow the most recent waiting request any of our sectors
            // overlaps (highest id = latest submission). When a request
            // overlaps waiting requests in BOTH queues, a single queue
            // cannot serialize against both — a known limitation of the
            // paper's same-queue mechanism; following the latest
            // dependency matches its R_{t-tau} formulation.
            let mut latest: Option<(u64, Sq)> = None;
            for sector in cmd.lba..cmd.lba_end() {
                if let Some(owner) = self.sector_owner.get(&sector) {
                    if let Some(&sq) = self.waiting.get(owner) {
                        if latest.is_none_or(|(id, _)| *owner > id) {
                            latest = Some((*owner, sq));
                        }
                    }
                }
            }
            if let Some((_, sq)) = latest {
                target = sq;
            }
            for sector in cmd.lba..cmd.lba_end() {
                self.sector_owner.insert(sector, cmd.id);
            }
        }
        self.waiting.insert(cmd.id, target);
        match target {
            Sq::Rsq => self.rsq.push_back(cmd),
            Sq::Wsq => self.wsq.push_back(cmd),
        }
    }

    fn fetch_gated(&mut self, read_allowed: bool) -> Option<Request> {
        // Weighted round-robin with the empty-queue fade-out rule.
        let r_ok = self.head_eligible(Sq::Rsq, read_allowed);
        let w_ok = self.head_eligible(Sq::Wsq, read_allowed);
        if !r_ok && !w_ok {
            return None;
        }
        // Reset the round when all tokens are spent.
        if self.tokens_r == 0 && self.tokens_w == 0 {
            self.tokens_r = 1;
            self.tokens_w = self.weight_w;
        }
        // Prefer the write queue while it has tokens (it holds the larger
        // share), then the read queue; a queue that is empty forfeits its
        // turn without token manipulation.
        if self.tokens_w > 0 {
            if w_ok {
                return Some(self.pop(Sq::Wsq, true));
            }
            if r_ok && self.wsq.is_empty() {
                return Some(self.pop(Sq::Rsq, false));
            }
        }
        if self.tokens_r > 0 {
            if r_ok {
                return Some(self.pop(Sq::Rsq, true));
            }
            if w_ok && self.rsq.is_empty() {
                return Some(self.pop(Sq::Wsq, false));
            }
        }
        // Tokens for the eligible queue are spent; start a new round.
        self.tokens_r = 1;
        self.tokens_w = self.weight_w;
        if self.tokens_w > 0 && w_ok {
            return Some(self.pop(Sq::Wsq, true));
        }
        if r_ok {
            return Some(self.pop(Sq::Rsq, true));
        }
        None
    }

    fn on_complete(&mut self, op: IoType) {
        match op {
            IoType::Read => {
                debug_assert!(self.outstanding_r > 0);
                self.outstanding_r = self.outstanding_r.saturating_sub(1);
            }
            IoType::Write => {
                debug_assert!(self.outstanding_w > 0);
                self.outstanding_w = self.outstanding_w.saturating_sub(1);
            }
        }
    }

    fn queued(&self) -> usize {
        self.rsq.len() + self.wsq.len()
    }

    fn queued_of(&self, op: IoType) -> usize {
        // Queues can hold foreign-class commands via consistency
        // rerouting, so count by command class, not by queue.
        self.rsq
            .iter()
            .chain(self.wsq.iter())
            .filter(|r| r.op == op)
            .count()
    }

    fn outstanding(&self) -> usize {
        self.outstanding_r + self.outstanding_w
    }

    fn set_weight_ratio(&mut self, w: u32) {
        assert!(w >= 1, "weight ratio must be at least 1");
        self.weight_w = w;
        // Start a fresh round under the new weights.
        self.tokens_r = 1;
        self.tokens_w = w;
    }

    fn weight_ratio(&self) -> u32 {
        self.weight_w
    }

    fn enqueue_or_merge(&mut self, cmd: Request) -> bool {
        SsqQueues::enqueue_or_merge(self, cmd)
    }

    fn set_merge_cap(&mut self, cap: Option<u64>) {
        SsqQueues::set_merge_cap(self, cap)
    }

    fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
        if !on {
            self.decisions.clear();
        }
    }

    fn drain_decisions(&mut self) -> Vec<FetchDecision> {
        std::mem::take(&mut self.decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::SimTime;

    fn req(id: u64, op: IoType, lba: u64) -> Request {
        Request {
            id,
            op,
            lba,
            size: 4096,
            arrival: SimTime::ZERO,
        }
    }

    /// Fill both queues, fetch `n` commands with immediate completion
    /// (so QD never binds), return the class sequence.
    fn fetch_sequence(q: &mut SsqQueues, n: usize) -> Vec<IoType> {
        let mut out = Vec::new();
        for _ in 0..n {
            let cmd = q.fetch().expect("queues are backlogged");
            out.push(cmd.op);
            q.on_complete(cmd.op);
        }
        out
    }

    #[test]
    fn wrr_ratio_under_backlog() {
        let mut q = SsqQueues::new(64, 3);
        for i in 0..400 {
            q.enqueue(req(i, IoType::Read, i * 10));
            q.enqueue(req(1000 + i, IoType::Write, 100_000 + i * 10));
        }
        let seq = fetch_sequence(&mut q, 200);
        let writes = seq.iter().filter(|o| !o.is_read()).count();
        let reads = seq.len() - writes;
        let ratio = writes as f64 / reads as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio={ratio}");
    }

    #[test]
    fn w1_is_fair() {
        let mut q = SsqQueues::new(64, 1);
        for i in 0..200 {
            q.enqueue(req(i, IoType::Read, i * 10));
            q.enqueue(req(1000 + i, IoType::Write, 100_000 + i * 10));
        }
        let seq = fetch_sequence(&mut q, 100);
        let writes = seq.iter().filter(|o| !o.is_read()).count();
        assert_eq!(writes, 50);
    }

    #[test]
    fn empty_wsq_fades_out() {
        // Only reads present: weight 5 must not slow them down, and no
        // tokens are charged for the free fetches.
        let mut q = SsqQueues::new(32, 5);
        for i in 0..50 {
            q.enqueue(req(i, IoType::Read, i * 10));
        }
        let seq = fetch_sequence(&mut q, 50);
        assert!(seq.iter().all(|o| o.is_read()));
        assert!(q.free_fetches() > 0, "fade-out path never used");
    }

    #[test]
    fn qd_partition_follows_weights() {
        let q = SsqQueues::new(128, 3);
        let (r, w) = q.qd_partition();
        assert_eq!(r + w, 128);
        assert_eq!(w, 96); // 128 * 3/4
        let q1 = SsqQueues::new(128, 1);
        assert_eq!(q1.qd_partition(), (64, 64));
        // Degenerate: QD 2 keeps both classes at >= 1.
        let q2 = SsqQueues::new(2, 100);
        assert_eq!(q2.qd_partition(), (1, 1));
    }

    #[test]
    fn per_class_qd_caps_parallelism() {
        // QD 4, w=3: read cap 1, write cap 3.
        let mut q = SsqQueues::new(4, 3);
        for i in 0..10 {
            q.enqueue(req(i, IoType::Read, i * 10));
            q.enqueue(req(100 + i, IoType::Write, 10_000 + i * 10));
        }
        let mut reads = 0;
        let mut writes = 0;
        while let Some(c) = q.fetch() {
            if c.op.is_read() {
                reads += 1;
            } else {
                writes += 1;
            }
        }
        assert_eq!(q.outstanding(), 4);
        assert_eq!(reads, 1, "read parallelism capped at its partition");
        assert_eq!(writes, 3);
    }

    #[test]
    fn idle_class_budget_is_borrowable() {
        let mut q = SsqQueues::new(8, 1);
        for i in 0..8 {
            q.enqueue(req(i, IoType::Read, i * 10));
        }
        let mut fetched = 0;
        while q.fetch().is_some() {
            fetched += 1;
        }
        assert_eq!(fetched, 8, "sole class should use the whole QD");
    }

    #[test]
    fn consistency_same_lba_same_queue_in_order() {
        let mut q = SsqQueues::new(16, 4);
        // Write to LBA 100, then read of LBA 100: the read must follow
        // the write into WSQ and be fetched after it.
        q.enqueue(req(1, IoType::Write, 100));
        q.enqueue(req(2, IoType::Read, 100));
        // An independent read goes to RSQ.
        q.enqueue(req(3, IoType::Read, 500));
        let mut order = Vec::new();
        while let Some(c) = q.fetch() {
            order.push(c.id);
            q.on_complete(c.op);
        }
        let pos = |id: u64| order.iter().position(|&x| x == id).unwrap();
        assert!(
            pos(1) < pos(2),
            "write must precede dependent read: {order:?}"
        );
    }

    #[test]
    fn consistency_chain_follows_first_queue() {
        let mut q = SsqQueues::new(16, 2);
        // R(lba 7) waiting in RSQ, then W(lba 7) must go to RSQ too,
        // then another R(lba 7) follows them.
        q.enqueue(req(1, IoType::Read, 7));
        q.enqueue(req(2, IoType::Write, 7));
        q.enqueue(req(3, IoType::Read, 7));
        assert_eq!(q.rsq.len(), 3);
        assert_eq!(q.wsq.len(), 0);
        let mut order = Vec::new();
        while let Some(c) = q.fetch() {
            order.push(c.id);
            q.on_complete(c.op);
        }
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn consistency_overlapping_ranges() {
        let mut q = SsqQueues::new(16, 2);
        // 8 KiB write spans sectors 10..12; read of sector 11 depends.
        let mut w = req(1, IoType::Write, 10);
        w.size = 8192;
        q.enqueue(w);
        q.enqueue(req(2, IoType::Read, 11));
        assert_eq!(q.wsq.len(), 2, "dependent read routed to WSQ");
    }

    #[test]
    fn no_dependency_after_fetch() {
        let mut q = SsqQueues::new(16, 2);
        q.enqueue(req(1, IoType::Write, 100));
        let c = q.fetch().unwrap();
        assert_eq!(c.id, 1);
        // Now the write is outstanding, not waiting: a new read on the
        // same LBA goes to its natural queue (the paper only reroutes
        // when the predecessor is "waiting in SQ").
        q.enqueue(req(2, IoType::Read, 100));
        assert_eq!(q.rsq.len(), 1);
        assert_eq!(q.wsq.len(), 0);
    }

    #[test]
    fn set_weight_ratio_takes_effect() {
        let mut q = SsqQueues::new(64, 1);
        for i in 0..400 {
            q.enqueue(req(i, IoType::Read, i * 10));
            q.enqueue(req(1000 + i, IoType::Write, 100_000 + i * 10));
        }
        let _ = fetch_sequence(&mut q, 50);
        q.set_weight_ratio(4);
        assert_eq!(q.weight_ratio(), 4);
        let seq = fetch_sequence(&mut q, 250);
        let writes = seq.iter().filter(|o| !o.is_read()).count();
        let ratio = writes as f64 / (seq.len() - writes) as f64;
        assert!((ratio - 4.0).abs() < 0.3, "ratio={ratio}");
    }

    #[test]
    #[should_panic(expected = "weight ratio must be at least 1")]
    fn zero_weight_rejected() {
        let _ = SsqQueues::new(8, 0);
    }

    #[test]
    fn telemetry_records_fetch_decisions() {
        let mut q = SsqQueues::new(64, 2);
        for i in 0..20 {
            q.enqueue(req(i, IoType::Read, i * 10));
            q.enqueue(req(1000 + i, IoType::Write, 100_000 + i * 10));
        }
        // Off by default: fetches leave no decisions behind.
        let _ = fetch_sequence(&mut q, 6);
        assert!(q.drain_decisions().is_empty());
        q.set_telemetry(true);
        let seq = fetch_sequence(&mut q, 9);
        let decisions = q.drain_decisions();
        assert_eq!(decisions.len(), 9);
        // Decision order matches fetch order, and all are token-charged
        // under full two-class backlog.
        assert_eq!(decisions.iter().map(|d| d.op).collect::<Vec<_>>(), seq);
        assert!(decisions.iter().all(|d| d.charged && d.weight == 2));
        assert!(q.drain_decisions().is_empty(), "drain empties the buffer");
    }

    proptest::proptest! {
        /// Same-LBA pairs are never reordered by SSQ, for arbitrary
        /// interleavings and weights.
        #[test]
        fn prop_same_lba_order(
            ops in proptest::collection::vec((0u8..2, 0u64..4), 2..60),
            w in 1u32..8,
        ) {
            let mut q = SsqQueues::new(16, w);
            for (i, &(op, lba)) in ops.iter().enumerate() {
                let op = if op == 0 { IoType::Read } else { IoType::Write };
                q.enqueue(req(i as u64, op, lba));
            }
            let mut fetched: Vec<Request> = Vec::new();
            while let Some(c) = q.fetch() {
                fetched.push(c);
                q.on_complete(c.op);
            }
            proptest::prop_assert_eq!(fetched.len(), ops.len());
            // For every pair touching the same lba, enqueue order is
            // preserved in fetch order.
            let pos: std::collections::HashMap<u64, usize> = fetched
                .iter()
                .enumerate()
                .map(|(p, r)| (r.id, p))
                .collect();
            for i in 0..ops.len() {
                for j in i + 1..ops.len() {
                    if ops[i].1 == ops[j].1 {
                        proptest::prop_assert!(
                            pos[&(i as u64)] < pos[&(j as u64)],
                            "reordered same-lba pair {i} {j}"
                        );
                    }
                }
            }
        }

        /// Under full backlog, the fetched write:read ratio converges to
        /// the configured weight ratio.
        #[test]
        fn prop_wrr_ratio(w in 1u32..8) {
            let mut q = SsqQueues::new(64, w);
            for i in 0..2000u64 {
                q.enqueue(req(i, IoType::Read, 10_000_000 + i * 10));
                q.enqueue(req(100_000 + i, IoType::Write, 20_000_000 + i * 10));
            }
            let mut reads = 0u32;
            let mut writes = 0u32;
            for _ in 0..1200 {
                let c = q.fetch().expect("backlogged");
                if c.op.is_read() { reads += 1 } else { writes += 1 }
                q.on_complete(c.op);
            }
            let ratio = writes as f64 / reads as f64;
            proptest::prop_assert!(
                (ratio - w as f64).abs() / (w as f64) < 0.15,
                "ratio {ratio} vs w {w}"
            );
        }
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use sim_engine::SimTime;

    fn req(id: u64, op: IoType, lba: u64) -> Request {
        Request {
            id,
            op,
            lba,
            size: 4096,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn disabling_consistency_allows_reordering() {
        let mut q = SsqQueues::new(16, 8);
        q.set_consistency_checking(false);
        assert!(!q.consistency_checking());
        // Same-LBA write then read: without the checker the read lands
        // in RSQ and, at write weight 8 with reads holding the single
        // read token... the point is simply that they sit in different
        // queues now.
        q.enqueue(req(1, IoType::Write, 100));
        q.enqueue(req(2, IoType::Read, 100));
        assert_eq!(q.queued_of(IoType::Read), 1);
        // The read is in RSQ (not rerouted).
        assert_eq!(q.rsq.len(), 1);
        assert_eq!(q.wsq.len(), 1);
    }

    #[test]
    fn consistency_on_by_default() {
        let q = SsqQueues::new(16, 2);
        assert!(q.consistency_checking());
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;
    use sim_engine::SimTime;

    fn req(id: u64, op: IoType, lba: u64, size: u64) -> Request {
        Request {
            id,
            op,
            lba,
            size,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn contiguous_same_class_merges() {
        let mut q = SsqQueues::new(16, 1);
        q.set_merge_cap(Some(128 * 1024));
        assert!(!q.enqueue_or_merge(req(1, IoType::Read, 0, 8192))); // sectors 0..2
        assert!(q.enqueue_or_merge(req(2, IoType::Read, 2, 8192))); // contiguous
        assert_eq!(q.merges(), 1);
        assert_eq!(q.queued(), 1, "one merged command");
        let c = q.fetch().expect("fetchable");
        assert_eq!(c.id, 1);
        assert_eq!(c.size, 16384);
    }

    #[test]
    fn gaps_classes_and_caps_block_merging() {
        let mut q = SsqQueues::new(16, 1);
        q.set_merge_cap(Some(12_000));
        assert!(!q.enqueue_or_merge(req(1, IoType::Read, 0, 8192)));
        // Non-contiguous.
        assert!(!q.enqueue_or_merge(req(2, IoType::Read, 10, 4096)));
        // Different class (contiguous with nothing in WSQ).
        assert!(!q.enqueue_or_merge(req(3, IoType::Write, 2, 4096)));
        // Would exceed the cap (tail is request 2: 4096 + 12288 > cap).
        assert!(!q.enqueue_or_merge(req(4, IoType::Read, 11, 12_288)));
        assert_eq!(q.merges(), 0);
        assert_eq!(q.queued(), 4);
    }

    #[test]
    fn merged_range_keeps_consistency() {
        let mut q = SsqQueues::new(16, 4);
        q.set_merge_cap(Some(128 * 1024));
        assert!(!q.enqueue_or_merge(req(1, IoType::Write, 0, 4096))); // sector 0
        assert!(q.enqueue_or_merge(req(2, IoType::Write, 1, 4096))); // merged, sectors 0..2
                                                                     // A read of sector 1 must follow the merged write (same queue).
        assert!(!q.enqueue_or_merge(req(3, IoType::Read, 1, 4096)));
        assert_eq!(q.wsq.len(), 2, "read rerouted behind the merged write");
        let first = q.fetch().unwrap();
        assert_eq!(first.id, 1);
        assert_eq!(first.size, 8192);
        q.on_complete(first.op);
        let second = q.fetch().unwrap();
        assert_eq!(second.id, 3);
    }

    #[test]
    fn merging_off_by_default() {
        let mut q = SsqQueues::new(16, 1);
        assert!(!q.enqueue_or_merge(req(1, IoType::Read, 0, 4096)));
        assert!(!q.enqueue_or_merge(req(2, IoType::Read, 1, 4096)));
        assert_eq!(q.merges(), 0);
        assert_eq!(q.queued(), 2);
    }
}

#[cfg(test)]
mod review_regression_tests {
    use super::*;
    use sim_engine::SimTime;

    fn req(id: u64, op: IoType, lba: u64, size: u64) -> Request {
        Request {
            id,
            op,
            lba,
            size,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn qd_one_does_not_panic() {
        let mut q = SsqQueues::new(1, 4);
        q.enqueue(req(1, IoType::Read, 0, 4096));
        q.enqueue(req(2, IoType::Write, 100, 4096));
        let first = q.fetch().expect("one slot available");
        assert!(q.fetch().is_none(), "QD 1 caps outstanding at one");
        q.on_complete(first.op);
        assert!(q.fetch().is_some());
    }

    #[test]
    fn merge_does_not_bypass_consistency() {
        let mut q = SsqQueues::new(16, 2);
        q.set_merge_cap(Some(128 * 1024));
        // R1 waits on sector 2 in RSQ.
        assert!(!q.enqueue_or_merge(req(1, IoType::Read, 2, 4096)));
        // W1 covers sectors 0..2 in WSQ (no overlap).
        assert!(!q.enqueue_or_merge(req(2, IoType::Write, 0, 8192)));
        // W2 on sector 2 is contiguous with W1's tail but depends on R1:
        // it must NOT merge; the consistency checker must reroute it
        // behind R1 instead.
        assert!(!q.enqueue_or_merge(req(3, IoType::Write, 2, 4096)));
        assert_eq!(q.merges(), 0, "dependent write must not merge");
        let mut order = Vec::new();
        while let Some(c) = q.fetch() {
            order.push(c.id);
            q.on_complete(c.op);
        }
        let pos = |id: u64| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(1) < pos(3), "read before dependent write: {order:?}");
    }

    #[test]
    fn multi_sector_overlap_follows_latest_dependency() {
        let mut q = SsqQueues::new(16, 2);
        // W1 owns sector 0 (WSQ); R2 owns sector 1 (RSQ).
        q.enqueue(req(1, IoType::Write, 0, 4096));
        q.enqueue(req(2, IoType::Read, 1, 4096));
        // W3 spans sectors 0..2, overlapping both: follows the LATEST
        // dependency (R2, in RSQ).
        q.enqueue(req(3, IoType::Write, 0, 8192));
        assert_eq!(q.rsq.len(), 2, "w3 follows the most recent overlap");
        let mut order = Vec::new();
        while let Some(c) = q.fetch() {
            order.push(c.id);
            q.on_complete(c.op);
        }
        let pos = |id: u64| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(2) < pos(3), "latest dependency serialized: {order:?}");
    }
}
