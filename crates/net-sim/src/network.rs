//! The packet-level network simulator: host NICs with per-flow DCQCN
//! rate shaping, output-queued switches with ECN marking and PFC
//! pause/resume, store-and-forward links.
//!
//! Caller-driven like the SSD model: [`Network::send`] and
//! [`Network::handle`] return a [`NetStep`] with deliveries, DCQCN rate
//! changes (the hook SRC listens to), received pauses (Fig. 8's metric)
//! and events to schedule.

use crate::dcqcn::{DcqcnParams, NpState, RpState};
use crate::timely::{TimelyParams, TimelyState};
use crate::topology::{NodeId, NodeKind, Topology};
use sim_engine::{
    FaultRng, ProbeBuffer, Rate, SimDuration, SimTime, TokenBucket, TraceRecord, TraceSink,
};
use std::collections::VecDeque;

/// Identifier of a unidirectional RDMA flow (queue pair).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub usize);

/// Packet kinds. PFC pause/resume are modeled as link-level control
/// signals (events), not packets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PacketKind {
    /// RDMA payload.
    Data,
    /// DCQCN congestion notification packet (tiny, unshaped, never
    /// paused — CNPs ride the highest priority class).
    Cnp,
    /// TIMELY acknowledgment echoing the data packet's NIC timestamp
    /// (same priority treatment as CNPs).
    Ack,
}

#[derive(Clone, Copy, Debug)]
struct Packet {
    flow: FlowId,
    dst: NodeId,
    size: u64,
    kind: PacketKind,
    ecn: bool,
    tag: u64,
    last_of_msg: bool,
    /// NIC egress timestamp (stamped when serialization starts at the
    /// source host); echoed back by TIMELY acks.
    sent_at: SimTime,
}

/// Payload bytes arriving at a flow's destination host.
#[derive(Clone, Copy, Debug)]
pub struct Delivery {
    /// The flow the bytes belong to.
    pub flow: FlowId,
    /// Application tag passed to [`Network::send`].
    pub tag: u64,
    /// Payload bytes in this packet.
    pub bytes: u64,
    /// True on the final packet of the tagged message.
    pub last: bool,
}

/// `Delivery` is copied into every network step's delivery list on the
/// hot path; keep it within half a cache line.
const _: () = assert!(std::mem::size_of::<Delivery>() <= 32);

/// Events the network schedules for itself.
#[derive(Clone, Copy, Debug)]
pub enum NetEvent {
    /// A link finished serializing a packet at its `from` side.
    TxDone {
        /// Directed link index.
        link: usize,
    },
    /// The head in-flight packet of a link reached its `to` side.
    Arrive {
        /// Directed link index.
        link: usize,
    },
    /// Re-check a host NIC whose flows were waiting for shaper tokens.
    NicWakeup {
        /// Host node index.
        host: usize,
    },
    /// DCQCN alpha-decay timer.
    AlphaTimer {
        /// Flow index.
        flow: usize,
        /// Generation stamp (stale timers are ignored).
        gen: u64,
    },
    /// DCQCN rate-increase timer.
    RateTimer {
        /// Flow index.
        flow: usize,
        /// Generation stamp.
        gen: u64,
    },
    /// PFC pause (`paused = true`) or resume arriving at the transmitter
    /// of `link`.
    PauseSet {
        /// Directed link whose transmitter is being paused/resumed.
        link: usize,
        /// New pause state.
        paused: bool,
    },
    /// Flush `link`'s deferred-arrival train (packet-burst coalescing):
    /// deliver every deferred packet whose arrival time has been
    /// reached, expanding the per-packet timestamps arithmetically from
    /// the port's ledger instead of one `Arrive` event each.
    BurstArrive {
        /// Directed link index.
        link: usize,
    },
}

/// Output of one network step.
#[derive(Debug, Default)]
pub struct NetStep {
    /// Payload deliveries at destination hosts.
    pub deliveries: Vec<Delivery>,
    /// DCQCN rate updates at sender NICs `(flow, new rate)` — both cuts
    /// (CNP) and recoveries. SRC subscribes to these.
    pub rate_changes: Vec<(FlowId, Rate)>,
    /// Hosts that received a PFC pause frame (one entry per frame).
    pub pauses_received: Vec<NodeId>,
    /// Events to schedule.
    pub schedule: Vec<(SimTime, NetEvent)>,
}

impl NetStep {
    /// Append the outputs of another step.
    pub fn merge(&mut self, o: NetStep) {
        self.deliveries.extend(o.deliveries);
        self.rate_changes.extend(o.rate_changes);
        self.pauses_received.extend(o.pauses_received);
        self.schedule.extend(o.schedule);
    }

    /// Empty the step for reuse, keeping the buffer capacities. Hot
    /// loops hold one `NetStep` and pass it to [`Network::send_into`] /
    /// [`Network::handle_into`] instead of allocating per event.
    pub fn clear(&mut self) {
        self.deliveries.clear();
        self.rate_changes.clear();
        self.pauses_received.clear();
        self.schedule.clear();
    }
}

/// Per-flow sender state at its source host NIC.
struct FlowState {
    src: NodeId,
    dst: NodeId,
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    rp: RpState,
    np: NpState,
    timely: TimelyState,
    bucket: TokenBucket,
    /// Timers are armed while true; re-armed from their own firings.
    timers_armed: bool,
    /// DCQCN participation: `false` for fixed-rate (UDP-like) flows that
    /// neither trigger CNPs nor react to congestion.
    cc_enabled: bool,
}

/// Egress state of one directed link (switch port or host uplink).
struct PortState {
    /// Queued packets with the ingress link they arrived on (None when
    /// locally generated) — switches only; host egress queues live in
    /// `FlowState`/`HostNic`.
    queue: VecDeque<(Packet, Option<usize>)>,
    /// Control packets (CNP/ACK): strict priority over data and exempt
    /// from PFC pause (they ride the highest priority class).
    ctrl_queue: VecDeque<(Packet, Option<usize>)>,
    queued_bytes: u64,
    busy: bool,
    paused: bool,
    /// Packets serialized and propagating, FIFO.
    in_flight: VecDeque<Packet>,
    /// Arrival times of the `in_flight` prefix whose dedicated `Arrive`
    /// events were elided (burst coalescing): entry `k` is the arrival
    /// time of the `k`-th in-flight packet as long as deferred entries
    /// remain. Flushed by one `BurstArrive` event and drained
    /// opportunistically whenever the port is touched at a later time.
    deferred: VecDeque<SimTime>,
    /// True while a `BurstArrive` flush event is outstanding for this
    /// port (at most one lives at a time).
    flush_pending: bool,
}

/// Host NIC state (single uplink).
struct HostNic {
    uplink: usize,
    flows: Vec<usize>,
    rr: usize,
    /// Control (CNP) queue: unshaped, never paused.
    ctrl: VecDeque<Packet>,
    pause_frames_received: u64,
    /// Guards against redundant NicWakeup storms.
    wakeup_pending: bool,
}

/// PFC configuration.
#[derive(Clone, Debug)]
pub struct PfcParams {
    /// Ingress occupancy that triggers PAUSE to the upstream.
    pub xoff_bytes: u64,
    /// Ingress occupancy below which RESUME is sent.
    pub xon_bytes: u64,
}

impl Default for PfcParams {
    fn default() -> Self {
        PfcParams {
            xoff_bytes: 256 * 1024,
            xon_bytes: 128 * 1024,
        }
    }
}

/// Which rate-control scheme senders run.
#[derive(Clone, Debug)]
pub enum CcMode {
    /// DCQCN: ECN marking at switches, CNPs, multiplicative cut +
    /// staged recovery (the paper's choice).
    Dcqcn,
    /// TIMELY: RTT-gradient control from acknowledgment timestamps; no
    /// switch support needed.
    Timely(TimelyParams),
}

/// The network simulator.
pub struct Network {
    topo: Topology,
    params: DcqcnParams,
    cc: CcMode,
    pfc: PfcParams,
    mtu: u64,
    flows: Vec<FlowState>,
    ports: Vec<PortState>,
    nics: Vec<Option<HostNic>>, // indexed by node id
    /// PFC ingress byte accounting: `ingress_bytes[link]` = bytes queued
    /// inside `link.to` (a switch) that arrived over `link`.
    ingress_bytes: Vec<u64>,
    /// Whether we currently hold the upstream of `link` paused.
    upstream_paused: Vec<bool>,
    /// Total ECN-marked packets (telemetry).
    ecn_marked: u64,
    /// Total CNPs generated (telemetry).
    cnps_sent: u64,
    /// Deterministic marking "randomness" (low-discrepancy sequence).
    mark_seq: u64,
    /// Telemetry probes: DCQCN RP/NP transitions and `Rc`/`Rt`/alpha
    /// samples, drained by the owning event loop.
    probes: ProbeBuffer,
    /// Fault overlay: `(bandwidth factor, extra delay)` per link while a
    /// degradation window is active (`None` = nominal).
    link_degrade: Vec<Option<(f64, SimDuration)>>,
    /// Fault overlay: per-link data-packet drop probability (0 = none).
    link_loss: Vec<f64>,
    /// Fast guard: true while any `link_loss` entry is nonzero.
    any_link_loss: bool,
    /// Fault overlay: CNP suppression probability (0 = none).
    cnp_loss: f64,
    /// Dedicated draw sequence for loss faults; advances only when a
    /// loss fault actually consults it, so fault-free runs take no
    /// draws and stay byte-identical.
    fault_rng: FaultRng,
    /// Packet-burst coalescing master switch (on by default; the perf
    /// counterfactual benches and equivalence tests turn it off).
    coalescing: bool,
    /// Sticky per-link flag: set the first time a degrade or loss fault
    /// touches the link, and never cleared — packets on a touched link
    /// are no longer deferred, so fault draws keep their per-packet
    /// timing (see `set_link_loss`/`set_link_degrade`).
    fault_touched: Vec<bool>,
    /// Hot-path cache for `defer_eligible`: true iff the link terminates
    /// at a destination host AND no fault has ever touched it. Folding
    /// the two topology/fault lookups into one byte keeps the per-packet
    /// eligibility check to a single load.
    defer_ok: Vec<bool>,
    /// Per-link count of drain operations that delivered at least one
    /// deferred packet (telemetry).
    bursts_coalesced: Vec<u64>,
    /// Total packets delivered through the deferred path (each one is
    /// an `Arrive` event the wheel never saw).
    packets_coalesced: u64,
    /// How far past a deferred arrival the backstop flush is armed.
    /// [`FLUSH_HORIZON`] normally; zero while telemetry is enabled so
    /// traced runs keep the exact reference event-time lattice (see
    /// `set_telemetry`).
    flush_horizon: SimDuration,
}

const CNP_SIZE: u64 = 64;

/// How far past a deferred arrival the backstop flush is armed. Large
/// relative to packet spacing so trains accumulate (touch-drains deliver
/// them long before the flush), small relative to run length so
/// quiescence detection is never held up noticeably.
const FLUSH_HORIZON: SimDuration = SimDuration::from_us(50);

impl Network {
    /// Build over a routed topology.
    pub fn new(topo: Topology, params: DcqcnParams, pfc: PfcParams, mtu: u64) -> Self {
        assert!(mtu > 0, "MTU must be positive");
        let n_links = topo.n_links();
        let mut nics: Vec<Option<HostNic>> = Vec::with_capacity(topo.n_nodes());
        for n in 0..topo.n_nodes() {
            let node = NodeId(n);
            if topo.kind(node) == NodeKind::Host {
                let ups = topo.out_links(node);
                assert_eq!(ups.len(), 1, "hosts must have exactly one uplink");
                nics.push(Some(HostNic {
                    uplink: ups[0],
                    flows: Vec::new(),
                    rr: 0,
                    ctrl: VecDeque::new(),
                    pause_frames_received: 0,
                    wakeup_pending: false,
                }));
            } else {
                nics.push(None);
            }
        }
        let defer_ok: Vec<bool> = (0..n_links)
            .map(|l| topo.kind(topo.link(l).to) == NodeKind::Host)
            .collect();
        Network {
            topo,
            params,
            cc: CcMode::Dcqcn,
            pfc,
            mtu,
            flows: Vec::new(),
            ports: (0..n_links)
                .map(|_| PortState {
                    queue: VecDeque::new(),
                    ctrl_queue: VecDeque::new(),
                    queued_bytes: 0,
                    busy: false,
                    paused: false,
                    in_flight: VecDeque::new(),
                    deferred: VecDeque::new(),
                    flush_pending: false,
                })
                .collect(),
            nics,
            ingress_bytes: vec![0; n_links],
            upstream_paused: vec![false; n_links],
            ecn_marked: 0,
            cnps_sent: 0,
            mark_seq: 0,
            probes: ProbeBuffer::default(),
            link_degrade: vec![None; n_links],
            link_loss: vec![0.0; n_links],
            any_link_loss: false,
            cnp_loss: 0.0,
            fault_rng: FaultRng::new(0),
            coalescing: true,
            fault_touched: vec![false; n_links],
            defer_ok,
            bursts_coalesced: vec![0; n_links],
            packets_coalesced: 0,
            flush_horizon: FLUSH_HORIZON,
        }
    }

    // ------------------------------------------------------------------
    // Fault overlay (see `sim_engine::faults`)

    /// Seed the dedicated fault draw sequence (loss decisions). Call
    /// before traffic starts; a fresh sequence replaces any prior one.
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.fault_rng = FaultRng::new(seed);
    }

    /// Degrade `link`: multiply its bandwidth by `bandwidth_factor` and
    /// add `extra_delay` to its propagation delay until cleared. The
    /// nominal topology is untouched — DCQCN's line-rate targets and
    /// token-bucket sizing keep using the nominal rate, exactly as real
    /// NICs keep targeting the configured line rate over a degraded
    /// path.
    ///
    /// Takes the current time and a step because activating a fault
    /// de-coalesces the link: packets already deferred revert to
    /// per-packet `Arrive` events so fault processing sees them at
    /// their exact arrival times, and the link stops deferring for the
    /// rest of the run.
    pub fn set_link_degrade(
        &mut self,
        link: usize,
        bandwidth_factor: f64,
        extra_delay: SimDuration,
        now: SimTime,
        step: &mut NetStep,
    ) {
        self.decoalesce_link(link, now, step);
        self.link_degrade[link] = Some((bandwidth_factor, extra_delay));
    }

    /// Restore `link` to its nominal bandwidth and delay.
    pub fn clear_link_degrade(&mut self, link: usize) {
        self.link_degrade[link] = None;
    }

    /// Drop data packets arriving over `link` with probability
    /// `probability` until cleared. Control packets (CNP/ACK) are
    /// exempt — model those with [`Network::set_cnp_loss`]. Takes the
    /// current time and a step for the same de-coalescing reason as
    /// [`Network::set_link_degrade`].
    pub fn set_link_loss(
        &mut self,
        link: usize,
        probability: f64,
        now: SimTime,
        step: &mut NetStep,
    ) {
        self.decoalesce_link(link, now, step);
        self.link_loss[link] = probability;
        self.any_link_loss = self.link_loss.iter().any(|&p| p > 0.0);
    }

    /// Stop dropping packets on `link`.
    pub fn clear_link_loss(&mut self, link: usize) {
        self.link_loss[link] = 0.0;
        self.any_link_loss = self.link_loss.iter().any(|&p| p > 0.0);
    }

    /// Permanently opt `link` out of burst coalescing and convert its
    /// pending deferrals back to per-packet `Arrive` events: overdue
    /// arrivals are drained in place (they predate the state change, so
    /// their handling is the same either way) and future ones get the
    /// dedicated events the reference path would have scheduled.
    fn decoalesce_link(&mut self, link: usize, now: SimTime, step: &mut NetStep) {
        self.fault_touched[link] = true;
        self.defer_ok[link] = false;
        self.drain_deferred(link, now, step);
        let port = &mut self.ports[link];
        while let Some(t) = port.deferred.pop_front() {
            step.schedule.push((t, NetEvent::Arrive { link }));
        }
    }

    /// Suppress generated CNPs with probability `probability` until
    /// cleared (the congestion signal is lost in the fabric; the NP
    /// state machine still counts the generation).
    pub fn set_cnp_loss(&mut self, probability: f64) {
        self.cnp_loss = probability;
    }

    /// Stop suppressing CNPs.
    pub fn clear_cnp_loss(&mut self) {
        self.cnp_loss = 0.0;
    }

    /// Turn telemetry probes on or off (off by default; disabling
    /// clears anything pending).
    ///
    /// Telemetry also zeroes the burst-flush horizon: traced runs
    /// sample gauges at event-loop times, so the flush must fire at the
    /// exact deferred-arrival times to keep the event-time lattice —
    /// and therefore every sample timestamp — identical to an
    /// uncoalesced run. Untraced runs keep [`FLUSH_HORIZON`] and get
    /// the full batching win.
    pub fn set_telemetry(&mut self, on: bool) {
        self.probes.set_enabled(on);
        self.flush_horizon = if on { SimDuration::ZERO } else { FLUSH_HORIZON };
    }

    /// Move pending probe records out, preserving record order. The
    /// event-loop owner feeds these into its `TraceSink`.
    pub fn drain_probes(&mut self) -> Vec<TraceRecord> {
        self.probes.drain()
    }

    /// Drain pending probe records straight into `sink`, preserving
    /// order and the probe buffer's capacity (the hot-loop form of
    /// [`Network::drain_probes`]).
    pub fn drain_probes_into(&mut self, sink: &mut dyn TraceSink) {
        self.probes.drain_into(sink);
    }

    /// Sample one flow's RP state (`Rc`, `Rt`, alpha) into the probe
    /// buffer. No-op while telemetry is off.
    fn probe_rp_state(&mut self, flow: usize, now: SimTime) {
        if !self.probes.is_enabled() {
            return;
        }
        let rp = &self.flows[flow].rp;
        let (r, t, a) = (rp.rate.as_gbps_f64(), rp.target().as_gbps_f64(), rp.alpha());
        let fid = flow as u64;
        self.probes.record(now, "dcqcn", fid, "rate_gbps", r);
        self.probes.record(now, "dcqcn", fid, "target_gbps", t);
        self.probes.record(now, "dcqcn", fid, "alpha", a);
    }

    /// Switch every sender to TIMELY rate control. Call before any
    /// traffic is sent.
    pub fn use_timely(&mut self, params: TimelyParams) {
        self.cc = CcMode::Timely(params);
    }

    /// The active rate-control scheme.
    pub fn cc_mode(&self) -> &CcMode {
        &self.cc
    }

    /// Register a unidirectional flow; returns its id.
    pub fn add_flow(&mut self, src: NodeId, dst: NodeId) -> FlowId {
        assert_eq!(
            self.topo.kind(src),
            NodeKind::Host,
            "flow src must be a host"
        );
        assert_eq!(
            self.topo.kind(dst),
            NodeKind::Host,
            "flow dst must be a host"
        );
        assert_ne!(src, dst, "flow endpoints must differ");
        let uplink = self.nics[src.0].as_ref().expect("host NIC").uplink;
        let line = self.topo.link(uplink).rate;
        let id = self.flows.len();
        self.flows.push(FlowState {
            src,
            dst,
            queue: VecDeque::new(),
            queued_bytes: 0,
            rp: RpState::new(line),
            np: NpState::default(),
            timely: TimelyState::new(line),
            bucket: TokenBucket::new(line, 2 * self.mtu),
            timers_armed: false,
            cc_enabled: true,
        });
        self.nics[src.0].as_mut().expect("host NIC").flows.push(id);
        FlowId(id)
    }

    /// Register a fixed-rate flow that does not participate in DCQCN:
    /// its packets never generate CNPs and its rate never changes. Used
    /// to model non-adaptive background traffic (competing tenants).
    pub fn add_fixed_rate_flow(&mut self, src: NodeId, dst: NodeId, rate: Rate) -> FlowId {
        let id = self.add_flow(src, dst);
        let f = &mut self.flows[id.0];
        f.cc_enabled = false;
        f.rp.rate = rate;
        f.bucket = TokenBucket::new(rate, 2 * self.mtu);
        id
    }

    /// Enqueue `bytes` of application payload on a flow, segmented into
    /// MTU-sized packets; the final packet carries `last_of_msg`.
    pub fn send(&mut self, flow: FlowId, bytes: u64, tag: u64, now: SimTime) -> NetStep {
        let mut step = NetStep::default();
        self.send_into(flow, bytes, tag, now, &mut step);
        step
    }

    /// Allocation-free variant of [`Network::send`]: appends to a
    /// caller-owned step instead of returning a fresh one.
    pub fn send_into(
        &mut self,
        flow: FlowId,
        bytes: u64,
        tag: u64,
        now: SimTime,
        step: &mut NetStep,
    ) {
        assert!(bytes > 0, "cannot send zero bytes");
        let f = &mut self.flows[flow.0];
        let dst = f.dst;
        let mut remaining = bytes;
        while remaining > 0 {
            let sz = remaining.min(self.mtu);
            remaining -= sz;
            f.queue.push_back(Packet {
                flow,
                dst,
                size: sz,
                kind: PacketKind::Data,
                ecn: false,
                tag,
                last_of_msg: remaining == 0,
                sent_at: SimTime::ZERO,
            });
            f.queued_bytes += sz;
        }
        let host = f.src;
        self.kick_nic(host, now, step);
    }

    /// Advance on one of the network's own events.
    pub fn handle(&mut self, ev: NetEvent, now: SimTime) -> NetStep {
        let mut step = NetStep::default();
        self.handle_into(ev, now, &mut step);
        step
    }

    /// Allocation-free variant of [`Network::handle`]: appends to a
    /// caller-owned step instead of returning a fresh one.
    pub fn handle_into(&mut self, ev: NetEvent, now: SimTime, step: &mut NetStep) {
        match ev {
            NetEvent::TxDone { link } => self.on_tx_done(link, now, step),
            NetEvent::Arrive { link } => self.on_arrive(link, now, step),
            NetEvent::NicWakeup { host } => {
                if let Some(nic) = self.nics[host].as_mut() {
                    nic.wakeup_pending = false;
                }
                self.kick_nic(NodeId(host), now, step);
            }
            NetEvent::AlphaTimer { flow, gen } => self.on_alpha_timer(flow, gen, now, step),
            NetEvent::RateTimer { flow, gen } => self.on_rate_timer(flow, gen, now, step),
            NetEvent::PauseSet { link, paused } => self.on_pause_set(link, paused, now, step),
            NetEvent::BurstArrive { link } => self.on_burst_arrive(link, now, step),
        }
    }

    // ------------------------------------------------------------------
    // Accessors

    /// Bytes queued at the sender for a flow (its TXQ backlog).
    pub fn flow_backlog_bytes(&self, flow: FlowId) -> u64 {
        self.flows[flow.0].queued_bytes
    }

    /// Total TXQ backlog of all flows sourced at `host`.
    pub fn host_backlog_bytes(&self, host: NodeId) -> u64 {
        self.nics[host.0]
            .as_ref()
            .map(|nic| nic.flows.iter().map(|&f| self.flows[f].queued_bytes).sum())
            .unwrap_or(0)
    }

    /// Current DCQCN sending rate of a flow.
    pub fn flow_rate(&self, flow: FlowId) -> Rate {
        self.flows[flow.0].rp.rate
    }

    /// PFC pause frames received by a host so far.
    pub fn host_pause_count(&self, host: NodeId) -> u64 {
        self.nics[host.0]
            .as_ref()
            .map(|n| n.pause_frames_received)
            .unwrap_or(0)
    }

    /// Total ECN-marked packets.
    pub fn ecn_marked(&self) -> u64 {
        self.ecn_marked
    }

    /// Total CNPs generated.
    pub fn cnps_sent(&self) -> u64 {
        self.cnps_sent
    }

    /// Enable or disable packet-burst coalescing (on by default). Must
    /// be called before traffic is sent — pending deferrals cannot be
    /// converted without an event context.
    pub fn set_coalescing(&mut self, on: bool) {
        assert!(
            self.ports.iter().all(|p| p.deferred.is_empty()),
            "toggle coalescing before traffic starts"
        );
        self.coalescing = on;
    }

    /// Drain operations on `link` that delivered at least one deferred
    /// packet (telemetry).
    pub fn bursts_coalesced(&self, link: usize) -> u64 {
        self.bursts_coalesced[link]
    }

    /// Total packets delivered through the deferred-arrival path — each
    /// is an `Arrive` event the wheel never carried.
    pub fn packets_coalesced(&self) -> u64 {
        self.packets_coalesced
    }

    /// The topology (read-only).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// True when no packets are queued, in flight, or being serialized.
    pub fn is_quiescent(&self) -> bool {
        self.flows.iter().all(|f| f.queue.is_empty())
            && self.ports.iter().all(|p| {
                p.queue.is_empty() && p.ctrl_queue.is_empty() && p.in_flight.is_empty() && !p.busy
            })
            && self.nics.iter().flatten().all(|n| n.ctrl.is_empty())
    }

    // ------------------------------------------------------------------
    // Host NIC

    /// Try to start transmissions on a host's uplink.
    fn kick_nic(&mut self, host: NodeId, now: SimTime, step: &mut NetStep) {
        let nic = self.nics[host.0].as_ref().expect("kick_nic on a switch");
        let link = nic.uplink;
        if self.ports[link].busy {
            return;
        }
        // Control packets first: unshaped, not subject to PFC pause.
        if let Some(pkt) = self.nics[host.0].as_mut().unwrap().ctrl.pop_front() {
            self.start_tx(link, pkt, None, now, step);
            return;
        }
        if self.ports[link].paused {
            return;
        }
        // Round-robin over flows with backlog and tokens.
        let nic = self.nics[host.0].as_ref().unwrap();
        let flows = nic.flows.clone();
        let start = nic.rr;
        let mut earliest: Option<SimTime> = None;
        for k in 0..flows.len() {
            let fid = flows[(start + k) % flows.len()];
            let (has_pkt, size) = {
                let f = &self.flows[fid];
                (
                    f.queue.front().is_some(),
                    f.queue.front().map_or(0, |p| p.size),
                )
            };
            if !has_pkt {
                continue;
            }
            let admit = self.flows[fid].bucket.try_consume(now, size);
            match admit {
                Ok(()) => {
                    let f = &mut self.flows[fid];
                    let mut pkt = f.queue.pop_front().expect("checked nonempty");
                    f.queued_bytes -= pkt.size;
                    pkt.sent_at = now;
                    self.nics[host.0].as_mut().unwrap().rr = (start + k + 1) % flows.len();
                    self.start_tx(link, pkt, None, now, step);
                    return;
                }
                Err(t) if t != SimTime::MAX => {
                    earliest = Some(earliest.map_or(t, |e| e.min(t)));
                }
                Err(_) => {}
            }
        }
        // Backlogged but token-starved: schedule a wakeup.
        if let Some(t) = earliest {
            let nic = self.nics[host.0].as_mut().unwrap();
            if !nic.wakeup_pending {
                nic.wakeup_pending = true;
                step.schedule
                    .push((t.max(now), NetEvent::NicWakeup { host: host.0 }));
            }
        }
    }

    // ------------------------------------------------------------------
    // Link/port machinery

    /// Begin serializing `pkt` on `link` (the port must be idle).
    fn start_tx(
        &mut self,
        link: usize,
        pkt: Packet,
        ingress: Option<usize>,
        now: SimTime,
        step: &mut NetStep,
    ) {
        let port = &mut self.ports[link];
        debug_assert!(!port.busy);
        port.busy = true;
        port.in_flight.push_back(pkt);
        let rate = match self.link_degrade[link] {
            Some((factor, _)) => self.topo.link(link).rate.scale(factor),
            None => self.topo.link(link).rate,
        };
        step.schedule
            .push((now + rate.tx_time(pkt.size), NetEvent::TxDone { link }));
        // PFC ingress accounting is released when the packet leaves the
        // buffer (serialization started).
        if let Some(ing) = ingress {
            self.release_ingress(ing, pkt.size, now, step);
        }
    }

    /// Can the just-serialized packet's `Arrive` event be elided and its
    /// delivery deferred to a consolidated burst flush? Only when every
    /// effect of its arrival is invisible to the rest of the simulation:
    /// a final-hop (destination-host) data packet that is not the last
    /// of its message (the event loop ignores non-last deliveries), is
    /// not ECN-marked (no CNP), triggers no acknowledgment (TIMELY acks
    /// every data packet of a cc-enabled flow), and rides a link no
    /// fault has ever touched (loss draws must keep per-packet timing).
    fn defer_eligible(&self, link: usize, pkt: &Packet) -> bool {
        self.coalescing
            && self.defer_ok[link]
            && pkt.kind == PacketKind::Data
            && !pkt.last_of_msg
            && !pkt.ecn
            && match self.cc {
                CcMode::Dcqcn => true,
                CcMode::Timely(_) => !self.flows[pkt.flow.0].cc_enabled,
            }
    }

    fn on_tx_done(&mut self, link: usize, now: SimTime, step: &mut NetStep) {
        let delay = match self.link_degrade[link] {
            Some((_, extra)) => self.topo.link(link).delay + extra,
            None => self.topo.link(link).delay,
        };
        let sent = *self.ports[link]
            .in_flight
            .back()
            .expect("tx done without in-flight packet");
        if self.defer_eligible(link, &sent) {
            // Burst coalescing: append the arrival time to the port's
            // ledger instead of scheduling a dedicated Arrive. One
            // outstanding BurstArrive flush per port delivers the whole
            // train, re-arming itself while the ledger keeps growing.
            // The flush is armed a full `flush_horizon` *behind* the
            // arrival so the train can accumulate: non-last delivery
            // timing is unobservable, and any observable event on the
            // link (a last packet, a CNP, an ECN mark) drains the due
            // prefix on touch before the flush ever fires. In practice
            // the touch-drains do nearly all the work and the flush is a
            // rare backstop that keeps quiescence detection live. (With
            // telemetry on the horizon is zero — see `set_telemetry`.)
            let horizon = self.flush_horizon;
            let port = &mut self.ports[link];
            port.deferred.push_back(now + delay);
            if !port.flush_pending {
                port.flush_pending = true;
                step.schedule
                    .push((now + delay + horizon, NetEvent::BurstArrive { link }));
            }
        } else {
            step.schedule.push((now + delay, NetEvent::Arrive { link }));
        }
        self.ports[link].busy = false;
        let from = self.topo.link(link).from;
        match self.topo.kind(from) {
            NodeKind::Host => {
                // Account DCQCN byte counter for the just-sent packet.
                // The byte-counter recovery stage belongs to DCQCN only:
                // fixed-rate and TIMELY flows must not creep toward line
                // rate through it.
                if sent.kind == PacketKind::Data
                    && matches!(self.cc, CcMode::Dcqcn)
                    && self.flows[sent.flow.0].cc_enabled
                {
                    let f = &mut self.flows[sent.flow.0];
                    if f.rp.on_bytes_sent(sent.size, &self.params) {
                        let stage = f.rp.increase(&self.params);
                        let r = f.rp.rate;
                        f.bucket.set_rate(now, r);
                        step.rate_changes.push((sent.flow, r));
                        let fid = sent.flow.0 as u64;
                        self.probes
                            .record(now, "dcqcn", fid, "rp_stage", stage.as_code());
                        self.probe_rp_state(sent.flow.0, now);
                    }
                }
                self.kick_nic(from, now, step);
            }
            NodeKind::Switch => {
                self.start_port(link, now, step);
            }
        }
    }

    /// Start the next queued packet on a switch egress port. Control
    /// packets have strict priority and ignore PFC pause.
    fn start_port(&mut self, link: usize, now: SimTime, step: &mut NetStep) {
        if self.ports[link].busy {
            return;
        }
        if let Some((pkt, ingress)) = self.ports[link].ctrl_queue.pop_front() {
            self.start_tx(link, pkt, ingress, now, step);
            return;
        }
        if self.ports[link].paused {
            return;
        }
        let Some((pkt, ingress)) = self.ports[link].queue.pop_front() else {
            return;
        };
        self.ports[link].queued_bytes -= pkt.size;
        self.start_tx(link, pkt, ingress, now, step);
    }

    /// Deliver every deferred packet on `link` whose arrival time has
    /// been reached. Deferred entries form the FIFO prefix of
    /// `in_flight` that is due: arrival times on a link are strictly
    /// increasing and a packet with a dedicated `Arrive` event at an
    /// earlier time has necessarily been popped already, so the
    /// in-flight front is always the ledger front's packet.
    fn drain_deferred(&mut self, link: usize, now: SimTime, step: &mut NetStep) {
        let mut delivered = false;
        while self.ports[link].deferred.front().is_some_and(|&t| t <= now) {
            let port = &mut self.ports[link];
            port.deferred.pop_front();
            let pkt = port
                .in_flight
                .pop_front()
                .expect("deferred arrival without in-flight packet");
            debug_assert!(pkt.kind == PacketKind::Data && !pkt.last_of_msg && !pkt.ecn);
            debug_assert_eq!(pkt.dst, self.topo.link(link).to);
            step.deliveries.push(Delivery {
                flow: pkt.flow,
                tag: pkt.tag,
                bytes: pkt.size,
                last: false,
            });
            self.packets_coalesced += 1;
            delivered = true;
        }
        if delivered {
            self.bursts_coalesced[link] += 1;
        }
    }

    /// The consolidated flush event: drain the due prefix, then re-arm
    /// one horizon past the ledger tail if packets are still
    /// propagating.
    fn on_burst_arrive(&mut self, link: usize, now: SimTime, step: &mut NetStep) {
        self.ports[link].flush_pending = false;
        self.drain_deferred(link, now, step);
        let horizon = self.flush_horizon;
        let port = &mut self.ports[link];
        if let Some(&tail) = port.deferred.back() {
            port.flush_pending = true;
            step.schedule
                .push((tail + horizon, NetEvent::BurstArrive { link }));
        }
    }

    fn on_arrive(&mut self, link: usize, now: SimTime, step: &mut NetStep) {
        // Deferred older arrivals on this link are due strictly before
        // this packet: deliver them first so the in-flight order holds.
        self.drain_deferred(link, now, step);
        let pkt = self.ports[link]
            .in_flight
            .pop_front()
            .expect("arrival without in-flight packet");
        // Loss fault: the packet evaporates before any ingress
        // accounting, so PFC/ECN state stays consistent.
        if self.any_link_loss
            && pkt.kind == PacketKind::Data
            && self.link_loss[link] > 0.0
            && self.fault_rng.next_draw() < self.link_loss[link]
        {
            return;
        }
        let node = self.topo.link(link).to;
        match self.topo.kind(node) {
            NodeKind::Switch => self.switch_ingress(node, link, pkt, now, step),
            NodeKind::Host => self.host_ingress(node, pkt, now, step),
        }
    }

    // ------------------------------------------------------------------
    // Switch

    fn switch_ingress(
        &mut self,
        sw: NodeId,
        ingress_link: usize,
        mut pkt: Packet,
        now: SimTime,
        step: &mut NetStep,
    ) {
        let egress = self.topo.route(sw, pkt.dst, pkt.flow.0 as u64);
        // ECN marking at enqueue (RED between Kmin and Kmax) — data only.
        if pkt.kind == PacketKind::Data {
            let q = self.ports[egress].queued_bytes;
            let p = &self.params;
            let mark = if q >= p.kmax {
                true
            } else if q > p.kmin {
                let prob = p.pmax * (q - p.kmin) as f64 / (p.kmax - p.kmin) as f64;
                self.next_mark_draw() < prob
            } else {
                false
            };
            if mark {
                pkt.ecn = true;
                self.ecn_marked += 1;
            }
        }
        // PFC ingress accounting (charge the arriving link).
        self.ingress_bytes[ingress_link] += pkt.size;
        if self.ingress_bytes[ingress_link] >= self.pfc.xoff_bytes
            && !self.upstream_paused[ingress_link]
        {
            self.upstream_paused[ingress_link] = true;
            let delay = self.topo.link(ingress_link).delay;
            step.schedule.push((
                now + delay,
                NetEvent::PauseSet {
                    link: ingress_link,
                    paused: true,
                },
            ));
        }
        let port = &mut self.ports[egress];
        if pkt.kind == PacketKind::Data {
            port.queued_bytes += pkt.size;
            port.queue.push_back((pkt, Some(ingress_link)));
        } else {
            port.ctrl_queue.push_back((pkt, Some(ingress_link)));
        }
        self.start_port(egress, now, step);
    }

    /// Low-discrepancy deterministic sequence in [0,1) for ECN marking
    /// (golden-ratio stride; avoids seeding an RNG for the one marking
    /// decision while staying uniform).
    fn next_mark_draw(&mut self) -> f64 {
        self.mark_seq = self.mark_seq.wrapping_add(1);
        const PHI: f64 = 0.618_033_988_749_894_9;
        (self.mark_seq as f64 * PHI).fract()
    }

    fn release_ingress(&mut self, ingress: usize, bytes: u64, now: SimTime, step: &mut NetStep) {
        let v = &mut self.ingress_bytes[ingress];
        *v = v.saturating_sub(bytes);
        if self.upstream_paused[ingress] && *v <= self.pfc.xon_bytes {
            self.upstream_paused[ingress] = false;
            let delay = self.topo.link(ingress).delay;
            step.schedule.push((
                now + delay,
                NetEvent::PauseSet {
                    link: ingress,
                    paused: false,
                },
            ));
        }
    }

    fn on_pause_set(&mut self, link: usize, paused: bool, now: SimTime, step: &mut NetStep) {
        self.ports[link].paused = paused;
        let from = self.topo.link(link).from;
        if self.topo.kind(from) == NodeKind::Host {
            if paused {
                let nic = self.nics[from.0].as_mut().expect("host nic");
                nic.pause_frames_received += 1;
                step.pauses_received.push(from);
            }
            if !paused {
                self.kick_nic(from, now, step);
            }
        } else if !paused {
            self.start_port(link, now, step);
        }
    }

    // ------------------------------------------------------------------
    // Host receive path

    fn host_ingress(&mut self, host: NodeId, pkt: Packet, now: SimTime, step: &mut NetStep) {
        match pkt.kind {
            PacketKind::Data => {
                debug_assert_eq!(pkt.dst, host, "data packet at wrong host");
                step.deliveries.push(Delivery {
                    flow: pkt.flow,
                    tag: pkt.tag,
                    bytes: pkt.size,
                    last: pkt.last_of_msg,
                });
                match (&self.cc, self.flows[pkt.flow.0].cc_enabled) {
                    (CcMode::Dcqcn, true) if pkt.ecn => {
                        let send_cnp = self.flows[pkt.flow.0]
                            .np
                            .on_marked_packet(now, &self.params);
                        if send_cnp {
                            self.cnps_sent += 1;
                            self.probes
                                .record(now, "dcqcn", pkt.flow.0 as u64, "np_cnp", 1.0);
                            // CNP-loss fault: generated (and counted)
                            // but lost before reaching the sender.
                            if self.cnp_loss > 0.0 && self.fault_rng.next_draw() < self.cnp_loss {
                                return;
                            }
                            let src_host = self.flows[pkt.flow.0].src;
                            let cnp = Packet {
                                flow: pkt.flow,
                                dst: src_host,
                                size: CNP_SIZE,
                                kind: PacketKind::Cnp,
                                ecn: false,
                                tag: 0,
                                last_of_msg: false,
                                sent_at: SimTime::ZERO,
                            };
                            self.nics[host.0]
                                .as_mut()
                                .expect("host nic")
                                .ctrl
                                .push_back(cnp);
                            self.kick_nic(host, now, step);
                        }
                    }
                    (CcMode::Timely(_), true) => {
                        // Acknowledge every data packet, echoing its NIC
                        // timestamp so the sender can measure RTT.
                        let src_host = self.flows[pkt.flow.0].src;
                        let ack = Packet {
                            flow: pkt.flow,
                            dst: src_host,
                            size: CNP_SIZE,
                            kind: PacketKind::Ack,
                            ecn: false,
                            tag: 0,
                            last_of_msg: false,
                            sent_at: pkt.sent_at,
                        };
                        self.nics[host.0]
                            .as_mut()
                            .expect("host nic")
                            .ctrl
                            .push_back(ack);
                        self.kick_nic(host, now, step);
                    }
                    _ => {}
                }
            }
            PacketKind::Ack => {
                let fidx = pkt.flow.0;
                if let CcMode::Timely(tp) = &self.cc {
                    let rtt = now.since(pkt.sent_at);
                    let f = &mut self.flows[fidx];
                    let prev = f.timely.rate;
                    let rate = f.timely.on_rtt(rtt, tp);
                    if rate != prev {
                        f.bucket.set_rate(now, rate);
                        f.rp.rate = rate; // keep flow_rate() uniform
                        step.rate_changes.push((pkt.flow, rate));
                        let src = f.src;
                        self.kick_nic(src, now, step);
                    }
                }
            }
            PacketKind::Cnp => {
                // We are the flow's sender: cut the rate.
                let fidx = pkt.flow.0;
                let (rate, gen) = {
                    let f = &mut self.flows[fidx];
                    f.rp.on_cnp(&self.params);
                    let r = f.rp.rate;
                    f.bucket.set_rate(now, r);
                    (r, f.rp.generation)
                };
                step.rate_changes.push((pkt.flow, rate));
                self.probes.record(now, "dcqcn", fidx as u64, "cnp_rx", 1.0);
                self.probe_rp_state(fidx, now);
                // (Re-)arm the DCQCN timers for this congestion episode.
                let f = &mut self.flows[fidx];
                f.timers_armed = true;
                step.schedule.push((
                    now + self.params.alpha_timer,
                    NetEvent::AlphaTimer { flow: fidx, gen },
                ));
                step.schedule.push((
                    now + self.params.rate_timer,
                    NetEvent::RateTimer { flow: fidx, gen },
                ));
            }
        }
    }

    // ------------------------------------------------------------------
    // DCQCN timers

    fn on_alpha_timer(&mut self, flow: usize, gen: u64, now: SimTime, step: &mut NetStep) {
        let f = &mut self.flows[flow];
        if !f.timers_armed || f.rp.generation != gen {
            return; // stale
        }
        f.rp.on_alpha_timer(&self.params);
        let alpha = f.rp.alpha();
        self.probes
            .record(now, "dcqcn", flow as u64, "alpha", alpha);
        let f = &mut self.flows[flow];
        if f.rp.alpha() > 1e-4 {
            step.schedule.push((
                now + self.params.alpha_timer,
                NetEvent::AlphaTimer { flow, gen },
            ));
        }
    }

    fn on_rate_timer(&mut self, flow: usize, gen: u64, now: SimTime, step: &mut NetStep) {
        let line = {
            let f = &self.flows[flow];
            if !f.timers_armed || f.rp.generation != gen {
                return; // stale
            }
            self.topo
                .link(self.nics[f.src.0].as_ref().unwrap().uplink)
                .rate
        };
        let f = &mut self.flows[flow];
        f.rp.on_rate_timer();
        let stage = f.rp.increase(&self.params);
        let r = f.rp.rate;
        f.bucket.set_rate(now, r);
        step.rate_changes.push((FlowId(flow), r));
        self.probes
            .record(now, "dcqcn", flow as u64, "rp_stage", stage.as_code());
        self.probe_rp_state(flow, now);
        let f = &mut self.flows[flow];
        if r < line {
            step.schedule.push((
                now + self.params.rate_timer,
                NetEvent::RateTimer { flow, gen },
            ));
        } else {
            f.timers_armed = false;
        }
        let src = f.src;
        self.kick_nic(src, now, step);
    }
}
