//! DCQCN (Data Center Quantized Congestion Notification) — the rate
//! control of Zhu et al., SIGCOMM 2015 [4], as used by the paper.
//!
//! Three roles:
//!
//! * **CP** (congestion point, the switch): RED-style ECN marking —
//!   implemented in the switch model, parameterized by
//!   [`DcqcnParams::kmin`]/[`kmax`](DcqcnParams::kmax)/[`pmax`](DcqcnParams::pmax).
//! * **NP** (notification point, the receiver): on an ECN-marked data
//!   packet, send a CNP to the sender, at most one per
//!   [`DcqcnParams::cnp_interval`] per flow — [`NpState`].
//! * **RP** (reaction point, the sender): cut the sending rate on CNP,
//!   recover through fast recovery / additive increase / hyper increase
//!   stages — [`RpState`].
//!
//! The state machines are pure (no event queue); the NIC model drives
//! them and re-arms timers from the returned deadlines.

use serde::{Deserialize, Serialize};
use sim_engine::{Rate, SimDuration, SimTime};

/// DCQCN tuning. Defaults follow the SIGCOMM'15 parameters, with the
/// rate-increase byte counter and timer scaled down so recovery plays out
/// on the millisecond timescale of the paper's figures (documented in
/// DESIGN.md; the original B = 10 MB / T = 55 µs constants assume
/// seconds-long flows).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DcqcnParams {
    /// ECN marking lower threshold (bytes queued at the egress port).
    pub kmin: u64,
    /// ECN marking upper threshold.
    pub kmax: u64,
    /// Marking probability at `kmax`.
    pub pmax: f64,
    /// Minimum gap between CNPs per flow (NP side).
    pub cnp_interval: SimDuration,
    /// Multiplicative-decrease gain `g` for alpha.
    pub g: f64,
    /// Alpha-update timer (no CNP for this long decays alpha).
    pub alpha_timer: SimDuration,
    /// Rate-increase timer period.
    pub rate_timer: SimDuration,
    /// Rate-increase byte counter threshold.
    pub byte_counter: u64,
    /// Fast-recovery stage count before additive increase.
    pub fast_recovery_stages: u32,
    /// Additive increase step.
    pub rai: Rate,
    /// Hyper increase step.
    pub rhai: Rate,
    /// Floor on the sending rate.
    pub min_rate: Rate,
}

impl Default for DcqcnParams {
    fn default() -> Self {
        DcqcnParams {
            // Shallow marking thresholds, as deployed DCQCN uses for
            // 40 GbE (the SIGCOMM'15 paper evaluates Kmin of 5–40 KB):
            // line-rate bursts from a handful of flows are enough to
            // trigger marking.
            kmin: 10 * 1024,
            kmax: 200 * 1024,
            pmax: 0.05,
            cnp_interval: SimDuration::from_us(50),
            g: 1.0 / 16.0,
            alpha_timer: SimDuration::from_us(55),
            rate_timer: SimDuration::from_us(500),
            byte_counter: 10 * 1024 * 1024,
            fast_recovery_stages: 5,
            rai: Rate::from_mbps(100),
            rhai: Rate::from_gbps(1),
            min_rate: Rate::from_mbps(100),
        }
    }
}

/// Notification-point (receiver) per-flow state: CNP pacing.
#[derive(Clone, Debug, Default)]
pub struct NpState {
    last_cnp: Option<SimTime>,
}

impl NpState {
    /// An ECN-marked packet arrived; should a CNP be sent now?
    pub fn on_marked_packet(&mut self, now: SimTime, p: &DcqcnParams) -> bool {
        match self.last_cnp {
            Some(t) if now.since(t) < p.cnp_interval => false,
            _ => {
                self.last_cnp = Some(now);
                true
            }
        }
    }
}

/// Reaction-point (sender) per-flow state.
#[derive(Clone, Debug)]
pub struct RpState {
    /// Current sending rate `Rc`.
    pub rate: Rate,
    /// Target rate `Rt`.
    target: Rate,
    /// Congestion estimate `alpha`.
    alpha: f64,
    /// Timer-driven increase iterations since last cut.
    timer_iters: u32,
    /// Byte-counter-driven increase iterations since last cut.
    byte_iters: u32,
    /// Bytes sent since the counter last fired.
    bytes_since: u64,
    /// Link capacity (rate never exceeds this).
    line_rate: Rate,
    /// Generation stamp: bumped on every CNP so stale timer events can be
    /// discarded by the NIC.
    pub generation: u64,
}

impl RpState {
    /// Fresh sender state at line rate.
    pub fn new(line_rate: Rate) -> Self {
        RpState {
            rate: line_rate,
            target: line_rate,
            alpha: 1.0,
            timer_iters: 0,
            byte_iters: 0,
            bytes_since: 0,
            line_rate,
            generation: 0,
        }
    }

    /// Current alpha (for tests/telemetry).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Target rate `Rt` (for telemetry).
    pub fn target(&self) -> Rate {
        self.target
    }

    /// A CNP arrived: cut the rate, bump alpha, restart recovery.
    pub fn on_cnp(&mut self, p: &DcqcnParams) {
        self.target = self.rate;
        let cut = 1.0 - self.alpha / 2.0;
        self.rate = self.rate.scale(cut).max(p.min_rate);
        self.alpha = ((1.0 - p.g) * self.alpha + p.g).clamp(0.0, 1.0);
        self.timer_iters = 0;
        self.byte_iters = 0;
        self.bytes_since = 0;
        self.generation += 1;
    }

    /// Alpha-decay timer fired (no CNP for `alpha_timer`).
    pub fn on_alpha_timer(&mut self, p: &DcqcnParams) {
        self.alpha *= 1.0 - p.g;
    }

    /// Account transmitted bytes; returns true when the byte counter
    /// fired (the NIC should then call [`RpState::increase`]).
    pub fn on_bytes_sent(&mut self, bytes: u64, p: &DcqcnParams) -> bool {
        self.bytes_since += bytes;
        if self.bytes_since >= p.byte_counter {
            self.bytes_since = 0;
            self.byte_iters += 1;
            true
        } else {
            false
        }
    }

    /// The rate-increase timer fired.
    pub fn on_rate_timer(&mut self) {
        self.timer_iters += 1;
    }

    /// Perform one rate-increase step. The stage is the max of the timer
    /// and byte-counter iteration counts, as in the DCQCN paper: fast
    /// recovery halves the gap to `Rt`; additive increase raises `Rt` by
    /// `Rai`; hyper increase (both counters past the stage bound) raises
    /// it by `Rhai`. Returns the stage that executed (for telemetry).
    ///
    /// `Rt` is monotone across increase steps: `Rc <= Rt` is an
    /// invariant (`on_cnp` re-anchors `Rt` at the pre-cut `Rc`, both
    /// stay above `min_rate`, and recovery only moves `Rc` toward `Rt`
    /// while `Rt` only grows), so an earlier `Rt = max(Rt, Rc)`
    /// pre-clamp in the hyper branch — absent from the additive branch
    /// — could never fire and has been removed. The regression test
    /// `hyper_increase_never_lowers_target` pins the monotonicity down.
    pub fn increase(&mut self, p: &DcqcnParams) -> RpStage {
        debug_assert!(self.rate <= self.target, "Rc <= Rt invariant broken");
        let f = p.fast_recovery_stages;
        let stage = self.timer_iters.max(self.byte_iters);
        let executed = if self.timer_iters > f && self.byte_iters > f {
            // Hyper increase: both counters past the fast-recovery bound.
            self.target = Rate::from_bps(
                (self.target.as_bps() + p.rhai.as_bps()).min(self.line_rate.as_bps()),
            );
            RpStage::Hyper
        } else if stage > f {
            // Additive increase.
            self.target = Rate::from_bps(
                (self.target.as_bps() + p.rai.as_bps()).min(self.line_rate.as_bps()),
            );
            RpStage::Additive
        } else {
            RpStage::FastRecovery
        };
        // Fast recovery toward the target in every stage. Snap once the
        // gap closes below 1 Mbps — integer halving would otherwise
        // asymptote one bps below the target and keep the recovery timer
        // armed forever.
        let next = (self.rate.as_bps() + self.target.as_bps()) / 2;
        let next = if self.target.as_bps().abs_diff(next) < 1_000_000 {
            self.target.as_bps()
        } else {
            next
        };
        self.rate = Rate::from_bps(next).min(self.line_rate).max(p.min_rate);
        executed
    }
}

/// Which branch one [`RpState::increase`] call took (telemetry: the RP
/// stage transitions the trace records).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpStage {
    /// Gap-halving toward `Rt` only; `Rt` untouched.
    FastRecovery,
    /// `Rt += Rai`.
    Additive,
    /// `Rt += Rhai` (both counters past the fast-recovery bound).
    Hyper,
}

impl RpStage {
    /// Numeric encoding used in trace records (0, 1, 2).
    pub fn as_code(self) -> f64 {
        match self {
            RpStage::FastRecovery => 0.0,
            RpStage::Additive => 1.0,
            RpStage::Hyper => 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> DcqcnParams {
        DcqcnParams::default()
    }

    #[test]
    fn cnp_halves_rate_initially() {
        let mut rp = RpState::new(Rate::from_gbps(40));
        rp.on_cnp(&p());
        // alpha starts at 1 => cut factor 0.5.
        assert_eq!(rp.rate, Rate::from_gbps(20));
        assert_eq!(rp.target(), Rate::from_gbps(40));
        assert!(rp.alpha() <= 1.0);
    }

    #[test]
    fn repeated_cnps_floor_at_min_rate() {
        let mut rp = RpState::new(Rate::from_gbps(40));
        for _ in 0..100 {
            rp.on_cnp(&p());
        }
        assert_eq!(rp.rate, p().min_rate);
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let mut rp = RpState::new(Rate::from_gbps(40));
        rp.on_cnp(&p());
        let a0 = rp.alpha();
        for _ in 0..20 {
            rp.on_alpha_timer(&p());
        }
        assert!(rp.alpha() < a0 * 0.5);
        // Later cuts are gentler.
        let before = rp.rate;
        rp.on_cnp(&p());
        assert!(rp.rate.as_bps() > before.as_bps() / 2);
    }

    #[test]
    fn fast_recovery_converges_to_target() {
        let mut rp = RpState::new(Rate::from_gbps(40));
        rp.on_cnp(&p()); // Rc=20, Rt=40
        for _ in 0..10 {
            rp.on_rate_timer();
            rp.increase(&p());
        }
        // After several halvings of the gap, Rc ~ Rt.
        assert!(rp.rate.as_gbps_f64() > 39.0, "rate={:?}", rp.rate);
        assert!(rp.rate <= Rate::from_gbps(40));
    }

    #[test]
    fn additive_increase_raises_target() {
        let mut rp = RpState::new(Rate::from_gbps(40));
        rp.on_cnp(&p());
        // Exhaust fast recovery (stage > F with timer only).
        for _ in 0..=p().fast_recovery_stages + 3 {
            rp.on_rate_timer();
            rp.increase(&p());
        }
        // Target must not exceed the line rate.
        assert!(rp.target() <= Rate::from_gbps(40));
        assert!(rp.rate <= Rate::from_gbps(40));
    }

    #[test]
    fn hyper_increase_requires_both_counters() {
        let params = p();
        let mut rp = RpState::new(Rate::from_gbps(40));
        rp.on_cnp(&params);
        rp.on_cnp(&params); // rate well below line
        let f = params.fast_recovery_stages;
        for _ in 0..=f + 1 {
            rp.on_rate_timer();
            let _ = rp.on_bytes_sent(params.byte_counter, &params);
            rp.increase(&params);
        }
        // Both counters past F: hyper stage reached; rate recovering.
        assert!(rp.rate.as_gbps_f64() > 10.0);
        assert!(rp.rate <= Rate::from_gbps(40));
    }

    #[test]
    fn hyper_increase_never_lowers_target() {
        let params = p();
        let mut rp = RpState::new(Rate::from_gbps(40));
        // Cut deep so recovery has room, then run both counters past
        // the fast-recovery bound: Rt must be monotone through every
        // stage, including hyper.
        for _ in 0..8 {
            rp.on_cnp(&params);
        }
        let mut prev = rp.target();
        let mut saw_hyper = false;
        for _ in 0..params.fast_recovery_stages + 10 {
            rp.on_rate_timer();
            let _ = rp.on_bytes_sent(params.byte_counter, &params);
            let stage = rp.increase(&params);
            saw_hyper |= stage == RpStage::Hyper;
            assert!(
                rp.target() >= prev,
                "{stage:?} lowered Rt: {prev:?} -> {:?}",
                rp.target()
            );
            prev = rp.target();
        }
        assert!(saw_hyper, "test never reached the hyper stage");
    }

    #[test]
    fn byte_counter_fires_on_threshold() {
        let params = p();
        let mut rp = RpState::new(Rate::from_gbps(40));
        assert!(!rp.on_bytes_sent(params.byte_counter / 2, &params));
        assert!(rp.on_bytes_sent(params.byte_counter / 2, &params));
        assert!(!rp.on_bytes_sent(1, &params));
    }

    #[test]
    fn generation_bumps_on_cnp() {
        let mut rp = RpState::new(Rate::from_gbps(40));
        let g0 = rp.generation;
        rp.on_cnp(&p());
        assert_eq!(rp.generation, g0 + 1);
    }

    #[test]
    fn np_paces_cnps() {
        let params = p();
        let mut np = NpState::default();
        assert!(np.on_marked_packet(SimTime::from_us(0), &params));
        assert!(!np.on_marked_packet(SimTime::from_us(10), &params));
        assert!(!np.on_marked_packet(SimTime::from_us(49), &params));
        assert!(np.on_marked_packet(SimTime::from_us(50), &params));
    }

    proptest::proptest! {
        /// The rate always stays within [min_rate, line_rate] under any
        /// sequence of CNPs, timers, and increases.
        #[test]
        fn prop_rate_bounds(ops in proptest::collection::vec(0u8..4, 1..300)) {
            let params = p();
            let line = Rate::from_gbps(40);
            let mut rp = RpState::new(line);
            for op in ops {
                match op {
                    0 => rp.on_cnp(&params),
                    1 => { rp.on_rate_timer(); rp.increase(&params); }
                    2 => { let _ = rp.on_bytes_sent(300_000, &params); rp.increase(&params); }
                    _ => rp.on_alpha_timer(&params),
                }
                proptest::prop_assert!(rp.rate >= params.min_rate);
                proptest::prop_assert!(rp.rate <= line);
                proptest::prop_assert!(rp.rate <= rp.target());
                proptest::prop_assert!(rp.alpha() >= 0.0 && rp.alpha() <= 1.0);
            }
        }
    }
}
