//! TIMELY — RTT-gradient rate control (Mittal et al., SIGCOMM 2015),
//! the other major RDMA congestion control the paper names alongside
//! DCQCN ("NS3 has been widely used to evaluate rate control-based
//! schemes, e.g., DCQCN, TIMELY, and PCN").
//!
//! TIMELY needs no switch support at all: the sender adjusts its rate
//! from acknowledgment RTTs. Below `t_low` it increases additively;
//! above `t_high` it decreases multiplicatively; in between it follows
//! the normalized RTT gradient (decrease on rising RTT, additive
//! increase — with a hyper-active mode after several consecutive
//! negative gradients — on falling RTT).

use serde::{Deserialize, Serialize};
use sim_engine::{Rate, SimDuration};

/// TIMELY tuning. Defaults follow the SIGCOMM'15 paper scaled to the
/// 40 Gbps, microsecond-RTT fabric simulated here.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimelyParams {
    /// RTT below which the rate always increases.
    pub t_low: SimDuration,
    /// RTT above which the rate always decreases.
    pub t_high: SimDuration,
    /// Additive increase step.
    pub delta: Rate,
    /// Multiplicative decrease factor β.
    pub beta: f64,
    /// EWMA weight α for the RTT-difference filter.
    pub alpha: f64,
    /// Consecutive negative-gradient completions before hyper-active
    /// increase (N in the paper).
    pub hai_threshold: u32,
    /// Floor on the sending rate.
    pub min_rate: Rate,
    /// Minimum RTT used to normalize the gradient.
    pub min_rtt: SimDuration,
}

impl Default for TimelyParams {
    fn default() -> Self {
        TimelyParams {
            t_low: SimDuration::from_us(20),
            t_high: SimDuration::from_us(200),
            delta: Rate::from_mbps(200),
            beta: 0.8,
            alpha: 0.875,
            hai_threshold: 5,
            min_rate: Rate::from_mbps(100),
            min_rtt: SimDuration::from_us(4),
        }
    }
}

/// Per-flow TIMELY sender state.
#[derive(Clone, Debug)]
pub struct TimelyState {
    /// Current sending rate.
    pub rate: Rate,
    line_rate: Rate,
    prev_rtt_us: Option<f64>,
    /// EWMA of the RTT difference (µs).
    rtt_diff_us: f64,
    /// Consecutive completions with negative gradient.
    neg_streak: u32,
}

impl TimelyState {
    /// Fresh sender at line rate.
    pub fn new(line_rate: Rate) -> Self {
        TimelyState {
            rate: line_rate,
            line_rate,
            prev_rtt_us: None,
            rtt_diff_us: 0.0,
            neg_streak: 0,
        }
    }

    /// Process one RTT sample; returns the new rate (also stored).
    pub fn on_rtt(&mut self, rtt: SimDuration, p: &TimelyParams) -> Rate {
        let rtt_us = rtt.as_us_f64();
        let prev = self.prev_rtt_us.replace(rtt_us);

        if rtt < p.t_low {
            self.neg_streak = 0;
            self.rate = Rate::from_bps(
                (self.rate.as_bps() + p.delta.as_bps()).min(self.line_rate.as_bps()),
            );
            return self.rate;
        }
        if rtt > p.t_high {
            self.neg_streak = 0;
            let f = 1.0 - p.beta * (1.0 - p.t_high.as_us_f64() / rtt_us);
            self.rate = self.rate.scale(f.clamp(0.0, 1.0)).max(p.min_rate);
            return self.rate;
        }

        // Gradient mode.
        let new_diff = prev.map(|pr| rtt_us - pr).unwrap_or(0.0);
        self.rtt_diff_us = (1.0 - p.alpha) * self.rtt_diff_us + p.alpha * new_diff;
        let gradient = self.rtt_diff_us / p.min_rtt.as_us_f64();
        if gradient <= 0.0 {
            self.neg_streak += 1;
            let n = if self.neg_streak >= p.hai_threshold {
                5
            } else {
                1
            };
            self.rate = Rate::from_bps(
                (self.rate.as_bps() + n * p.delta.as_bps()).min(self.line_rate.as_bps()),
            );
        } else {
            self.neg_streak = 0;
            let f = 1.0 - p.beta * gradient.min(1.0);
            self.rate = self.rate.scale(f.max(0.0)).max(p.min_rate);
        }
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> TimelyParams {
        TimelyParams::default()
    }

    #[test]
    fn low_rtt_increases_additively() {
        let mut t = TimelyState::new(Rate::from_gbps(40));
        t.rate = Rate::from_gbps(10);
        let r = t.on_rtt(SimDuration::from_us(10), &p());
        assert_eq!(r, Rate::from_bps(10_000_000_000 + 200_000_000));
    }

    #[test]
    fn high_rtt_decreases_multiplicatively() {
        let mut t = TimelyState::new(Rate::from_gbps(40));
        let r = t.on_rtt(SimDuration::from_us(400), &p());
        // f = 1 - 0.8*(1 - 200/400) = 0.6
        assert!((r.as_gbps_f64() - 24.0).abs() < 0.01, "{r:?}");
    }

    #[test]
    fn rising_gradient_decreases() {
        let mut t = TimelyState::new(Rate::from_gbps(40));
        let _ = t.on_rtt(SimDuration::from_us(50), &p());
        let before = t.rate;
        // RTT jumps 50 -> 100 µs: strong positive gradient.
        let after = t.on_rtt(SimDuration::from_us(100), &p());
        assert!(after < before, "{before:?} -> {after:?}");
    }

    #[test]
    fn falling_gradient_recovers_with_hai() {
        let mut t = TimelyState::new(Rate::from_gbps(40));
        // Crash the rate first.
        for _ in 0..20 {
            t.on_rtt(SimDuration::from_us(500), &p());
        }
        let low = t.rate;
        assert!(low < Rate::from_gbps(2));
        // Falling RTTs inside the band: additive, then hyper-active.
        let mut rtt = 180.0;
        for _ in 0..30 {
            t.on_rtt(SimDuration::from_us_f64(rtt), &p());
            rtt = (rtt - 2.0).max(30.0);
        }
        assert!(
            t.rate.as_bps() > low.as_bps() + 10 * 200_000_000,
            "HAI should recover fast: {low:?} -> {:?}",
            t.rate
        );
    }

    #[test]
    fn bounds_hold_under_any_sequence() {
        let params = p();
        let line = Rate::from_gbps(40);
        let mut t = TimelyState::new(line);
        let rtts = [5u64, 500, 50, 60, 40, 1000, 3, 250, 70, 55];
        for (i, &r) in rtts.iter().cycle().take(500).enumerate() {
            let rate = t.on_rtt(SimDuration::from_us(r + (i as u64 % 7)), &params);
            assert!(rate >= params.min_rate);
            assert!(rate <= line);
        }
    }
}
