//! Network topology: hosts, switches, links, shortest-path routing with
//! flow-hashed ECMP, and the paper's Clos builder.

use serde::{Deserialize, Serialize};
use sim_engine::{Rate, SimDuration};
use std::collections::VecDeque;

/// Index of a node (host or switch) in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Host or switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeKind {
    /// An endpoint with a NIC (Initiator or Target).
    Host,
    /// A forwarding element with ECN/PFC.
    Switch,
}

/// A directed link (one direction of a cable).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Serialization rate.
    pub rate: Rate,
    /// Propagation delay.
    pub delay: SimDuration,
}

/// The static topology: node kinds, adjacency, routing.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    links: Vec<LinkSpec>,
    /// Outgoing link indices per node.
    out_links: Vec<Vec<usize>>,
    /// `next_hop[src][dst]` = candidate outgoing link indices on shortest
    /// paths (ECMP set). Built by [`Topology::build_routes`].
    routes: Vec<Vec<Vec<usize>>>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a node of the given kind; returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        self.kinds.push(kind);
        self.out_links.push(Vec::new());
        NodeId(self.kinds.len() - 1)
    }

    /// Add a host.
    pub fn add_host(&mut self) -> NodeId {
        self.add_node(NodeKind::Host)
    }

    /// Add a switch.
    pub fn add_switch(&mut self) -> NodeId {
        self.add_node(NodeKind::Switch)
    }

    /// Add a bidirectional link (two directed links) between `a` and `b`.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, rate: Rate, delay: SimDuration) {
        for (f, t) in [(a, b), (b, a)] {
            let idx = self.links.len();
            self.links.push(LinkSpec {
                from: f,
                to: t,
                rate,
                delay,
            });
            self.out_links[f.0].push(idx);
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Node kind.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.0]
    }

    /// All hosts.
    pub fn hosts(&self) -> Vec<NodeId> {
        (0..self.n_nodes())
            .map(NodeId)
            .filter(|&n| self.kind(n) == NodeKind::Host)
            .collect()
    }

    /// Link by index.
    pub fn link(&self, idx: usize) -> &LinkSpec {
        &self.links[idx]
    }

    /// Number of directed links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Outgoing link indices of a node.
    pub fn out_links(&self, n: NodeId) -> &[usize] {
        &self.out_links[n.0]
    }

    /// Compute ECMP shortest-path routes (BFS per destination).
    /// Must be called after the topology is final and before
    /// [`Topology::route`].
    pub fn build_routes(&mut self) {
        let n = self.n_nodes();
        let mut routes = vec![vec![Vec::new(); n]; n];
        for dst in 0..n {
            // BFS from dst over reversed links to get distances.
            let mut dist = vec![usize::MAX; n];
            dist[dst] = 0;
            let mut queue = VecDeque::from([dst]);
            while let Some(u) = queue.pop_front() {
                // Incoming links of u = links with to == u.
                for (idx, l) in self.links.iter().enumerate() {
                    let _ = idx;
                    if l.to.0 == u && dist[l.from.0] == usize::MAX {
                        dist[l.from.0] = dist[u] + 1;
                        queue.push_back(l.from.0);
                    }
                }
            }
            // Next hops: links that decrease distance, except that routes
            // never traverse an intermediate host (hosts don't forward).
            for src in 0..n {
                if src == dst || dist[src] == usize::MAX {
                    continue;
                }
                for &li in &self.out_links[src] {
                    let l = &self.links[li];
                    let via = l.to.0;
                    let via_ok = via == dst || self.kinds[via] == NodeKind::Switch;
                    if via_ok && dist[via] != usize::MAX && dist[via] + 1 == dist[src] {
                        routes[src][dst].push(li);
                    }
                }
            }
        }
        self.routes = routes;
    }

    /// The outgoing link a packet of `flow` takes at `at` toward `dst`
    /// (flow-hashed ECMP over the shortest-path set).
    ///
    /// # Panics
    /// Panics if no route exists or routes were not built.
    pub fn route(&self, at: NodeId, dst: NodeId, flow: u64) -> usize {
        let set = &self.routes[at.0][dst.0];
        assert!(
            !set.is_empty(),
            "no route from {:?} to {:?} (routes built: {})",
            at,
            dst,
            !self.routes.is_empty()
        );
        set[(flow as usize) % set.len()]
    }
}

/// Configuration of the paper's Clos testbed (Sec. IV-A): `pods` pods,
/// each with `leaf_per_pod` leaf switches, `tor_per_pod` ToR switches and
/// `hosts_per_pod` hosts; 40 Gbps links with 1 µs delay by default.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClosConfig {
    /// Number of pods.
    pub pods: usize,
    /// Leaf (aggregation) switches per pod.
    pub leaf_per_pod: usize,
    /// Top-of-rack switches per pod.
    pub tor_per_pod: usize,
    /// Hosts per pod (distributed round-robin across its ToRs).
    pub hosts_per_pod: usize,
    /// Link rate.
    pub link_rate: Rate,
    /// Link propagation delay.
    pub link_delay: SimDuration,
    /// Spine switches interconnecting pods (0 for single-pod runs).
    pub spines: usize,
}

impl Default for ClosConfig {
    fn default() -> Self {
        ClosConfig {
            pods: 4,
            leaf_per_pod: 2,
            tor_per_pod: 4,
            hosts_per_pod: 64,
            link_rate: Rate::from_gbps(40),
            link_delay: SimDuration::from_us(1),
            spines: 2,
        }
    }
}

/// A built Clos topology plus the host list.
pub struct Clos {
    /// The topology with routes built.
    pub topology: Topology,
    /// All hosts, pod-major then ToR round-robin order.
    pub hosts: Vec<NodeId>,
}

/// Build a Clos network: hosts — ToR — leaf (— spine — across pods).
pub fn build_clos(cfg: &ClosConfig) -> Clos {
    assert!(cfg.pods >= 1 && cfg.tor_per_pod >= 1 && cfg.leaf_per_pod >= 1);
    let mut t = Topology::new();
    let spines: Vec<NodeId> = (0..cfg.spines).map(|_| t.add_switch()).collect();
    let mut hosts = Vec::new();
    for _pod in 0..cfg.pods {
        let leaves: Vec<NodeId> = (0..cfg.leaf_per_pod).map(|_| t.add_switch()).collect();
        let tors: Vec<NodeId> = (0..cfg.tor_per_pod).map(|_| t.add_switch()).collect();
        for &tor in &tors {
            for &leaf in &leaves {
                t.add_link(tor, leaf, cfg.link_rate, cfg.link_delay);
            }
        }
        for &leaf in &leaves {
            for &spine in &spines {
                t.add_link(leaf, spine, cfg.link_rate, cfg.link_delay);
            }
        }
        for h in 0..cfg.hosts_per_pod {
            let host = t.add_host();
            let tor = tors[h % cfg.tor_per_pod];
            t.add_link(host, tor, cfg.link_rate, cfg.link_delay);
            hosts.push(host);
        }
    }
    t.build_routes();
    Clos { topology: t, hosts }
}

/// A minimal dumbbell: `n` hosts on one switch (the incast scenarios of
/// Sec. IV-D/F use this shape — Initiators and Targets share a ToR).
pub fn build_star(n_hosts: usize, rate: Rate, delay: SimDuration) -> Clos {
    let mut t = Topology::new();
    let sw = t.add_switch();
    let hosts: Vec<NodeId> = (0..n_hosts)
        .map(|_| {
            let h = t.add_host();
            t.add_link(h, sw, rate, delay);
            h
        })
        .collect();
    t.build_routes();
    Clos { topology: t, hosts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_routes() {
        let clos = build_star(3, Rate::from_gbps(40), SimDuration::from_us(1));
        let t = &clos.topology;
        assert_eq!(t.hosts().len(), 3);
        let (a, b) = (clos.hosts[0], clos.hosts[1]);
        // a -> switch -> b: first hop is a's uplink.
        let li = t.route(a, b, 0);
        assert_eq!(t.link(li).from, a);
        let sw = t.link(li).to;
        assert_eq!(t.kind(sw), NodeKind::Switch);
        let l2 = t.route(sw, b, 0);
        assert_eq!(t.link(l2).to, b);
    }

    #[test]
    fn clos_paper_scale() {
        // Sec. IV-A: 4 pods x (2 leaf + 4 ToR) + 64 hosts/pod = 256 hosts.
        let clos = build_clos(&ClosConfig::default());
        assert_eq!(clos.hosts.len(), 256);
        let t = &clos.topology;
        // 2 spines + 4*(2+4) switches + 256 hosts.
        assert_eq!(t.n_nodes(), 2 + 24 + 256);
        // Any two hosts are mutually reachable.
        let (a, b) = (clos.hosts[0], clos.hosts[255]);
        let _ = t.route(a, b, 7);
        let _ = t.route(b, a, 7);
    }

    #[test]
    fn intra_pod_path_is_short() {
        let clos = build_clos(&ClosConfig {
            pods: 1,
            spines: 0,
            hosts_per_pod: 8,
            ..ClosConfig::default()
        });
        let t = &clos.topology;
        // Hosts 0 and 4 share ToR 0 (round-robin over 4 ToRs): path is
        // host -> tor -> host = 2 hops.
        let (a, b) = (clos.hosts[0], clos.hosts[4]);
        let l1 = t.route(a, b, 0);
        let tor = t.link(l1).to;
        let l2 = t.route(tor, b, 0);
        assert_eq!(t.link(l2).to, b);
    }

    #[test]
    fn ecmp_spreads_flows() {
        // Two leaves between ToRs: different flows can take different
        // equal-cost links.
        let clos = build_clos(&ClosConfig {
            pods: 1,
            spines: 0,
            leaf_per_pod: 2,
            tor_per_pod: 2,
            hosts_per_pod: 2,
            ..ClosConfig::default()
        });
        let t = &clos.topology;
        // hosts: 0 -> tor0, 1 -> tor1: inter-ToR traffic crosses a leaf.
        let (a, b) = (clos.hosts[0], clos.hosts[1]);
        let l1 = t.route(a, b, 0);
        let tor = t.link(l1).to;
        let via0 = t.route(tor, b, 0);
        let via1 = t.route(tor, b, 1);
        assert_ne!(via0, via1, "ECMP should hash flows across leaves");
    }

    #[test]
    fn routes_never_transit_hosts() {
        let clos = build_star(4, Rate::from_gbps(40), SimDuration::from_us(1));
        let t = &clos.topology;
        // From the switch, the route to host 2 is the direct link, never
        // via another host.
        let sw = NodeId(0);
        for f in 0..8 {
            let li = t.route(sw, clos.hosts[2], f);
            assert_eq!(t.link(li).to, clos.hosts[2]);
        }
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unreachable_panics() {
        let mut t = Topology::new();
        let a = t.add_host();
        let b = t.add_host();
        t.build_routes();
        let _ = t.route(a, b, 0);
    }
}
