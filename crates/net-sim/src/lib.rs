//! A packet-level RDMA/RoCE network simulator — the NS3-RDMA [24]
//! substitute in this reproduction (see DESIGN.md).
//!
//! Pieces:
//!
//! * [`topology`] — hosts/switches/links, BFS shortest-path routing with
//!   flow-hashed ECMP, and builders for the paper's Clos fabric
//!   (Sec. IV-A: 4 pods × (2 leaf + 4 ToR) × 64 hosts, 40 Gbps, 1 µs)
//!   and a single-switch star for the incast scenarios.
//! * [`dcqcn`] — the DCQCN NP/RP state machines (SIGCOMM'15 [4]).
//! * [`network`] — the simulator: host NICs with per-flow token-bucket
//!   shaping at the DCQCN rate, output-queued switches with RED-style
//!   ECN marking between Kmin/Kmax, PFC XOFF/XON pause frames with
//!   per-ingress accounting, store-and-forward links.
//!
//! The driver (fabric/system-sim) calls [`Network::send`] /
//! [`Network::handle`] and owns the event queue, exactly like the SSD
//! model. [`network::NetStep::rate_changes`] is the signal SRC's
//! controller subscribes to ("a required data sending rate calculated by
//! RDMA Driver", Sec. III).
//!
//! # Example
//!
//! ```
//! use net_sim::{build_star, DcqcnParams, Network, PfcParams, DEFAULT_MTU};
//! use sim_engine::{EventQueue, Rate, SimDuration, SimTime};
//!
//! let clos = build_star(2, Rate::from_gbps(40), SimDuration::from_us(1));
//! let hosts = clos.hosts.clone();
//! let mut net = Network::new(clos.topology, DcqcnParams::default(),
//!     PfcParams::default(), DEFAULT_MTU);
//! let flow = net.add_flow(hosts[0], hosts[1]);
//! let mut q = EventQueue::new();
//! for (t, e) in net.send(flow, 64 * 1024, 7, SimTime::ZERO).schedule {
//!     q.schedule(t, e);
//! }
//! let mut delivered = 0;
//! while let Some((now, ev)) = q.pop() {
//!     let step = net.handle(ev, now);
//!     delivered += step.deliveries.iter().map(|d| d.bytes).sum::<u64>();
//!     for (t, e) in step.schedule { q.schedule(t, e); }
//! }
//! assert_eq!(delivered, 64 * 1024);
//! ```

pub mod dcqcn;
pub mod network;
pub mod timely;
pub mod topology;

pub use dcqcn::{DcqcnParams, NpState, RpStage, RpState};
pub use network::{CcMode, Delivery, FlowId, NetEvent, NetStep, Network, PfcParams};
pub use timely::{TimelyParams, TimelyState};
pub use topology::{build_clos, build_star, Clos, ClosConfig, NodeId, NodeKind, Topology};

/// Default RoCE MTU used by the simulators (4096-byte frames keep event
/// counts tractable while staying a realistic RoCE MTU).
pub const DEFAULT_MTU: u64 = 4096;
