//! Scenario tests for the network simulator: single-flow throughput,
//! incast congestion with ECN/CNP/PFC, DCQCN rate cuts and recovery.

use net_sim::network::{Delivery, NetEvent, Network};
use net_sim::topology::build_star;
use net_sim::{DcqcnParams, FlowId, NodeId, PfcParams, DEFAULT_MTU};
use sim_engine::{EventQueue, Rate, SimDuration, SimTime};

/// Drive the network until quiescence (or an event budget runs out).
/// Returns deliveries with their times and the rate-change log.
struct RunResult {
    deliveries: Vec<(SimTime, Delivery)>,
    rate_changes: Vec<(SimTime, FlowId, Rate)>,
    pauses: Vec<(SimTime, NodeId)>,
    end: SimTime,
}

fn run(net: &mut Network, initial: Vec<(SimTime, NetEvent)>, max_events: usize) -> RunResult {
    let mut q: EventQueue<NetEvent> = EventQueue::new();
    for (t, e) in initial {
        q.schedule(t, e);
    }
    let mut res = RunResult {
        deliveries: Vec::new(),
        rate_changes: Vec::new(),
        pauses: Vec::new(),
        end: SimTime::ZERO,
    };
    let mut n = 0;
    while let Some((now, ev)) = q.pop() {
        n += 1;
        assert!(n <= max_events, "event budget exceeded — livelock?");
        let step = net.handle(ev, now);
        for d in step.deliveries {
            res.deliveries.push((now, d));
        }
        for (f, r) in step.rate_changes {
            res.rate_changes.push((now, f, r));
        }
        for h in step.pauses_received {
            res.pauses.push((now, h));
        }
        for (t, e) in step.schedule {
            q.schedule(t, e);
        }
        res.end = now;
    }
    res
}

fn star(n: usize) -> (Network, Vec<NodeId>) {
    let clos = build_star(n, Rate::from_gbps(40), SimDuration::from_us(1));
    let hosts = clos.hosts.clone();
    let net = Network::new(
        clos.topology,
        DcqcnParams::default(),
        PfcParams::default(),
        DEFAULT_MTU,
    );
    (net, hosts)
}

#[test]
fn single_flow_achieves_line_rate() {
    let (mut net, hosts) = star(2);
    let f = net.add_flow(hosts[0], hosts[1]);
    // 4 MB transfer over 40 Gbps ≈ 800 µs + small per-hop overheads.
    let bytes = 4 * 1024 * 1024u64;
    let step = net.send(f, bytes, 1, SimTime::ZERO);
    let res = run(&mut net, step.schedule, 1_000_000);
    let delivered: u64 = res.deliveries.iter().map(|(_, d)| d.bytes).sum();
    assert_eq!(delivered, bytes);
    assert!(res.deliveries.iter().any(|(_, d)| d.last));
    let dur = res.deliveries.last().unwrap().0.since(SimTime::ZERO);
    let gbps = delivered as f64 * 8.0 / dur.as_secs_f64() / 1e9;
    assert!(gbps > 35.0, "achieved only {gbps} Gbps");
    assert!(gbps <= 40.0 + 1e-6);
    assert!(net.is_quiescent());
    // No congestion signals on an uncontended path.
    assert_eq!(net.cnps_sent(), 0);
    assert!(res.pauses.is_empty());
}

#[test]
fn messages_deliver_in_order_with_tags() {
    let (mut net, hosts) = star(2);
    let f = net.add_flow(hosts[0], hosts[1]);
    let mut init = Vec::new();
    init.extend(net.send(f, 10_000, 1, SimTime::ZERO).schedule);
    init.extend(net.send(f, 10_000, 2, SimTime::ZERO).schedule);
    let res = run(&mut net, init, 100_000);
    let lasts: Vec<u64> = res
        .deliveries
        .iter()
        .filter(|(_, d)| d.last)
        .map(|(_, d)| d.tag)
        .collect();
    assert_eq!(lasts, vec![1, 2]);
    let total: u64 = res.deliveries.iter().map(|(_, d)| d.bytes).sum();
    assert_eq!(total, 20_000);
}

#[test]
fn incast_triggers_ecn_cnp_and_rate_cuts() {
    // 8 senders blast one receiver: the shared downlink congests.
    let (mut net, hosts) = star(9);
    let dst = hosts[8];
    let flows: Vec<FlowId> = (0..8).map(|i| net.add_flow(hosts[i], dst)).collect();
    let mut init = Vec::new();
    for (i, &f) in flows.iter().enumerate() {
        init.extend(
            net.send(f, 3 * 1024 * 1024, i as u64, SimTime::ZERO)
                .schedule,
        );
    }
    let res = run(&mut net, init, 40_000_000);
    let delivered: u64 = res.deliveries.iter().map(|(_, d)| d.bytes).sum();
    assert_eq!(delivered, 8 * 3 * 1024 * 1024);
    assert!(net.ecn_marked() > 0, "ECN should mark under incast");
    assert!(net.cnps_sent() > 0, "CNPs should be generated");
    // Rate cuts observed on at least one flow.
    let min_rate = res
        .rate_changes
        .iter()
        .map(|(_, _, r)| *r)
        .min()
        .expect("rate changes recorded");
    assert!(
        min_rate < Rate::from_gbps(20),
        "DCQCN should cut below half line rate, min={min_rate:?}"
    );
    // Aggregate goodput still close to the bottleneck line rate.
    let dur = res.deliveries.last().unwrap().0.since(SimTime::ZERO);
    let gbps = delivered as f64 * 8.0 / dur.as_secs_f64() / 1e9;
    // DCQCN trades utilization for queue control during transient
    // incast — with shallow marking thresholds and slow additive
    // recovery it sacrifices a lot of bandwidth at high incast degree.
    // Expect a meaningful fraction of line rate, not all of it.
    assert!(gbps > 8.0, "aggregate goodput {gbps} too low");
    assert!(gbps <= 40.0 + 1e-6);
}

#[test]
fn severe_incast_generates_pfc_pauses() {
    // Many senders + aggressive PFC thresholds: pauses must reach hosts.
    let clos = build_star(17, Rate::from_gbps(40), SimDuration::from_us(1));
    let hosts = clos.hosts.clone();
    let mut net = Network::new(
        clos.topology,
        DcqcnParams::default(),
        PfcParams {
            xoff_bytes: 64 * 1024,
            xon_bytes: 32 * 1024,
        },
        DEFAULT_MTU,
    );
    let dst = hosts[16];
    let mut init = Vec::new();
    for (i, &h) in hosts.iter().take(16).enumerate() {
        let f = net.add_flow(h, dst);
        init.extend(
            net.send(f, 2 * 1024 * 1024, i as u64, SimTime::ZERO)
                .schedule,
        );
    }
    let res = run(&mut net, init, 60_000_000);
    assert!(!res.pauses.is_empty(), "PFC pauses should fire");
    // Pause counters are per host.
    let total: u64 = (0..16).map(|i| net.host_pause_count(hosts[i])).sum();
    assert_eq!(total as usize, res.pauses.len());
    // All data still delivered (lossless fabric).
    let delivered: u64 = res.deliveries.iter().map(|(_, d)| d.bytes).sum();
    assert_eq!(delivered, 16 * 2 * 1024 * 1024);
}

#[test]
fn rate_recovers_after_congestion() {
    let (mut net, hosts) = star(3);
    let f0 = net.add_flow(hosts[0], hosts[2]);
    let f1 = net.add_flow(hosts[1], hosts[2]);
    let mut init = Vec::new();
    init.extend(net.send(f0, 8 * 1024 * 1024, 0, SimTime::ZERO).schedule);
    init.extend(net.send(f1, 8 * 1024 * 1024, 1, SimTime::ZERO).schedule);
    let res = run(&mut net, init, 40_000_000);
    // After everything drains and recovery timers run, both flows should
    // have recovered to (near) line rate.
    let final_rate = net.flow_rate(f0).max(net.flow_rate(f1));
    assert!(
        final_rate.as_gbps_f64() > 35.0,
        "rates should recover, got {final_rate:?}"
    );
    assert!(net.is_quiescent());
    let _ = res;
}

#[test]
fn backlog_accounting() {
    let (mut net, hosts) = star(2);
    let f = net.add_flow(hosts[0], hosts[1]);
    let step = net.send(f, 100_000, 0, SimTime::ZERO);
    // One packet is already serializing; the rest is backlog.
    assert!(net.flow_backlog_bytes(f) < 100_000);
    assert!(net.flow_backlog_bytes(f) > 0);
    assert_eq!(net.host_backlog_bytes(hosts[0]), net.flow_backlog_bytes(f));
    assert_eq!(net.host_backlog_bytes(hosts[1]), 0);
    let res = run(&mut net, step.schedule, 100_000);
    assert_eq!(net.flow_backlog_bytes(f), 0);
    let _ = res;
}

#[test]
fn determinism() {
    let mk = || {
        let (mut net, hosts) = star(5);
        let mut init = Vec::new();
        for i in 0..4 {
            let f = net.add_flow(hosts[i], hosts[4]);
            init.extend(net.send(f, 1024 * 1024, i as u64, SimTime::ZERO).schedule);
        }
        let res = run(&mut net, init, 10_000_000);
        (
            res.deliveries.len(),
            res.end,
            net.ecn_marked(),
            net.cnps_sent(),
        )
    };
    assert_eq!(mk(), mk());
}
