//! Scenario tests for TIMELY rate control.

use net_sim::network::{NetEvent, Network};
use net_sim::topology::build_star;
use net_sim::{DcqcnParams, PfcParams, TimelyParams, DEFAULT_MTU};
use sim_engine::{EventQueue, Rate, SimDuration, SimTime};

fn timely_star(n: usize) -> (Network, Vec<net_sim::NodeId>) {
    let clos = build_star(n, Rate::from_gbps(40), SimDuration::from_us(1));
    let hosts = clos.hosts.clone();
    let mut net = Network::new(
        clos.topology,
        DcqcnParams::default(),
        PfcParams::default(),
        DEFAULT_MTU,
    );
    net.use_timely(TimelyParams::default());
    (net, hosts)
}

struct Run {
    delivered: u64,
    min_rate: Rate,
    end: SimTime,
}

fn run(net: &mut Network, init: Vec<(SimTime, NetEvent)>, max: usize) -> Run {
    let mut q = EventQueue::new();
    for (t, e) in init {
        q.schedule(t, e);
    }
    let mut out = Run {
        delivered: 0,
        min_rate: Rate::from_gbps(1_000),
        end: SimTime::ZERO,
    };
    let mut n = 0;
    while let Some((now, ev)) = q.pop() {
        n += 1;
        assert!(n <= max, "event budget exceeded");
        let step = net.handle(ev, now);
        for d in &step.deliveries {
            out.delivered += d.bytes;
            out.end = now;
        }
        for (_, r) in &step.rate_changes {
            out.min_rate = out.min_rate.min(*r);
        }
        for (t, e) in step.schedule {
            q.schedule(t, e);
        }
    }
    out
}

#[test]
fn single_flow_unharmed_by_timely() {
    let (mut net, hosts) = timely_star(2);
    let f = net.add_flow(hosts[0], hosts[1]);
    let bytes = 2 * 1024 * 1024u64;
    let init = net.send(f, bytes, 1, SimTime::ZERO).schedule;
    let r = run(&mut net, init, 4_000_000);
    assert_eq!(r.delivered, bytes);
    let gbps = r.delivered as f64 * 8.0 / r.end.as_secs_f64() / 1e9;
    // Uncongested RTTs sit near t_low: the rate stays high.
    assert!(gbps > 25.0, "single flow got {gbps:.1} Gbps under TIMELY");
    // No CNPs in TIMELY mode, ever.
    assert_eq!(net.cnps_sent(), 0);
}

#[test]
fn timely_incast_cuts_rates_and_delivers_everything() {
    let (mut net, hosts) = timely_star(9);
    let mut init = Vec::new();
    for i in 0..8 {
        let f = net.add_flow(hosts[i], hosts[8]);
        init.extend(
            net.send(f, 2 * 1024 * 1024, i as u64, SimTime::ZERO)
                .schedule,
        );
    }
    let r = run(&mut net, init, 40_000_000);
    assert_eq!(r.delivered, 8 * 2 * 1024 * 1024);
    // Queue buildup inflates RTT -> TIMELY cuts well below line rate.
    assert!(
        r.min_rate < Rate::from_gbps(10),
        "TIMELY should cut rates under incast, min={:?}",
        r.min_rate
    );
    assert_eq!(net.cnps_sent(), 0, "no DCQCN machinery in TIMELY mode");
    assert!(net.is_quiescent());
}

#[test]
fn timely_and_dcqcn_both_control_the_same_incast() {
    // Same offered load under the two schemes: both must deliver all
    // bytes and both must throttle; they are interchangeable as the
    // congestion control under SRC.
    let mk = |timely: bool| {
        let clos = build_star(7, Rate::from_gbps(40), SimDuration::from_us(1));
        let hosts = clos.hosts.clone();
        let mut net = Network::new(
            clos.topology,
            DcqcnParams::default(),
            PfcParams::default(),
            DEFAULT_MTU,
        );
        if timely {
            net.use_timely(TimelyParams::default());
        }
        let mut init = Vec::new();
        for i in 0..6 {
            let f = net.add_flow(hosts[i], hosts[6]);
            init.extend(net.send(f, 1024 * 1024, i as u64, SimTime::ZERO).schedule);
        }
        run(&mut net, init, 40_000_000)
    };
    let t = mk(true);
    let d = mk(false);
    assert_eq!(t.delivered, d.delivered);
    assert!(t.min_rate < Rate::from_gbps(20));
    assert!(d.min_rate < Rate::from_gbps(20));
}
