//! Property test: packet-burst coalescing is unobservable.
//!
//! The coalesced pump elides final-hop `Arrive` events for non-last,
//! unmarked data packets and expands their delivery timestamps
//! arithmetically from a per-port ledger. Everything the rest of the
//! system can see must be identical with the fast path on or off:
//!
//! - per-flow delivery sequences `(tag, bytes, last)`, in order;
//! - the timing of every *last* delivery (the only deliveries whose
//!   timing is observable — message completion);
//! - the full DCQCN rate-change log and PFC pause log;
//! - ECN/CNP counters and total delivered bytes.
//!
//! What is deliberately *not* compared: the cross-flow interleaving of
//! non-last deliveries, whose drain timing the coalescer batches. No
//! consumer observes it (the system layer drops non-last deliveries on
//! the floor), and relaxing it is exactly where the saved events come
//! from.
//!
//! Scenarios cover the hard cases: incast congestion (ECN marks, CNPs,
//! DCQCN rate cuts mid-flight), PFC pauses, and fault windows opening
//! mid-run (degrade and loss — the setters must de-coalesce the link
//! without perturbing the shared fault draw sequence).

use net_sim::network::{NetEvent, NetStep, Network};
use net_sim::topology::build_star;
use net_sim::{DcqcnParams, FlowId, NodeId, PfcParams, DEFAULT_MTU};
use proptest::prelude::*;
use sim_engine::{EventQueue, Rate, SimDuration, SimTime};
use std::collections::BTreeMap;

#[derive(Clone, Copy, Debug)]
enum Fault {
    None,
    /// Degrade `link_pick % n_links` at `at_us`: halve bandwidth, add
    /// 5 µs delay; cleared 300 µs later.
    Degrade {
        link_pick: usize,
        at_us: u64,
    },
    /// 20 % data loss on `link_pick % n_links` at `at_us`; cleared
    /// 300 µs later.
    Loss {
        link_pick: usize,
        at_us: u64,
    },
}

/// Everything observable about a run, in comparable form.
#[derive(Debug, PartialEq)]
struct Observable {
    /// Per-flow delivery sequence: (tag, bytes, last).
    per_flow: BTreeMap<usize, Vec<(u64, u64, bool)>>,
    /// Every last-packet delivery with its exact time.
    lasts: Vec<(SimTime, usize, u64)>,
    rate_changes: Vec<(SimTime, FlowId, Rate)>,
    pauses: Vec<(SimTime, NodeId)>,
    ecn_marked: u64,
    cnps_sent: u64,
    total_bytes: u64,
}

fn apply_fault(net: &mut Network, f: &Fault, phase: u8, t: SimTime, step: &mut NetStep) {
    match (f, phase) {
        (Fault::None, _) => {}
        (Fault::Degrade { link_pick, .. }, 0) => {
            let link = link_pick % net.topology().n_links();
            net.set_link_degrade(link, 0.5, SimDuration::from_us(5), t, step);
        }
        (Fault::Degrade { link_pick, .. }, _) => {
            net.clear_link_degrade(link_pick % net.topology().n_links());
        }
        (Fault::Loss { link_pick, .. }, 0) => {
            let link = link_pick % net.topology().n_links();
            net.set_link_loss(link, 0.2, t, step);
        }
        (Fault::Loss { link_pick, .. }, _) => {
            net.clear_link_loss(link_pick % net.topology().n_links());
        }
    }
}

/// Build the star, inject the message schedule, pump to quiescence.
fn run(
    n_senders: usize,
    messages: &[(usize, u64, u64)],
    fault: Fault,
    coalescing: bool,
) -> Observable {
    let clos = build_star(n_senders + 1, Rate::from_gbps(40), SimDuration::from_us(1));
    let hosts = clos.hosts.clone();
    let mut net = Network::new(
        clos.topology,
        DcqcnParams::default(),
        PfcParams::default(),
        DEFAULT_MTU,
    );
    net.set_fault_seed(7);
    net.set_coalescing(coalescing);
    let dst = hosts[n_senders];
    let flows: Vec<FlowId> = (0..n_senders)
        .map(|i| net.add_flow(hosts[i], dst))
        .collect();

    let mut q: EventQueue<NetEvent> = EventQueue::new();
    for (i, &(sender, bytes, start_us)) in messages.iter().enumerate() {
        let step = net.send(
            flows[sender % n_senders],
            bytes,
            i as u64,
            SimTime::ZERO + SimDuration::from_us(start_us),
        );
        for (t, e) in step.schedule {
            q.schedule(t, e);
        }
    }

    let mut actions: Vec<(SimTime, u8)> = match fault {
        Fault::None => Vec::new(),
        Fault::Degrade { at_us, .. } | Fault::Loss { at_us, .. } => {
            let at = SimTime::ZERO + SimDuration::from_us(at_us);
            vec![(at, 0), (at + SimDuration::from_us(300), 1)]
        }
    };
    actions.reverse(); // pop() takes the earliest

    let mut obs = Observable {
        per_flow: BTreeMap::new(),
        lasts: Vec::new(),
        rate_changes: Vec::new(),
        pauses: Vec::new(),
        ecn_marked: 0,
        cnps_sent: 0,
        total_bytes: 0,
    };
    let mut step = NetStep::default();
    let mut budget = 10_000_000u64;
    loop {
        // Fault transitions fire between events, at their own times.
        let next_event_t = q.peek_time();
        if let Some(&(at, phase)) = actions.last() {
            if next_event_t.is_none() || at <= next_event_t.unwrap() {
                actions.pop();
                step.clear();
                apply_fault(&mut net, &fault, phase, at, &mut step);
                record(&mut obs, at, &step);
                for (t, e) in step.schedule.drain(..) {
                    q.schedule(t, e);
                }
                continue;
            }
        }
        let Some((now, ev)) = q.pop() else { break };
        budget -= 1;
        assert!(budget > 0, "event budget exceeded — livelock?");
        step.clear();
        net.handle_into(ev, now, &mut step);
        record(&mut obs, now, &step);
        for (t, e) in step.schedule.drain(..) {
            q.schedule(t, e);
        }
    }
    assert!(net.is_quiescent() || matches!(fault, Fault::Loss { .. }));
    obs.ecn_marked = net.ecn_marked();
    obs.cnps_sent = net.cnps_sent();
    obs
}

fn record(obs: &mut Observable, now: SimTime, step: &NetStep) {
    for d in &step.deliveries {
        obs.per_flow
            .entry(d.flow.0)
            .or_default()
            .push((d.tag, d.bytes, d.last));
        if d.last {
            obs.lasts.push((now, d.flow.0, d.tag));
        }
        obs.total_bytes += d.bytes;
    }
    for &(f, r) in &step.rate_changes {
        obs.rate_changes.push((now, f, r));
    }
    for &h in &step.pauses_received {
        obs.pauses.push((now, h));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Coalesced and per-packet pumps produce identical observables
    /// under incast congestion, CNP-driven rate cuts, and mid-run
    /// fault windows.
    #[test]
    fn prop_coalescing_is_unobservable(
        n_senders in 2usize..6,
        messages in proptest::collection::vec(
            (0usize..8, 5_000u64..400_000, 0u64..300), 2..14),
        fault_kind in 0usize..3,
        link_pick in 0usize..16,
        at_us in 50u64..400,
    ) {
        let fault = match fault_kind {
            0 => Fault::None,
            1 => Fault::Degrade { link_pick, at_us },
            _ => Fault::Loss { link_pick, at_us },
        };
        let fast = run(n_senders, &messages, fault, true);
        let reference = run(n_senders, &messages, fault, false);
        prop_assert_eq!(&fast.per_flow, &reference.per_flow);
        prop_assert_eq!(&fast.lasts, &reference.lasts);
        prop_assert_eq!(&fast.rate_changes, &reference.rate_changes);
        prop_assert_eq!(&fast.pauses, &reference.pauses);
        prop_assert_eq!(fast.ecn_marked, reference.ecn_marked);
        prop_assert_eq!(fast.cnps_sent, reference.cnps_sent);
        prop_assert_eq!(fast.total_bytes, reference.total_bytes);
    }
}
