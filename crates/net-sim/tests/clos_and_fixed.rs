//! Scenarios on the Clos fabric and with fixed-rate (CC-exempt) flows.

use net_sim::network::{NetEvent, Network};
use net_sim::topology::{build_clos, ClosConfig};
use net_sim::{DcqcnParams, PfcParams, DEFAULT_MTU};
use sim_engine::{EventQueue, Rate, SimDuration, SimTime};

fn drive(net: &mut Network, init: Vec<(SimTime, NetEvent)>, max: usize) -> (u64, SimTime) {
    let mut q = EventQueue::new();
    for (t, e) in init {
        q.schedule(t, e);
    }
    let mut delivered = 0u64;
    let mut end = SimTime::ZERO;
    let mut n = 0usize;
    while let Some((now, ev)) = q.pop() {
        n += 1;
        assert!(n <= max, "event budget exceeded");
        let step = net.handle(ev, now);
        for d in &step.deliveries {
            delivered += d.bytes;
        }
        if !step.deliveries.is_empty() {
            end = now;
        }
        for (t, e) in step.schedule {
            q.schedule(t, e);
        }
    }
    (delivered, end)
}

#[test]
fn clos_cross_pod_transfer() {
    // Full paper-scale Clos: host in pod 0 sends to a host in pod 3
    // through ToR -> leaf -> spine -> leaf -> ToR.
    let clos = build_clos(&ClosConfig::default());
    let (a, b) = (clos.hosts[0], clos.hosts[255]);
    let mut net = Network::new(
        clos.topology,
        DcqcnParams::default(),
        PfcParams::default(),
        DEFAULT_MTU,
    );
    let f = net.add_flow(a, b);
    let bytes = 1024 * 1024u64;
    let init = net.send(f, bytes, 1, SimTime::ZERO).schedule;
    let (delivered, end) = drive(&mut net, init, 2_000_000);
    assert_eq!(delivered, bytes);
    // 5 hops of 1 µs propagation + serialization: a 1 MiB transfer at
    // 40 Gbps takes >= 200 µs.
    assert!(end >= SimTime::from_us(200), "end={end}");
    assert!(net.is_quiescent());
}

#[test]
fn clos_intra_pod_parallel_transfers() {
    // Many pairs inside one pod, disjoint ToRs: all complete, ECMP
    // spreads over the two leaves, no starvation.
    let clos = build_clos(&ClosConfig {
        pods: 1,
        spines: 0,
        hosts_per_pod: 16,
        ..ClosConfig::default()
    });
    let hosts = clos.hosts.clone();
    let mut net = Network::new(
        clos.topology,
        DcqcnParams::default(),
        PfcParams::default(),
        DEFAULT_MTU,
    );
    let mut init = Vec::new();
    let per_flow = 256 * 1024u64;
    let mut flows = 0u64;
    for i in 0..8 {
        let f = net.add_flow(hosts[i], hosts[15 - i]);
        init.extend(net.send(f, per_flow, i as u64, SimTime::ZERO).schedule);
        flows += 1;
    }
    let (delivered, _) = drive(&mut net, init, 4_000_000);
    assert_eq!(delivered, flows * per_flow);
}

#[test]
fn fixed_rate_flow_is_shaped_and_cc_exempt() {
    let clos = net_sim::build_star(3, Rate::from_gbps(40), SimDuration::from_us(1));
    let hosts = clos.hosts.clone();
    let mut net = Network::new(
        clos.topology,
        DcqcnParams::default(),
        PfcParams::default(),
        DEFAULT_MTU,
    );
    // A fixed 2 Gbps flow and an adaptive flow sharing the same
    // destination link.
    let fixed = net.add_fixed_rate_flow(hosts[0], hosts[2], Rate::from_gbps(2));
    let adaptive = net.add_flow(hosts[1], hosts[2]);
    let mut init = Vec::new();
    init.extend(net.send(fixed, 2 * 1024 * 1024, 0, SimTime::ZERO).schedule);
    init.extend(
        net.send(adaptive, 2 * 1024 * 1024, 1, SimTime::ZERO)
            .schedule,
    );
    let mut q = EventQueue::new();
    for (t, e) in init {
        q.schedule(t, e);
    }
    let mut fixed_bytes = 0u64;
    let mut fixed_last = SimTime::ZERO;
    let mut n = 0;
    while let Some((now, ev)) = q.pop() {
        n += 1;
        assert!(n < 10_000_000);
        let step = net.handle(ev, now);
        for d in &step.deliveries {
            if d.flow == fixed {
                fixed_bytes += d.bytes;
                fixed_last = now;
            }
        }
        for (t, e) in step.schedule {
            q.schedule(t, e);
        }
    }
    assert_eq!(fixed_bytes, 2 * 1024 * 1024);
    // Shaped at ~2 Gbps: 16.8 Mbit / 2 Gbps ≈ 8.4 ms (allow slack for
    // the initial bucket burst).
    let gbps = fixed_bytes as f64 * 8.0 / fixed_last.as_secs_f64() / 1e9;
    assert!(
        (gbps - 2.0).abs() < 0.3,
        "fixed flow should hold ~2 Gbps, got {gbps:.2}"
    );
    // The fixed flow's rate never changed (CC-exempt).
    assert_eq!(net.flow_rate(fixed), Rate::from_gbps(2));
}

#[test]
fn fixed_rate_flows_never_generate_cnps() {
    // A fixed-rate overload of one link must not generate CNPs (its
    // receiver is exempt), even though ECN marks its packets.
    let clos = net_sim::build_star(4, Rate::from_gbps(40), SimDuration::from_us(1));
    let hosts = clos.hosts.clone();
    let mut net = Network::new(
        clos.topology,
        DcqcnParams::default(),
        PfcParams::default(),
        DEFAULT_MTU,
    );
    let mut init = Vec::new();
    for i in 0..3 {
        let f = net.add_fixed_rate_flow(hosts[i], hosts[3], Rate::from_gbps(20));
        init.extend(
            net.send(f, 4 * 1024 * 1024, i as u64, SimTime::ZERO)
                .schedule,
        );
    }
    let (delivered, _) = drive(&mut net, init, 20_000_000);
    assert_eq!(delivered, 3 * 4 * 1024 * 1024);
    assert!(net.ecn_marked() > 0, "overload should mark");
    assert_eq!(net.cnps_sent(), 0, "fixed-rate flows are CC-exempt");
}

#[test]
fn lossless_conservation_under_mixed_load() {
    // Adaptive + fixed flows, PFC thresholds tight: every byte sent is
    // delivered exactly once (lossless fabric).
    let clos = net_sim::build_star(6, Rate::from_gbps(40), SimDuration::from_us(1));
    let hosts = clos.hosts.clone();
    let mut net = Network::new(
        clos.topology,
        DcqcnParams::default(),
        PfcParams {
            xoff_bytes: 64 * 1024,
            xon_bytes: 32 * 1024,
        },
        DEFAULT_MTU,
    );
    let mut init = Vec::new();
    let mut expected = 0u64;
    for i in 0..4 {
        let f = if i % 2 == 0 {
            net.add_flow(hosts[i], hosts[5])
        } else {
            net.add_fixed_rate_flow(hosts[i], hosts[5], Rate::from_gbps(15))
        };
        let bytes = (i as u64 + 1) * 777_777;
        expected += bytes;
        init.extend(net.send(f, bytes, i as u64, SimTime::ZERO).schedule);
    }
    let (delivered, _) = drive(&mut net, init, 40_000_000);
    assert_eq!(delivered, expected);
    assert!(net.is_quiescent());
}
