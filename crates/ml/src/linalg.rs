//! Minimal dense linear algebra: just enough to solve the normal
//! equations of (polynomial) least squares.

/// Solve `A x = b` for square `A` by Gaussian elimination with partial
/// pivoting. `a` is row-major `n × n`, consumed; `b` has length `n`.
///
/// Returns `None` when the matrix is numerically singular.
#[allow(clippy::needless_range_loop)] // index form mirrors the math
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = a.len();
    assert!(a.iter().all(|r| r.len() == n), "matrix must be square");
    assert_eq!(b.len(), n, "rhs length must match");
    for col in 0..n {
        // Partial pivot: the row with the largest |a[row][col]|.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("no NaN in matrix")
            })
            .expect("nonempty range");
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let inv = 1.0 / a[col][col];
        for row in col + 1..n {
            let factor = a[row][col] * inv;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Compute `X^T X + ridge*I` (as `p × p`) and `X^T Y` (as `p × m`) for a
/// design matrix `X` (`n × p`, rows) and targets `Y` (`n × m`).
#[allow(clippy::needless_range_loop)] // index form mirrors the math
pub fn normal_equations(
    x: &[Vec<f64>],
    y: &[Vec<f64>],
    ridge: f64,
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let n = x.len();
    assert_eq!(n, y.len());
    let p = x.first().map_or(0, |r| r.len());
    let m = y.first().map_or(0, |r| r.len());
    let mut xtx = vec![vec![0.0; p]; p];
    let mut xty = vec![vec![0.0; m]; p];
    for (xi, yi) in x.iter().zip(y) {
        for a in 0..p {
            let xa = xi[a];
            if xa == 0.0 {
                continue;
            }
            for b in a..p {
                xtx[a][b] += xa * xi[b];
            }
            for (o, &yv) in yi.iter().enumerate() {
                xty[a][o] += xa * yv;
            }
        }
    }
    // Mirror the upper triangle and add the ridge.
    for a in 0..p {
        for b in 0..a {
            xtx[a][b] = xtx[b][a];
        }
        xtx[a][a] += ridge;
    }
    (xtx, xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_simple_system() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading() {
        // Leading zero requires a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn normal_equations_shapes_and_values() {
        // X = [[1,2],[3,4]], Y = [[1],[2]].
        let x = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let y = vec![vec![1.0], vec![2.0]];
        let (xtx, xty) = normal_equations(&x, &y, 0.0);
        assert_eq!(xtx, vec![vec![10.0, 14.0], vec![14.0, 20.0]]);
        assert_eq!(xty, vec![vec![7.0], vec![10.0]]);
        let (ridged, _) = normal_equations(&x, &y, 0.5);
        assert_eq!(ridged[0][0], 10.5);
        assert_eq!(ridged[1][1], 20.5);
        assert_eq!(ridged[0][1], 14.0);
    }

    #[test]
    fn larger_random_system_round_trip() {
        // Build A = M^T M + I (SPD) and a known x; verify solve recovers x.
        let n = 8;
        let m: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| ((i * 31 + j * 17) % 13) as f64 / 13.0)
                    .collect()
            })
            .collect();
        let (a, _) = normal_equations(&m, &vec![vec![0.0]; n], 1.0);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a[i][j] * x_true[j]).sum())
            .collect();
        let x = solve(a, b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }
}
