//! Ordinary least squares (multi-output), solved through the normal
//! equations with a tiny ridge term for numerical robustness.

use crate::dataset::Dataset;
use crate::linalg::{normal_equations, solve};
use crate::Regressor;

/// A fitted multi-output linear model: `y = W x + b`.
#[derive(Clone, Debug)]
pub struct LinearRegression {
    /// `weights[o]` is the coefficient vector for output `o`.
    weights: Vec<Vec<f64>>,
    /// Per-output intercepts.
    intercepts: Vec<f64>,
}

/// Ridge regularization applied to the normal equations. Small enough to
/// be invisible on well-conditioned data, large enough to keep nearly
/// collinear feature sets solvable.
const RIDGE: f64 = 1e-8;

impl LinearRegression {
    /// Fit by least squares.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> Self {
        Self::fit_design(&data.x, &data.y)
    }

    /// Fit on an explicit design matrix (used by
    /// [`crate::poly::PolynomialRegression`] after feature expansion).
    pub fn fit_design(x: &[Vec<f64>], y: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        let p = x[0].len();
        let m = y[0].len();
        // Augment with a bias column.
        let design: Vec<Vec<f64>> = x
            .iter()
            .map(|r| {
                let mut d = Vec::with_capacity(p + 1);
                d.extend_from_slice(r);
                d.push(1.0);
                d
            })
            .collect();
        let (xtx, xty) = normal_equations(&design, y, RIDGE);
        let mut weights = vec![vec![0.0; p]; m];
        let mut intercepts = vec![0.0; m];
        for o in 0..m {
            let rhs: Vec<f64> = xty.iter().map(|row| row[o]).collect();
            let sol = solve(xtx.clone(), rhs)
                .expect("ridge-regularized normal equations are nonsingular");
            weights[o].copy_from_slice(&sol[..p]);
            intercepts[o] = sol[p];
        }
        LinearRegression {
            weights,
            intercepts,
        }
    }

    /// Coefficients for output `o`.
    pub fn coefficients(&self, o: usize) -> &[f64] {
        &self.weights[o]
    }

    /// Intercept for output `o`.
    pub fn intercept(&self, o: usize) -> f64 {
        self.intercepts[o]
    }
}

impl Regressor for LinearRegression {
    fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.intercepts)
            .map(|(w, b)| w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score_multi;

    #[test]
    fn recovers_exact_linear_map() {
        // y0 = 2a - b + 3 ; y1 = a + 4b - 1
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64])
            .collect();
        let y: Vec<Vec<f64>> = x
            .iter()
            .map(|r| vec![2.0 * r[0] - r[1] + 3.0, r[0] + 4.0 * r[1] - 1.0])
            .collect();
        let m = LinearRegression::fit(&Dataset::new(x.clone(), y.clone()));
        assert!((m.coefficients(0)[0] - 2.0).abs() < 1e-6);
        assert!((m.coefficients(0)[1] + 1.0).abs() < 1e-6);
        assert!((m.intercept(0) - 3.0).abs() < 1e-5);
        assert!((m.intercept(1) + 1.0).abs() < 1e-5);
        let pred = m.predict(&x);
        assert!(r2_score_multi(&y, &pred) > 1.0 - 1e-9);
    }

    #[test]
    fn collinear_features_survive_via_ridge() {
        // Second feature is an exact copy of the first.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<Vec<f64>> = (0..20).map(|i| vec![3.0 * i as f64]).collect();
        let m = LinearRegression::fit(&Dataset::new(x.clone(), y.clone()));
        let pred = m.predict(&x);
        assert!(r2_score_multi(&y, &pred) > 0.999);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_rejected() {
        let _ = LinearRegression::fit(&Dataset::default());
    }

    #[test]
    fn constant_target() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![vec![7.0]; 10];
        let m = LinearRegression::fit(&Dataset::new(x, y));
        let p = m.predict_one(&[100.0]);
        assert!((p[0] - 7.0).abs() < 1e-4);
    }
}
