//! K-nearest-neighbour regression over standardized features.

use crate::dataset::Dataset;
use crate::Regressor;

/// A fitted (memorized) KNN regressor. Prediction averages the targets of
/// the `k` training rows closest in standardized Euclidean distance.
#[derive(Clone, Debug)]
pub struct KnnRegressor {
    k: usize,
    mean: Vec<f64>,
    std: Vec<f64>,
    /// Standardized training rows.
    x: Vec<Vec<f64>>,
    y: Vec<Vec<f64>>,
}

impl KnnRegressor {
    /// "Fit" (memorize) the training set.
    ///
    /// # Panics
    /// Panics on an empty dataset or `k == 0`.
    pub fn fit(data: &Dataset, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let (mean, std) = data.feature_moments();
        let x: Vec<Vec<f64>> = data.x.iter().map(|r| standardize(r, &mean, &std)).collect();
        KnnRegressor {
            k: k.min(data.len()),
            mean,
            std,
            x,
            y: data.y.clone(),
        }
    }

    /// Effective `k` (clamped to the training-set size).
    pub fn k(&self) -> usize {
        self.k
    }
}

fn standardize(row: &[f64], mean: &[f64], std: &[f64]) -> Vec<f64> {
    row.iter()
        .zip(mean.iter().zip(std))
        .map(|(x, (m, s))| (x - m) / s)
        .collect()
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Regressor for KnnRegressor {
    fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        let q = standardize(x, &self.mean, &self.std);
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, usize)> = self
            .x
            .iter()
            .enumerate()
            .map(|(i, row)| (sq_dist(&q, row), i))
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("no NaN distances")
        });
        let m = self.y[0].len();
        let mut out = vec![0.0; m];
        for &(_, i) in &dists[..k] {
            for (o, v) in out.iter_mut().zip(&self.y[i]) {
                *o += v;
            }
        }
        for o in &mut out {
            *o /= k as f64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_dataset() -> Dataset {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<Vec<f64>> = (0..20).map(|i| vec![(i * 10) as f64]).collect();
        Dataset::new(x, y)
    }

    #[test]
    fn k1_returns_nearest_target() {
        let m = KnnRegressor::fit(&grid_dataset(), 1);
        assert_eq!(m.predict_one(&[7.2]), vec![70.0]);
        assert_eq!(m.predict_one(&[-5.0]), vec![0.0]);
        assert_eq!(m.predict_one(&[100.0]), vec![190.0]);
    }

    #[test]
    fn k3_averages() {
        let m = KnnRegressor::fit(&grid_dataset(), 3);
        // Nearest to 10.0 are rows 9, 10, 11 -> mean 100.
        let p = m.predict_one(&[10.0]);
        assert!((p[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn k_clamped_to_dataset() {
        let d = Dataset::new(vec![vec![0.0], vec![1.0]], vec![vec![0.0], vec![10.0]]);
        let m = KnnRegressor::fit(&d, 100);
        assert_eq!(m.k(), 2);
        assert!((m.predict_one(&[0.5])[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn standardization_balances_scales() {
        // Feature 0 spans 0..1, feature 1 spans 0..1e6. Without
        // standardization feature 1 would dominate; with it, a query
        // differing only in feature 0 finds the right neighbour.
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 1e6],
            vec![0.0, 1e6],
            vec![1.0, 0.0],
        ];
        let y = vec![vec![0.0], vec![3.0], vec![1.0], vec![2.0]];
        let m = KnnRegressor::fit(&Dataset::new(x, y), 1);
        // Query near (1, 1e6): neighbour should be row 1.
        assert_eq!(m.predict_one(&[0.9, 0.95e6]), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = KnnRegressor::fit(&grid_dataset(), 0);
    }

    #[test]
    fn multi_output() {
        let d = Dataset::new(
            vec![vec![0.0], vec![1.0]],
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        );
        let m = KnnRegressor::fit(&d, 2);
        let p = m.predict_one(&[0.5]);
        assert_eq!(p, vec![2.0, 3.0]);
    }
}
