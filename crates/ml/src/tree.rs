//! CART regression tree (multi-output, variance-reduction splits).
//!
//! The forest in [`crate::forest`] bags these trees; a single tree is
//! itself one of Table I's five models.

use crate::dataset::Dataset;
use crate::Regressor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyperparameters for tree induction.
#[derive(Clone, Debug)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child of a split.
    pub min_samples_leaf: usize,
    /// Number of candidate features per split; `None` = all features.
    /// Random forests set this to √p (regression default in Breiman's
    /// formulation uses p/3; we follow the common √p which works better
    /// on this feature count — see DESIGN.md ablations).
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 16,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    /// Total impurity (SSE) decrease attributed to each feature.
    importance: Vec<f64>,
    n_features: usize,
}

/// Per-output prefix statistics used during split search.
struct SplitScan {
    /// Running sums of y per output.
    sum: Vec<f64>,
    /// Running sums of y² per output.
    sum_sq: Vec<f64>,
}

impl SplitScan {
    fn new(m: usize) -> Self {
        SplitScan {
            sum: vec![0.0; m],
            sum_sq: vec![0.0; m],
        }
    }
    fn add(&mut self, y: &[f64]) {
        for ((s, q), &v) in self.sum.iter_mut().zip(&mut self.sum_sq).zip(y) {
            *s += v;
            *q += v * v;
        }
    }
    /// Sum of squared errors around the mean, over all outputs, for `n`
    /// accumulated samples.
    fn sse(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let nf = n as f64;
        self.sum
            .iter()
            .zip(&self.sum_sq)
            .map(|(&s, &q)| (q - s * s / nf).max(0.0))
            .sum()
    }
}

impl DecisionTree {
    /// Fit with all features considered at every split.
    pub fn fit(data: &Dataset, params: &TreeParams) -> Self {
        let mut rng = StdRng::seed_from_u64(0);
        Self::fit_with(data, params, &mut rng)
    }

    /// Fit with an explicit RNG (used for feature subsampling inside
    /// random forests).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit_with(data: &Dataset, params: &TreeParams, rng: &mut StdRng) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            importance: vec![0.0; data.n_features()],
            n_features: data.n_features(),
        };
        let indices: Vec<usize> = (0..data.len()).collect();
        tree.build(data, indices, 0, params, rng);
        tree
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (0 for a lone leaf).
    pub fn depth(&self) -> usize {
        fn d(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(nodes, *left).max(d(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            d(&self.nodes, 0)
        }
    }

    /// Raw (unnormalized) impurity-decrease feature importance.
    pub fn raw_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Impurity-decrease importance normalized to sum to 1 (Breiman).
    pub fn feature_importance(&self) -> Vec<f64> {
        let total: f64 = self.importance.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.n_features];
        }
        self.importance.iter().map(|&v| v / total).collect()
    }

    fn leaf_value(data: &Dataset, idx: &[usize]) -> Vec<f64> {
        let m = data.n_outputs();
        let mut v = vec![0.0; m];
        for &i in idx {
            for (o, &t) in v.iter_mut().zip(&data.y[i]) {
                *o += t;
            }
        }
        for o in &mut v {
            *o /= idx.len() as f64;
        }
        v
    }

    /// Recursively build the subtree over `idx`; returns the node index.
    fn build(
        &mut self,
        data: &Dataset,
        idx: Vec<usize>,
        depth: usize,
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> usize {
        let n = idx.len();
        let make_leaf = |tree: &mut DecisionTree| {
            let value = Self::leaf_value(data, &idx);
            tree.nodes.push(Node::Leaf { value });
            tree.nodes.len() - 1
        };
        if depth >= params.max_depth || n < params.min_samples_split {
            return make_leaf(self);
        }

        // Parent impurity.
        let m = data.n_outputs();
        let mut all = SplitScan::new(m);
        for &i in &idx {
            all.add(&data.y[i]);
        }
        let parent_sse = all.sse(n);
        if parent_sse <= 1e-12 {
            return make_leaf(self);
        }

        // Candidate features (subsampled for forests).
        let p = data.n_features();
        let mut features: Vec<usize> = (0..p).collect();
        if let Some(k) = params.max_features {
            features.shuffle(rng);
            features.truncate(k.clamp(1, p));
        }

        let mut best = Self::best_split(data, &idx, &features, &all, params);
        // Like scikit-learn: if the sampled feature subset yields no
        // valid split (e.g. all candidates constant), fall back to the
        // full feature set before giving up.
        if best.is_none() && params.max_features.is_some() && features.len() < p {
            let all_features: Vec<usize> = (0..p).collect();
            best = Self::best_split(data, &idx, &all_features, &all, params);
        }

        let Some((feature, threshold, child_sse)) = best else {
            return make_leaf(self);
        };
        let gain = parent_sse - child_sse;
        if gain <= 1e-12 {
            return make_leaf(self);
        }
        self.importance[feature] += gain;

        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| data.x[i][feature] <= threshold);
        // Reserve our slot before recursing so children get later indices.
        self.nodes.push(Node::Leaf { value: Vec::new() });
        let slot = self.nodes.len() - 1;
        let left = self.build(data, li, depth + 1, params, rng);
        let right = self.build(data, ri, depth + 1, params, rng);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    /// Number of outputs per prediction (the length of every leaf's
    /// value vector).
    pub fn n_outputs(&self) -> usize {
        self.nodes
            .iter()
            .find_map(|n| match n {
                Node::Leaf { value } => Some(value.len()),
                Node::Split { .. } => None,
            })
            .unwrap_or(0)
    }

    /// Allocation-free prediction: walk to the leaf and copy its value
    /// into `out` (length must equal [`DecisionTree::n_outputs`]).
    pub fn predict_into(&self, x: &[f64], out: &mut [f64]) {
        let leaf = self.walk(x);
        out.copy_from_slice(leaf);
    }

    /// Allocation-free accumulation: walk to the leaf and add its value
    /// element-wise into `out` (the forest's summation primitive).
    pub fn predict_add(&self, x: &[f64], out: &mut [f64]) {
        let leaf = self.walk(x);
        for (o, &v) in out.iter_mut().zip(leaf) {
            *o += v;
        }
    }

    /// Walk the tree to the leaf selected by `x`.
    fn walk(&self, x: &[f64]) -> &[f64] {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Append this tree's nodes to the SoA arrays of a
    /// [`crate::flat::FlatForest`] under construction; returns the root's
    /// index in the flat node table. Leaves store `u16::MAX` in
    /// `feature` and their slab offset in `idx`.
    pub(crate) fn flatten_into(
        &self,
        nodes: &mut Vec<crate::flat::FlatNode>,
        leaf_values: &mut Vec<f64>,
    ) -> u32 {
        let root = u32::try_from(nodes.len()).expect("node table fits u32");
        nodes.push(crate::flat::FlatNode::PLACEHOLDER);
        self.emit_flat(0, root as usize, nodes, leaf_values);
        root
    }

    /// Sibling-pair re-emission for [`DecisionTree::flatten_into`]: a
    /// split reserves both children *adjacently* before either subtree
    /// is emitted, so descending is one indexed load from `idx` or
    /// `idx + 1` and siblings share a cache line. Because the pair is
    /// reserved pre-order, shallow levels cluster near the root — the
    /// part of the table every traversal walks. Leaf values still land
    /// in the slab in left-to-right (in-order) sequence.
    fn emit_flat(
        &self,
        id: usize,
        slot: usize,
        nodes: &mut Vec<crate::flat::FlatNode>,
        leaf_values: &mut Vec<f64>,
    ) {
        match &self.nodes[id] {
            Node::Leaf { value } => {
                nodes[slot] = crate::flat::FlatNode {
                    threshold: 0.0,
                    idx: u32::try_from(leaf_values.len()).expect("leaf slab fits u32"),
                    feature: crate::flat::LEAF,
                };
                leaf_values.extend_from_slice(value);
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                assert!(*feature < u16::MAX as usize, "feature index fits u16");
                let base = nodes.len();
                nodes.push(crate::flat::FlatNode::PLACEHOLDER);
                nodes.push(crate::flat::FlatNode::PLACEHOLDER);
                nodes[slot] = crate::flat::FlatNode {
                    threshold: *threshold,
                    idx: u32::try_from(base).expect("node table fits u32"),
                    feature: *feature as u16,
                };
                self.emit_flat(*left, base, nodes, leaf_values);
                self.emit_flat(*right, base + 1, nodes, leaf_values);
            }
        }
    }

    /// Best `(feature, threshold, children_sse)` over the candidate
    /// features, or `None` when no valid split exists.
    fn best_split(
        data: &Dataset,
        idx: &[usize],
        features: &[usize],
        all: &SplitScan,
        params: &TreeParams,
    ) -> Option<(usize, f64, f64)> {
        let n = idx.len();
        let m = data.n_outputs();
        let mut best: Option<(usize, f64, f64)> = None;
        let mut order = idx.to_vec();
        for &f in features {
            order.sort_by(|&a, &b| {
                data.x[a][f]
                    .partial_cmp(&data.x[b][f])
                    .expect("no NaN features")
            });
            let mut left = SplitScan::new(m);
            let mut right = all_scan_clone(all);
            for (k, &i) in order.iter().enumerate().take(n - 1) {
                left.add(&data.y[i]);
                sub(&mut right, &data.y[i]);
                let nl = k + 1;
                let nr = n - nl;
                if nl < params.min_samples_leaf || nr < params.min_samples_leaf {
                    continue;
                }
                let xv = data.x[i][f];
                let xnext = data.x[order[k + 1]][f];
                if xv == xnext {
                    continue; // cannot split between equal values
                }
                let child = left.sse(nl) + right.sse(nr);
                if best.is_none_or(|(_, _, b)| child < b) {
                    best = Some((f, 0.5 * (xv + xnext), child));
                }
            }
        }
        best
    }
}

fn all_scan_clone(s: &SplitScan) -> SplitScan {
    SplitScan {
        sum: s.sum.clone(),
        sum_sq: s.sum_sq.clone(),
    }
}

fn sub(s: &mut SplitScan, y: &[f64]) {
    for ((a, b), &v) in s.sum.iter_mut().zip(&mut s.sum_sq).zip(y) {
        *a -= v;
        *b -= v * v;
    }
}

impl Regressor for DecisionTree {
    fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        self.walk(x).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score_multi;

    fn step_data() -> Dataset {
        // y = 0 for x < 5, y = 10 for x >= 5: one split suffices.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![if i < 5 { 0.0 } else { 10.0 }])
            .collect();
        Dataset::new(x, y)
    }

    #[test]
    fn learns_step_function() {
        let t = DecisionTree::fit(&step_data(), &TreeParams::default());
        assert_eq!(t.predict_one(&[2.0]), vec![0.0]);
        assert_eq!(t.predict_one(&[9.0]), vec![10.0]);
        // The split should be between 4 and 5.
        assert_eq!(t.predict_one(&[4.4]), vec![0.0]);
        assert_eq!(t.predict_one(&[4.6]), vec![10.0]);
    }

    #[test]
    fn importance_on_informative_feature() {
        // Feature 1 is pure noise; feature 0 drives the target.
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64, ((i * 37) % 11) as f64])
            .collect();
        let y: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![if i < 30 { 0.0 } else { 5.0 }])
            .collect();
        let t = DecisionTree::fit(&Dataset::new(x, y), &TreeParams::default());
        let imp = t.feature_importance();
        assert!(imp[0] > 0.9, "importance {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn depth_limit_respected() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let t = DecisionTree::fit(
            &Dataset::new(x, y),
            &TreeParams {
                max_depth: 3,
                ..TreeParams::default()
            },
        );
        assert!(t.depth() <= 3, "depth={}", t.depth());
    }

    #[test]
    fn min_samples_leaf_respected() {
        let d = step_data();
        let t = DecisionTree::fit(
            &d,
            &TreeParams {
                min_samples_leaf: 6,
                ..TreeParams::default()
            },
        );
        // The natural split at 4.5 would create a left leaf of size 5 < 6,
        // so the tree must choose another split (or give up).
        // Verify by checking prediction at x=0 is not exactly 0 (pure leaf
        // unreachable) or the tree stayed a stump.
        let p = t.predict_one(&[0.0])[0];
        assert!(p > 0.0, "leaf of size < min_samples_leaf was created");
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let d = Dataset::new(vec![vec![1.0], vec![2.0], vec![3.0]], vec![vec![4.0]; 3]);
        let t = DecisionTree::fit(&d, &TreeParams::default());
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict_one(&[99.0]), vec![4.0]);
    }

    #[test]
    fn multi_output_regression() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i / 10) as f64, (3 - i / 10) as f64])
            .collect();
        let t = DecisionTree::fit(&Dataset::new(x.clone(), y.clone()), &TreeParams::default());
        let r2 = r2_score_multi(&y, &t.predict(&x));
        assert!(r2 > 0.99, "r2={r2}");
        let p = t.predict_one(&[35.0]);
        assert_eq!(p, vec![3.0, 0.0]);
    }

    #[test]
    fn identical_feature_values_do_not_split() {
        let d = Dataset::new(
            vec![vec![1.0]; 10],
            (0..10).map(|i| vec![i as f64]).collect(),
        );
        let t = DecisionTree::fit(&d, &TreeParams::default());
        assert_eq!(t.n_nodes(), 1, "cannot split identical features");
        assert!((t.predict_one(&[1.0])[0] - 4.5).abs() < 1e-12);
    }

    #[test]
    fn deep_fit_interpolates_training_data() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<Vec<f64>> = (0..100).map(|i| vec![(i as f64).sin()]).collect();
        let t = DecisionTree::fit(
            &Dataset::new(x.clone(), y.clone()),
            &TreeParams {
                // Variance-reduction splits on sine data can be very
                // unbalanced, so give plenty of depth headroom.
                max_depth: 128,
                min_samples_split: 2,
                min_samples_leaf: 1,
                max_features: None,
            },
        );
        let r2 = r2_score_multi(&y, &t.predict(&x));
        assert!(r2 > 1.0 - 1e-9, "full-depth tree should memorize, r2={r2}");
    }
}
