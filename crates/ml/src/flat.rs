//! Flattened-forest inference: a fitted [`RandomForest`] compiled into
//! one contiguous, compact node table for cache-friendly,
//! allocation-free traversal.
//!
//! The fitted representation ([`crate::tree::DecisionTree`]) stores a
//! 40-byte enum per node (the leaf variant carries a heap `Vec<f64>`)
//! and every `predict_one` call allocates its output. The flat
//! representation re-emits each tree into 16-byte packed [`FlatNode`]s
//! — threshold, one child index, and a `u16` feature id with
//! `u16::MAX` marking a leaf — plus one shared leaf-value slab.
//! Emission reserves each split's two children as an *adjacent pair*
//! before descending (see `DecisionTree::emit_flat`), so one stored
//! index addresses both: the descend step is the branchless
//! `idx + (goes_right as usize)`, siblings share a cache line, and
//! shallow levels — the nodes every traversal touches — cluster near
//! the root. A traversal walks a single dense array and the prediction
//! loop never allocates.
//!
//! **Exactness**: [`FlatForest::predict_into`] replicates the fitted
//! forest's arithmetic exactly — leaves are added tree-by-tree in the
//! same order and divided by the tree count at the end — so its output
//! is bitwise identical to [`crate::Regressor::predict_one`] on the
//! source forest. `tests/flat_equivalence.rs` proptests this on random
//! fitted forests.

use crate::forest::RandomForest;

/// Sentinel in [`FlatNode::feature`] marking a leaf node.
pub(crate) const LEAF: u16 = u16::MAX;

/// One packed node of a flattened tree: 16 bytes, vs 40 for the fitted
/// enum node.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FlatNode {
    /// Split threshold (0.0 for leaves).
    pub(crate) threshold: f64,
    /// For a split: index of the left child; the right child is always
    /// adjacent at `idx + 1` (children are reserved as a pair). For a
    /// leaf: offset of its value run in the leaf slab.
    pub(crate) idx: u32,
    /// Split feature; [`LEAF`] marks a leaf.
    pub(crate) feature: u16,
}

impl FlatNode {
    /// Reserved-but-unwritten slot during emission; every placeholder
    /// is overwritten before `from_forest` returns.
    pub(crate) const PLACEHOLDER: FlatNode = FlatNode {
        threshold: 0.0,
        idx: u32::MAX,
        feature: LEAF,
    };
}

/// Flat nodes must stay at 16 bytes — the whole point of the packed
/// layout is four nodes per cache line.
const _: () = assert!(std::mem::size_of::<FlatNode>() == 16);

/// A [`RandomForest`] compiled into flat form (see module docs).
#[derive(Clone, Debug)]
pub struct FlatForest {
    /// All trees' nodes, each tree a contiguous run in sibling-pair
    /// order.
    nodes: Vec<FlatNode>,
    /// All leaf value vectors, concatenated (`n_outputs` each).
    leaf_values: Vec<f64>,
    /// Root node index of each tree.
    roots: Vec<u32>,
    n_outputs: usize,
}

impl FlatForest {
    /// Compile a fitted forest. The forest must have at least one tree
    /// (guaranteed by [`RandomForest::fit`]).
    pub fn from_forest(forest: &RandomForest) -> Self {
        let mut nodes = Vec::new();
        let mut leaf_values = Vec::new();
        let roots: Vec<u32> = forest
            .trees()
            .iter()
            .map(|t| t.flatten_into(&mut nodes, &mut leaf_values))
            .collect();
        FlatForest {
            nodes,
            leaf_values,
            roots,
            n_outputs: forest.n_outputs(),
        }
    }

    /// Number of outputs per prediction.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes in the flat table.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Allocation-free forest prediction into `out` (length
    /// [`FlatForest::n_outputs`]); bitwise identical to the fitted
    /// forest's `predict_one` (see module docs).
    pub fn predict_into(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n_outputs);
        out.fill(0.0);
        let nodes = &self.nodes[..];
        for &root in &self.roots {
            let mut i = root as usize;
            loop {
                let n = nodes[i];
                if n.feature == LEAF {
                    let off = n.idx as usize;
                    for (o, &v) in out
                        .iter_mut()
                        .zip(&self.leaf_values[off..off + self.n_outputs])
                    {
                        *o += v;
                    }
                    break;
                }
                // Branchless descend: left child at idx, right at
                // idx + 1. `!(x <= t)` (not `x > t`) keeps NaN routing
                // identical to the fitted tree's `predict_one`.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                {
                    i = n.idx as usize + !(x[n.feature as usize] <= n.threshold) as usize;
                }
            }
        }
        let n = self.roots.len() as f64;
        for o in out.iter_mut() {
            *o /= n;
        }
    }

    /// Convenience allocating wrapper around
    /// [`FlatForest::predict_into`].
    pub fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_outputs];
        self.predict_into(x, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::RandomForestParams;
    use crate::Regressor;

    fn fitted() -> (RandomForest, Vec<Vec<f64>>) {
        let x: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![i as f64 * 0.3, ((i * 13) % 9) as f64])
            .collect();
        let y: Vec<Vec<f64>> = x
            .iter()
            .map(|r| vec![3.0 * r[0].sin() + r[1], r[0] - 0.5 * r[1]])
            .collect();
        let f = RandomForest::fit(
            &Dataset::new(x.clone(), y),
            &RandomForestParams {
                n_trees: 12,
                ..Default::default()
            },
            11,
        );
        (f, x)
    }

    #[test]
    fn matches_boxed_forest_bitwise() {
        let (forest, xs) = fitted();
        let flat = FlatForest::from_forest(&forest);
        assert_eq!(flat.n_trees(), forest.n_trees());
        assert_eq!(flat.n_outputs(), 2);
        let mut out = [0.0f64; 2];
        for x in xs.iter().chain([vec![-5.0, 100.0], vec![1e6, -3.0]].iter()) {
            let boxed = forest.predict_one(x);
            flat.predict_into(x, &mut out);
            assert_eq!(boxed[0].to_bits(), out[0].to_bits());
            assert_eq!(boxed[1].to_bits(), out[1].to_bits());
            let one = flat.predict_one(x);
            assert_eq!(one, boxed);
        }
    }

    #[test]
    fn node_count_matches_source_trees() {
        let (forest, _) = fitted();
        let flat = FlatForest::from_forest(&forest);
        let boxed_nodes: usize = (0..forest.n_trees())
            .map(|i| forest.trees()[i].n_nodes())
            .sum();
        assert_eq!(flat.n_nodes(), boxed_nodes);
    }

    #[test]
    fn flat_nodes_are_packed() {
        assert_eq!(std::mem::size_of::<FlatNode>(), 16);
    }
}
