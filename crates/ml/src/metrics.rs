//! Regression quality metrics. The paper reports the coefficient of
//! determination (R²) as "accuracy" in Tables I and III.

/// Coefficient of determination for a single output:
/// `1 - SS_res / SS_tot`. Returns 0 when the target variance is zero and
/// predictions are imperfect, 1 when both are degenerate and equal.
pub fn r2_score(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|&y| (y - mean) * (y - mean)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(&t, &p)| (t - p) * (t - p))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Mean R² across outputs for multi-output predictions (the paper's
/// single "accuracy" figure covers both read and write throughput).
pub fn r2_score_multi(y_true: &[Vec<f64>], y_pred: &[Vec<f64>]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let m = y_true[0].len();
    let mut total = 0.0;
    for o in 0..m {
        let t: Vec<f64> = y_true.iter().map(|r| r[o]).collect();
        let p: Vec<f64> = y_pred.iter().map(|r| r[o]).collect();
        total += r2_score(&t, &p);
    }
    total / m as f64
}

/// Mean squared error over all outputs.
pub fn mse(y_true: &[Vec<f64>], y_pred: &[Vec<f64>]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    let mut acc = 0.0;
    let mut n = 0usize;
    for (t, p) in y_true.iter().zip(y_pred) {
        assert_eq!(t.len(), p.len());
        for (a, b) in t.iter().zip(p) {
            acc += (a - b) * (a - b);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

/// Mean absolute error over all outputs.
pub fn mae(y_true: &[Vec<f64>], y_pred: &[Vec<f64>]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    let mut acc = 0.0;
    let mut n = 0usize;
    for (t, p) in y_true.iter().zip(y_pred) {
        for (a, b) in t.iter().zip(p) {
            acc += (a - b).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_one() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(r2_score(&y, &y), 1.0);
    }

    #[test]
    fn mean_prediction_is_zero() {
        let y = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!((r2_score(&y, &pred)).abs() < 1e-12);
    }

    #[test]
    fn bad_prediction_is_negative() {
        let y = [1.0, 2.0, 3.0];
        let pred = [3.0, 2.0, 1.0];
        assert!(r2_score(&y, &pred) < 0.0);
    }

    #[test]
    fn degenerate_targets() {
        assert_eq!(r2_score(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        assert_eq!(r2_score(&[5.0, 5.0], &[4.0, 6.0]), 0.0);
        assert_eq!(r2_score(&[], &[]), 0.0);
    }

    #[test]
    fn multi_output_average() {
        let t = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        // First output predicted perfectly, second at the mean.
        let p = vec![vec![1.0, 20.0], vec![2.0, 20.0], vec![3.0, 20.0]];
        let r2 = r2_score_multi(&t, &p);
        assert!((r2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn errors() {
        let t = vec![vec![1.0], vec![2.0]];
        let p = vec![vec![2.0], vec![4.0]];
        assert!((mse(&t, &p) - 2.5).abs() < 1e-12);
        assert!((mae(&t, &p) - 1.5).abs() < 1e-12);
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    proptest::proptest! {
        /// R² of any prediction never exceeds 1.
        #[test]
        fn prop_r2_upper_bound(
            y in proptest::collection::vec(-1e3f64..1e3, 2..50),
            p in proptest::collection::vec(-1e3f64..1e3, 2..50),
        ) {
            let n = y.len().min(p.len());
            let r2 = r2_score(&y[..n], &p[..n]);
            proptest::prop_assert!(r2 <= 1.0 + 1e-12);
        }
    }
}
