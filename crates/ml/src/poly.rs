//! Polynomial regression: degree-d feature expansion (powers and
//! pairwise interactions for d = 2) feeding ordinary least squares.
//!
//! Features are standardized before expansion so that squared terms of
//! large-magnitude features (e.g. flow speed in bytes/µs) do not wreck
//! the conditioning of the normal equations.

use crate::dataset::Dataset;
use crate::linear::LinearRegression;
use crate::Regressor;

/// A fitted polynomial regressor.
#[derive(Clone, Debug)]
pub struct PolynomialRegression {
    degree: u32,
    mean: Vec<f64>,
    std: Vec<f64>,
    inner: LinearRegression,
}

/// Expand a standardized row into polynomial features.
///
/// Degree 1: the row itself. Degree 2: row + all squares + all pairwise
/// interaction terms. Higher degrees add pure powers only (interaction
/// blow-up is not worth it for this feature count).
fn expand(row: &[f64], degree: u32) -> Vec<f64> {
    let p = row.len();
    let mut out = Vec::with_capacity(p * (degree as usize) + p * (p - 1) / 2);
    out.extend_from_slice(row);
    if degree >= 2 {
        for i in 0..p {
            for j in i..p {
                out.push(row[i] * row[j]);
            }
        }
    }
    for d in 3..=degree {
        for &v in row {
            out.push(v.powi(d as i32));
        }
    }
    out
}

impl PolynomialRegression {
    /// Fit with the given polynomial degree (≥ 1).
    ///
    /// # Panics
    /// Panics on an empty dataset or `degree == 0`.
    pub fn fit(data: &Dataset, degree: u32) -> Self {
        assert!(degree >= 1, "degree must be at least 1");
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let (mean, std) = data.feature_moments();
        let design: Vec<Vec<f64>> = data
            .x
            .iter()
            .map(|r| {
                let z: Vec<f64> = r
                    .iter()
                    .zip(mean.iter().zip(&std))
                    .map(|(x, (m, s))| (x - m) / s)
                    .collect();
                expand(&z, degree)
            })
            .collect();
        let inner = LinearRegression::fit_design(&design, &data.y);
        PolynomialRegression {
            degree,
            mean,
            std,
            inner,
        }
    }

    /// The fitted degree.
    pub fn degree(&self) -> u32 {
        self.degree
    }
}

impl Regressor for PolynomialRegression {
    fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        let z: Vec<f64> = x
            .iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(x, (m, s))| (x - m) / s)
            .collect();
        self.inner.predict_one(&expand(&z, self.degree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score_multi;

    #[test]
    fn expansion_size_degree2() {
        // p features -> p + p(p+1)/2 terms.
        let row = [1.0, 2.0, 3.0];
        let e = expand(&row, 2);
        assert_eq!(e.len(), 3 + 6);
        assert_eq!(&e[..3], &row);
        assert!(e.contains(&4.0)); // 2*2
        assert!(e.contains(&6.0)); // 2*3
    }

    #[test]
    fn expansion_degree1_is_identity() {
        assert_eq!(expand(&[5.0, 7.0], 1), vec![5.0, 7.0]);
    }

    #[test]
    fn fits_quadratic_exactly() {
        // y = x^2 - 2x + 1 on a grid.
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 5.0]).collect();
        let y: Vec<Vec<f64>> = x
            .iter()
            .map(|r| vec![r[0] * r[0] - 2.0 * r[0] + 1.0])
            .collect();
        let m = PolynomialRegression::fit(&Dataset::new(x.clone(), y.clone()), 2);
        let pred = m.predict(&x);
        assert!(r2_score_multi(&y, &pred) > 1.0 - 1e-8);
        assert_eq!(m.degree(), 2);
    }

    #[test]
    fn fits_interaction_term() {
        // y = a*b (pure interaction, invisible to a linear model).
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..8 {
            for b in 0..8 {
                xs.push(vec![a as f64, b as f64]);
                ys.push(vec![(a * b) as f64]);
            }
        }
        let data = Dataset::new(xs.clone(), ys.clone());
        let poly = PolynomialRegression::fit(&data, 2);
        let lin = LinearRegression::fit(&data);
        let r2_poly = r2_score_multi(&ys, &poly.predict(&xs));
        let r2_lin = r2_score_multi(&ys, &lin.predict(&xs));
        assert!(r2_poly > 0.999, "poly r2={r2_poly}");
        assert!(r2_lin < 0.95, "lin r2={r2_lin}");
    }

    #[test]
    #[should_panic(expected = "degree must be at least 1")]
    fn degree_zero_rejected() {
        let _ = PolynomialRegression::fit(&Dataset::new(vec![vec![1.0]], vec![vec![1.0]]), 0);
    }

    #[test]
    fn degree3_pure_powers() {
        let e = expand(&[2.0], 3);
        // [x, x^2, x^3]
        assert_eq!(e, vec![2.0, 4.0, 8.0]);
    }
}
