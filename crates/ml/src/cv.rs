//! Train/test splitting and k-fold cross-validation (paper Sec. IV-C:
//! "we shuffle the whole data set and use the partial data set for
//! training and the rest for validation").

use crate::dataset::Dataset;
use crate::metrics::r2_score_multi;
use crate::ModelKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sim_engine::ScenarioRunner;

/// Shuffle and split a dataset into `(train, test)` with `train_frac` of
/// the samples in the training part (at least one sample in each part).
///
/// # Panics
/// Panics if the dataset has fewer than 2 samples or `train_frac` is not
/// in `(0, 1)`.
pub fn train_test_split(data: &Dataset, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(data.len() >= 2, "need at least 2 samples to split");
    assert!(
        train_frac > 0.0 && train_frac < 1.0,
        "train_frac must be in (0, 1)"
    );
    let mut idx: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let cut = (((data.len() as f64) * train_frac).round() as usize).clamp(1, data.len() - 1);
    (data.subset(&idx[..cut]), data.subset(&idx[cut..]))
}

/// K-fold cross-validated R² for one model family. The dataset is
/// shuffled once; each fold serves as the validation set while the rest
/// trains. Folds are independent, so they evaluate on the workspace
/// [`ScenarioRunner`] pool; per-fold scores are summed in fold order so
/// the mean is bit-identical at any thread count.
///
/// # Panics
/// Panics when `k < 2` or the dataset has fewer than `k` samples.
pub fn k_fold_r2(data: &Dataset, kind: &ModelKind, k: usize, seed: u64) -> f64 {
    assert!(k >= 2, "k must be at least 2");
    assert!(data.len() >= k, "need at least k samples");
    let mut idx: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let scores = ScenarioRunner::from_env().run(k, |fold| {
        let test_idx: Vec<usize> = idx
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % k == fold)
            .map(|(_, v)| v)
            .collect();
        let train_idx: Vec<usize> = idx
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % k != fold)
            .map(|(_, v)| v)
            .collect();
        let train = data.subset(&train_idx);
        let test = data.subset(&test_idx);
        let model = kind.fit(&train, seed.wrapping_add(fold as u64));
        let pred = model.predict(&test.x);
        r2_score_multi(&test.y, &pred)
    });
    scores.iter().sum::<f64>() / k as f64
}

/// Leave-one-group-out validation: train on `train`, validate on `held`,
/// return R² (used by Table III's quadrant cross-validation).
pub fn holdout_r2(train: &Dataset, held: &Dataset, kind: &ModelKind, seed: u64) -> f64 {
    let model = kind.fit(train, seed);
    r2_score_multi(&held.y, &model.predict(&held.x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> Dataset {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i % 13) as f64]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![3.0 * r[0] + r[1]]).collect();
        Dataset::new(x, y)
    }

    #[test]
    fn split_partitions() {
        let d = linear_data(100);
        let (tr, te) = train_test_split(&d, 0.6, 1);
        assert_eq!(tr.len(), 60);
        assert_eq!(te.len(), 40);
        // Deterministic for a given seed.
        let (tr2, _) = train_test_split(&d, 0.6, 1);
        assert_eq!(tr.x, tr2.x);
        // Different seeds shuffle differently.
        let (tr3, _) = train_test_split(&d, 0.6, 2);
        assert_ne!(tr.x, tr3.x);
    }

    #[test]
    fn split_extreme_fracs_keep_both_nonempty() {
        let d = linear_data(10);
        let (tr, te) = train_test_split(&d, 0.999, 0);
        assert!(!te.is_empty());
        assert!(!tr.is_empty());
        let (tr, te) = train_test_split(&d, 0.001, 0);
        assert!(!tr.is_empty());
        assert!(!te.is_empty());
    }

    #[test]
    fn kfold_high_r2_on_linear_data() {
        let d = linear_data(120);
        let r2 = k_fold_r2(&d, &ModelKind::Linear, 5, 3);
        assert!(r2 > 0.999, "r2={r2}");
    }

    #[test]
    fn kfold_covers_every_sample_once() {
        // Indirect check: with k=4 and 8 samples, all folds have size 2.
        // We validate via determinism + no panic; exact coverage is a
        // structural property of the i % k partition.
        let d = linear_data(8);
        let r2a = k_fold_r2(&d, &ModelKind::Knn, 4, 9);
        let r2b = k_fold_r2(&d, &ModelKind::Knn, 4, 9);
        assert_eq!(r2a, r2b);
    }

    #[test]
    fn holdout_r2_works() {
        let d = linear_data(100);
        let (tr, te) = train_test_split(&d, 0.7, 5);
        let r2 = holdout_r2(&tr, &te, &ModelKind::Linear, 0);
        assert!(r2 > 0.999, "r2={r2}");
    }

    #[test]
    #[should_panic(expected = "train_frac")]
    fn bad_frac_rejected() {
        let _ = train_test_split(&linear_data(10), 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "k must be at least 2")]
    fn bad_k_rejected() {
        let _ = k_fold_r2(&linear_data(10), &ModelKind::Linear, 1, 0);
    }
}
