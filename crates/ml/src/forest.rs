//! Random-forest regression: bootstrap-bagged CART trees with per-split
//! feature subsampling, trained in parallel on the workspace's
//! [`ScenarioRunner`].
//!
//! This is the model the paper adopts for its throughput prediction
//! model (Table I: R² = 0.94, the best of the five).

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeParams};
use crate::Regressor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_engine::ScenarioRunner;

/// Random-forest hyperparameters.
#[derive(Clone, Debug)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree induction parameters. `max_features: None` here means
    /// "use √p", resolved at fit time.
    pub tree: TreeParams,
    /// Bootstrap sample size as a fraction of the training set.
    pub sample_fraction: f64,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams {
            n_trees: 100,
            tree: TreeParams {
                max_depth: 20,
                min_samples_split: 4,
                min_samples_leaf: 2,
                max_features: None,
            },
            sample_fraction: 1.0,
        }
    }
}

/// A fitted random forest.
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Fit `params.n_trees` trees on bootstrap resamples. Deterministic
    /// for a given `(data, params, seed)` triple at any thread count:
    /// each tree draws from its own seeded RNG stream derived from
    /// `(seed, tree_index)`, and the runner only parallelizes across
    /// already-seeded independent tree fits, collecting them in index
    /// order.
    ///
    /// # Panics
    /// Panics on an empty dataset or zero trees.
    pub fn fit(data: &Dataset, params: &RandomForestParams, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(params.n_trees > 0, "need at least one tree");
        let p = data.n_features();
        // Regression default: consider every feature at each split (the
        // scikit-learn RandomForestRegressor default). Bagging alone
        // provides the variance reduction; sqrt-p subsampling costs too
        // much accuracy at this feature count (see DESIGN.md ablations).
        let mtry = params.tree.max_features.unwrap_or(p).clamp(1, p);
        let tree_params = TreeParams {
            max_features: Some(mtry),
            ..params.tree.clone()
        };
        let n = data.len();
        let draw = ((n as f64) * params.sample_fraction).round().max(1.0) as usize;
        let trees: Vec<DecisionTree> =
            ScenarioRunner::from_env().run_seeded(seed, params.n_trees, |_, tree_seed| {
                let mut rng = StdRng::seed_from_u64(tree_seed);
                let idx: Vec<usize> = (0..draw).map(|_| rng.gen_range(0..n)).collect();
                let sample = data.subset(&idx);
                DecisionTree::fit_with(&sample, &tree_params, &mut rng)
            });
        RandomForest {
            trees,
            n_features: p,
        }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of outputs per prediction.
    pub fn n_outputs(&self) -> usize {
        self.trees.first().map_or(0, |t| t.n_outputs())
    }

    /// The fitted trees (crate-internal; [`crate::flat::FlatForest`]
    /// compiles them into its SoA node table).
    pub(crate) fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Allocation-free prediction: accumulate every tree's leaf into
    /// `out` (length [`RandomForest::n_outputs`]) and divide by the tree
    /// count — the same summation order as [`Regressor::predict_one`],
    /// so results are bitwise identical.
    pub fn predict_into(&self, x: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for t in &self.trees {
            t.predict_add(x, out);
        }
        let n = self.trees.len() as f64;
        for o in out.iter_mut() {
            *o /= n;
        }
    }

    /// Breiman impurity-decrease feature importance, averaged over trees
    /// and normalized to sum to 1.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_features];
        for t in &self.trees {
            for (a, &v) in acc.iter_mut().zip(t.raw_importance()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.n_features];
        }
        acc.iter().map(|&v| v / total).collect()
    }
}

impl Regressor for RandomForest {
    fn predict_one(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_outputs()];
        self.predict_into(x, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score_multi;

    fn noisy_nonlinear(n: usize) -> Dataset {
        // y = sin(x0) * 5 + x1, with a deterministic pseudo-noise term.
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 * 0.2, ((i * 7) % 10) as f64])
            .collect();
        let y: Vec<Vec<f64>> = x
            .iter()
            .enumerate()
            .map(|(i, r)| vec![5.0 * r[0].sin() + r[1] + ((i % 3) as f64 - 1.0) * 0.1])
            .collect();
        Dataset::new(x, y)
    }

    #[test]
    fn beats_mean_predictor_on_nonlinear_data() {
        let d = noisy_nonlinear(300);
        let f = RandomForest::fit(
            &d,
            &RandomForestParams {
                n_trees: 30,
                tree: TreeParams {
                    max_depth: 64,
                    min_samples_split: 2,
                    min_samples_leaf: 1,
                    // With only 2 features, sqrt(p) subsampling (mtry=1)
                    // starves the trees; use both features per split.
                    max_features: Some(2),
                },
                ..Default::default()
            },
            42,
        );
        let r2 = r2_score_multi(&d.y, &f.predict(&d.x));
        assert!(r2 > 0.9, "r2={r2}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = noisy_nonlinear(120);
        let params = RandomForestParams {
            n_trees: 10,
            ..Default::default()
        };
        let a = RandomForest::fit(&d, &params, 7);
        let b = RandomForest::fit(&d, &params, 7);
        let pa = a.predict_one(&[3.0, 4.0]);
        let pb = b.predict_one(&[3.0, 4.0]);
        assert_eq!(pa, pb);
        let c = RandomForest::fit(&d, &params, 8);
        assert_ne!(pa, c.predict_one(&[3.0, 4.0]));
    }

    #[test]
    fn importance_sums_to_one_and_finds_signal() {
        // Feature 0 is signal, feature 1 noise.
        let x: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![i as f64, ((i * 37) % 17) as f64])
            .collect();
        let y: Vec<Vec<f64>> = (0..200).map(|i| vec![(i as f64) * 2.0]).collect();
        let f = RandomForest::fit(
            &Dataset::new(x, y),
            &RandomForestParams {
                n_trees: 20,
                ..Default::default()
            },
            1,
        );
        let imp = f.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.8, "imp={imp:?}");
    }

    #[test]
    fn prediction_stays_within_target_hull() {
        let d = noisy_nonlinear(150);
        let lo = d.y.iter().map(|r| r[0]).fold(f64::INFINITY, f64::min);
        let hi = d.y.iter().map(|r| r[0]).fold(f64::NEG_INFINITY, f64::max);
        let f = RandomForest::fit(
            &d,
            &RandomForestParams {
                n_trees: 15,
                ..Default::default()
            },
            3,
        );
        // Even for wildly extrapolated queries, tree averaging cannot
        // leave the hull of training targets.
        for q in [[-100.0, -100.0], [1e6, 1e6], [0.0, 1e3]] {
            let p = f.predict_one(&q)[0];
            assert!(
                p >= lo - 1e-9 && p <= hi + 1e-9,
                "p={p} outside [{lo},{hi}]"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let d = noisy_nonlinear(10);
        let _ = RandomForest::fit(
            &d,
            &RandomForestParams {
                n_trees: 0,
                ..Default::default()
            },
            0,
        );
    }

    #[test]
    fn n_trees_reported() {
        let d = noisy_nonlinear(30);
        let f = RandomForest::fit(
            &d,
            &RandomForestParams {
                n_trees: 7,
                ..Default::default()
            },
            0,
        );
        assert_eq!(f.n_trees(), 7);
    }
}
