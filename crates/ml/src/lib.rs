//! Statistical regression models for the throughput prediction model
//! (paper Sec. III-B, Table I).
//!
//! The paper trains five regressors to learn
//! `TPUT_{R,W} = F(Ch, w)` — the mapping from workload characteristics
//! plus SSQ weight ratio to read/write throughput — and picks Random
//! Forest Regression (highest R², 0.94). All five are implemented here
//! from scratch, multi-output (read *and* write throughput predicted
//! jointly), with the coefficient of determination used for accuracy and
//! Breiman impurity importance for feature weights.
//!
//! # Example
//!
//! ```
//! use ml::{Dataset, ModelKind};
//!
//! // y = [2x, 3x] — a trivially learnable multi-output mapping.
//! let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
//! let y: Vec<Vec<f64>> = (0..50).map(|i| vec![2.0 * i as f64, 3.0 * i as f64]).collect();
//! let data = Dataset::new(x, y);
//! let model = ModelKind::Linear.fit(&data, 0);
//! let pred = model.predict_one(&[10.0]);
//! assert!((pred[0] - 20.0).abs() < 1e-6);
//! assert!((pred[1] - 30.0).abs() < 1e-6);
//! ```

pub mod cv;
pub mod dataset;
pub mod flat;
pub mod forest;
pub mod knn;
pub mod linalg;
pub mod linear;
pub mod metrics;
pub mod poly;
pub mod tree;

pub use cv::{k_fold_r2, train_test_split};
pub use dataset::Dataset;
pub use flat::FlatForest;
pub use forest::{RandomForest, RandomForestParams};
pub use knn::KnnRegressor;
pub use linear::LinearRegression;
pub use metrics::{mae, mse, r2_score, r2_score_multi};
pub use poly::PolynomialRegression;
pub use tree::{DecisionTree, TreeParams};

/// A fitted multi-output regressor.
pub trait Regressor: Send + Sync {
    /// Predict the output vector for one feature row.
    fn predict_one(&self, x: &[f64]) -> Vec<f64>;

    /// Predict for a batch of rows.
    fn predict(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|r| self.predict_one(r)).collect()
    }
}

/// The five model families evaluated in Table I.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelKind {
    /// Ordinary least squares.
    Linear,
    /// Degree-2 polynomial expansion + least squares.
    Polynomial,
    /// K-nearest-neighbour regression (k = 5, standardized features).
    Knn,
    /// Single CART regression tree.
    DecisionTree,
    /// Random forest (bagged CART with feature subsampling).
    RandomForest,
}

impl ModelKind {
    /// All five kinds in Table I's row order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::Linear,
        ModelKind::Polynomial,
        ModelKind::Knn,
        ModelKind::DecisionTree,
        ModelKind::RandomForest,
    ];

    /// Table I row label.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Linear => "Linear Regression",
            ModelKind::Polynomial => "Polynomial Regression",
            ModelKind::Knn => "K-Nearest Neighbor",
            ModelKind::DecisionTree => "Decision Tree Regression",
            ModelKind::RandomForest => "Random Forest Regression",
        }
    }

    /// Fit this model family on a dataset with default hyperparameters
    /// (the ones used throughout the reproduction).
    pub fn fit(&self, data: &Dataset, seed: u64) -> Box<dyn Regressor> {
        match self {
            ModelKind::Linear => Box::new(LinearRegression::fit(data)),
            ModelKind::Polynomial => Box::new(PolynomialRegression::fit(data, 2)),
            ModelKind::Knn => Box::new(KnnRegressor::fit(data, 5)),
            ModelKind::DecisionTree => Box::new(DecisionTree::fit(data, &TreeParams::default())),
            ModelKind::RandomForest => Box::new(RandomForest::fit(
                data,
                &RandomForestParams::default(),
                seed,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_labels() {
        for k in ModelKind::ALL {
            assert!(!k.label().is_empty());
        }
        assert_eq!(ModelKind::ALL.len(), 5);
    }
}
