//! Training data container.

use serde::{Deserialize, Serialize};

/// A supervised dataset: feature rows `x` and multi-output targets `y`.
///
/// Invariants enforced at construction: `x.len() == y.len()`, all feature
/// rows have equal width, all target rows have equal width, and both
/// widths are nonzero when the set is nonempty.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows.
    pub x: Vec<Vec<f64>>,
    /// Target rows (one vector per sample; multi-output).
    pub y: Vec<Vec<f64>>,
}

impl Dataset {
    /// Build a dataset, validating shape invariants.
    ///
    /// # Panics
    /// Panics on ragged rows or mismatched lengths.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<Vec<f64>>) -> Self {
        assert_eq!(x.len(), y.len(), "x and y must have equal length");
        if let Some(first) = x.first() {
            let nf = first.len();
            assert!(nf > 0, "feature rows must be nonempty");
            assert!(x.iter().all(|r| r.len() == nf), "ragged feature rows");
        }
        if let Some(first) = y.first() {
            let no = first.len();
            assert!(no > 0, "target rows must be nonempty");
            assert!(y.iter().all(|r| r.len() == no), "ragged target rows");
        }
        Dataset { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimensionality (0 when empty).
    pub fn n_features(&self) -> usize {
        self.x.first().map_or(0, |r| r.len())
    }

    /// Output dimensionality (0 when empty).
    pub fn n_outputs(&self) -> usize {
        self.y.first().map_or(0, |r| r.len())
    }

    /// Add one sample.
    ///
    /// # Panics
    /// Panics if the row shapes disagree with the existing data.
    pub fn push(&mut self, x: Vec<f64>, y: Vec<f64>) {
        if !self.is_empty() {
            assert_eq!(x.len(), self.n_features(), "feature width mismatch");
            assert_eq!(y.len(), self.n_outputs(), "target width mismatch");
        }
        self.x.push(x);
        self.y.push(y);
    }

    /// Select a subset by sample indices (indices may repeat, enabling
    /// bootstrap resampling).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i].clone()).collect(),
        }
    }

    /// Concatenate two datasets with matching shapes.
    pub fn concat(mut self, other: Dataset) -> Dataset {
        if self.is_empty() {
            return other;
        }
        if !other.is_empty() {
            assert_eq!(self.n_features(), other.n_features());
            assert_eq!(self.n_outputs(), other.n_outputs());
        }
        self.x.extend(other.x);
        self.y.extend(other.y);
        self
    }

    /// Per-feature mean and standard deviation (std floored at a tiny
    /// epsilon so standardization never divides by zero).
    pub fn feature_moments(&self) -> (Vec<f64>, Vec<f64>) {
        let nf = self.n_features();
        let n = self.len().max(1) as f64;
        let mut mean = vec![0.0; nf];
        for row in &self.x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; nf];
        for row in &self.x {
            for ((v, m), x) in var.iter_mut().zip(&mean).zip(row) {
                let d = x - m;
                *v += d * d;
            }
        }
        let std: Vec<f64> = var.iter().map(|v| (v / n).sqrt().max(1e-12)).collect();
        (mean, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let d = Dataset::new(
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            vec![vec![1.0], vec![2.0]],
        );
        assert_eq!(d.len(), 2);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_outputs(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged feature rows")]
    fn ragged_rejected() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![vec![0.0], vec![0.0]]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_rejected() {
        let _ = Dataset::new(vec![vec![1.0]], vec![]);
    }

    #[test]
    fn push_validates() {
        let mut d = Dataset::default();
        d.push(vec![1.0, 2.0], vec![3.0]);
        d.push(vec![4.0, 5.0], vec![6.0]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn push_rejects_wrong_width() {
        let mut d = Dataset::default();
        d.push(vec![1.0, 2.0], vec![3.0]);
        d.push(vec![4.0], vec![6.0]);
    }

    #[test]
    fn subset_with_repeats() {
        let d = Dataset::new(
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![vec![10.0], vec![20.0], vec![30.0]],
        );
        let s = d.subset(&[2, 0, 2]);
        assert_eq!(s.x, vec![vec![3.0], vec![1.0], vec![3.0]]);
        assert_eq!(s.y[0], vec![30.0]);
    }

    #[test]
    fn concat_shapes() {
        let a = Dataset::new(vec![vec![1.0]], vec![vec![1.0]]);
        let b = Dataset::new(vec![vec![2.0]], vec![vec![2.0]]);
        let c = a.concat(b);
        assert_eq!(c.len(), 2);
        let empty = Dataset::default();
        assert_eq!(empty.concat(c.clone()).len(), 2);
        assert_eq!(c.concat(Dataset::default()).len(), 2);
    }

    #[test]
    fn moments() {
        let d = Dataset::new(
            vec![vec![1.0, 0.0], vec![3.0, 0.0]],
            vec![vec![0.0], vec![0.0]],
        );
        let (mean, std) = d.feature_moments();
        assert_eq!(mean, vec![2.0, 0.0]);
        assert!((std[0] - 1.0).abs() < 1e-12);
        assert!(std[1] > 0.0); // floored, not zero
    }
}
