//! Property test: the flattened SoA forest is *bitwise* equivalent to
//! the boxed tree walk it replaces.
//!
//! `FlatForest::from_forest` re-encodes every `DecisionTree` into one
//! contiguous node table; `predict_into` then replays the same
//! tree-order accumulation (`sum += leaf[k]` per tree, one divide at
//! the end). Because the arithmetic is identical operation-for-
//! operation, the contract is exact `f64::to_bits` equality — not an
//! epsilon — over arbitrary forests and arbitrary query points,
//! including points far outside the training range (every split
//! comparison still resolves the same way).

use ml::{Dataset, FlatForest, RandomForest, RandomForestParams, Regressor};
use proptest::prelude::*;

/// Deterministic pseudo-random dataset: `n` samples, `d` features,
/// `o` outputs, derived from `seed` via splitmix64 so shrinking stays
/// reproducible.
fn synth_dataset(n: usize, d: usize, o: usize, seed: u64) -> Dataset {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| next() * 100.0 - 50.0).collect())
        .collect();
    let y: Vec<Vec<f64>> = x
        .iter()
        .map(|row| {
            (0..o)
                .map(|k| row.iter().sum::<f64>() * (k + 1) as f64 + next())
                .collect()
        })
        .collect();
    Dataset::new(x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Flat and boxed predictions agree to the bit for every query,
    /// across forest shapes (tree count, feature count, output count)
    /// and query points both inside and far outside the training range.
    #[test]
    fn prop_flat_matches_boxed_bitwise(
        n_trees in 1usize..8,
        d in 1usize..6,
        o in 1usize..3,
        data_seed in 0u64..1000,
        fit_seed in 0u64..1000,
        queries in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, 6..7), 1..20),
    ) {
        let data = synth_dataset(40, d, o, data_seed);
        let params = RandomForestParams {
            n_trees,
            ..RandomForestParams::default()
        };
        let forest = RandomForest::fit(&data, &params, fit_seed);
        let flat = FlatForest::from_forest(&forest);
        prop_assert_eq!(flat.n_outputs(), o);
        prop_assert_eq!(flat.n_trees(), n_trees);

        let mut out = vec![0.0f64; o];
        for q in &queries {
            let x = &q[..d];
            let boxed = forest.predict_one(x);
            flat.predict_into(x, &mut out);
            for (a, b) in boxed.iter().zip(out.iter()) {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "flat={} boxed={}", b, a
                );
            }
        }
    }

    /// The allocation-free boxed entry points agree with `predict_one`
    /// too — `predict_into` on RandomForest is the same accumulation.
    #[test]
    fn prop_forest_predict_into_matches_predict_one(
        data_seed in 0u64..1000,
        fit_seed in 0u64..1000,
        qx in proptest::collection::vec(-1e3f64..1e3, 4..5),
    ) {
        let data = synth_dataset(30, 4, 2, data_seed);
        let params = RandomForestParams { n_trees: 5, ..RandomForestParams::default() };
        let forest = RandomForest::fit(&data, &params, fit_seed);
        let boxed = forest.predict_one(&qx);
        let mut out = [0.0f64; 2];
        forest.predict_into(&qx, &mut out);
        prop_assert_eq!(boxed[0].to_bits(), out[0].to_bits());
        prop_assert_eq!(boxed[1].to_bits(), out[1].to_bits());
    }
}
