//! Write cache accounting: byte-bounded, absorbs writes at DRAM speed
//! and destages to flash in the background.

use sim_engine::ByteSize;

/// Write-cache occupancy tracker.
///
/// The SSD model asks [`WriteCache::try_absorb`] when a write page
//  arrives; if it fits, the page completes immediately and a background
/// destage job is created. When the destage finishes, [`WriteCache::release`]
/// frees the space. If the cache is full, the write takes the synchronous
/// flash path instead.
#[derive(Debug)]
pub struct WriteCache {
    capacity: u64,
    used: u64,
    absorbed: u64,
    rejected: u64,
}

impl WriteCache {
    /// New empty cache.
    pub fn new(capacity: ByteSize) -> Self {
        WriteCache {
            capacity: capacity.as_bytes(),
            used: 0,
            absorbed: 0,
            rejected: 0,
        }
    }

    /// Try to absorb `bytes`; true on success.
    pub fn try_absorb(&mut self, bytes: u64) -> bool {
        if self.used + bytes <= self.capacity {
            self.used += bytes;
            self.absorbed += 1;
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// Release `bytes` after a destage completes.
    ///
    /// # Panics
    /// In debug builds, panics if releasing more than is held.
    pub fn release(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.used, "releasing more than held");
        self.used = self.used.saturating_sub(bytes);
    }

    /// Bytes currently held.
    pub fn used(&self) -> u64 {
        self.used
    }
    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
    /// Occupancy fraction in [0, 1].
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }
    /// Number of absorbed page writes.
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }
    /// Number of writes that had to bypass the cache.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_until_full() {
        let mut c = WriteCache::new(ByteSize::from_bytes(100));
        assert!(c.try_absorb(60));
        assert!(c.try_absorb(40));
        assert!(!c.try_absorb(1));
        assert_eq!(c.used(), 100);
        assert_eq!(c.absorbed(), 2);
        assert_eq!(c.rejected(), 1);
        assert_eq!(c.occupancy(), 1.0);
    }

    #[test]
    fn release_frees_space() {
        let mut c = WriteCache::new(ByteSize::from_bytes(100));
        assert!(c.try_absorb(100));
        c.release(30);
        assert_eq!(c.used(), 70);
        assert!(c.try_absorb(30));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut c = WriteCache::new(ByteSize::ZERO);
        assert!(!c.try_absorb(1));
        assert_eq!(c.occupancy(), 1.0);
    }

    #[test]
    #[should_panic(expected = "releasing more than held")]
    #[cfg(debug_assertions)]
    fn over_release_panics() {
        let mut c = WriteCache::new(ByteSize::from_bytes(10));
        c.try_absorb(5);
        c.release(6);
    }
}
