//! Page-mapping flash translation layer with greedy garbage collection.
//!
//! Physical layout: every chip owns a pool of blocks of
//! [`SsdConfig::pages_per_block`] pages. Host writes allocate pages from
//! the chip's open block (chips are chosen round-robin per write for
//! striping); overwrites invalidate the previous physical page. When a
//! chip's free-block count drops to the GC threshold, the block with the
//! fewest valid pages is elected victim, its valid pages are migrated
//! (each one a real read+program on the chip), and the block is erased.
//!
//! The FTL is pure bookkeeping: it answers "which chip serves this read",
//! "where does this write land" and "what GC work is now owed"; the SSD
//! model turns the owed work into timed chip jobs.

use std::collections::HashMap;

/// A physical page address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ppn {
    /// Flat chip index.
    pub chip: usize,
    /// Block index within the chip.
    pub block: usize,
    /// Page index within the block.
    pub page: usize,
}

/// GC work owed after an allocation: migrate `moved_pages` valid pages
/// and erase one block on `chip`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcWork {
    /// Chip the work happens on.
    pub chip: usize,
    /// Valid pages migrated (each costs a read + a program).
    pub moved_pages: usize,
}

#[derive(Clone, Debug)]
struct Block {
    /// Next unwritten page index (== pages_per_block when full).
    cursor: usize,
    /// Which LPN each written page holds; `None` = invalidated.
    holder: Vec<Option<u64>>,
    valid: usize,
}

impl Block {
    fn new(pages: usize) -> Self {
        Block {
            cursor: 0,
            holder: vec![None; pages],
            valid: 0,
        }
    }
    fn erased(&mut self) {
        self.cursor = 0;
        self.holder.iter_mut().for_each(|h| *h = None);
        self.valid = 0;
    }
}

#[derive(Clone, Debug)]
struct ChipState {
    blocks: Vec<Block>,
    open: usize,
    free: Vec<usize>,
}

/// The translation layer.
#[derive(Debug)]
pub struct Ftl {
    pages_per_block: usize,
    chips: Vec<ChipState>,
    map: HashMap<u64, Ppn>,
    /// Round-robin write-striping cursor.
    write_cursor: usize,
    /// Free-block low-watermark per chip that triggers GC.
    gc_free_blocks: usize,
    // statistics
    host_programs: u64,
    gc_moves: u64,
    erases: u64,
}

impl Ftl {
    /// Build an FTL: `total_pages` spread evenly over `n_chips` chips in
    /// blocks of `pages_per_block` pages.
    ///
    /// # Panics
    /// Panics unless every chip gets at least `gc_free_blocks + 2`
    /// blocks (otherwise GC could never keep up).
    pub fn new(
        total_pages: u64,
        n_chips: usize,
        pages_per_block: usize,
        gc_free_blocks: usize,
    ) -> Self {
        assert!(n_chips > 0 && pages_per_block > 0);
        let blocks_per_chip = (total_pages as usize / n_chips / pages_per_block).max(1);
        assert!(
            blocks_per_chip >= gc_free_blocks + 2,
            "chip needs at least {} blocks, got {blocks_per_chip}",
            gc_free_blocks + 2
        );
        let chips = (0..n_chips)
            .map(|_| ChipState {
                blocks: (0..blocks_per_chip)
                    .map(|_| Block::new(pages_per_block))
                    .collect(),
                open: 0,
                free: (1..blocks_per_chip).rev().collect(),
            })
            .collect();
        Ftl {
            pages_per_block,
            chips,
            map: HashMap::new(),
            write_cursor: 0,
            gc_free_blocks,
            host_programs: 0,
            gc_moves: 0,
            erases: 0,
        }
    }

    /// Chip that serves a read of `lpn`: where the page lives, or a
    /// deterministic hash for never-written addresses.
    pub fn read_chip(&self, lpn: u64) -> usize {
        match self.map.get(&lpn) {
            Some(p) => p.chip,
            None => (lpn as usize) % self.chips.len(),
        }
    }

    /// Allocate a physical page for a (re)write of `lpn`. Invalidates
    /// the previous copy. Returns the new page and any GC work now owed
    /// on that chip.
    pub fn allocate(&mut self, lpn: u64) -> (Ppn, Option<GcWork>) {
        // Invalidate the old copy.
        if let Some(old) = self.map.remove(&lpn) {
            let b = &mut self.chips[old.chip].blocks[old.block];
            if b.holder[old.page] == Some(lpn) {
                b.holder[old.page] = None;
                b.valid -= 1;
            }
        }
        let chip_idx = self.write_cursor % self.chips.len();
        self.write_cursor += 1;
        let ppn = self.place(chip_idx, lpn);
        self.map.insert(lpn, ppn);
        self.host_programs += 1;
        let gc = self.maybe_gc(chip_idx);
        (ppn, gc)
    }

    /// Write a page onto a specific chip's open block.
    fn place(&mut self, chip_idx: usize, lpn: u64) -> Ppn {
        let ppb = self.pages_per_block;
        let chip = &mut self.chips[chip_idx];
        if chip.blocks[chip.open].cursor >= ppb {
            let next = chip
                .free
                .pop()
                .expect("GC watermark must keep a free block available");
            chip.open = next;
        }
        let block = &mut chip.blocks[chip.open];
        let page = block.cursor;
        block.cursor += 1;
        block.holder[page] = Some(lpn);
        block.valid += 1;
        Ppn {
            chip: chip_idx,
            block: chip.open,
            page,
        }
    }

    /// Run greedy GC on `chip` if its free pool is at the watermark.
    fn maybe_gc(&mut self, chip_idx: usize) -> Option<GcWork> {
        if self.chips[chip_idx].free.len() > self.gc_free_blocks {
            return None;
        }
        // Victim: fewest valid pages among full, non-open blocks.
        let victim = {
            let chip = &self.chips[chip_idx];
            let ppb = self.pages_per_block;
            (0..chip.blocks.len())
                .filter(|&b| b != chip.open && chip.blocks[b].cursor >= ppb)
                .min_by_key(|&b| chip.blocks[b].valid)?
        };
        // Migrate the victim's valid pages into the open block chain.
        let survivors: Vec<u64> = self.chips[chip_idx].blocks[victim]
            .holder
            .iter()
            .flatten()
            .copied()
            .collect();
        let moved = survivors.len();
        // Invalidate in place, erase, then re-place survivors.
        self.chips[chip_idx].blocks[victim].erased();
        self.chips[chip_idx].free.push(victim);
        self.erases += 1;
        for lpn in survivors {
            let ppn = self.place(chip_idx, lpn);
            self.map.insert(lpn, ppn);
        }
        self.gc_moves += moved as u64;
        Some(GcWork {
            chip: chip_idx,
            moved_pages: moved,
        })
    }

    /// `(host programs, GC page moves, block erases)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.host_programs, self.gc_moves, self.erases)
    }

    /// Write amplification factor so far (1.0 when GC never ran).
    pub fn write_amplification(&self) -> f64 {
        if self.host_programs == 0 {
            1.0
        } else {
            (self.host_programs + self.gc_moves) as f64 / self.host_programs as f64
        }
    }

    /// Number of mapped logical pages.
    pub fn mapped(&self) -> usize {
        self.map.len()
    }

    /// Internal invariant check: every mapped LPN points at a page that
    /// holds it, and per-block valid counts agree with holders.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        for (lpn, p) in &self.map {
            assert_eq!(
                self.chips[p.chip].blocks[p.block].holder[p.page],
                Some(*lpn),
                "map entry {lpn} points at a page not holding it"
            );
        }
        for chip in &self.chips {
            for b in &chip.blocks {
                assert_eq!(b.valid, b.holder.iter().flatten().count());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Ftl {
        // 4 chips x 8 blocks x 16 pages = 512 pages.
        Ftl::new(512, 4, 16, 2)
    }

    #[test]
    fn reads_of_unwritten_pages_hash_deterministically() {
        let f = small();
        assert_eq!(f.read_chip(0), 0);
        assert_eq!(f.read_chip(5), 1);
        assert_eq!(f.read_chip(5), f.read_chip(5));
    }

    #[test]
    fn write_then_read_goes_to_the_same_chip() {
        let mut f = small();
        let (ppn, _) = f.allocate(42);
        assert_eq!(f.read_chip(42), ppn.chip);
        f.check_invariants();
    }

    #[test]
    fn overwrite_invalidates_previous_copy() {
        let mut f = small();
        let (a, _) = f.allocate(7);
        let (b, _) = f.allocate(7);
        assert_ne!(a, b, "new physical page on overwrite");
        assert_eq!(f.mapped(), 1);
        f.check_invariants();
    }

    #[test]
    fn striping_spreads_writes() {
        let mut f = small();
        let chips: Vec<usize> = (0..8).map(|i| f.allocate(i).0.chip).collect();
        // Round-robin: 0,1,2,3,0,1,2,3.
        assert_eq!(chips, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn gc_reclaims_overwritten_blocks() {
        let mut f = small();
        // Hammer a small hot set so most pages invalidate quickly.
        for i in 0..2000u64 {
            let (_, _gc) = f.allocate(i % 8);
            f.check_invariants();
        }
        let (host, moves, erases) = f.counters();
        assert_eq!(host, 2000);
        assert!(erases > 0, "GC must have erased blocks");
        // A hot set of 8 LPNs means victims are almost empty: write
        // amplification stays low.
        assert!(
            f.write_amplification() < 1.3,
            "WA {} too high for a hot-set overwrite pattern",
            f.write_amplification()
        );
        let _ = moves;
        assert_eq!(f.mapped(), 8);
    }

    #[test]
    fn gc_moves_valid_pages_of_mixed_blocks() {
        let mut f = small();
        // Fill with unique pages (all stay valid), then overwrite every
        // other page so each block ends up half-valid — GC victims must
        // migrate their surviving pages.
        for i in 0..256u64 {
            f.allocate(i);
        }
        for i in 0..128u64 {
            f.allocate(i * 2);
        }
        for i in 0..64u64 {
            f.allocate(i * 2); // keep pressure on until GC fires
        }
        f.check_invariants();
        let (_, moves, erases) = f.counters();
        assert!(erases > 0);
        assert!(moves > 0, "mixed blocks force real migrations");
        assert_eq!(f.mapped(), 256);
        // Every mapped page still readable on its recorded chip.
        for i in 0..256u64 {
            let _ = f.read_chip(i);
        }
    }

    #[test]
    fn sustained_random_writes_never_exhaust_free_blocks() {
        let mut f = Ftl::new(1024, 2, 16, 2);
        for i in 0..20_000u64 {
            f.allocate(i % 300);
        }
        f.check_invariants();
        assert!(f.write_amplification() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "blocks")]
    fn too_small_device_rejected() {
        let _ = Ftl::new(32, 4, 16, 2); // 0-1 blocks per chip
    }
}
