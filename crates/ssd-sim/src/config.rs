//! SSD configurations, including the paper's Table II presets.

use serde::{Deserialize, Serialize};
use sim_engine::{ByteSize, SimDuration};

/// Full SSD configuration.
///
/// The Table II rows specify queue depth, write cache, CMT, page size and
/// cell latencies; the channel/chip geometry and bus rate are the
/// MQSim-style internals we add (documented in DESIGN.md) and are chosen
/// so peak device throughput lands in the 10–13 Gbps range the paper's
/// figures show.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Device queue depth: maximum commands fetched concurrently.
    pub queue_depth: usize,
    /// Write cache capacity.
    pub write_cache: ByteSize,
    /// Cached mapping table capacity.
    pub cmt: ByteSize,
    /// Flash page size.
    pub page: ByteSize,
    /// Page read (cell) latency.
    pub read_latency: SimDuration,
    /// Page program (cell) latency.
    pub write_latency: SimDuration,
    /// Number of flash channels.
    pub channels: usize,
    /// Chips (dies) per channel.
    pub chips_per_channel: usize,
    /// Channel bus bandwidth, MB/s (page transfer time = page / rate).
    pub channel_mbps: u64,
    /// Bytes of mapping covered by one 8-byte CMT entry = one page's
    /// worth of logical space; entries = cmt / 8.
    pub cmt_entry_bytes: u64,
    /// Total flash capacity in pages.
    pub total_pages: u64,
    /// Pages per erase block.
    pub pages_per_block: usize,
    /// Free-block low watermark per chip that triggers garbage
    /// collection.
    pub gc_free_blocks: usize,
    /// Block erase latency.
    pub erase_latency: SimDuration,
}

impl SsdConfig {
    /// Table II, SSD-A: QD 128, 256 MB cache, 2 MB CMT, 16 KB pages,
    /// 75 µs read / 300 µs write.
    pub fn ssd_a() -> Self {
        SsdConfig {
            queue_depth: 128,
            write_cache: ByteSize::from_mib(256),
            cmt: ByteSize::from_mib(2),
            page: ByteSize::from_kib(16),
            read_latency: SimDuration::from_us(75),
            write_latency: SimDuration::from_us(300),
            ..Self::base()
        }
    }

    /// Table II, SSD-B: QD 512, 256 MB cache, 2 MB CMT, 16 KB pages,
    /// 2 µs read / 100 µs write (a low-latency device, e.g. Z-NAND).
    pub fn ssd_b() -> Self {
        SsdConfig {
            queue_depth: 512,
            write_cache: ByteSize::from_mib(256),
            cmt: ByteSize::from_mib(2),
            page: ByteSize::from_kib(16),
            read_latency: SimDuration::from_us(2),
            write_latency: SimDuration::from_us(100),
            ..Self::base()
        }
    }

    /// Table II, SSD-C: QD 512, 512 MB cache, 8 MB CMT, 8 KB pages,
    /// 30 µs read / 200 µs write.
    pub fn ssd_c() -> Self {
        SsdConfig {
            queue_depth: 512,
            write_cache: ByteSize::from_mib(512),
            cmt: ByteSize::from_mib(8),
            page: ByteSize::from_kib(8),
            read_latency: SimDuration::from_us(30),
            write_latency: SimDuration::from_us(200),
            ..Self::base()
        }
    }

    fn base() -> Self {
        SsdConfig {
            queue_depth: 128,
            write_cache: ByteSize::from_mib(256),
            cmt: ByteSize::from_mib(2),
            page: ByteSize::from_kib(16),
            read_latency: SimDuration::from_us(75),
            write_latency: SimDuration::from_us(300),
            channels: 4,
            chips_per_channel: 2,
            channel_mbps: 400,
            cmt_entry_bytes: 8,
            total_pages: 1 << 20, // 16 GiB of 16 KiB pages
            pages_per_block: 256,
            gc_free_blocks: 2,
            erase_latency: SimDuration::from_ms(2),
        }
    }

    /// The Table II model this configuration matches (`"ssd_a"`,
    /// `"ssd_b"`, `"ssd_c"`), or `"custom"` for anything else. Used to
    /// label per-device results and telemetry in heterogeneous fleets.
    pub fn model_name(&self) -> &'static str {
        if *self == Self::ssd_a() {
            "ssd_a"
        } else if *self == Self::ssd_b() {
            "ssd_b"
        } else if *self == Self::ssd_c() {
            "ssd_c"
        } else {
            "custom"
        }
    }

    /// Static telemetry metric name tagging a Target's `ssd` gauge
    /// stream with its device model (see DESIGN.md "Heterogeneous
    /// fleets").
    pub fn model_metric(&self) -> &'static str {
        match self.model_name() {
            "ssd_a" => "model_ssd_a",
            "ssd_b" => "model_ssd_b",
            "ssd_c" => "model_ssd_c",
            _ => "model_custom",
        }
    }

    /// Time to move one page over a channel bus.
    pub fn page_transfer_time(&self) -> SimDuration {
        // bytes / (MB/s) -> us ; 1 MB/s = 1 byte/us.
        SimDuration::from_us_f64(self.page.as_bytes() as f64 / self.channel_mbps as f64)
    }

    /// Number of CMT entries.
    pub fn cmt_entries(&self) -> usize {
        (self.cmt.as_bytes() / self.cmt_entry_bytes) as usize
    }

    /// Pages needed for `bytes` of data.
    pub fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page.as_bytes()).max(1)
    }

    /// Total number of chips.
    pub fn n_chips(&self) -> usize {
        self.channels * self.chips_per_channel
    }

    /// Theoretical channel-bound read bandwidth, bytes/s.
    pub fn channel_bound_bw(&self) -> f64 {
        self.channels as f64 * self.channel_mbps as f64 * 1e6
    }

    /// Theoretical chip-bound read bandwidth, bytes/s.
    pub fn chip_bound_read_bw(&self) -> f64 {
        self.n_chips() as f64 * self.page.as_bytes() as f64 / self.read_latency.as_secs_f64()
    }

    /// Theoretical chip-bound write (program) bandwidth, bytes/s.
    pub fn chip_bound_write_bw(&self) -> f64 {
        self.n_chips() as f64 * self.page.as_bytes() as f64 / self.write_latency.as_secs_f64()
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self::ssd_a()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let a = SsdConfig::ssd_a();
        assert_eq!(a.queue_depth, 128);
        assert_eq!(a.write_cache, ByteSize::from_mib(256));
        assert_eq!(a.cmt, ByteSize::from_mib(2));
        assert_eq!(a.page, ByteSize::from_kib(16));
        assert_eq!(a.read_latency, SimDuration::from_us(75));
        assert_eq!(a.write_latency, SimDuration::from_us(300));

        let b = SsdConfig::ssd_b();
        assert_eq!(b.queue_depth, 512);
        assert_eq!(b.read_latency, SimDuration::from_us(2));
        assert_eq!(b.write_latency, SimDuration::from_us(100));

        let c = SsdConfig::ssd_c();
        assert_eq!(c.write_cache, ByteSize::from_mib(512));
        assert_eq!(c.cmt, ByteSize::from_mib(8));
        assert_eq!(c.page, ByteSize::from_kib(8));
        assert_eq!(c.read_latency, SimDuration::from_us(30));
        assert_eq!(c.write_latency, SimDuration::from_us(200));
    }

    #[test]
    fn derived_quantities() {
        let a = SsdConfig::ssd_a();
        // 16 KiB at 400 MB/s = 40.96 µs.
        assert!((a.page_transfer_time().as_us_f64() - 40.96).abs() < 0.01);
        assert_eq!(a.cmt_entries(), 2 * 1024 * 1024 / 8);
        assert_eq!(a.pages_for(1), 1);
        assert_eq!(a.pages_for(16 * 1024), 1);
        assert_eq!(a.pages_for(16 * 1024 + 1), 2);
        assert_eq!(a.n_chips(), 8);
    }

    #[test]
    fn bandwidth_sanity() {
        let a = SsdConfig::ssd_a();
        // Channel-bound: 4 x 400 MB/s = 1.6 GB/s (12.8 Gbps). The device
        // tops out at a few Gbps per class, matching the 5 + 2.5 Gbps
        // read/write levels of the paper's Fig. 7; NIC *bursts* still run
        // at the 40 Gbps line rate, which is what congests the fabric.
        assert!((a.channel_bound_bw() - 1.6e9).abs() < 1e6);
        // Chip-bound read: 8 x 16 KiB / 75 µs ≈ 1.75 GB/s.
        assert!(a.chip_bound_read_bw() > a.channel_bound_bw());
        // Write path is chip-bound well below the read path.
        assert!(a.chip_bound_write_bw() < a.chip_bound_read_bw());
        // SSD-B reads are channel-bound (tiny cell latency).
        let b = SsdConfig::ssd_b();
        assert!(b.chip_bound_read_bw() > b.channel_bound_bw());
    }
}
