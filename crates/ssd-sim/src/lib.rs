//! An MQSim-like NVMe SSD simulator (the paper's storage substrate,
//! ref [22]).
//!
//! The model captures the internals that make the paper's storage-side
//! rate control work:
//!
//! * **Internal parallelism** — a grid of flash channels × chips; page
//!   reads/programs occupy a chip for the cell latency and the shared
//!   channel bus for the transfer time, so reads and writes *interfere*
//!   while sharing backend resources (the effect Fig. 5 sweeps).
//! * **Write cache** — writes complete into a byte-bounded cache and are
//!   destaged to flash in the background; when the cache fills, writes
//!   become flash-bound (paper: "workloads with high write contention can
//!   easily saturate I/O bandwidth").
//! * **Cached mapping table (CMT)** — an LRU translation cache; a miss
//!   costs an extra mapping-page read on the target chip.
//! * **Greedy garbage collection** — when free pages run low, GC copies
//!   valid pages (read + program per copy), stealing chip time.
//!
//! The simulator is caller-driven: [`Ssd::submit`] and [`Ssd::handle`]
//! return newly scheduled `(SimTime, SsdEvent)` pairs and completions;
//! the owner (the storage-node loop) owns the event queue. Configurations
//! for the paper's SSD-A/B/C (Table II) are in [`config`].
//!
//! # Example
//!
//! ```
//! use ssd_sim::{Ssd, SsdCommand, SsdConfig};
//! use sim_engine::{EventQueue, SimTime};
//! use workload::IoType;
//!
//! let mut ssd = Ssd::new(SsdConfig::ssd_b());
//! let mut q = EventQueue::new();
//! let step = ssd.submit(SsdCommand { id: 1, op: IoType::Read,
//!     lba: 0, size: 16 * 1024 }, SimTime::ZERO);
//! for (t, e) in step.schedule { q.schedule(t, e); }
//! let mut done = 0;
//! while let Some((t, e)) = q.pop() {
//!     let s = ssd.handle(e, t);
//!     done += s.completions.len();
//!     for (t2, e2) in s.schedule { q.schedule(t2, e2); }
//! }
//! assert_eq!(done, 1);
//! ```

pub mod cache;
pub mod cmt;
pub mod config;
pub mod ftl;
pub mod ssd;
pub mod standalone;

pub use config::SsdConfig;
pub use ssd::{CommandCompletion, CommandRelease, Ssd, SsdCommand, SsdEvent, SsdStep};
