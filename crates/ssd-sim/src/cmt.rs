//! Cached mapping table: an LRU cache of logical-to-physical page
//! translations. A miss costs an extra mapping-page read on the target
//! chip (the dominant CMT effect MQSim models).

use std::collections::HashMap;

/// LRU translation cache keyed by logical page number.
///
/// Implemented as a hash map to a monotone "last use" stamp plus lazy
/// eviction of the oldest entry when over capacity. Capacity 0 disables
/// the cache (every access misses).
#[derive(Debug)]
pub struct CachedMappingTable {
    capacity: usize,
    stamp: u64,
    entries: HashMap<u64, u64>,
    hits: u64,
    misses: u64,
}

impl CachedMappingTable {
    /// Create with an entry capacity.
    pub fn new(capacity: usize) -> Self {
        CachedMappingTable {
            capacity,
            stamp: 0,
            entries: HashMap::with_capacity(capacity.min(1 << 20)),
            hits: 0,
            misses: 0,
        }
    }

    /// Touch `lpn`; returns `true` on a hit, `false` on a miss (the miss
    /// is then cached, evicting the least recently used entry if full).
    pub fn access(&mut self, lpn: u64) -> bool {
        self.stamp += 1;
        if self.capacity == 0 {
            self.misses += 1;
            return false;
        }
        if let Some(s) = self.entries.get_mut(&lpn) {
            *s = self.stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // Evict the LRU entry. O(n) scan, but only on insertion after
            // the table is full; tables here have >= 256 K entries and the
            // working sets of the experiments rarely evict. A heap would
            // complicate invariants for no measured gain.
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, &s)| s) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(lpn, self.stamp);
        false
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }
    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
    /// Current number of cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
    /// True when no translations are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let mut c = CachedMappingTable::new(4);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = CachedMappingTable::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // 1 is now more recent than 2
        c.access(3); // evicts 2
        assert!(c.access(1), "1 should still be cached");
        assert!(!c.access(2), "2 was evicted");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_zero_always_misses() {
        let mut c = CachedMappingTable::new(0);
        assert!(!c.access(7));
        assert!(!c.access(7));
        assert_eq!(c.misses(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = CachedMappingTable::new(8);
        for i in 0..100 {
            c.access(i);
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn sequential_scan_thrashes_small_cache() {
        let mut c = CachedMappingTable::new(4);
        for round in 0..3 {
            for i in 0..8 {
                let hit = c.access(i);
                if round == 0 {
                    assert!(!hit);
                }
            }
        }
        // Classic LRU + sequential cyclic access larger than capacity:
        // zero hits.
        assert_eq!(c.hits(), 0);
    }
}
