//! A minimal closed-loop driver for the bare SSD model.
//!
//! Keeps a fixed number of commands outstanding (the device queue depth)
//! and runs until every command completes. Used by unit tests and by the
//! device-characterization example; the real storage-node loop (with the
//! NVMe queueing disciplines in between) lives in the `storage-node`
//! crate.

use crate::config::SsdConfig;
use crate::ssd::{Ssd, SsdCommand, SsdEvent, SsdStats, SsdStep};
use sim_engine::{EventQueue, SimTime};
use std::collections::VecDeque;

/// Drive `commands` through a fresh SSD with up to `queue_depth`
/// outstanding; returns device stats and the makespan.
pub fn run_closed_loop(
    cfg: SsdConfig,
    commands: Vec<SsdCommand>,
) -> (SsdStats, sim_engine::SimDuration) {
    let qd = cfg.queue_depth;
    let mut ssd = Ssd::new(cfg);
    let mut q: EventQueue<SsdEvent> = EventQueue::new();
    let mut pending: VecDeque<SsdCommand> = commands.into();
    let total = pending.len();
    let mut completed = 0usize;
    let mut now = SimTime::ZERO;
    let mut last_completion = SimTime::ZERO;

    let mut step = SsdStep::default();

    let feed = |ssd: &mut Ssd,
                q: &mut EventQueue<SsdEvent>,
                pending: &mut VecDeque<SsdCommand>,
                step: &mut SsdStep,
                completed: &mut usize,
                last: &mut SimTime,
                now: SimTime| {
        while ssd.in_flight() < qd {
            let Some(cmd) = pending.pop_front() else {
                break;
            };
            step.clear();
            ssd.submit_into(cmd, now, step);
            for c in &step.completions {
                *completed += 1;
                *last = c.at;
            }
            for &(t, e) in &step.schedule {
                q.schedule(t, e);
            }
        }
    };

    feed(
        &mut ssd,
        &mut q,
        &mut pending,
        &mut step,
        &mut completed,
        &mut last_completion,
        now,
    );
    while completed < total {
        let Some((t, ev)) = q.pop() else {
            panic!("event queue drained with {completed}/{total} commands done");
        };
        now = t;
        step.clear();
        ssd.handle_into(ev, now, &mut step);
        for c in &step.completions {
            completed += 1;
            last_completion = c.at;
        }
        for &(t2, e2) in &step.schedule {
            q.schedule(t2, e2);
        }
        feed(
            &mut ssd,
            &mut q,
            &mut pending,
            &mut step,
            &mut completed,
            &mut last_completion,
            now,
        );
    }
    (ssd.stats(), last_completion.since(SimTime::ZERO))
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::IoType;

    #[test]
    fn completes_all_commands() {
        let cmds: Vec<SsdCommand> = (0..100)
            .map(|i| SsdCommand {
                id: i,
                op: if i % 2 == 0 {
                    IoType::Read
                } else {
                    IoType::Write
                },
                lba: i * 32,
                size: 16 * 1024,
            })
            .collect();
        let (stats, makespan) = run_closed_loop(SsdConfig::ssd_a(), cmds);
        assert_eq!(stats.reads_completed + stats.writes_completed, 100);
        assert!(makespan > sim_engine::SimDuration::ZERO);
    }

    #[test]
    fn faster_device_finishes_sooner() {
        let mk = || -> Vec<SsdCommand> {
            (0..400)
                .map(|i| SsdCommand {
                    id: i,
                    op: IoType::Read,
                    lba: i * 16,
                    size: 32 * 1024,
                })
                .collect()
        };
        let (_, slow) = run_closed_loop(SsdConfig::ssd_a(), mk());
        let (_, fast) = run_closed_loop(SsdConfig::ssd_b(), mk());
        assert!(fast < slow, "SSD-B ({fast:?}) should beat SSD-A ({slow:?})");
    }

    #[test]
    fn empty_command_list() {
        let (stats, makespan) = run_closed_loop(SsdConfig::ssd_a(), vec![]);
        assert_eq!(stats.reads_completed, 0);
        assert_eq!(makespan, sim_engine::SimDuration::ZERO);
    }
}
