//! The SSD device model: command → page transactions → chip/channel
//! pipeline → completion.
//!
//! Reads: cell read on the chip (cell latency, + a mapping-page read on a
//! CMT miss), then the page crosses the shared channel bus. Writes: if
//! the write cache has room the page completes immediately and a destage
//! job (bus transfer + program) runs in the background; otherwise the
//! write is synchronous (bus transfer, program, complete). GC occasionally
//! steals chip time to copy valid pages when free space runs low.

use crate::cache::WriteCache;
use crate::cmt::CachedMappingTable;
use crate::config::SsdConfig;
use crate::ftl::Ftl;
use sim_engine::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use workload::IoType;

/// A command as delivered by the NVMe driver to the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SsdCommand {
    /// Driver-assigned command identifier (unique among in-flight).
    pub id: u64,
    /// Read or write.
    pub op: IoType,
    /// Starting logical block address (4 KiB sectors).
    pub lba: u64,
    /// Transfer size in bytes.
    pub size: u64,
}

/// Completion of a whole command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommandCompletion {
    /// The completed command's id.
    pub id: u64,
    /// Its I/O type.
    pub op: IoType,
    /// Its size in bytes.
    pub size: u64,
    /// Completion timestamp.
    pub at: SimTime,
}

/// Step records are copied per command on the hot path; keep them
/// within half a cache line.
const _: () = assert!(std::mem::size_of::<CommandCompletion>() <= 32);

/// Events the SSD schedules on its owner's event queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SsdEvent {
    /// A chip finished its current cell operation.
    ChipDone {
        /// Flat chip index (`channel * chips_per_channel + chip`).
        chip: usize,
    },
    /// A channel bus finished its current page transfer.
    ChannelDone {
        /// Channel index.
        channel: usize,
    },
}

/// Device-slot release: all flash-level work of a command finished, so
/// its queue-depth slot is free. For reads this coincides with the host
/// completion; for cache-absorbed writes the host completion arrives at
/// cache-insert time while the slot is held until the destage program
/// lands (the device's internal write-buffer slots are finite).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommandRelease {
    /// The command's id.
    pub id: u64,
    /// Its I/O type.
    pub op: IoType,
}

const _: () = assert!(std::mem::size_of::<CommandRelease>() <= 16);

/// Result of feeding the SSD one stimulus: completions to deliver, slot
/// releases, and new events to schedule.
#[derive(Debug, Default)]
pub struct SsdStep {
    /// Commands that fully completed (host-visible).
    pub completions: Vec<CommandCompletion>,
    /// Commands whose device work finished (queue-depth slot freed).
    pub releases: Vec<CommandRelease>,
    /// Events to insert into the owner's queue.
    pub schedule: Vec<(SimTime, SsdEvent)>,
}

impl SsdStep {
    /// Empty the step for reuse, keeping the buffer capacities. Hot
    /// loops hold one `SsdStep` and pass it to the `*_into` entry
    /// points instead of allocating a fresh step per event.
    pub fn clear(&mut self) {
        self.completions.clear();
        self.releases.clear();
        self.schedule.clear();
    }
}

/// What a chip is asked to do for one page.
#[derive(Clone, Copy, Debug)]
enum ChipJob {
    /// Cell read for a host read; on completion the page crosses the bus.
    /// `extra_mapping_read` charges one more cell read for a CMT miss.
    CellRead { cmd: u64, extra_mapping_read: bool },
    /// Program for a synchronous (cache-bypassing) host write.
    ProgramSync { cmd: u64, extra_mapping_read: bool },
    /// Program for a background destage of `bytes` cached write data of
    /// command `cmd` (releases cache space and device work when done);
    /// `extra_mapping_read` charges the CMT-miss mapping-page read.
    ProgramDestage {
        cmd: u64,
        bytes: u64,
        extra_mapping_read: bool,
    },
    /// GC valid-page copy (read + program back-to-back on the chip).
    GcCopy,
    /// Block erase.
    Erase,
}

/// What a channel bus is asked to move.
#[derive(Clone, Copy, Debug)]
enum BusJob {
    /// Read data out to the host; completes one page of `cmd`.
    ReadOut { cmd: u64 },
    /// Write data in. After the transfer the page either completes into
    /// the write cache (background program follows) or, with the cache
    /// full, goes through a synchronous program first.
    WriteIn {
        cmd: u64,
        chip: usize,
        extra_mapping_read: bool,
    },
}

#[derive(Debug)]
struct ChipState {
    busy: bool,
    queue: VecDeque<ChipJob>,
    in_service: Option<ChipJob>,
    /// When the current service started (telemetry).
    busy_since: Option<SimTime>,
    /// Accumulated busy picoseconds of finished services (telemetry).
    busy_ps: u64,
}

#[derive(Debug)]
struct ChannelState {
    busy: bool,
    queue: VecDeque<BusJob>,
    in_service: Option<BusJob>,
    /// When the current transfer started (telemetry).
    busy_since: Option<SimTime>,
    /// Accumulated busy picoseconds of finished transfers (telemetry).
    busy_ps: u64,
}

#[derive(Debug)]
struct CmdState {
    op: IoType,
    size: u64,
    /// Pages still needed for the host-visible completion.
    remaining_host: u64,
    /// Pages of flash-level work still pending (slot release).
    remaining_work: u64,
}

/// Cumulative device statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SsdStats {
    /// Bytes of completed read commands.
    pub read_bytes_completed: u64,
    /// Bytes of completed write commands.
    pub write_bytes_completed: u64,
    /// Completed read commands.
    pub reads_completed: u64,
    /// Completed write commands.
    pub writes_completed: u64,
    /// Pages copied by garbage collection.
    pub gc_copies: u64,
    /// Blocks erased by garbage collection.
    pub erases: u64,
    /// Write pages absorbed by the cache.
    pub cached_writes: u64,
    /// Write pages that bypassed the cache.
    pub sync_writes: u64,
}

/// The SSD device model. See the module docs for the pipeline.
#[derive(Debug)]
pub struct Ssd {
    cfg: SsdConfig,
    chips: Vec<ChipState>,
    channels: Vec<ChannelState>,
    commands: HashMap<u64, CmdState>,
    cmt: CachedMappingTable,
    cache: WriteCache,
    ftl: Ftl,
    stats: SsdStats,
    /// Fault overlay: multiplier on chip/channel service durations
    /// (1.0 = nominal; the scaling path is skipped entirely then).
    latency_factor: f64,
    /// Fault overlay: while true the device starts no new chip or
    /// channel work (fail-stop window); queued jobs sit until
    /// [`Ssd::set_halted`] restarts service. Operations already in
    /// service when the halt lands still finish.
    halted: bool,
}

impl Ssd {
    /// Build a device from a configuration.
    pub fn new(cfg: SsdConfig) -> Self {
        let n_chips = cfg.n_chips();
        let n_channels = cfg.channels;
        let cmt = CachedMappingTable::new(cfg.cmt_entries());
        let cache = WriteCache::new(cfg.write_cache);
        let ftl = Ftl::new(
            cfg.total_pages,
            n_chips,
            cfg.pages_per_block,
            cfg.gc_free_blocks,
        );
        Ssd {
            cfg,
            chips: (0..n_chips)
                .map(|_| ChipState {
                    busy: false,
                    queue: VecDeque::new(),
                    in_service: None,
                    busy_since: None,
                    busy_ps: 0,
                })
                .collect(),
            channels: (0..n_channels)
                .map(|_| ChannelState {
                    busy: false,
                    queue: VecDeque::new(),
                    in_service: None,
                    busy_since: None,
                    busy_ps: 0,
                })
                .collect(),
            commands: HashMap::new(),
            cmt,
            cache,
            ftl,
            stats: SsdStats::default(),
            latency_factor: 1.0,
            halted: false,
        }
    }

    /// Set the fault-overlay multiplier on chip/channel service
    /// durations (latency-spike fault; 1.0 restores nominal service).
    pub fn set_latency_factor(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "latency factor must be finite and >= 1, got {factor}"
        );
        self.latency_factor = factor;
    }

    /// Enter or leave a fail-stop window. While halted the device
    /// starts no new chip or channel work; leaving the halt kicks every
    /// chip and channel so queued jobs resume (events land in `step`).
    pub fn set_halted(&mut self, halted: bool, now: SimTime, step: &mut SsdStep) {
        if self.halted == halted {
            return;
        }
        self.halted = halted;
        if !halted {
            for chip in 0..self.chips.len() {
                self.kick_chip(chip, now, step);
            }
            for channel in 0..self.channels.len() {
                self.kick_channel(channel, now, step);
            }
        }
    }

    /// Apply the latency-spike overlay to a nominal service duration.
    fn faulted(&self, dur: SimDuration) -> SimDuration {
        if self.latency_factor == 1.0 {
            dur
        } else {
            SimDuration::from_ps((dur.as_ps() as f64 * self.latency_factor).round() as u64)
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }

    /// Commands currently being processed.
    pub fn in_flight(&self) -> usize {
        self.commands.len()
    }

    /// Whether a specific command id still holds a device slot (host
    /// completion or background destage outstanding). Retry paths use
    /// this to avoid resubmitting a command the device already holds.
    pub fn has_command(&self, id: u64) -> bool {
        self.commands.contains_key(&id)
    }

    /// Write-cache occupancy fraction.
    pub fn cache_occupancy(&self) -> f64 {
        self.cache.occupancy()
    }

    /// Cumulative busy picoseconds per `(channel, chip)` up to `now`
    /// (a unit mid-service is credited up to `now`). Telemetry samplers
    /// difference successive calls to get per-window utilization.
    pub fn busy_ps(&self, now: SimTime) -> (Vec<u64>, Vec<u64>) {
        let credit = |busy_ps: u64, since: Option<SimTime>| {
            busy_ps + since.map_or(0, |s| now.since(s).as_ps())
        };
        (
            self.channels
                .iter()
                .map(|c| credit(c.busy_ps, c.busy_since))
                .collect(),
            self.chips
                .iter()
                .map(|c| credit(c.busy_ps, c.busy_since))
                .collect(),
        )
    }

    /// CMT hit/miss counters `(hits, misses)`.
    pub fn cmt_counters(&self) -> (u64, u64) {
        (self.cmt.hits(), self.cmt.misses())
    }

    fn channel_of_chip(&self, chip: usize) -> usize {
        chip / self.cfg.chips_per_channel
    }

    /// Write-amplification factor so far (1.0 before any GC).
    pub fn write_amplification(&self) -> f64 {
        self.ftl.write_amplification()
    }

    /// Submit one command. Returns events to schedule (completions and
    /// releases arrive later via [`Ssd::handle`]).
    ///
    /// # Panics
    /// Panics if a command with the same id is already in flight.
    pub fn submit(&mut self, cmd: SsdCommand, now: SimTime) -> SsdStep {
        let mut step = SsdStep::default();
        self.submit_into(cmd, now, &mut step);
        step
    }

    /// Allocation-free variant of [`Ssd::submit`]: appends to a
    /// caller-owned step instead of returning a fresh one.
    ///
    /// # Panics
    /// Panics if a command with the same id is already in flight.
    pub fn submit_into(&mut self, cmd: SsdCommand, now: SimTime, step: &mut SsdStep) {
        // Page span from the byte range: an unaligned request crosses one
        // more page than size alone suggests.
        let first_byte = cmd.lba * workload::request::SECTOR_BYTES;
        let last_byte = first_byte + cmd.size.max(1);
        let page_bytes = self.cfg.page.as_bytes();
        let pages = last_byte.div_ceil(page_bytes) - first_byte / page_bytes;
        let prev = self.commands.insert(
            cmd.id,
            CmdState {
                op: cmd.op,
                size: cmd.size,
                remaining_host: pages,
                remaining_work: pages,
            },
        );
        assert!(prev.is_none(), "duplicate in-flight command id {}", cmd.id);

        let first_lpn = cmd.lba * workload::request::SECTOR_BYTES / self.cfg.page.as_bytes();
        for p in 0..pages {
            let lpn = first_lpn + p;
            let miss = !self.cmt.access(lpn);
            match cmd.op {
                IoType::Read => {
                    let chip = self.ftl.read_chip(lpn);
                    self.chips[chip].queue.push_back(ChipJob::CellRead {
                        cmd: cmd.id,
                        extra_mapping_read: miss,
                    });
                    self.kick_chip(chip, now, step);
                }
                IoType::Write => {
                    // The FTL allocates the physical page (striping
                    // writes round-robin over chips, invalidating any
                    // previous copy); the data then crosses the shared
                    // channel bus into the device — the symmetric
                    // resource reads and writes contend on. Cache vs
                    // sync is decided when the transfer lands. Any GC
                    // work the allocation owes becomes real chip time.
                    let (ppn, gc) = self.ftl.allocate(lpn);
                    let chip = ppn.chip;
                    let channel = self.channel_of_chip(chip);
                    self.channels[channel].queue.push_back(BusJob::WriteIn {
                        cmd: cmd.id,
                        chip,
                        extra_mapping_read: miss,
                    });
                    self.kick_channel(channel, now, step);
                    if let Some(work) = gc {
                        self.enqueue_gc(work, now, step);
                    }
                }
            }
        }
    }

    /// Advance the model on one of its own events.
    pub fn handle(&mut self, ev: SsdEvent, now: SimTime) -> SsdStep {
        let mut step = SsdStep::default();
        self.handle_into(ev, now, &mut step);
        step
    }

    /// Allocation-free variant of [`Ssd::handle`]: appends to a
    /// caller-owned step instead of returning a fresh one.
    pub fn handle_into(&mut self, ev: SsdEvent, now: SimTime, step: &mut SsdStep) {
        match ev {
            SsdEvent::ChipDone { chip } => self.on_chip_done(chip, now, step),
            SsdEvent::ChannelDone { channel } => self.on_channel_done(channel, now, step),
        }
    }

    /// Start the next queued job on an idle chip.
    fn kick_chip(&mut self, chip: usize, now: SimTime, step: &mut SsdStep) {
        if self.halted {
            return;
        }
        let st = &mut self.chips[chip];
        if st.busy {
            return;
        }
        let Some(job) = st.queue.pop_front() else {
            return;
        };
        st.busy = true;
        st.busy_since = Some(now);
        st.in_service = Some(job);
        let dur = match job {
            ChipJob::CellRead {
                extra_mapping_read, ..
            } => {
                let base = self.cfg.read_latency;
                if extra_mapping_read {
                    base + self.cfg.read_latency
                } else {
                    base
                }
            }
            ChipJob::ProgramSync {
                extra_mapping_read, ..
            } => {
                let base = self.cfg.write_latency;
                if extra_mapping_read {
                    base + self.cfg.read_latency
                } else {
                    base
                }
            }
            ChipJob::ProgramDestage {
                extra_mapping_read, ..
            } => {
                if extra_mapping_read {
                    self.cfg.write_latency + self.cfg.read_latency
                } else {
                    self.cfg.write_latency
                }
            }
            ChipJob::GcCopy => self.cfg.read_latency + self.cfg.write_latency,
            ChipJob::Erase => self.cfg.erase_latency,
        };
        let dur = self.faulted(dur);
        step.schedule.push((now + dur, SsdEvent::ChipDone { chip }));
    }

    /// Start the next queued transfer on an idle channel.
    fn kick_channel(&mut self, channel: usize, now: SimTime, step: &mut SsdStep) {
        if self.halted {
            return;
        }
        let st = &mut self.channels[channel];
        if st.busy {
            return;
        }
        let Some(job) = st.queue.pop_front() else {
            return;
        };
        st.busy = true;
        st.busy_since = Some(now);
        st.in_service = Some(job);
        let dur = self.faulted(self.cfg.page_transfer_time());
        step.schedule
            .push((now + dur, SsdEvent::ChannelDone { channel }));
    }

    fn on_chip_done(&mut self, chip: usize, now: SimTime, step: &mut SsdStep) {
        let job = {
            let st = &mut self.chips[chip];
            st.busy = false;
            if let Some(since) = st.busy_since.take() {
                st.busy_ps += now.since(since).as_ps();
            }
            st.in_service.take().expect("chip done without service")
        };
        match job {
            ChipJob::CellRead { cmd, .. } => {
                // Page read from cells; move it over the bus.
                let channel = self.channel_of_chip(chip);
                self.channels[channel]
                    .queue
                    .push_back(BusJob::ReadOut { cmd });
                self.kick_channel(channel, now, step);
            }
            ChipJob::ProgramSync { cmd, .. } => {
                self.complete_host_page(cmd, now, step);
                self.complete_work_page(cmd, step);
            }
            ChipJob::ProgramDestage { cmd, bytes, .. } => {
                self.cache.release(bytes);
                self.complete_work_page(cmd, step);
            }
            ChipJob::GcCopy => {
                self.stats.gc_copies += 1;
            }
            ChipJob::Erase => {
                self.stats.erases += 1;
            }
        }
        self.kick_chip(chip, now, step);
    }

    fn on_channel_done(&mut self, channel: usize, now: SimTime, step: &mut SsdStep) {
        let job = {
            let st = &mut self.channels[channel];
            st.busy = false;
            if let Some(since) = st.busy_since.take() {
                st.busy_ps += now.since(since).as_ps();
            }
            st.in_service.take().expect("channel done without service")
        };
        match job {
            BusJob::ReadOut { cmd } => {
                self.complete_host_page(cmd, now, step);
                self.complete_work_page(cmd, step);
            }
            BusJob::WriteIn {
                cmd,
                chip,
                extra_mapping_read,
            } => {
                let page_bytes = self.cfg.page.as_bytes();
                if self.cache.try_absorb(page_bytes) {
                    // Cache hit: the page completes to the host now; the
                    // program destages in the background, freeing the
                    // cache space and the device slot when it lands.
                    self.stats.cached_writes += 1;
                    self.complete_host_page(cmd, now, step);
                    self.chips[chip].queue.push_back(ChipJob::ProgramDestage {
                        cmd,
                        bytes: page_bytes,
                        extra_mapping_read,
                    });
                } else {
                    // Cache full: flash-bound synchronous write.
                    self.stats.sync_writes += 1;
                    self.chips[chip].queue.push_back(ChipJob::ProgramSync {
                        cmd,
                        extra_mapping_read,
                    });
                }
                self.kick_chip(chip, now, step);
            }
        }
        self.kick_channel(channel, now, step);
    }

    /// Turn owed GC work into timed chip jobs: one read+program per
    /// migrated valid page, then the block erase.
    fn enqueue_gc(&mut self, work: crate::ftl::GcWork, now: SimTime, step: &mut SsdStep) {
        for _ in 0..work.moved_pages {
            self.chips[work.chip].queue.push_back(ChipJob::GcCopy);
        }
        self.chips[work.chip].queue.push_back(ChipJob::Erase);
        self.kick_chip(work.chip, now, step);
    }

    /// Account one host-visible page of `cmd`; emits the completion when
    /// all pages arrived.
    fn complete_host_page(&mut self, cmd: u64, now: SimTime, step: &mut SsdStep) {
        let st = self
            .commands
            .get_mut(&cmd)
            .expect("host page for unknown command");
        debug_assert!(st.remaining_host > 0);
        st.remaining_host -= 1;
        if st.remaining_host == 0 {
            let (op, size) = (st.op, st.size);
            match op {
                IoType::Read => {
                    self.stats.reads_completed += 1;
                    self.stats.read_bytes_completed += size;
                }
                IoType::Write => {
                    self.stats.writes_completed += 1;
                    self.stats.write_bytes_completed += size;
                }
            }
            step.completions.push(CommandCompletion {
                id: cmd,
                op,
                size,
                at: now,
            });
            self.gc_entry(cmd);
        }
    }

    /// Account one page of flash-level work of `cmd`; emits the slot
    /// release when all work finished.
    fn complete_work_page(&mut self, cmd: u64, step: &mut SsdStep) {
        let st = self
            .commands
            .get_mut(&cmd)
            .expect("work page for unknown command");
        debug_assert!(st.remaining_work > 0);
        st.remaining_work -= 1;
        if st.remaining_work == 0 {
            step.releases.push(CommandRelease { id: cmd, op: st.op });
            self.gc_entry(cmd);
        }
    }

    /// Remove the command-table entry once both host completion and slot
    /// release have been emitted.
    fn gc_entry(&mut self, cmd: u64) {
        if let Some(st) = self.commands.get(&cmd) {
            if st.remaining_host == 0 && st.remaining_work == 0 {
                self.commands.remove(&cmd);
            }
        }
    }

    /// Smallest latency any command could have (used by tests as a lower
    /// bound): one cell read plus one bus transfer.
    pub fn min_read_latency(&self) -> SimDuration {
        self.cfg.read_latency + self.cfg.page_transfer_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standalone::run_closed_loop;
    use sim_engine::ByteSize;

    fn small_cfg() -> SsdConfig {
        SsdConfig {
            write_cache: ByteSize::from_kib(64),
            ..SsdConfig::ssd_a()
        }
    }

    #[test]
    fn single_read_latency_exact() {
        let cfg = SsdConfig::ssd_a();
        let mut ssd = Ssd::new(cfg.clone());
        let mut q = sim_engine::EventQueue::new();
        let step = ssd.submit(
            SsdCommand {
                id: 1,
                op: IoType::Read,
                lba: 0,
                size: 16 * 1024,
            },
            SimTime::ZERO,
        );
        assert!(step.completions.is_empty());
        for (t, e) in step.schedule {
            q.schedule(t, e);
        }
        let mut done_at = None;
        while let Some((t, e)) = q.pop() {
            let s = ssd.handle(e, t);
            for c in s.completions {
                done_at = Some(c.at);
            }
            for (t2, e2) in s.schedule {
                q.schedule(t2, e2);
            }
        }
        // First access always misses the CMT: read = 2*75us cell (map +
        // data) + 40.96us transfer.
        let expect = cfg.read_latency + cfg.read_latency + cfg.page_transfer_time();
        assert_eq!(done_at.unwrap(), SimTime::ZERO + expect);
        assert_eq!(ssd.stats().reads_completed, 1);
        assert_eq!(ssd.in_flight(), 0);
    }

    #[test]
    fn busy_time_matches_service_time() {
        // One uncached read: chip busy for exactly the two cell reads
        // (map + data), its channel for one page transfer.
        let cfg = SsdConfig::ssd_a();
        let mut ssd = Ssd::new(cfg.clone());
        let mut q = sim_engine::EventQueue::new();
        let step = ssd.submit(
            SsdCommand {
                id: 1,
                op: IoType::Read,
                lba: 0,
                size: 16 * 1024,
            },
            SimTime::ZERO,
        );
        for (t, e) in step.schedule {
            q.schedule(t, e);
        }
        let mut end = SimTime::ZERO;
        while let Some((t, e)) = q.pop() {
            for (t2, e2) in ssd.handle(e, t).schedule {
                q.schedule(t2, e2);
            }
            end = t;
        }
        let (channels, chips) = ssd.busy_ps(end);
        assert_eq!(
            chips.iter().sum::<u64>(),
            (cfg.read_latency + cfg.read_latency).as_ps()
        );
        assert_eq!(
            channels.iter().sum::<u64>(),
            cfg.page_transfer_time().as_ps()
        );
        // Mid-service credit: a fresh submit makes a chip busy, and the
        // accumulated time keeps growing with `now` while it serves.
        let step = ssd.submit(
            SsdCommand {
                id: 2,
                op: IoType::Read,
                lba: 9_999,
                size: 4096,
            },
            end,
        );
        assert!(!step.schedule.is_empty());
        let (_, before) = ssd.busy_ps(end);
        let (_, after) = ssd.busy_ps(end + SimDuration::from_us(10));
        assert_eq!(
            after.iter().sum::<u64>() - before.iter().sum::<u64>(),
            SimDuration::from_us(10).as_ps()
        );
    }

    #[test]
    fn cached_write_completes_after_bus_transfer() {
        let cfg = SsdConfig::ssd_a();
        let mut ssd = Ssd::new(cfg.clone());
        let t0 = SimTime::from_us(5);
        let step = ssd.submit(
            SsdCommand {
                id: 7,
                op: IoType::Write,
                lba: 0,
                size: 16 * 1024,
            },
            t0,
        );
        // Nothing completes at submit; one bus transfer scheduled.
        assert!(step.completions.is_empty());
        assert_eq!(step.schedule.len(), 1);
        let (t, ev) = step.schedule[0];
        assert_eq!(t, t0 + cfg.page_transfer_time());
        // The transfer landing completes the (cached) write and starts a
        // background program.
        let s2 = ssd.handle(ev, t);
        assert_eq!(s2.completions.len(), 1);
        assert_eq!(s2.completions[0].at, t);
        assert_eq!(ssd.stats().cached_writes, 1);
        assert!(!s2.schedule.is_empty(), "background program scheduled");
    }

    #[test]
    fn multi_page_command_counts_pages() {
        let cfg = SsdConfig::ssd_a();
        let mut ssd = Ssd::new(cfg);
        // 44 KB = 3 pages of 16 KiB.
        let step = ssd.submit(
            SsdCommand {
                id: 1,
                op: IoType::Read,
                lba: 0,
                size: 44_000,
            },
            SimTime::ZERO,
        );
        // Nothing completes at submit; three cell reads scheduled across
        // chips.
        assert!(step.completions.is_empty());
        assert_eq!(ssd.in_flight(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate in-flight command id")]
    fn duplicate_id_rejected() {
        let mut ssd = Ssd::new(SsdConfig::ssd_a());
        let c = SsdCommand {
            id: 1,
            op: IoType::Read,
            lba: 0,
            size: 4096,
        };
        let _ = ssd.submit(c, SimTime::ZERO);
        let _ = ssd.submit(c, SimTime::ZERO);
    }

    #[test]
    fn cache_exhaustion_forces_sync_writes() {
        let cfg = small_cfg(); // 64 KiB cache = 4 pages of 16 KiB
        let (stats, _) = run_closed_loop(
            cfg,
            (0..16)
                .map(|i| SsdCommand {
                    id: i,
                    op: IoType::Write,
                    lba: i * 8,
                    size: 16 * 1024,
                })
                .collect(),
        );
        assert!(stats.sync_writes > 0, "small cache must overflow");
        assert!(stats.cached_writes >= 4);
    }

    #[test]
    fn gc_triggers_when_space_low() {
        // Tiny device: 8 chips x 4 blocks x 8 pages = 256 pages; a
        // hot-set overwrite pattern forces GC quickly.
        let cfg = SsdConfig {
            total_pages: 256,
            pages_per_block: 8,
            gc_free_blocks: 1,
            write_cache: ByteSize::ZERO,
            ..SsdConfig::ssd_a()
        };
        // Drain the event queue completely (GC copies finish after the
        // last host completion).
        let mut ssd = Ssd::new(cfg);
        let mut q = sim_engine::EventQueue::new();
        for i in 0..400u64 {
            let s = ssd.submit(
                SsdCommand {
                    id: i,
                    op: IoType::Write,
                    lba: (i % 40) * 4, // hot set: forces overwrites + GC
                    size: 16 * 1024,
                },
                SimTime::from_us(i),
            );
            for (t, e) in s.schedule {
                q.schedule(t, e);
            }
        }
        while let Some((t, e)) = q.pop() {
            let s = ssd.handle(e, t);
            for (t2, e2) in s.schedule {
                q.schedule(t2, e2);
            }
        }
        assert!(ssd.stats().erases > 0, "GC never erased");
        assert!(ssd.write_amplification() >= 1.0);
        assert_eq!(ssd.stats().writes_completed, 400);
    }

    #[test]
    fn read_throughput_bounded_by_channel_bandwidth() {
        // Saturating closed-loop reads: achieved throughput must not
        // exceed the channel bound and should get reasonably close.
        let cfg = SsdConfig::ssd_a();
        let bound = cfg.channel_bound_bw();
        let cmds: Vec<SsdCommand> = (0..2000)
            .map(|i| SsdCommand {
                id: i,
                op: IoType::Read,
                lba: (i * 16) % (1 << 20),
                size: 64 * 1024,
            })
            .collect();
        let (stats, makespan) = run_closed_loop(cfg, cmds);
        let achieved = stats.read_bytes_completed as f64 / makespan.as_secs_f64();
        assert!(
            achieved <= bound * 1.01,
            "achieved {achieved} > bound {bound}"
        );
        assert!(
            achieved > bound * 0.5,
            "achieved {achieved} too far below bound {bound}"
        );
    }

    #[test]
    fn writes_slower_than_reads_at_flash() {
        // With the cache disabled, write throughput is program-bound and
        // clearly below read throughput.
        let mk = |op| -> Vec<SsdCommand> {
            (0..800)
                .map(|i| SsdCommand {
                    id: i,
                    op,
                    lba: (i * 16) % (1 << 20),
                    size: 64 * 1024,
                })
                .collect()
        };
        let no_cache = SsdConfig {
            write_cache: ByteSize::ZERO,
            ..SsdConfig::ssd_a()
        };
        let (rs, rt) = run_closed_loop(no_cache.clone(), mk(IoType::Read));
        let (ws, wt) = run_closed_loop(no_cache, mk(IoType::Write));
        let r_bw = rs.read_bytes_completed as f64 / rt.as_secs_f64();
        let w_bw = ws.write_bytes_completed as f64 / wt.as_secs_f64();
        assert!(
            w_bw < r_bw * 0.6,
            "write bw {w_bw} not clearly below read bw {r_bw}"
        );
    }
}
