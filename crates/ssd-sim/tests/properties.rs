//! Property-based tests of the SSD model's conservation invariants.

use proptest::prelude::*;
use sim_engine::{EventQueue, SimTime};
use ssd_sim::{Ssd, SsdCommand, SsdConfig, SsdEvent};
use std::collections::HashSet;
use workload::IoType;

/// Drive an SSD with a set of commands submitted at t=0 (respecting a
/// queue-depth budget via releases) and drain everything.
fn drive(cfg: SsdConfig, cmds: &[SsdCommand]) -> (Vec<u64>, Vec<u64>) {
    let qd = cfg.queue_depth;
    let mut ssd = Ssd::new(cfg);
    let mut q: EventQueue<SsdEvent> = EventQueue::new();
    let mut pending = cmds.to_vec();
    pending.reverse();
    let mut completed = Vec::new();
    let mut released = Vec::new();

    // Initial fill up to the queue depth.
    for _ in 0..qd {
        let Some(c) = pending.pop() else { break };
        let step = ssd.submit(c, SimTime::ZERO);
        for (t, e) in step.schedule {
            q.schedule(t, e);
        }
    }
    while let Some((t, e)) = q.pop() {
        let step = ssd.handle(e, t);
        for c in step.completions {
            completed.push(c.id);
        }
        for r in step.releases {
            released.push(r.id);
            if let Some(c) = pending.pop() {
                let s2 = ssd.submit(c, t);
                for (t2, e2) in s2.schedule {
                    q.schedule(t2, e2);
                }
            }
        }
        for (t2, e2) in step.schedule {
            q.schedule(t2, e2);
        }
    }
    (completed, released)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every command completes exactly once and releases exactly once,
    /// no matter the mix of sizes, ops and addresses.
    #[test]
    fn prop_every_command_completes_and_releases_once(
        specs in proptest::collection::vec(
            (0u8..2, 0u64..100_000, 1u64..100_000), 1..120),
    ) {
        let cmds: Vec<SsdCommand> = specs
            .iter()
            .enumerate()
            .map(|(i, &(op, lba, size))| SsdCommand {
                id: i as u64,
                op: if op == 0 { IoType::Read } else { IoType::Write },
                lba,
                size,
            })
            .collect();
        let (completed, released) = drive(SsdConfig::ssd_a(), &cmds);
        prop_assert_eq!(completed.len(), cmds.len());
        prop_assert_eq!(released.len(), cmds.len());
        let cset: HashSet<u64> = completed.iter().copied().collect();
        let rset: HashSet<u64> = released.iter().copied().collect();
        prop_assert_eq!(cset.len(), cmds.len(), "duplicate completion");
        prop_assert_eq!(rset.len(), cmds.len(), "duplicate release");
    }

    /// Byte accounting matches the submitted commands exactly, for every
    /// Table II device.
    #[test]
    fn prop_byte_accounting(which in 0u8..3, n in 1usize..60) {
        let cfg = match which {
            0 => SsdConfig::ssd_a(),
            1 => SsdConfig::ssd_b(),
            _ => SsdConfig::ssd_c(),
        };
        let cmds: Vec<SsdCommand> = (0..n)
            .map(|i| SsdCommand {
                id: i as u64,
                op: if i % 3 == 0 { IoType::Write } else { IoType::Read },
                lba: (i as u64) * 97 % 50_000,
                size: 1 + (i as u64 * 7919) % 80_000,
            })
            .collect();
        let expect_read: u64 = cmds.iter().filter(|c| c.op.is_read()).map(|c| c.size).sum();
        let expect_write: u64 = cmds.iter().filter(|c| !c.op.is_read()).map(|c| c.size).sum();
        let qd = cfg.queue_depth;
        let mut ssd = Ssd::new(cfg);
        let mut q: EventQueue<SsdEvent> = EventQueue::new();
        let mut i = 0usize;
        while i < cmds.len().min(qd) {
            for (t, e) in ssd.submit(cmds[i], SimTime::ZERO).schedule {
                q.schedule(t, e);
            }
            i += 1;
        }
        while let Some((t, e)) = q.pop() {
            let step = ssd.handle(e, t);
            for _r in step.releases {
                if i < cmds.len() {
                    for (t2, e2) in ssd.submit(cmds[i], t).schedule {
                        q.schedule(t2, e2);
                    }
                    i += 1;
                }
            }
            for (t2, e2) in step.schedule {
                q.schedule(t2, e2);
            }
        }
        let s = ssd.stats();
        prop_assert_eq!(s.read_bytes_completed, expect_read);
        prop_assert_eq!(s.write_bytes_completed, expect_write);
        prop_assert_eq!(ssd.in_flight(), 0);
    }
}

/// Determinism: the same command sequence produces identical completion
/// order and timing.
#[test]
fn deterministic_completion_order() {
    let cmds: Vec<SsdCommand> = (0..80)
        .map(|i| SsdCommand {
            id: i,
            op: if i % 2 == 0 {
                IoType::Read
            } else {
                IoType::Write
            },
            lba: i * 131,
            size: 4096 + (i % 5) * 13_000,
        })
        .collect();
    let a = drive(SsdConfig::ssd_c(), &cmds);
    let b = drive(SsdConfig::ssd_c(), &cmds);
    assert_eq!(a, b);
}
