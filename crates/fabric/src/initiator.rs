//! The NVMe-oF Initiator driver: issues trace requests to Targets and
//! tracks completions.

use crate::wire::{encode_tag, MsgKind, WireSend, CMD_HEADER_BYTES};
use net_sim::FlowId;
use sim_engine::SimTime;
use std::collections::HashMap;
use workload::{IoType, Request};

/// A completed request as observed at the Initiator.
#[derive(Clone, Copy, Debug)]
pub struct InitiatorCompletion {
    /// Global request id.
    pub req_id: u64,
    /// I/O type.
    pub op: IoType,
    /// Payload size, bytes.
    pub size: u64,
    /// Time the request was issued.
    pub issued: SimTime,
    /// Completion time at the Initiator.
    pub at: SimTime,
}

struct PendingReq {
    op: IoType,
    size: u64,
    issued: SimTime,
}

/// Initiator-side protocol state for one Initiator host. Requests may be
/// spread across several Targets; the caller supplies the per-request
/// outbound flow.
pub struct InitiatorProto {
    pending: HashMap<u64, PendingReq>,
    issued: u64,
}

impl InitiatorProto {
    /// Fresh driver.
    pub fn new() -> Self {
        InitiatorProto {
            pending: HashMap::new(),
            issued: 0,
        }
    }

    /// Issue one request toward a Target over `out_flow`. Returns the
    /// wire message to send.
    ///
    /// # Panics
    /// Panics on a duplicate in-flight request id.
    pub fn issue(&mut self, req: &Request, out_flow: FlowId, now: SimTime) -> WireSend {
        let prev = self.pending.insert(
            req.id,
            PendingReq {
                op: req.op,
                size: req.size,
                issued: now,
            },
        );
        assert!(prev.is_none(), "duplicate request id {}", req.id);
        self.issued += 1;
        Self::wire_send(req, out_flow)
    }

    /// Re-issue a timed-out request (retry). The pending entry's issue
    /// timestamp resets to `now`, so a later completion's latency
    /// measures from the attempt that succeeded.
    ///
    /// # Panics
    /// Panics if the request is not pending (completed or abandoned
    /// requests must not be retried).
    pub fn reissue(&mut self, req: &Request, out_flow: FlowId, now: SimTime) -> WireSend {
        let p = self
            .pending
            .get_mut(&req.id)
            .unwrap_or_else(|| panic!("retry of non-pending request {}", req.id));
        p.issued = now;
        self.issued += 1;
        Self::wire_send(req, out_flow)
    }

    fn wire_send(req: &Request, out_flow: FlowId) -> WireSend {
        match req.op {
            IoType::Read => WireSend {
                flow: out_flow,
                bytes: CMD_HEADER_BYTES,
                tag: encode_tag(MsgKind::ReadCmd, req.id),
            },
            IoType::Write => WireSend {
                flow: out_flow,
                bytes: CMD_HEADER_BYTES + req.size,
                tag: encode_tag(MsgKind::WriteCmd, req.id),
            },
        }
    }

    /// An inbound message completed (its last packet arrived). Returns
    /// the completion when it terminates a pending request, or `None`
    /// for a request no longer pending — a late reply to a request that
    /// was already completed (a retry raced its original) or abandoned.
    ///
    /// # Panics
    /// Panics on a kind mismatch for a request that *is* pending.
    pub fn on_inbound(
        &mut self,
        kind: MsgKind,
        req_id: u64,
        now: SimTime,
    ) -> Option<InitiatorCompletion> {
        let p = self.pending.remove(&req_id)?;
        match (kind, p.op) {
            (MsgKind::ReadData, IoType::Read) | (MsgKind::WriteAck, IoType::Write) => {}
            other => panic!("mismatched completion {other:?} for request {req_id}"),
        }
        Some(InitiatorCompletion {
            req_id,
            op: p.op,
            size: p.size,
            issued: p.issued,
            at: now,
        })
    }

    /// Give up on a pending request (retry budget exhausted). Returns
    /// true when the request was pending; a later reply for it is
    /// ignored by [`InitiatorProto::on_inbound`].
    pub fn abandon(&mut self, req_id: u64) -> bool {
        self.pending.remove(&req_id).is_some()
    }

    /// Requests still awaiting completion.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl Default for InitiatorProto {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, op: IoType, size: u64) -> Request {
        Request {
            id,
            op,
            lba: 0,
            size,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn read_sends_header_only() {
        let mut p = InitiatorProto::new();
        let w = p.issue(&req(1, IoType::Read, 44_000), FlowId(0), SimTime::ZERO);
        assert_eq!(w.bytes, CMD_HEADER_BYTES);
        assert_eq!(crate::wire::decode_tag(w.tag), (MsgKind::ReadCmd, 1));
        assert_eq!(p.in_flight(), 1);
    }

    #[test]
    fn write_sends_data_in_capsule() {
        let mut p = InitiatorProto::new();
        let w = p.issue(&req(2, IoType::Write, 23_000), FlowId(3), SimTime::ZERO);
        assert_eq!(w.bytes, CMD_HEADER_BYTES + 23_000);
        assert_eq!(w.flow, FlowId(3));
    }

    #[test]
    fn completion_round_trip() {
        let mut p = InitiatorProto::new();
        let t0 = SimTime::from_us(10);
        p.issue(&req(5, IoType::Read, 8_192), FlowId(0), t0);
        let c = p
            .on_inbound(MsgKind::ReadData, 5, SimTime::from_us(90))
            .expect("pending request completes");
        assert_eq!(c.size, 8_192);
        assert_eq!(c.issued, t0);
        assert_eq!(c.at, SimTime::from_us(90));
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "mismatched completion")]
    fn wrong_kind_panics() {
        let mut p = InitiatorProto::new();
        p.issue(&req(5, IoType::Read, 8_192), FlowId(0), SimTime::ZERO);
        let _ = p.on_inbound(MsgKind::WriteAck, 5, SimTime::ZERO);
    }

    #[test]
    fn unknown_completion_is_ignored() {
        // Late replies (a retry raced its original, or the request was
        // abandoned) are dropped, not errors.
        let mut p = InitiatorProto::new();
        assert!(p.on_inbound(MsgKind::ReadData, 9, SimTime::ZERO).is_none());
    }

    #[test]
    fn reissue_resets_issue_time_and_counts() {
        let mut p = InitiatorProto::new();
        let r = req(5, IoType::Read, 8_192);
        p.issue(&r, FlowId(0), SimTime::from_us(10));
        let w = p.reissue(&r, FlowId(0), SimTime::from_us(50));
        assert_eq!(w.bytes, CMD_HEADER_BYTES);
        assert_eq!(p.issued(), 2);
        assert_eq!(p.in_flight(), 1);
        let c = p
            .on_inbound(MsgKind::ReadData, 5, SimTime::from_us(90))
            .expect("still pending");
        assert_eq!(c.issued, SimTime::from_us(50), "latency from the retry");
    }

    #[test]
    #[should_panic(expected = "retry of non-pending request")]
    fn reissue_of_unknown_panics() {
        let mut p = InitiatorProto::new();
        let _ = p.reissue(&req(5, IoType::Read, 8_192), FlowId(0), SimTime::ZERO);
    }

    #[test]
    fn abandon_drops_pending_and_squelches_late_reply() {
        let mut p = InitiatorProto::new();
        p.issue(&req(7, IoType::Write, 4_096), FlowId(0), SimTime::ZERO);
        assert!(p.abandon(7));
        assert!(!p.abandon(7), "second abandon is a no-op");
        assert_eq!(p.in_flight(), 0);
        assert!(p.on_inbound(MsgKind::WriteAck, 7, SimTime::ZERO).is_none());
    }
}
