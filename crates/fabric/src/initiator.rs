//! The NVMe-oF Initiator driver: issues trace requests to Targets and
//! tracks completions.

use crate::wire::{encode_tag, MsgKind, WireSend, CMD_HEADER_BYTES};
use net_sim::FlowId;
use sim_engine::SimTime;
use std::collections::HashMap;
use workload::{IoType, Request};

/// A completed request as observed at the Initiator.
#[derive(Clone, Copy, Debug)]
pub struct InitiatorCompletion {
    /// Global request id.
    pub req_id: u64,
    /// I/O type.
    pub op: IoType,
    /// Payload size, bytes.
    pub size: u64,
    /// Time the request was issued.
    pub issued: SimTime,
    /// Completion time at the Initiator.
    pub at: SimTime,
}

struct PendingReq {
    op: IoType,
    size: u64,
    issued: SimTime,
}

/// Initiator-side protocol state for one Initiator host. Requests may be
/// spread across several Targets; the caller supplies the per-request
/// outbound flow.
pub struct InitiatorProto {
    pending: HashMap<u64, PendingReq>,
    issued: u64,
}

impl InitiatorProto {
    /// Fresh driver.
    pub fn new() -> Self {
        InitiatorProto {
            pending: HashMap::new(),
            issued: 0,
        }
    }

    /// Issue one request toward a Target over `out_flow`. Returns the
    /// wire message to send.
    ///
    /// # Panics
    /// Panics on a duplicate in-flight request id.
    pub fn issue(&mut self, req: &Request, out_flow: FlowId, now: SimTime) -> WireSend {
        let prev = self.pending.insert(
            req.id,
            PendingReq {
                op: req.op,
                size: req.size,
                issued: now,
            },
        );
        assert!(prev.is_none(), "duplicate request id {}", req.id);
        self.issued += 1;
        match req.op {
            IoType::Read => WireSend {
                flow: out_flow,
                bytes: CMD_HEADER_BYTES,
                tag: encode_tag(MsgKind::ReadCmd, req.id),
            },
            IoType::Write => WireSend {
                flow: out_flow,
                bytes: CMD_HEADER_BYTES + req.size,
                tag: encode_tag(MsgKind::WriteCmd, req.id),
            },
        }
    }

    /// An inbound message completed (its last packet arrived). Returns
    /// the completion when it terminates a pending request.
    ///
    /// # Panics
    /// Panics on a completion for an unknown request or a kind mismatch.
    pub fn on_inbound(&mut self, kind: MsgKind, req_id: u64, now: SimTime) -> InitiatorCompletion {
        let p = self
            .pending
            .remove(&req_id)
            .unwrap_or_else(|| panic!("completion for unknown request {req_id}"));
        match (kind, p.op) {
            (MsgKind::ReadData, IoType::Read) | (MsgKind::WriteAck, IoType::Write) => {}
            other => panic!("mismatched completion {other:?} for request {req_id}"),
        }
        InitiatorCompletion {
            req_id,
            op: p.op,
            size: p.size,
            issued: p.issued,
            at: now,
        }
    }

    /// Requests still awaiting completion.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl Default for InitiatorProto {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, op: IoType, size: u64) -> Request {
        Request {
            id,
            op,
            lba: 0,
            size,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn read_sends_header_only() {
        let mut p = InitiatorProto::new();
        let w = p.issue(&req(1, IoType::Read, 44_000), FlowId(0), SimTime::ZERO);
        assert_eq!(w.bytes, CMD_HEADER_BYTES);
        assert_eq!(crate::wire::decode_tag(w.tag), (MsgKind::ReadCmd, 1));
        assert_eq!(p.in_flight(), 1);
    }

    #[test]
    fn write_sends_data_in_capsule() {
        let mut p = InitiatorProto::new();
        let w = p.issue(&req(2, IoType::Write, 23_000), FlowId(3), SimTime::ZERO);
        assert_eq!(w.bytes, CMD_HEADER_BYTES + 23_000);
        assert_eq!(w.flow, FlowId(3));
    }

    #[test]
    fn completion_round_trip() {
        let mut p = InitiatorProto::new();
        let t0 = SimTime::from_us(10);
        p.issue(&req(5, IoType::Read, 8_192), FlowId(0), t0);
        let c = p.on_inbound(MsgKind::ReadData, 5, SimTime::from_us(90));
        assert_eq!(c.size, 8_192);
        assert_eq!(c.issued, t0);
        assert_eq!(c.at, SimTime::from_us(90));
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "mismatched completion")]
    fn wrong_kind_panics() {
        let mut p = InitiatorProto::new();
        p.issue(&req(5, IoType::Read, 8_192), FlowId(0), SimTime::ZERO);
        let _ = p.on_inbound(MsgKind::WriteAck, 5, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown request")]
    fn unknown_completion_panics() {
        let mut p = InitiatorProto::new();
        let _ = p.on_inbound(MsgKind::ReadData, 9, SimTime::ZERO);
    }
}
