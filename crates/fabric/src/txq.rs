//! Transmit-queue watermark policy.
//!
//! The Target's RDMA TXQ is where read data piles up when DCQCN cuts the
//! sending rate (paper Sec. II-B: "the TXQ on Targets becomes the
//! bottleneck of read throughput"). The storage stack must stop fetching
//! new commands when the TXQ is full — otherwise completed read data has
//! nowhere to go — and resume below a low watermark. This hysteresis gate
//! is exactly the coupling that makes the DCQCN-only baseline collapse
//! and that SRC relieves by throttling reads at the SSD instead.

use serde::{Deserialize, Serialize};

/// Hysteresis gate over TXQ occupancy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TxqPolicy {
    /// Occupancy (bytes) at which the storage fetch gate closes.
    pub high_watermark: u64,
    /// Occupancy below which it reopens.
    pub low_watermark: u64,
    gated: bool,
}

impl TxqPolicy {
    /// New policy; gate initially open.
    ///
    /// # Panics
    /// Panics unless `0 < low <= high`.
    pub fn new(high_watermark: u64, low_watermark: u64) -> Self {
        assert!(low_watermark > 0 && low_watermark <= high_watermark);
        TxqPolicy {
            high_watermark,
            low_watermark,
            gated: false,
        }
    }

    /// Update with the current TXQ occupancy; returns `Some(open)` when
    /// the gate state changed.
    pub fn observe(&mut self, backlog_bytes: u64) -> Option<bool> {
        if !self.gated && backlog_bytes >= self.high_watermark {
            self.gated = true;
            Some(false)
        } else if self.gated && backlog_bytes <= self.low_watermark {
            self.gated = false;
            Some(true)
        } else {
            None
        }
    }

    /// Is the fetch gate currently closed?
    pub fn is_gated(&self) -> bool {
        self.gated
    }
}

impl Default for TxqPolicy {
    /// 2 MiB high / 1 MiB low — a few hundred microseconds of line-rate
    /// drain, deep enough to ride bursts, shallow enough that DCQCN's
    /// cuts propagate to the SSD quickly.
    fn default() -> Self {
        TxqPolicy::new(2 * 1024 * 1024, 1024 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hysteresis_cycle() {
        let mut p = TxqPolicy::new(100, 50);
        assert!(!p.is_gated());
        assert_eq!(p.observe(99), None);
        assert_eq!(p.observe(100), Some(false));
        assert!(p.is_gated());
        // Between watermarks: no change.
        assert_eq!(p.observe(75), None);
        assert!(p.is_gated());
        assert_eq!(p.observe(50), Some(true));
        assert!(!p.is_gated());
        // Repeated low observations don't re-fire.
        assert_eq!(p.observe(0), None);
    }

    #[test]
    #[should_panic]
    fn invalid_watermarks() {
        let _ = TxqPolicy::new(10, 20);
    }

    proptest::proptest! {
        /// The gate is closed iff the last crossing was upward, for any
        /// occupancy trajectory.
        #[test]
        fn prop_gate_consistency(levels in proptest::collection::vec(0u64..200, 1..100)) {
            let mut p = TxqPolicy::new(100, 50);
            let mut expect_gated = false;
            for &l in &levels {
                let change = p.observe(l);
                if !expect_gated && l >= 100 {
                    expect_gated = true;
                    proptest::prop_assert_eq!(change, Some(false));
                } else if expect_gated && l <= 50 {
                    expect_gated = false;
                    proptest::prop_assert_eq!(change, Some(true));
                } else {
                    proptest::prop_assert_eq!(change, None);
                }
                proptest::prop_assert_eq!(p.is_gated(), expect_gated);
            }
        }
    }
}
