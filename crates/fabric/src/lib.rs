//! NVMe-over-Fabrics layer: the protocol between Initiators and Targets
//! over the RDMA network (paper Fig. 1).
//!
//! Message flow per request:
//!
//! * **Read**: Initiator sends a command capsule (64 B, outbound);
//!   Target submits it to its storage stack; the retrieved data travels
//!   back as an inbound transfer (`size` + 64 B header). Read throughput
//!   is measured where the data lands: at the Initiator.
//! * **Write**: Initiator sends command + in-capsule data (64 B + size,
//!   outbound); Target submits to storage; the completion acknowledgment
//!   returns as a 64 B inbound message. Write throughput is measured at
//!   the Target (completion time), matching the paper's metric.
//!
//! The module is pure protocol: [`InitiatorProto`] / [`TargetProto`]
//! translate between trace requests, wire messages (encoded in the
//! network's `tag`), and storage submissions. The `system-sim` crate owns
//! the event loop and moves the produced [`WireSend`]s onto the network.
//! [`TxqPolicy`] implements the transmit-queue watermark gate that
//! couples network backpressure to the SSD fetch gate — the bottleneck
//! coupling SRC is designed around.
//!
//! # Example
//!
//! ```
//! use fabric::{InitiatorProto, TargetProto, MsgKind, decode_tag};
//! use net_sim::FlowId;
//! use sim_engine::SimTime;
//! use workload::{IoType, Request};
//!
//! let req = Request { id: 9, op: IoType::Read, lba: 0,
//!     size: 44_000, arrival: SimTime::ZERO };
//! let mut init = InitiatorProto::new();
//! let cmd = init.issue(&req, FlowId(0), SimTime::ZERO);
//! let (kind, id) = decode_tag(cmd.tag);
//! assert_eq!((kind, id), (MsgKind::ReadCmd, 9));
//!
//! let mut tgt = TargetProto::new();
//! let sub = tgt.on_command(kind, &req, FlowId(1), SimTime::from_us(3))
//!     .expect("fresh command");
//! let reply = tgt.on_storage_completion(sub.request.id, SimTime::from_us(80));
//! assert_eq!(reply.bytes, 64 + 44_000); // header + data
//! ```

pub mod initiator;
pub mod target;
pub mod txq;
pub mod wire;

pub use initiator::InitiatorProto;
pub use target::TargetProto;
pub use txq::TxqPolicy;
pub use wire::{decode_tag, encode_tag, MsgKind, WireSend, CMD_HEADER_BYTES};
