//! Wire encoding: message kinds multiplexed onto the network's `u64`
//! tag, plus the "send this" instruction both protocol ends emit.

use net_sim::FlowId;

/// NVMe-oF capsule header size (command or completion), bytes.
pub const CMD_HEADER_BYTES: u64 = 64;

/// Message kinds on the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Read command capsule, Initiator → Target.
    ReadCmd,
    /// Write command capsule with in-capsule data, Initiator → Target.
    WriteCmd,
    /// Read data transfer, Target → Initiator.
    ReadData,
    /// Write completion acknowledgment, Target → Initiator.
    WriteAck,
}

impl MsgKind {
    fn code(self) -> u64 {
        match self {
            MsgKind::ReadCmd => 0,
            MsgKind::WriteCmd => 1,
            MsgKind::ReadData => 2,
            MsgKind::WriteAck => 3,
        }
    }

    fn from_code(c: u64) -> MsgKind {
        match c {
            0 => MsgKind::ReadCmd,
            1 => MsgKind::WriteCmd,
            2 => MsgKind::ReadData,
            3 => MsgKind::WriteAck,
            _ => unreachable!("2-bit code"),
        }
    }
}

/// Pack `(kind, request id)` into a network tag.
///
/// # Panics
/// Panics if `req_id` does not fit in 62 bits.
pub fn encode_tag(kind: MsgKind, req_id: u64) -> u64 {
    assert!(req_id < (1 << 62), "request id overflows tag");
    (req_id << 2) | kind.code()
}

/// Unpack a network tag into `(kind, request id)`.
pub fn decode_tag(tag: u64) -> (MsgKind, u64) {
    (MsgKind::from_code(tag & 0b11), tag >> 2)
}

/// An instruction to put bytes on a flow (executed by the system loop
/// via `Network::send`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireSend {
    /// Which flow carries the message.
    pub flow: FlowId,
    /// Total bytes (header + payload).
    pub bytes: u64,
    /// Encoded tag.
    pub tag: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trip() {
        for kind in [
            MsgKind::ReadCmd,
            MsgKind::WriteCmd,
            MsgKind::ReadData,
            MsgKind::WriteAck,
        ] {
            for id in [0u64, 1, 12345, (1 << 62) - 1] {
                let (k, i) = decode_tag(encode_tag(kind, id));
                assert_eq!((k, i), (kind, id));
            }
        }
    }

    #[test]
    #[should_panic(expected = "overflows tag")]
    fn oversized_id_rejected() {
        let _ = encode_tag(MsgKind::ReadCmd, 1 << 62);
    }

    proptest::proptest! {
        #[test]
        fn prop_round_trip(id in 0u64..(1 << 62), k in 0u64..4) {
            let kind = match k { 0 => MsgKind::ReadCmd, 1 => MsgKind::WriteCmd,
                                 2 => MsgKind::ReadData, _ => MsgKind::WriteAck };
            let (k2, id2) = decode_tag(encode_tag(kind, id));
            proptest::prop_assert_eq!((k2, id2), (kind, id));
        }
    }
}
