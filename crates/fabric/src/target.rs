//! The NVMe-oF Target driver: receives command capsules, forwards them to
//! the storage stack, and returns data/acknowledgments.

use crate::wire::{encode_tag, MsgKind, WireSend, CMD_HEADER_BYTES};
use net_sim::FlowId;
use sim_engine::SimTime;
use std::collections::HashMap;
use workload::{IoType, Request};

/// What the Target should hand to its storage stack.
#[derive(Clone, Copy, Debug)]
pub struct StorageSubmission {
    /// The request to enqueue on the NVMe driver.
    pub request: Request,
}

struct PendingCmd {
    op: IoType,
    size: u64,
    /// Inbound flow (target → the issuing initiator).
    reply_flow: FlowId,
    received: SimTime,
}

/// Target-side protocol state for one Target host.
pub struct TargetProto {
    pending: HashMap<u64, PendingCmd>,
    /// Completed write requests observed at the Target `(id, size, at)` —
    /// the paper measures write throughput here.
    writes_completed: u64,
    write_bytes_completed: u64,
}

impl TargetProto {
    /// Fresh driver.
    pub fn new() -> Self {
        TargetProto {
            pending: HashMap::new(),
            writes_completed: 0,
            write_bytes_completed: 0,
        }
    }

    /// A command capsule arrived (all its bytes). `lba`/`size` come from
    /// the shared request table (in-capsule metadata); `reply_flow` is
    /// the inbound flow back to the issuing Initiator. Returns the
    /// storage submission, or `None` when the command id is already in
    /// service — an initiator retry arrived while the original is still
    /// being processed, so the original's completion will answer both
    /// (the reply flow is refreshed to the retry's).
    pub fn on_command(
        &mut self,
        kind: MsgKind,
        req: &Request,
        reply_flow: FlowId,
        now: SimTime,
    ) -> Option<StorageSubmission> {
        let op = match kind {
            MsgKind::ReadCmd => IoType::Read,
            MsgKind::WriteCmd => IoType::Write,
            other => panic!("not a command capsule: {other:?}"),
        };
        assert_eq!(op, req.op, "capsule kind disagrees with request table");
        if let Some(p) = self.pending.get_mut(&req.id) {
            assert_eq!(p.op, op, "retried command changed its I/O type");
            p.reply_flow = reply_flow;
            return None;
        }
        self.pending.insert(
            req.id,
            PendingCmd {
                op,
                size: req.size,
                reply_flow,
                received: now,
            },
        );
        Some(StorageSubmission { request: *req })
    }

    /// The storage stack completed command `req_id`; returns the wire
    /// reply (read data or write ack).
    ///
    /// # Panics
    /// Panics for unknown ids.
    pub fn on_storage_completion(&mut self, req_id: u64, _now: SimTime) -> WireSend {
        let p = self
            .pending
            .remove(&req_id)
            .unwrap_or_else(|| panic!("storage completion for unknown command {req_id}"));
        match p.op {
            IoType::Read => WireSend {
                flow: p.reply_flow,
                bytes: CMD_HEADER_BYTES + p.size,
                tag: encode_tag(MsgKind::ReadData, req_id),
            },
            IoType::Write => {
                self.writes_completed += 1;
                self.write_bytes_completed += p.size;
                WireSend {
                    flow: p.reply_flow,
                    bytes: CMD_HEADER_BYTES,
                    tag: encode_tag(MsgKind::WriteAck, req_id),
                }
            }
        }
    }

    /// Commands accepted but not yet completed by storage.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// `(count, bytes)` of writes completed at this Target.
    pub fn writes_completed(&self) -> (u64, u64) {
        (self.writes_completed, self.write_bytes_completed)
    }

    /// Time a pending command was received (None when unknown).
    pub fn received_at(&self, req_id: u64) -> Option<SimTime> {
        self.pending.get(&req_id).map(|p| p.received)
    }
}

impl Default for TargetProto {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode_tag;

    fn req(id: u64, op: IoType, size: u64) -> Request {
        Request {
            id,
            op,
            lba: id,
            size,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn read_flow() {
        let mut t = TargetProto::new();
        let r = req(1, IoType::Read, 44_000);
        let sub = t
            .on_command(MsgKind::ReadCmd, &r, FlowId(7), SimTime::from_us(3))
            .expect("fresh command submits");
        assert_eq!(sub.request.op, IoType::Read);
        assert_eq!(t.in_flight(), 1);
        assert_eq!(t.received_at(1), Some(SimTime::from_us(3)));
        let reply = t.on_storage_completion(1, SimTime::from_us(80));
        assert_eq!(reply.bytes, CMD_HEADER_BYTES + 44_000);
        assert_eq!(decode_tag(reply.tag), (MsgKind::ReadData, 1));
        assert_eq!(reply.flow, FlowId(7));
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn write_flow_counts_at_target() {
        let mut t = TargetProto::new();
        let r = req(2, IoType::Write, 23_000);
        let _ = t.on_command(MsgKind::WriteCmd, &r, FlowId(1), SimTime::ZERO);
        let reply = t.on_storage_completion(2, SimTime::from_us(50));
        assert_eq!(reply.bytes, CMD_HEADER_BYTES);
        assert_eq!(decode_tag(reply.tag), (MsgKind::WriteAck, 2));
        assert_eq!(t.writes_completed(), (1, 23_000));
    }

    #[test]
    #[should_panic(expected = "not a command capsule")]
    fn data_kind_rejected() {
        let mut t = TargetProto::new();
        let r = req(3, IoType::Read, 1);
        let _ = t.on_command(MsgKind::ReadData, &r, FlowId(0), SimTime::ZERO);
    }

    #[test]
    fn duplicate_command_is_absorbed() {
        // A retried command arriving while the original is in service
        // produces no second storage submission; the reply flow is
        // refreshed so the completion answers the retry's path.
        let mut t = TargetProto::new();
        let r = req(4, IoType::Read, 1);
        assert!(t
            .on_command(MsgKind::ReadCmd, &r, FlowId(0), SimTime::ZERO)
            .is_some());
        assert!(t
            .on_command(MsgKind::ReadCmd, &r, FlowId(9), SimTime::ZERO)
            .is_none());
        assert_eq!(t.in_flight(), 1);
        let reply = t.on_storage_completion(4, SimTime::from_us(5));
        assert_eq!(reply.flow, FlowId(9), "reply follows the retry's flow");
    }

    #[test]
    #[should_panic(expected = "unknown command")]
    fn unknown_completion_rejected() {
        let mut t = TargetProto::new();
        let _ = t.on_storage_completion(99, SimTime::ZERO);
    }
}
