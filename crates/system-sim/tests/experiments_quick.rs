//! Reduced-scale runs of every paper experiment, asserting the
//! qualitative shapes the paper reports. Full-scale reproductions are
//! the bench binaries (`crates/bench/src/bin/*`).
//!
//! These are heavyweight simulations; they are ignored in debug builds
//! (run `cargo test --release -- --include-ignored` to execute).

use sim_engine::NullSink;
use ssd_sim::SsdConfig;
use system_sim::experiments::*;

fn scale() -> Scale {
    Scale {
        requests_per_target: 1200,
        train: TrainKnob::Quick,
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn fig7_fig8_src_preserves_aggregate_throughput() {
    let ssd = SsdConfig::ssd_a();
    let tpm = train_tpm(&ssd, &scale(), 42);
    let r = fig7_fig8(&ssd, &scale(), tpm, 7, (&mut NullSink, &mut NullSink));
    let only = r.dcqcn_only.aggregated_tput().as_gbps_f64();
    let src = r.dcqcn_src.aggregated_tput().as_gbps_f64();
    // The paper's headline: SRC avoids the aggregate collapse.
    assert!(
        src > only * 1.10,
        "SRC should clearly beat DCQCN-only: {src:.2} vs {only:.2} Gbps"
    );
    // Write throughput is where the gain comes from.
    assert!(
        r.dcqcn_src.write_tput().as_gbps_f64() > r.dcqcn_only.write_tput().as_gbps_f64() * 1.1,
        "SRC should boost writes"
    );
    // Congestion really happened: pauses at Targets (Fig. 8) and rate
    // cuts near the floor.
    // PFC pause counts at this reduced scale are small and can land in
    // either run; congestion evidence = pauses somewhere + deep rate cuts.
    assert!(
        r.dcqcn_only.pauses_total + r.dcqcn_src.pauses_total > 0,
        "no pauses in either run"
    );
    assert!(r.dcqcn_only.min_inbound_rate_gbps < 1.0);
    // SRC actually adjusted weights.
    assert!(r.dcqcn_src.decisions.iter().any(|d| !d.is_empty()));
    assert!(r.dcqcn_src.decisions.iter().flatten().any(|d| d.weight > 1));
    // Everything completed in both modes.
    assert_eq!(
        r.dcqcn_only.reads_completed + r.dcqcn_only.writes_completed,
        r.dcqcn_src.reads_completed + r.dcqcn_src.writes_completed
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn fig9_dynamic_control_tracks_demanded_rates() {
    // The weight-choice granularity of Algorithm 1 needs the full
    // training grid; the workload itself stays at test scale.
    let r = fig9(
        &Scale {
            requests_per_target: 1200,
            train: TrainKnob::Full,
        },
        11,
        &mut NullSink,
    );
    assert_eq!(r.responses.len(), 4);
    // Pause events raise the weight; the final retrieval (full speed)
    // returns it to 1.
    let weights: Vec<u32> = r.responses.iter().map(|(_, _, w)| *w).collect();
    assert!(weights[0] >= 1);
    assert!(
        weights[1] >= weights[0],
        "deeper pause should not lower the weight: {weights:?}"
    );
    assert_eq!(*weights.last().unwrap(), 1, "full-rate retrieval resets w");
    // The throughput series actually shifted at the events.
    assert!(r.report.weight_changes.len() >= 2);
    // Convergence measured for at least half the events.
    let finite = r.convergence_ms.iter().filter(|d| d.is_finite()).count();
    assert!(
        finite * 2 >= r.convergence_ms.len(),
        "{:?}",
        r.convergence_ms
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn fig10_intensity_sensitivity() {
    let ssd = SsdConfig::ssd_a();
    let tpm = train_tpm(&ssd, &scale(), 42);
    let rows = fig10(&ssd, &scale(), tpm, 23);
    assert_eq!(rows.len(), 3);
    let gain = |only: &system_sim::SystemReport, src: &system_sim::SystemReport| {
        src.aggregated_tput().as_gbps_f64() / only.aggregated_tput().as_gbps_f64().max(1e-9)
    };
    let light = gain(&rows[0].1, &rows[0].2);
    let heavy = gain(&rows[2].1, &rows[2].2);
    // Heavy workloads benefit clearly; light ones barely (paper Fig. 10).
    assert!(heavy > 1.08, "heavy gain too small: {heavy:.3}");
    assert!(
        heavy > light,
        "gain should grow with intensity: light={light:.3} heavy={heavy:.3}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn table4_incast_ratio_trend() {
    let ssd = SsdConfig::ssd_a();
    let tpm = train_tpm(&ssd, &scale(), 42);
    let rows = table4(&ssd, &scale(), tpm, 31);
    assert_eq!(rows.len(), 4);
    assert_eq!(rows[0].ratio, "2:1");
    assert_eq!(rows[3].ratio, "4:4");
    // The paper's trend: improvement shrinks as the in-cast ratio grows
    // and nearly vanishes with more initiators.
    assert!(
        rows[0].improvement_pct > rows[3].improvement_pct,
        "2:1 ({:.1}%) should beat 4:4 ({:.1}%)",
        rows[0].improvement_pct,
        rows[3].improvement_pct
    );
    assert!(
        rows[0].improvement_pct > 5.0,
        "2:1 gain too small: {rows:?}"
    );
}

#[test]
fn table1_and_fig5_quick() {
    // Light enough to always run: regression table + one Fig. 5 cell.
    let ssd = SsdConfig::ssd_a();
    let rows = table1(&ssd, &scale(), 3);
    assert_eq!(rows.len(), 5);
    for (label, r2) in &rows {
        assert!(*r2 <= 1.0, "{label}: r2={r2}");
    }
    // The quick grid has only ~24 samples; the paper-scale ranking is
    // checked by the `table1_regression` bench binary.
    let rf = rows.last().unwrap().1;
    assert!(rf > 0.25, "random forest r2={rf}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn extension_distribution_remedies_spread_incast() {
    // Sec. IV-F: "this case can be addressed by designing a data
    // distribution mechanism". On a homogeneous 4:1 grid the margin of
    // least-loaded over static is bimodal noise (~6 vs ~11 Gbps in both
    // policies at test scale); the Table II devices share the same
    // channel bandwidth, so latency-only mixes do not help either. On a
    // bandwidth-heterogeneous fleet the margin is structural: static
    // assignment gives the single-channel devices the same quarter of
    // the load as the fast SSD-Bs, so the slow pair backs up while the
    // fast pair idles; load-aware selection routes the surplus to
    // whoever drains fastest (measured ~1.5x over seeds {7,17,42}).
    // Averaged over pinned seeds to keep the assertion about the
    // mechanism, not one RNG draw.
    let light = Scale {
        requests_per_target: 700,
        train: TrainKnob::Quick,
    };
    let slow = SsdConfig {
        channels: 1,
        ..SsdConfig::ssd_a()
    };
    let fast = SsdConfig::ssd_b();
    let fleet = [fast.clone(), fast.clone(), slow.clone(), slow.clone()];
    let tpm_fast = train_tpm(&fast, &light, 42);
    let tpm_slow = train_tpm(&slow, &light, 42);
    let tpms = vec![tpm_fast.clone(), tpm_fast, tpm_slow.clone(), tpm_slow];
    let mut stat_sum = 0.0;
    let mut spread_sum = 0.0;
    for seed in [7, 17, 42] {
        let rows =
            system_sim::experiments::extension_distribution_fleet(&fleet, &light, &tpms, seed);
        assert_eq!(rows.len(), 3);
        let by = |p: &str| {
            rows.iter()
                .find(|r| r.policy == p)
                .unwrap_or_else(|| panic!("missing policy {p}"))
                .clone()
        };
        stat_sum += by("static").aggregated_gbps;
        spread_sum += by("least-loaded").aggregated_gbps;
    }
    let stat = stat_sum / 3.0;
    let spread = spread_sum / 3.0;
    assert!(
        spread > stat * 1.2,
        "least-loaded (mean {spread:.2} Gbps) should beat static (mean {stat:.2} Gbps) \
         on a bandwidth-heterogeneous fleet"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy simulation; run in release")]
fn extension_src_helps_under_timely_too() {
    let ssd = SsdConfig::ssd_a();
    let tpm = train_tpm(&ssd, &scale(), 42);
    let r = system_sim::experiments::extension_timely(&ssd, &scale(), tpm, 7);
    let only = r.dcqcn_only.aggregated_tput().as_gbps_f64();
    let src = r.dcqcn_src.aggregated_tput().as_gbps_f64();
    assert!(
        src > only * 1.10,
        "SRC should be CC-agnostic: TIMELY-SRC {src:.2} vs TIMELY-only {only:.2}"
    );
    // TIMELY mode generates zero CNPs (different signal path entirely).
    assert!(r.dcqcn_src.decisions.iter().any(|d| !d.is_empty()));
}
