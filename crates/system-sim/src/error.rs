//! Crate-level error type for the fallible public APIs.
//!
//! The simulator's internal invariants still panic — a broken event loop
//! is a bug, not an error the caller can handle. [`SimError`] covers the
//! things a caller *can* mishandle: malformed inputs (trace files,
//! configurations, fault plans) and corrupted checkpoint state.

use std::fmt;
use workload::trace_io::ParseError;

/// Error from a fallible `system-sim` public API.
#[derive(Debug)]
pub enum SimError {
    /// A workload trace file failed to parse (see
    /// [`workload::trace_io`]).
    Trace(ParseError),
    /// Checkpoint manifest I/O failed or the manifest is corrupt.
    Checkpoint(std::io::Error),
    /// A configuration or fault plan failed validation.
    Config(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Trace(e) => write!(f, "trace parse error: {e}"),
            SimError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            SimError::Config(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Trace(e) => Some(e),
            SimError::Checkpoint(e) => Some(e),
            SimError::Config(_) => None,
        }
    }
}

impl From<ParseError> for SimError {
    fn from(e: ParseError) -> Self {
        SimError::Trace(e)
    }
}

impl From<std::io::Error> for SimError {
    fn from(e: std::io::Error) -> Self {
        SimError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source() {
        let e = SimError::Config("bad plan".into());
        assert_eq!(e.to_string(), "bad plan");
        assert!(e.source().is_none());

        let io = std::io::Error::new(std::io::ErrorKind::InvalidData, "truncated manifest");
        let e = SimError::from(io);
        assert!(e.to_string().contains("checkpoint error"));
        assert!(e.source().is_some());
    }
}
