//! In-the-loop control harness: a storage node driven by a trace while a
//! [`RateController`] — TPM-based or reactive — adjusts the SSQ weights
//! from live measurements at a fixed control period.
//!
//! This is the testbed for the paper's Sec. II-C design argument: the
//! reactive stepper needs one control period per weight step, while the
//! TPM controller jumps straight to Algorithm 1's answer.

use sim_engine::{EventQueue, SimDuration, SimTime, TimeBinSeries};
use src_core::algorithm::CongestionEvent;
use src_core::reactive::RateController;
use src_core::WorkloadMonitor;
use ssd_sim::SsdEvent;
use storage_node::{DisciplineKind, NodeConfig, StorageNode};
use workload::{IoType, Trace};

/// Result of a controlled run.
#[derive(Debug)]
pub struct ControlledResult {
    /// Read bytes per ms.
    pub read_series: TimeBinSeries,
    /// Write bytes per ms.
    pub write_series: TimeBinSeries,
    /// Applied weight changes `(time, w)`.
    pub weight_changes: Vec<(SimTime, u32)>,
    /// For each congestion event: time until the measured read rate
    /// first came within 25 % of the demanded rate (NaN = never).
    pub settle_ms: Vec<f64>,
}

enum Ev {
    Arrival(usize),
    Ssd(SsdEvent),
    Tick,
    Event(usize),
}

/// Sliding-window read-rate meter.
struct RateMeter {
    window: SimDuration,
    samples: std::collections::VecDeque<(SimTime, u64)>,
    total: u64,
}

impl RateMeter {
    fn new(window: SimDuration) -> Self {
        RateMeter {
            window,
            samples: Default::default(),
            total: 0,
        }
    }
    fn push(&mut self, at: SimTime, bytes: u64) {
        self.samples.push_back((at, bytes));
        self.total += bytes;
        self.evict(at);
    }
    fn evict(&mut self, now: SimTime) {
        let cutoff = now.saturating_sub(self.window);
        while self.samples.front().is_some_and(|&(t, _)| t < cutoff) {
            let (_, b) = self.samples.pop_front().expect("checked");
            self.total -= b;
        }
    }
    fn gbps(&mut self, now: SimTime) -> f64 {
        self.evict(now);
        self.total as f64 * 8.0 / self.window.as_secs_f64() / 1e9
    }
}

/// Run `trace` on an SSQ node; `events` set the demanded rate over time;
/// `controller` is ticked every `tick` with the measured read rate.
pub fn run_controlled(
    ssd: &ssd_sim::SsdConfig,
    trace: &Trace,
    events: &[CongestionEvent],
    controller: &mut dyn RateController,
    tick: SimDuration,
) -> ControlledResult {
    assert!(tick > SimDuration::ZERO);
    let mut node = StorageNode::new(&NodeConfig {
        ssd: ssd.clone(),
        discipline: DisciplineKind::Ssq { weight: 1 },
        merge_cap: None,
    });
    let mut monitor = WorkloadMonitor::new(SimDuration::from_ms(10));
    let mut meter = RateMeter::new(SimDuration::from_ms(3));
    let bin = SimDuration::from_ms(1);
    let mut res = ControlledResult {
        read_series: TimeBinSeries::new(bin),
        write_series: TimeBinSeries::new(bin),
        weight_changes: Vec::new(),
        settle_ms: vec![f64::NAN; events.len()],
    };

    let mut q: EventQueue<Ev> = EventQueue::new();
    for (i, r) in trace.requests().iter().enumerate() {
        q.schedule(r.arrival, Ev::Arrival(i));
    }
    for (i, e) in events.iter().enumerate() {
        q.schedule(e.at, Ev::Event(i));
    }
    q.schedule(SimTime::ZERO + tick, Ev::Tick);

    let horizon = trace.span();
    let mut demanded: Option<(usize, f64)> = None; // (event idx, gbps)

    while let Some((now, ev)) = q.pop() {
        if now > horizon {
            break;
        }
        match ev {
            Ev::Arrival(i) => {
                let r = trace.requests()[i];
                monitor.observe(&r, now);
                let step = node.submit(r, now);
                for (t, e) in step.schedule {
                    q.schedule(t, Ev::Ssd(e));
                }
            }
            Ev::Ssd(e) => {
                let step = node.on_ssd_event(e, now);
                for c in &step.completions {
                    match c.op {
                        IoType::Read => {
                            res.read_series.add(now, c.size as f64);
                            meter.push(now, c.size);
                        }
                        IoType::Write => res.write_series.add(now, c.size as f64),
                    }
                }
                for (t, e2) in step.schedule {
                    q.schedule(t, Ev::Ssd(e2));
                }
            }
            Ev::Event(i) => {
                demanded = Some((i, events[i].demanded.as_gbps_f64()));
            }
            Ev::Tick => {
                if let Some((ei, d)) = demanded {
                    let measured = meter.gbps(now);
                    // Settle detection.
                    if res.settle_ms[ei].is_nan() && (measured - d).abs() / d.max(1e-9) < 0.25 {
                        res.settle_ms[ei] = now.since(events[ei].at).as_ms_f64();
                    }
                    let ch = monitor.features(now);
                    if let Some(w) = controller.control(d, measured, &ch, now) {
                        node.set_weight_ratio(w);
                        res.weight_changes.push((now, w));
                        let step = node.pump(now);
                        for (t, e2) in step.schedule {
                            q.schedule(t, Ev::Ssd(e2));
                        }
                    }
                }
                q.schedule(now + tick, Ev::Tick);
            }
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::Rate;
    use src_core::algorithm::CongestionKind;
    use src_core::reactive::{ReactiveConfig, ReactiveController};
    use workload::micro::{generate_micro, MicroConfig};

    #[test]
    fn reactive_controller_converges_in_the_loop() {
        let trace = generate_micro(
            &MicroConfig {
                read_iat_mean_us: 8.0,
                write_iat_mean_us: 8.0,
                read_size_mean: 40_000.0,
                write_size_mean: 40_000.0,
                read_count: 6_000,
                write_count: 6_000,
                ..MicroConfig::default()
            },
            5,
        );
        let events = vec![CongestionEvent {
            at: SimTime::from_ms(10),
            demanded: Rate::from_gbps_f64(0.8),
            kind: CongestionKind::Pause,
        }];
        let mut ctl = ReactiveController::new(ReactiveConfig::default());
        let r = run_controlled(
            &ssd_sim::SsdConfig::ssd_a(),
            &trace,
            &events,
            &mut ctl,
            SimDuration::from_ms(1),
        );
        // It took multiple steps (several weight changes), and converged.
        assert!(
            r.weight_changes.len() >= 2,
            "reactive should need several steps: {:?}",
            r.weight_changes
        );
        assert!(ctl.current_weight() > 1);
        assert!(
            r.settle_ms[0].is_finite(),
            "should settle near the demanded rate"
        );
    }

    #[test]
    fn rate_meter_window() {
        let mut m = RateMeter::new(SimDuration::from_ms(2));
        m.push(SimTime::from_ms(1), 250_000); // 1 Gbps over 2 ms window
        assert!((m.gbps(SimTime::from_ms(1)) - 1.0).abs() < 0.01);
        // After the window passes, the sample evicts.
        assert!(m.gbps(SimTime::from_ms(4)) < 0.01);
    }

    #[test]
    fn tpm_controller_needs_fewer_actions_than_reactive() {
        use src_core::reactive::TpmRateController;
        use src_core::tpm::{ThroughputPredictionModel, TrainingConfig};
        let ssd = ssd_sim::SsdConfig::ssd_a();
        let trace = generate_micro(
            &MicroConfig {
                read_iat_mean_us: 8.0,
                write_iat_mean_us: 8.0,
                read_size_mean: 40_000.0,
                write_size_mean: 40_000.0,
                read_count: 4_000,
                write_count: 4_000,
                ..MicroConfig::default()
            },
            5,
        );
        let events = vec![CongestionEvent {
            at: SimTime::from_ms(8),
            demanded: Rate::from_gbps_f64(0.8),
            kind: CongestionKind::Pause,
        }];
        let tick = SimDuration::from_ms(1);
        let mut reactive = ReactiveController::new(ReactiveConfig::default());
        let rr = run_controlled(&ssd, &trace, &events, &mut reactive, tick);
        let tpm = std::sync::Arc::new(ThroughputPredictionModel::train_for_device(
            &ssd,
            &TrainingConfig::quick(),
            1,
        ));
        let mut tc = TpmRateController::new(tpm, 0.1, 16);
        let rt = run_controlled(&ssd, &trace, &events, &mut tc, tick);
        // The paper's Sec. II-C argument: prediction replaces a staircase
        // of reactive corrections.
        assert!(
            rt.weight_changes.len() < rr.weight_changes.len(),
            "TPM {} actions vs reactive {}",
            rt.weight_changes.len(),
            rr.weight_changes.len()
        );
        assert!(!rt.weight_changes.is_empty());
    }
}
