//! The end-to-end event loop: Initiators → network → Targets → SSDs and
//! back, with TXQ backpressure and (optionally) SRC in the loop.

use crate::config::{Assignment, CcChoice, Mode, SystemConfig, TargetSelection, TopologyKind};
use crate::report::SystemReport;
use fabric::{decode_tag, InitiatorProto, MsgKind, TargetProto, TxqPolicy};
use net_sim::network::{NetEvent, NetStep, Network};
use net_sim::topology::{build_clos, build_star, NodeId};
use net_sim::FlowId;
use sim_engine::{EventQueue, SimDuration, SimTime, TraceRecord, TraceSink};
use src_core::{SrcController, ThroughputPredictionModel};
use ssd_sim::SsdEvent;
use std::collections::HashMap;
use std::sync::Arc;
use storage_node::{DisciplineKind, NodeConfig, StorageNode};
use workload::IoType;

enum Ev {
    Issue(usize),
    Net(NetEvent),
    Ssd {
        target: usize,
        ev: SsdEvent,
    },
    /// Background burst from background source `src` (re-arms itself
    /// until the configured stop time).
    Background {
        src: usize,
    },
}

/// Where a flow sits in the fabric.
#[derive(Clone, Copy, Debug)]
enum FlowRole {
    /// Initiator → Target (commands + write data).
    Outbound,
    /// Target → Initiator (read data + acks) — the paper's inbound flow.
    Inbound { target: usize },
    /// Background congestion flow (deliveries ignored).
    Background,
}

struct TargetState {
    host: NodeId,
    node: StorageNode,
    proto: TargetProto,
    txq: TxqPolicy,
    src: Option<SrcController>,
    /// Inbound flow back to each initiator.
    in_flows: Vec<FlowId>,
}

/// Telemetry sampling cadence for gauges (TXQ backlog, SSD utilization,
/// SSQ occupancy): 1 ms, matching the report bin width.
const SAMPLE_BIN: SimDuration = SimDuration(1_000_000_000);

/// Run one full-system simulation over the given request assignments.
/// `tpm` must be provided in [`Mode::DcqcnSrc`]; every Target's SRC
/// controller shares it, which is correct whenever the fleet is
/// homogeneous (the TPM is trained per device model).
///
/// This is the single sink-polymorphic entry point: telemetry — DCQCN
/// per-flow rate/alpha and RP-stage transitions, CNP traffic, TXQ
/// backlog and gate transitions, SSQ fetch decisions and weight
/// changes, SSD utilization, and SRC decisions — flows into `sink` as
/// deterministic [`TraceRecord`]s. Pass `&mut NullSink` for an
/// untraced run; [`TraceSink::enabled`] gates all probe buffering, so
/// that costs exactly what the former untraced entry point did, and
/// the report is identical either way.
///
/// # Panics
/// Panics on inconsistent configuration (SRC mode without a TPM, more
/// hosts requested than the topology provides, a `ssds` fleet whose
/// length matches neither 1 nor `n_targets`).
pub fn run_system(
    cfg: &SystemConfig,
    assignments: &[Assignment],
    tpm: Option<Arc<ThroughputPredictionModel>>,
    sink: &mut dyn TraceSink,
) -> SystemReport {
    run_system_inner(cfg, assignments, TpmAssignment::Shared(tpm), sink)
}

/// [`run_system`] driven by the configuration's own workload sources:
/// `cfg.workloads` resolves to the assignment list via
/// [`SystemConfig::assignments`] with `seed`, then the run proceeds as
/// usual. The declarative entry point for spec-driven harnesses — a
/// config plus a seed is a complete, serializable experiment.
pub fn run_system_workload(
    cfg: &SystemConfig,
    seed: u64,
    tpm: Option<Arc<ThroughputPredictionModel>>,
    sink: &mut dyn TraceSink,
) -> SystemReport {
    let assignments = cfg.assignments(seed);
    run_system(cfg, &assignments, tpm, sink)
}

/// Which TPM serves each Target's SRC controller.
enum TpmAssignment<'a> {
    /// One model shared by every Target (homogeneous fleets).
    Shared(Option<Arc<ThroughputPredictionModel>>),
    /// `tpms[t]` serves Target `t` (heterogeneous fleets: each model is
    /// trained on that Target's own device).
    PerTarget(&'a [Arc<ThroughputPredictionModel>]),
}

impl TpmAssignment<'_> {
    fn for_target(&self, t: usize) -> Option<Arc<ThroughputPredictionModel>> {
        match self {
            TpmAssignment::Shared(tpm) => tpm.clone(),
            TpmAssignment::PerTarget(tpms) => Some(tpms[t].clone()),
        }
    }
}

/// [`run_system`] for heterogeneous fleets: `tpms[t]` (trained on
/// Target `t`'s own device, see
/// [`crate::experiments::train_tpm`]) drives Target `t`'s SRC weight
/// decisions, so each Target's controller inverts the throughput
/// surface of the device it actually serves. With every `ssds` entry
/// (and TPM) equal this is byte-identical to [`run_system`].
///
/// # Panics
/// In addition to [`run_system`]'s panics, panics in
/// [`Mode::DcqcnSrc`] when `tpms` is `None` or holds fewer models than
/// `n_targets`.
pub fn run_system_fleet(
    cfg: &SystemConfig,
    assignments: &[Assignment],
    tpms: Option<&[Arc<ThroughputPredictionModel>]>,
    sink: &mut dyn TraceSink,
) -> SystemReport {
    match tpms {
        Some(tpms) => {
            assert!(
                tpms.len() >= cfg.n_targets,
                "{} TPMs for {} targets",
                tpms.len(),
                cfg.n_targets
            );
            run_system_inner(cfg, assignments, TpmAssignment::PerTarget(tpms), sink)
        }
        None => run_system_inner(cfg, assignments, TpmAssignment::Shared(None), sink),
    }
}

fn run_system_inner(
    cfg: &SystemConfig,
    assignments: &[Assignment],
    tpms: TpmAssignment<'_>,
    sink: &mut dyn TraceSink,
) -> SystemReport {
    cfg.validate_fleet();
    let tracing = sink.enabled();
    let n_bg = cfg.background.as_ref().map_or(0, |b| b.n_sources);
    let n_hosts = cfg.n_initiators + cfg.n_targets + n_bg;
    let clos = match &cfg.topology {
        TopologyKind::Star { rate, delay } => build_star(n_hosts, *rate, *delay),
        TopologyKind::Clos(c) => build_clos(c),
    };
    assert!(
        clos.hosts.len() >= n_hosts,
        "topology provides {} hosts, need {n_hosts}",
        clos.hosts.len()
    );
    let init_hosts: Vec<NodeId> = clos.hosts[..cfg.n_initiators].to_vec();
    let tgt_hosts: Vec<NodeId> =
        clos.hosts[cfg.n_initiators..cfg.n_initiators + cfg.n_targets].to_vec();
    let bg_hosts: Vec<NodeId> = clos.hosts[cfg.n_initiators + cfg.n_targets..n_hosts].to_vec();

    let mut net = Network::new(clos.topology, cfg.dcqcn.clone(), cfg.pfc.clone(), cfg.mtu);
    if cfg.cc == CcChoice::Timely {
        net.use_timely(net_sim::TimelyParams::default());
    }

    // Flows: a bidirectional pair per (initiator, target).
    let mut out_flows = vec![vec![FlowId(usize::MAX); cfg.n_targets]; cfg.n_initiators];
    let mut flow_roles: HashMap<FlowId, FlowRole> = HashMap::new();
    let mut targets: Vec<TargetState> = Vec::with_capacity(cfg.n_targets);
    for (t_idx, &th) in tgt_hosts.iter().enumerate() {
        let discipline = match cfg.mode {
            Mode::DcqcnOnly => DisciplineKind::Fifo,
            Mode::DcqcnSrc => DisciplineKind::Ssq { weight: 1 },
        };
        let src = match cfg.mode {
            Mode::DcqcnOnly => None,
            Mode::DcqcnSrc => {
                let tpm = tpms
                    .for_target(t_idx)
                    .expect("DcqcnSrc mode requires a trained TPM");
                Some(SrcController::new(tpm, cfg.src.clone()))
            }
        };
        let mut in_flows = Vec::with_capacity(cfg.n_initiators);
        for (i_idx, &ih) in init_hosts.iter().enumerate() {
            let fo = net.add_flow(ih, th);
            out_flows[i_idx][t_idx] = fo;
            flow_roles.insert(fo, FlowRole::Outbound);
            let fi = net.add_flow(th, ih);
            in_flows.push(fi);
            flow_roles.insert(fi, FlowRole::Inbound { target: t_idx });
        }
        targets.push(TargetState {
            host: th,
            node: StorageNode::new(&NodeConfig {
                ssd: cfg.ssd_for(t_idx).clone(),
                discipline,
                merge_cap: None,
            }),
            proto: TargetProto::new(),
            txq: TxqPolicy::new(cfg.txq_watermarks.0, cfg.txq_watermarks.1),
            src,
            in_flows,
        });
    }
    let mut initiators: Vec<InitiatorProto> = (0..cfg.n_initiators)
        .map(|_| InitiatorProto::new())
        .collect();

    if tracing {
        net.set_telemetry(true);
        for (t_idx, t) in targets.iter_mut().enumerate() {
            t.node.set_telemetry(true, t_idx as u64);
            if let Some(src) = t.src.as_mut() {
                src.set_telemetry(true, t_idx as u64);
            }
        }
        // Heterogeneous fleets tag each Target's `ssd` gauge stream with
        // its device model up front, so per-device series can be told
        // apart in the trace. Homogeneous runs skip this — their traces
        // (including the committed fig9 fixture) stay byte-identical.
        if cfg.is_heterogeneous() {
            for t_idx in 0..cfg.n_targets {
                sink.record(TraceRecord {
                    at: SimTime::ZERO,
                    component: "ssd",
                    scope: t_idx as u64,
                    metric: cfg.ssd_for(t_idx).model_metric(),
                    value: 1.0,
                });
            }
        }
    }
    let mut last_sample = SimTime::ZERO;

    // Background congestion flows toward Initiator 0.
    let mut bg_flows: Vec<FlowId> = Vec::with_capacity(n_bg);
    if let Some(bg) = &cfg.background {
        assert!(
            !init_hosts.is_empty(),
            "background traffic requires at least one initiator"
        );
        for &bh in &bg_hosts {
            let f = net.add_fixed_rate_flow(bh, init_hosts[0], bg.rate_per_source);
            flow_roles.insert(f, FlowRole::Background);
            bg_flows.push(f);
        }
    }

    let mut report = SystemReport::new(cfg.n_targets);
    let mut q: EventQueue<Ev> = EventQueue::new();
    for (i, a) in assignments.iter().enumerate() {
        q.schedule(a.request.arrival, Ev::Issue(i));
    }
    if let Some(bg) = &cfg.background {
        for s in 0..bg.n_sources {
            q.schedule(bg.start, Ev::Background { src: s });
        }
    }

    // Actual Target per request (LeastLoaded selection can override the
    // static assignment at issue time).
    let mut actual_target: Vec<usize> = assignments.iter().map(|a| a.target).collect();

    // Initiator-side completion count drives termination.
    let total = assignments.len();
    let mut finished = 0usize;
    let tgt_host_index: HashMap<NodeId, usize> =
        tgt_hosts.iter().enumerate().map(|(i, &h)| (h, i)).collect();

    // Reusable scratch buffers for the hot loop: each event triggers at
    // most one network step (`net_step`); sends issued while folding
    // storage completions go through `io_step`; `ssd_scheds` keeps its
    // LIFO processing order while `ssd_pool` recycles the drained step
    // buffers, so the steady state allocates nothing per event.
    let mut net_step = NetStep::default();
    let mut io_step = NetStep::default();
    let mut ssd_scheds: Vec<(usize, ssd_sim::SsdStep)> = Vec::new();
    let mut ssd_pool: Vec<ssd_sim::SsdStep> = Vec::new();
    let mut notified: Vec<usize> = Vec::new();

    while let Some((now, ev)) = q.pop() {
        if finished >= total {
            break;
        }
        net_step.clear();
        debug_assert!(ssd_scheds.is_empty());

        match ev {
            Ev::Issue(i) => {
                let a = assignments[i];
                let target = match cfg.target_selection {
                    TargetSelection::Static => a.target,
                    TargetSelection::LeastLoaded => {
                        // Fewest commands pending at the Target driver +
                        // queued in its NVMe driver (what an initiator
                        // can learn from completion feedback).
                        (0..targets.len())
                            .min_by_key(|&t| {
                                targets[t].proto.in_flight() + targets[t].node.discipline().queued()
                            })
                            .expect("at least one target")
                    }
                    TargetSelection::Pack { cap } => (0..targets.len())
                        .find(|&t| targets[t].proto.in_flight() < cap)
                        .unwrap_or_else(|| {
                            (0..targets.len())
                                .min_by_key(|&t| targets[t].proto.in_flight())
                                .expect("at least one target")
                        }),
                };
                actual_target[a.request.id as usize] = target;
                let ws =
                    initiators[a.initiator].issue(&a.request, out_flows[a.initiator][target], now);
                net.send_into(ws.flow, ws.bytes, ws.tag, now, &mut net_step);
            }
            Ev::Net(nev) => {
                net.handle_into(nev, now, &mut net_step);
            }
            Ev::Ssd { target, ev } => {
                let mut step = ssd_pool.pop().unwrap_or_default();
                targets[target].node.on_ssd_event_into(ev, now, &mut step);
                ssd_scheds.push((target, step));
            }
            Ev::Background { src } => {
                let bg = cfg
                    .background
                    .as_ref()
                    .expect("background event without config");
                if now < bg.stop {
                    // Closed-loop source: keep the flow's NIC queue
                    // topped up (so the link stays contended at whatever
                    // rate DCQCN allows) without unbounded backlog.
                    if net.flow_backlog_bytes(bg_flows[src]) < 4 * bg.bytes_per_burst {
                        net.send_into(
                            bg_flows[src],
                            bg.bytes_per_burst,
                            u64::MAX - src as u64, // tag unused for background
                            now,
                            &mut net_step,
                        );
                    }
                    let next = now + bg.burst_interval;
                    if next < bg.stop {
                        q.schedule(next, Ev::Background { src });
                    }
                }
            }
        }

        // Process network outputs (may cascade into storage submissions,
        // which in turn produce more sends).
        {
            let step = &net_step;
            for &(t, e) in &step.schedule {
                q.schedule(t, Ev::Net(e));
            }
            for &host in &step.pauses_received {
                if tgt_host_index.contains_key(&host) {
                    report.pauses_total += 1;
                    report.pause_series.add(now, 1.0);
                }
            }
            // SRC: congestion notifications from inbound-flow rate
            // changes, aggregated per target.
            notified.clear();
            for (flow, rate) in &step.rate_changes {
                if let Some(FlowRole::Inbound { target }) = flow_roles.get(flow) {
                    report.min_inbound_rate_gbps =
                        report.min_inbound_rate_gbps.min(rate.as_gbps_f64());
                    if !notified.contains(target) {
                        notified.push(*target);
                    }
                }
            }
            for &t_idx in &notified {
                let demanded_bps: u64 = targets[t_idx]
                    .in_flows
                    .iter()
                    .map(|&f| net.flow_rate(f).as_bps())
                    .sum();
                let demanded = sim_engine::Rate::from_bps(demanded_bps);
                // Per-target DCQCN aggregate: the sum of the granted
                // rates of every flow into this Target, sampled at each
                // rate-change notification — in every mode, so baseline
                // and SRC traces carry the same series.
                if tracing {
                    sink.record(TraceRecord {
                        at: now,
                        component: "net",
                        scope: t_idx as u64,
                        metric: "inbound_gbps",
                        value: demanded.as_gbps_f64(),
                    });
                }
                let t = &mut targets[t_idx];
                if let Some(src) = t.src.as_mut() {
                    if let Some(w) = src.on_congestion_notification(demanded, now) {
                        t.node.set_weight_ratio(w);
                        let mut s = ssd_pool.pop().unwrap_or_default();
                        t.node.pump_into(now, &mut s);
                        ssd_scheds.push((t_idx, s));
                    }
                }
            }
            for d in &step.deliveries {
                if matches!(flow_roles.get(&d.flow), Some(FlowRole::Background)) {
                    continue;
                }
                if !d.last {
                    continue;
                }
                let (kind, req_id) = decode_tag(d.tag);
                let a = assignments[req_id as usize];
                let tgt_idx = actual_target[req_id as usize];
                match kind {
                    MsgKind::ReadCmd | MsgKind::WriteCmd => {
                        let t = &mut targets[tgt_idx];
                        if let Some(src) = t.src.as_mut() {
                            src.observe(&a.request, now);
                        }
                        let sub =
                            t.proto
                                .on_command(kind, &a.request, t.in_flows[a.initiator], now);
                        let mut s = ssd_pool.pop().unwrap_or_default();
                        t.node.submit_into(sub.request, now, &mut s);
                        ssd_scheds.push((tgt_idx, s));
                    }
                    MsgKind::ReadData => {
                        let c = initiators[a.initiator].on_inbound(kind, req_id, now);
                        report.reads_completed += 1;
                        report.read_bytes += c.size;
                        report.per_target[tgt_idx].reads_completed += 1;
                        report.per_target[tgt_idx].read_bytes += c.size;
                        report.read_series.add(now, c.size as f64);
                        report.read_latency_us.push(now.since(c.issued).as_us_f64());
                        finished += 1;
                    }
                    MsgKind::WriteAck => {
                        let _ = initiators[a.initiator].on_inbound(kind, req_id, now);
                        finished += 1;
                    }
                }
            }
        }

        // Fold storage-side schedules and new completions that appeared
        // while pumping.
        while let Some((t_idx, mut step)) = ssd_scheds.pop() {
            for c in &step.completions {
                if c.op == IoType::Write {
                    report.writes_completed += 1;
                    report.write_bytes += c.size;
                    report.per_target[t_idx].writes_completed += 1;
                    report.per_target[t_idx].write_bytes += c.size;
                    report.write_series.add(now, c.size as f64);
                    let issued = assignments[c.id as usize].request.arrival;
                    report.write_latency_us.push(now.since(issued).as_us_f64());
                }
                let ws = targets[t_idx].proto.on_storage_completion(c.id, now);
                io_step.clear();
                net.send_into(ws.flow, ws.bytes, ws.tag, now, &mut io_step);
                for &(t, e) in &io_step.schedule {
                    q.schedule(t, Ev::Net(e));
                }
                // (Sends here can't complete requests or change rates
                // synchronously; deliveries come back as events.)
                debug_assert!(io_step.deliveries.is_empty());
            }
            for &(t, e) in &step.schedule {
                q.schedule(
                    t,
                    Ev::Ssd {
                        target: t_idx,
                        ev: e,
                    },
                );
            }
            step.clear();
            ssd_pool.push(step);
        }

        // TXQ backpressure: observe every target's NIC backlog and open/
        // close the SSD fetch gate accordingly.
        for (t_idx, t) in targets.iter_mut().enumerate() {
            let backlog = net.host_backlog_bytes(t.host);
            if let Some(open) = t.txq.observe(backlog) {
                // TxqPolicy has no clock or buffer of its own, so gate
                // transitions are recorded here at the observation site.
                if tracing {
                    sink.record(TraceRecord {
                        at: now,
                        component: "txq",
                        scope: t_idx as u64,
                        metric: "gate_open",
                        value: if open { 1.0 } else { 0.0 },
                    });
                }
                t.node.set_read_gate(open);
                if open {
                    let mut step = ssd_pool.pop().unwrap_or_default();
                    t.node.pump_into(now, &mut step);
                    for c in &step.completions {
                        if c.op == IoType::Write {
                            report.writes_completed += 1;
                            report.write_bytes += c.size;
                            report.per_target[t_idx].writes_completed += 1;
                            report.per_target[t_idx].write_bytes += c.size;
                            report.write_series.add(now, c.size as f64);
                            let issued = assignments[c.id as usize].request.arrival;
                            report.write_latency_us.push(now.since(issued).as_us_f64());
                        }
                        let ws = t.proto.on_storage_completion(c.id, now);
                        io_step.clear();
                        net.send_into(ws.flow, ws.bytes, ws.tag, now, &mut io_step);
                        for &(tt, e) in &io_step.schedule {
                            q.schedule(tt, Ev::Net(e));
                        }
                    }
                    for &(tt, e) in &step.schedule {
                        q.schedule(
                            tt,
                            Ev::Ssd {
                                target: t_idx,
                                ev: e,
                            },
                        );
                    }
                    step.clear();
                    ssd_pool.push(step);
                } else {
                    report.gate_closures.push((now, t_idx));
                }
            }
        }

        // Telemetry: sample gauges once per bin, then drain every
        // component's probe buffer in a fixed order so the trace is
        // deterministic.
        if tracing {
            if now.since(last_sample) >= SAMPLE_BIN {
                last_sample = now;
                for (t_idx, t) in targets.iter_mut().enumerate() {
                    t.node.sample_telemetry(now);
                    let scope = t_idx as u64;
                    let gauges: [(&'static str, &'static str, f64); 6] = [
                        (
                            "txq",
                            "backlog_bytes",
                            net.host_backlog_bytes(t.host) as f64,
                        ),
                        ("ssq", "weight_ratio", t.node.weight_ratio() as f64),
                        (
                            "ssq",
                            "outstanding",
                            t.node.discipline().outstanding() as f64,
                        ),
                        ("ssd", "cache_occupancy", t.node.ssd().cache_occupancy()),
                        ("ssd", "in_flight", t.node.ssd().in_flight() as f64),
                        ("tgt", "proto_in_flight", t.proto.in_flight() as f64),
                    ];
                    for (component, metric, value) in gauges {
                        sink.record(TraceRecord {
                            at: now,
                            component,
                            scope,
                            metric,
                            value,
                        });
                    }
                }
            }
            for rec in net.drain_probes() {
                sink.record(rec);
            }
            for t in targets.iter_mut() {
                for rec in t.node.drain_probes() {
                    sink.record(rec);
                }
                if let Some(src) = t.src.as_mut() {
                    for rec in src.drain_probes() {
                        sink.record(rec);
                    }
                }
            }
        }

        report.makespan = report.makespan.max(now.since(SimTime::ZERO));
        if finished >= total {
            break;
        }
    }

    assert!(
        finished >= total,
        "system run starved: {finished}/{total} requests finished"
    );
    for (t_idx, t) in targets.iter().enumerate() {
        if let Some(src) = t.src.as_ref() {
            report.decisions[t_idx] = src.decisions().to_vec();
        }
    }
    report.ecn_marked = net.ecn_marked();
    report.cnps = net.cnps_sent();
    if tracing {
        sink.count(("net", 0, "ecn_marked"), report.ecn_marked);
        sink.count(("net", 0, "cnps_sent"), report.cnps);
        sink.count(("net", 0, "pauses_received"), report.pauses_total);
        sink.count(
            ("txq", 0, "gate_closures"),
            report.gate_closures.len() as u64,
        );
        sink.count(("sys", 0, "reads_completed"), report.reads_completed);
        sink.count(("sys", 0, "writes_completed"), report.writes_completed);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::spread_trace;
    use workload::micro::{generate_micro, MicroConfig};

    fn small_assignments(n: usize, seed: u64) -> Vec<Assignment> {
        let t = generate_micro(
            &MicroConfig {
                read_count: n / 2,
                write_count: n / 2,
                read_iat_mean_us: 20.0,
                write_iat_mean_us: 20.0,
                read_size_mean: 24_000.0,
                write_size_mean: 24_000.0,
                ..MicroConfig::default()
            },
            seed,
        );
        spread_trace(&t, 1, 2)
    }

    #[test]
    fn baseline_run_completes() {
        let cfg = SystemConfig::default();
        let a = small_assignments(400, 1);
        let r = run_system(&cfg, &a, None, &mut sim_engine::NullSink);
        assert_eq!(r.reads_completed, 200);
        // Writes counted at Targets.
        assert_eq!(r.writes_completed, 200);
        assert!(r.read_latency_us.mean() > 0.0);
        assert!(r.makespan > sim_engine::SimDuration::ZERO);
    }

    #[test]
    fn deterministic() {
        let cfg = SystemConfig::default();
        let a = small_assignments(200, 2);
        let r1 = run_system(&cfg, &a, None, &mut sim_engine::NullSink);
        let r2 = run_system(&cfg, &a, None, &mut sim_engine::NullSink);
        assert_eq!(r1.read_series.bins(), r2.read_series.bins());
        assert_eq!(r1.pauses_total, r2.pauses_total);
        assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn traced_run_is_identical_and_deterministic() {
        use sim_engine::RingSink;
        let cfg = SystemConfig::default();
        let a = small_assignments(200, 4);
        let plain = run_system(&cfg, &a, None, &mut sim_engine::NullSink);
        let mut sink = RingSink::new(1 << 18);
        let traced = run_system(&cfg, &a, None, &mut sink);
        // A no-op sink gives the same report as a recording one.
        let nulled = run_system(&cfg, &a, None, &mut sim_engine::NullSink);
        assert_eq!(nulled.reads_completed, traced.reads_completed);
        assert_eq!(nulled.read_series.bins(), traced.read_series.bins());
        assert_eq!(nulled.makespan, traced.makespan);
        // Telemetry must not perturb the simulation.
        assert_eq!(plain.reads_completed, traced.reads_completed);
        assert_eq!(plain.writes_completed, traced.writes_completed);
        assert_eq!(plain.read_series.bins(), traced.read_series.bins());
        assert_eq!(plain.write_series.bins(), traced.write_series.bins());
        assert_eq!(plain.pauses_total, traced.pauses_total);
        assert_eq!(plain.ecn_marked, traced.ecn_marked);
        assert_eq!(plain.makespan, traced.makespan);
        let rep = sink.into_report();
        assert!(!rep.series("txq", "backlog_bytes").is_empty());
        assert!(!rep.series("ssd", "chip_util").is_empty());
        assert_eq!(rep.counter(("net", 0, "ecn_marked")), plain.ecn_marked);
        assert_eq!(
            rep.counter(("sys", 0, "reads_completed")),
            plain.reads_completed
        );
        // Same inputs: byte-identical JSON-lines export.
        let mut sink2 = RingSink::new(1 << 18);
        let _ = run_system(&cfg, &a, None, &mut sink2);
        assert_eq!(rep.to_json_lines(), sink2.into_report().to_json_lines());
    }

    #[test]
    #[should_panic(expected = "requires a trained TPM")]
    fn src_mode_needs_tpm() {
        let cfg = SystemConfig {
            mode: Mode::DcqcnSrc,
            ..SystemConfig::default()
        };
        let a = small_assignments(10, 3);
        let _ = run_system(&cfg, &a, None, &mut sim_engine::NullSink);
    }
}
