//! The end-to-end event loop: Initiators → network → Targets → SSDs and
//! back, with TXQ backpressure and (optionally) SRC in the loop.

use crate::config::{Assignment, CcChoice, Mode, SystemConfig, TargetSelection, TopologyKind};
use crate::report::SystemReport;
use fabric::{decode_tag, InitiatorProto, MsgKind, TargetProto, TxqPolicy};
use net_sim::network::{NetEvent, NetStep, Network};
use net_sim::topology::{build_clos, build_star, NodeId};
use net_sim::FlowId;
use serde::{Deserialize, Serialize};
use sim_engine::{
    AdaptiveEventQueue, FaultKind, FaultPlan, FaultScope, Scratch, SimDuration, SimTime,
    SimWorkspace, TraceRecord, TraceSink,
};
use src_core::{PredictionCache, SrcController, ThroughputPredictionModel};
use ssd_sim::SsdEvent;
use std::collections::HashMap;
use std::sync::Arc;
use storage_node::{DisciplineKind, NodeConfig, StorageNode};
use workload::IoType;

enum Ev {
    Issue(usize),
    Net(NetEvent),
    Ssd {
        target: usize,
        ev: SsdEvent,
    },
    /// Background burst from background source `src` (re-arms itself
    /// until the configured stop time).
    Background {
        src: usize,
    },
    /// Fault-plan event `event`'s window opens (`activate`) or closes.
    Fault {
        event: usize,
        activate: bool,
    },
    /// Initiator-side timeout check for attempt `attempt` of request
    /// `req` (stale once the request completed or attempted again).
    Timeout {
        req: usize,
        attempt: u32,
    },
    /// Retry backoff elapsed: re-issue request `req`.
    Retry {
        req: usize,
    },
}

/// Where a flow sits in the fabric.
#[derive(Clone, Copy, Debug)]
enum FlowRole {
    /// Initiator → Target (commands + write data).
    Outbound,
    /// Target → Initiator (read data + acks) — the paper's inbound flow.
    Inbound { target: usize },
    /// Background congestion flow (deliveries ignored).
    Background,
}

struct TargetState {
    host: NodeId,
    node: StorageNode,
    proto: TargetProto,
    txq: TxqPolicy,
    src: Option<SrcController>,
    /// Inbound flow back to each initiator.
    in_flows: Vec<FlowId>,
}

/// Telemetry sampling cadence for gauges (TXQ backlog, SSD utilization,
/// SSQ occupancy): 1 ms, matching the report bin width.
const SAMPLE_BIN: SimDuration = SimDuration(1_000_000_000);

/// Initiator-side robustness policy: a timeout arms on every request
/// attempt; expiry triggers a bounded exponential-backoff retry
/// (`backoff_base * 2^(attempt-1)`), and once `retry_budget` retries
/// are spent the request is abandoned and counted in
/// [`SystemReport::abandoned`] (and per Target in
/// [`SystemReport::per_target_abandoned`]). Latency for a retried
/// request measures from its last attempt.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RobustnessConfig {
    /// Per-attempt completion deadline at the Initiator.
    pub timeout: SimDuration,
    /// Maximum retries per request before abandoning it.
    pub retry_budget: u32,
    /// First retry delay; doubles on each further retry.
    pub backoff_base: SimDuration,
}

impl Default for RobustnessConfig {
    /// A deliberately generous deadline: the paper's in-cast workloads
    /// are open-loop overloaded, so fault-free tail latency is on the
    /// order of the run's makespan and a tight timeout would abandon
    /// legitimate work. Calibrate `timeout` well above your workload's
    /// congested tail (see `experiments::fault_robustness` for the
    /// scale-aware choice the fault sweep uses).
    fn default() -> Self {
        RobustnessConfig {
            timeout: SimDuration::from_ms(500),
            retry_budget: 3,
            backoff_base: SimDuration::from_ms(10),
        }
    }
}

/// Where the request assignments for a run come from.
enum AssignmentSource<'a> {
    /// Resolve `cfg.workloads` via [`SystemConfig::assignments`].
    Seed(u64),
    /// Use this pre-built assignment list as-is.
    Slice(&'a [Assignment]),
}

/// Which TPM serves each Target's SRC controller.
enum TpmAssignment<'a> {
    /// One model shared by every Target (homogeneous fleets).
    Shared(Option<Arc<ThroughputPredictionModel>>),
    /// `tpms[t]` serves Target `t` (heterogeneous fleets: each model is
    /// trained on that Target's own device).
    PerTarget(&'a [Arc<ThroughputPredictionModel>]),
}

impl TpmAssignment<'_> {
    fn for_target(&self, t: usize) -> Option<Arc<ThroughputPredictionModel>> {
        match self {
            TpmAssignment::Shared(tpm) => tpm.clone(),
            TpmAssignment::PerTarget(tpms) => Some(tpms[t].clone()),
        }
    }
}

/// Per-run options for [`run_system`]: where the workload comes from,
/// which TPM(s) drive SRC, and the optional fault plan and robustness
/// policy. Start from [`RunOptions::seeded`] (resolve `cfg.workloads`
/// with a seed) or [`RunOptions::assignments`] (a pre-built list), then
/// chain the setters.
///
/// ```ignore
/// run_system(&cfg, RunOptions::seeded(7).tpm(tpm), &mut NullSink);
/// run_system(&cfg, RunOptions::assignments(&a).tpm_fleet(&tpms), &mut sink);
/// ```
pub struct RunOptions<'a> {
    source: AssignmentSource<'a>,
    tpms: TpmAssignment<'a>,
    faults: Option<&'a FaultPlan>,
    robustness: Option<RobustnessConfig>,
    coalescing: bool,
}

impl<'a> RunOptions<'a> {
    fn new(source: AssignmentSource<'a>) -> Self {
        RunOptions {
            source,
            tpms: TpmAssignment::Shared(None),
            faults: None,
            robustness: None,
            coalescing: true,
        }
    }

    /// Drive the run from the configuration's own workload sources:
    /// `cfg.workloads` resolves to the assignment list via
    /// [`SystemConfig::assignments`] with `seed`. The declarative form
    /// for spec-driven harnesses — a config plus a seed is a complete,
    /// serializable experiment.
    pub fn seeded(seed: u64) -> Self {
        Self::new(AssignmentSource::Seed(seed))
    }

    /// Drive the run from a pre-built assignment list.
    pub fn assignments(assignments: &'a [Assignment]) -> Self {
        Self::new(AssignmentSource::Slice(assignments))
    }

    /// One TPM shared by every Target's SRC controller — correct
    /// whenever the fleet is homogeneous (the TPM is trained per device
    /// model). Required in [`Mode::DcqcnSrc`] unless
    /// [`RunOptions::tpm_fleet`] is given.
    pub fn tpm(mut self, tpm: Arc<ThroughputPredictionModel>) -> Self {
        self.tpms = TpmAssignment::Shared(Some(tpm));
        self
    }

    /// Per-Target TPMs for heterogeneous fleets: `tpms[t]` (trained on
    /// Target `t`'s own device, see [`crate::experiments::train_tpm`])
    /// drives Target `t`'s SRC weight decisions, so each controller
    /// inverts the throughput surface of the device it actually serves.
    /// With every `ssds` entry (and TPM) equal this is byte-identical
    /// to the shared form.
    pub fn tpm_fleet(mut self, tpms: &'a [Arc<ThroughputPredictionModel>]) -> Self {
        self.tpms = TpmAssignment::PerTarget(tpms);
        self
    }

    /// Override the configuration's fault plan for this run only.
    pub fn faults(mut self, plan: &'a FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Explicit timeout/retry policy. Without one, runs with an active
    /// fault plan get [`RobustnessConfig::default`] (faults must not
    /// wedge the run waiting on a reply that will never come) and
    /// fault-free runs get none — no timeout events exist, preserving
    /// bit-identity with the pre-robustness simulator.
    pub fn robustness(mut self, robustness: RobustnessConfig) -> Self {
        self.robustness = Some(robustness);
        self
    }

    /// Disable arithmetic packet-burst coalescing in the network model.
    /// Coalescing is a pure event-count optimization — the report is
    /// byte-identical either way (asserted by the equivalence tests) —
    /// so this knob exists for those tests and for counterfactual
    /// benchmarking, not for experiments.
    pub fn no_coalescing(mut self) -> Self {
        self.coalescing = false;
        self
    }
}

/// Per-worker reusable simulation state for [`run_system_in`]: the
/// adaptive event queue, the network/SSD step buffers, and the
/// per-Target TPM prediction-cache storage all survive across runs
/// inside one [`SimWorkspace`], so a sweep cell allocates (almost)
/// nothing the previous cell already paid for.
///
/// `reset` restores every observable field to its `Default`, keeping
/// heap capacity. The cumulative queue-migration counter is the one
/// diagnostic that deliberately survives reset (see
/// [`AdaptiveEventQueue::migrations`] and
/// [`workspace_queue_migrations`]); it never feeds back into
/// simulation results.
#[derive(Default)]
struct SystemScratch {
    queue: AdaptiveEventQueue<Ev>,
    net_step: NetStep,
    io_step: NetStep,
    ssd_scheds: Vec<(usize, ssd_sim::SsdStep)>,
    ssd_pool: Vec<ssd_sim::SsdStep>,
    notified: Vec<usize>,
    tpm_caches: Vec<PredictionCache>,
}

impl Scratch for SystemScratch {
    fn reset(&mut self) {
        self.queue.reset();
        while let Some((_, step)) = self.ssd_scheds.pop() {
            self.ssd_pool.push(step);
        }
        for step in &mut self.ssd_pool {
            step.clear();
        }
        self.net_step.clear();
        self.io_step.clear();
        self.notified.clear();
        for cache in &mut self.tpm_caches {
            cache.reset();
        }
    }
}

/// Cumulative [`AdaptiveEventQueue`] heap→wheel migrations performed by
/// [`run_system_in`] calls against `ws` (a per-worker diagnostic for
/// the benchmark suite; it survives workspace reuse by design and never
/// appears in a [`SystemReport`]).
pub fn workspace_queue_migrations(ws: &mut SimWorkspace) -> u64 {
    ws.slot::<SystemScratch>().queue.migrations()
}

/// Run one full-system simulation.
///
/// This is the single sink-polymorphic entry point — workload source,
/// TPM assignment, fault plan, and robustness policy all arrive via
/// [`RunOptions`]. Telemetry — DCQCN per-flow rate/alpha and RP-stage
/// transitions, CNP traffic, TXQ backlog and gate transitions, SSQ
/// fetch decisions and weight changes, SSD utilization, fault-recovery
/// counters, and SRC decisions — flows into `sink` as deterministic
/// [`TraceRecord`]s. Pass `&mut NullSink` for an untraced run;
/// [`TraceSink::enabled`] gates all probe buffering, so that costs
/// exactly what an untraced run always did, and the report is identical
/// either way.
///
/// The report is a pure function of `(cfg, opts, seed)` — identical at
/// any worker-thread count, with or without an active fault plan.
///
/// # Panics
/// Panics on inconsistent configuration (SRC mode without a TPM, a TPM
/// fleet shorter than `n_targets`, more hosts requested than the
/// topology provides, a `ssds` fleet whose length matches neither 1 nor
/// `n_targets`, an invalid fault plan).
pub fn run_system(
    cfg: &SystemConfig,
    opts: RunOptions<'_>,
    sink: &mut dyn TraceSink,
) -> SystemReport {
    run_system_in(cfg, opts, &mut SimWorkspace::new(), sink)
}

/// [`run_system`] against caller-provided per-worker scratch storage:
/// sweep workers hand the same [`SimWorkspace`] to every cell they
/// claim, so the event queue, step pools, and prediction caches are
/// allocated once per worker instead of once per run. The scratch is
/// fully reset at the start of every run, so the report stays a pure
/// function of `(cfg, opts, seed)` — byte-identical to [`run_system`]
/// at any thread count (asserted by `tests/workspace_reuse.rs`).
pub fn run_system_in(
    cfg: &SystemConfig,
    opts: RunOptions<'_>,
    ws: &mut SimWorkspace,
    sink: &mut dyn TraceSink,
) -> SystemReport {
    if let TpmAssignment::PerTarget(tpms) = &opts.tpms {
        assert!(
            tpms.len() >= cfg.n_targets,
            "{} TPMs for {} targets",
            tpms.len(),
            cfg.n_targets
        );
    }
    let owned: Vec<Assignment>;
    let assignments: &[Assignment] = match opts.source {
        AssignmentSource::Slice(a) => a,
        AssignmentSource::Seed(seed) => {
            owned = cfg.assignments(seed);
            &owned
        }
    };
    let plan = opts.faults.unwrap_or(&cfg.faults);
    let robustness = opts.robustness.or(if plan.is_empty() {
        None
    } else {
        Some(RobustnessConfig::default())
    });
    run_system_inner(
        cfg,
        assignments,
        opts.tpms,
        plan,
        robustness,
        opts.coalescing,
        ws,
        sink,
    )
}

/// Per-request retry bookkeeping (only allocated when a
/// [`RobustnessConfig`] is active).
#[derive(Clone, Copy)]
struct ReqState {
    /// Attempts issued so far (1 = the initial issue).
    attempt: u32,
    /// Completed or abandoned — later timeouts and retries are stale.
    done: bool,
}

#[allow(clippy::too_many_arguments)]
fn run_system_inner(
    cfg: &SystemConfig,
    assignments: &[Assignment],
    tpms: TpmAssignment<'_>,
    plan: &FaultPlan,
    robustness: Option<RobustnessConfig>,
    coalescing: bool,
    ws: &mut SimWorkspace,
    sink: &mut dyn TraceSink,
) -> SystemReport {
    cfg.validate_fleet();
    if let Err(e) = plan.validate() {
        panic!("invalid fault plan: {e}");
    }
    // Per-worker scratch: reset at the START of every run (defensive
    // purity — even a panic-dirtied workspace cannot leak state into
    // this run), then destructured so each piece borrows independently.
    let scratch = ws.slot::<SystemScratch>();
    scratch.reset();
    let SystemScratch {
        queue: q,
        net_step,
        io_step,
        ssd_scheds,
        ssd_pool,
        notified,
        tpm_caches,
    } = scratch;
    let tracing = sink.enabled();
    let n_bg = cfg.background.as_ref().map_or(0, |b| b.n_sources);
    let n_hosts = cfg.n_initiators + cfg.n_targets + n_bg;
    let clos = match &cfg.topology {
        TopologyKind::Star { rate, delay } => build_star(n_hosts, *rate, *delay),
        TopologyKind::Clos(c) => build_clos(c),
    };
    assert!(
        clos.hosts.len() >= n_hosts,
        "topology provides {} hosts, need {n_hosts}",
        clos.hosts.len()
    );
    let init_hosts: Vec<NodeId> = clos.hosts[..cfg.n_initiators].to_vec();
    let tgt_hosts: Vec<NodeId> =
        clos.hosts[cfg.n_initiators..cfg.n_initiators + cfg.n_targets].to_vec();
    let bg_hosts: Vec<NodeId> = clos.hosts[cfg.n_initiators + cfg.n_targets..n_hosts].to_vec();

    let mut net = Network::new(clos.topology, cfg.dcqcn.clone(), cfg.pfc.clone(), cfg.mtu);
    net.set_coalescing(coalescing);
    if cfg.cc == CcChoice::Timely {
        net.use_timely(net_sim::TimelyParams::default());
    }
    if !plan.is_empty() {
        net.set_fault_seed(plan.seed);
    }

    // Flows: a bidirectional pair per (initiator, target).
    let mut out_flows = vec![vec![FlowId(usize::MAX); cfg.n_targets]; cfg.n_initiators];
    let mut flow_roles: HashMap<FlowId, FlowRole> = HashMap::new();
    let mut targets: Vec<TargetState> = Vec::with_capacity(cfg.n_targets);
    for (t_idx, &th) in tgt_hosts.iter().enumerate() {
        let discipline = match cfg.mode {
            Mode::DcqcnOnly => DisciplineKind::Fifo,
            Mode::DcqcnSrc => DisciplineKind::Ssq { weight: 1 },
        };
        let src = match cfg.mode {
            Mode::DcqcnOnly => None,
            Mode::DcqcnSrc => {
                let tpm = tpms
                    .for_target(t_idx)
                    .expect("DcqcnSrc mode requires a trained TPM");
                Some(SrcController::with_cache(
                    tpm,
                    cfg.src.clone(),
                    tpm_caches.pop().unwrap_or_default(),
                ))
            }
        };
        let mut in_flows = Vec::with_capacity(cfg.n_initiators);
        for (i_idx, &ih) in init_hosts.iter().enumerate() {
            let fo = net.add_flow(ih, th);
            out_flows[i_idx][t_idx] = fo;
            flow_roles.insert(fo, FlowRole::Outbound);
            let fi = net.add_flow(th, ih);
            in_flows.push(fi);
            flow_roles.insert(fi, FlowRole::Inbound { target: t_idx });
        }
        targets.push(TargetState {
            host: th,
            node: StorageNode::new(&NodeConfig {
                ssd: cfg.ssd_for(t_idx).clone(),
                discipline,
                merge_cap: None,
            }),
            proto: TargetProto::new(),
            txq: TxqPolicy::new(cfg.txq_watermarks.0, cfg.txq_watermarks.1),
            src,
            in_flows,
        });
    }
    let mut initiators: Vec<InitiatorProto> = (0..cfg.n_initiators)
        .map(|_| InitiatorProto::new())
        .collect();

    if tracing {
        net.set_telemetry(true);
        for (t_idx, t) in targets.iter_mut().enumerate() {
            t.node.set_telemetry(true, t_idx as u64);
            if let Some(src) = t.src.as_mut() {
                src.set_telemetry(true, t_idx as u64);
            }
        }
        // Heterogeneous fleets tag each Target's `ssd` gauge stream with
        // its device model up front, so per-device series can be told
        // apart in the trace. Homogeneous runs skip this — their traces
        // (including the committed fig9 fixture) stay byte-identical.
        if cfg.is_heterogeneous() {
            for t_idx in 0..cfg.n_targets {
                sink.record(TraceRecord {
                    at: SimTime::ZERO,
                    component: "ssd",
                    scope: t_idx as u64,
                    metric: cfg.ssd_for(t_idx).model_metric(),
                    value: 1.0,
                });
            }
        }
    }
    let mut last_sample = SimTime::ZERO;

    // Background congestion flows toward Initiator 0.
    let mut bg_flows: Vec<FlowId> = Vec::with_capacity(n_bg);
    if let Some(bg) = &cfg.background {
        assert!(
            !init_hosts.is_empty(),
            "background traffic requires at least one initiator"
        );
        for &bh in &bg_hosts {
            let f = net.add_fixed_rate_flow(bh, init_hosts[0], bg.rate_per_source);
            flow_roles.insert(f, FlowRole::Background);
            bg_flows.push(f);
        }
    }

    let mut report = SystemReport::new(cfg.n_targets);
    for (i, a) in assignments.iter().enumerate() {
        q.schedule(a.request.arrival, Ev::Issue(i));
    }
    if let Some(bg) = &cfg.background {
        for s in 0..bg.n_sources {
            q.schedule(bg.start, Ev::Background { src: s });
        }
    }
    // Fault windows: one activation and one deactivation event each.
    // An empty plan schedules nothing, so the event sequence (and every
    // traced timestamp) is bit-identical to a fault-free run.
    for (idx, fe) in plan.events.iter().enumerate() {
        q.schedule(
            fe.start,
            Ev::Fault {
                event: idx,
                activate: true,
            },
        );
        q.schedule(
            fe.end(),
            Ev::Fault {
                event: idx,
                activate: false,
            },
        );
    }

    // Actual Target per request (LeastLoaded selection can override the
    // static assignment at issue time).
    let mut actual_target: Vec<usize> = assignments.iter().map(|a| a.target).collect();

    // Initiator-side completion count (plus abandoned requests, which
    // will never complete) drives termination.
    let total = assignments.len();
    let mut finished = 0usize;
    let mut abandoned = 0usize;
    let mut req_state: Vec<ReqState> = if robustness.is_some() {
        vec![
            ReqState {
                attempt: 0,
                done: false,
            };
            total
        ]
    } else {
        Vec::new()
    };
    // Targets currently in a dropout window: commands vanish on
    // arrival and replies are lost.
    let mut dropped: Vec<bool> = vec![false; cfg.n_targets];
    let tgt_host_index: HashMap<NodeId, usize> =
        tgt_hosts.iter().enumerate().map(|(i, &h)| (h, i)).collect();

    // The workspace's scratch buffers drive the hot loop: each event
    // triggers at most one network step (`net_step`); sends issued
    // while folding storage completions go through `io_step`;
    // `ssd_scheds` keeps its LIFO processing order while `ssd_pool`
    // recycles the drained step buffers, so the steady state allocates
    // nothing per event — and across reused runs, not even at startup.
    while let Some((now, ev)) = q.pop() {
        if finished + abandoned >= total {
            break;
        }
        net_step.clear();
        debug_assert!(ssd_scheds.is_empty());

        match ev {
            Ev::Issue(i) => {
                let a = assignments[i];
                let target = match cfg.target_selection {
                    TargetSelection::Static => a.target,
                    TargetSelection::LeastLoaded => {
                        // Fewest commands pending at the Target driver +
                        // queued in its NVMe driver (what an initiator
                        // can learn from completion feedback).
                        (0..targets.len())
                            .min_by_key(|&t| {
                                targets[t].proto.in_flight() + targets[t].node.discipline().queued()
                            })
                            .expect("at least one target")
                    }
                    TargetSelection::Pack { cap } => (0..targets.len())
                        .find(|&t| targets[t].proto.in_flight() < cap)
                        .unwrap_or_else(|| {
                            (0..targets.len())
                                .min_by_key(|&t| targets[t].proto.in_flight())
                                .expect("at least one target")
                        }),
                };
                actual_target[a.request.id as usize] = target;
                let ws =
                    initiators[a.initiator].issue(&a.request, out_flows[a.initiator][target], now);
                net.send_into(ws.flow, ws.bytes, ws.tag, now, &mut *net_step);
                if let Some(rb) = robustness {
                    let req = a.request.id as usize;
                    req_state[req].attempt = 1;
                    q.schedule(now + rb.timeout, Ev::Timeout { req, attempt: 1 });
                }
            }
            Ev::Net(nev) => {
                net.handle_into(nev, now, &mut *net_step);
            }
            Ev::Ssd { target, ev } => {
                let mut step = ssd_pool.pop().unwrap_or_default();
                targets[target].node.on_ssd_event_into(ev, now, &mut step);
                ssd_scheds.push((target, step));
            }
            Ev::Background { src } => {
                let bg = cfg
                    .background
                    .as_ref()
                    .expect("background event without config");
                if now < bg.stop {
                    // Closed-loop source: keep the flow's NIC queue
                    // topped up (so the link stays contended at whatever
                    // rate DCQCN allows) without unbounded backlog.
                    if net.flow_backlog_bytes(bg_flows[src]) < 4 * bg.bytes_per_burst {
                        net.send_into(
                            bg_flows[src],
                            bg.bytes_per_burst,
                            u64::MAX - src as u64, // tag unused for background
                            now,
                            &mut *net_step,
                        );
                    }
                    let next = now + bg.burst_interval;
                    if next < bg.stop {
                        q.schedule(next, Ev::Background { src });
                    }
                }
            }
            Ev::Fault { event, activate } => {
                let fe = &plan.events[event];
                match (fe.kind, fe.scope) {
                    (
                        FaultKind::LinkDegrade {
                            bandwidth_factor,
                            extra_delay,
                        },
                        FaultScope::Link { index },
                    ) => {
                        if activate {
                            net.set_link_degrade(
                                index,
                                bandwidth_factor,
                                extra_delay,
                                now,
                                &mut *net_step,
                            );
                        } else {
                            net.clear_link_degrade(index);
                        }
                    }
                    (FaultKind::PacketLoss { probability }, FaultScope::Link { index }) => {
                        if activate {
                            net.set_link_loss(index, probability, now, &mut *net_step);
                        } else {
                            net.clear_link_loss(index);
                        }
                    }
                    (FaultKind::CnpLoss { probability }, _) => {
                        if activate {
                            net.set_cnp_loss(probability);
                        } else {
                            net.clear_cnp_loss();
                        }
                    }
                    (FaultKind::SsdLatencySpike { factor }, FaultScope::Target { index }) => {
                        targets[index].node.set_ssd_latency_factor(if activate {
                            factor
                        } else {
                            1.0
                        });
                    }
                    (FaultKind::TargetFailStop, FaultScope::Target { index }) => {
                        let mut step = ssd_pool.pop().unwrap_or_default();
                        targets[index].node.set_ssd_halted(activate, now, &mut step);
                        ssd_scheds.push((index, step));
                    }
                    (FaultKind::TargetDropout, FaultScope::Target { index }) => {
                        dropped[index] = activate;
                    }
                    (kind, scope) => unreachable!("fault plan validated: {kind:?} on {scope:?}"),
                }
            }
            Ev::Timeout { req, attempt } => {
                if let Some(rb) = robustness {
                    let st = req_state[req];
                    if !st.done && st.attempt == attempt {
                        report.timeouts += 1;
                        if st.attempt <= rb.retry_budget {
                            // Bounded exponential backoff before the
                            // retry: base * 2^(attempt-1).
                            let shift = (attempt - 1).min(32);
                            let backoff =
                                SimDuration(rb.backoff_base.0.saturating_mul(1u64 << shift));
                            q.schedule(now + backoff, Ev::Retry { req });
                        } else {
                            let a = assignments[req];
                            initiators[a.initiator].abandon(a.request.id);
                            req_state[req].done = true;
                            abandoned += 1;
                            report.abandoned += 1;
                            report.per_target_abandoned[actual_target[req]] += 1;
                        }
                    }
                }
            }
            Ev::Retry { req } => {
                if let Some(rb) = robustness {
                    if !req_state[req].done {
                        let a = assignments[req];
                        let target = actual_target[req];
                        req_state[req].attempt += 1;
                        report.retries += 1;
                        let ws = initiators[a.initiator].reissue(
                            &a.request,
                            out_flows[a.initiator][target],
                            now,
                        );
                        net.send_into(ws.flow, ws.bytes, ws.tag, now, &mut *net_step);
                        q.schedule(
                            now + rb.timeout,
                            Ev::Timeout {
                                req,
                                attempt: req_state[req].attempt,
                            },
                        );
                    }
                }
            }
        }

        // Process network outputs (may cascade into storage submissions,
        // which in turn produce more sends).
        {
            let step = &*net_step;
            for &(t, e) in &step.schedule {
                q.schedule(t, Ev::Net(e));
            }
            for &host in &step.pauses_received {
                if tgt_host_index.contains_key(&host) {
                    report.pauses_total += 1;
                    report.pause_series.add(now, 1.0);
                }
            }
            // SRC: congestion notifications from inbound-flow rate
            // changes, aggregated per target.
            notified.clear();
            for (flow, rate) in &step.rate_changes {
                if let Some(FlowRole::Inbound { target }) = flow_roles.get(flow) {
                    report.min_inbound_rate_gbps =
                        report.min_inbound_rate_gbps.min(rate.as_gbps_f64());
                    if !notified.contains(target) {
                        notified.push(*target);
                    }
                }
            }
            for &t_idx in &**notified {
                let demanded_bps: u64 = targets[t_idx]
                    .in_flows
                    .iter()
                    .map(|&f| net.flow_rate(f).as_bps())
                    .sum();
                let demanded = sim_engine::Rate::from_bps(demanded_bps);
                // Per-target DCQCN aggregate: the sum of the granted
                // rates of every flow into this Target, sampled at each
                // rate-change notification — in every mode, so baseline
                // and SRC traces carry the same series.
                if tracing {
                    sink.record(TraceRecord {
                        at: now,
                        component: "net",
                        scope: t_idx as u64,
                        metric: "inbound_gbps",
                        value: demanded.as_gbps_f64(),
                    });
                }
                let t = &mut targets[t_idx];
                if let Some(src) = t.src.as_mut() {
                    if let Some(w) = src.on_congestion_notification(demanded, now) {
                        t.node.set_weight_ratio(w);
                        let mut s = ssd_pool.pop().unwrap_or_default();
                        t.node.pump_into(now, &mut s);
                        ssd_scheds.push((t_idx, s));
                    }
                }
            }
            for d in &step.deliveries {
                if matches!(flow_roles.get(&d.flow), Some(FlowRole::Background)) {
                    continue;
                }
                if !d.last {
                    continue;
                }
                let (kind, req_id) = decode_tag(d.tag);
                let a = assignments[req_id as usize];
                let tgt_idx = actual_target[req_id as usize];
                match kind {
                    MsgKind::ReadCmd | MsgKind::WriteCmd => {
                        if dropped[tgt_idx] {
                            // The Target is in a dropout window: the
                            // command vanishes at the dead host and the
                            // initiator's timeout recovers.
                            continue;
                        }
                        let t = &mut targets[tgt_idx];
                        if let Some(src) = t.src.as_mut() {
                            src.observe(&a.request, now);
                        }
                        // None: a retry raced the original, still in
                        // service — its completion answers both over
                        // the refreshed reply flow.
                        if let Some(sub) =
                            t.proto
                                .on_command(kind, &a.request, t.in_flows[a.initiator], now)
                        {
                            if t.node.ssd().has_command(sub.request.id) {
                                // Retried write whose ack was lost: the
                                // device still holds the original
                                // (destage in flight), so the data is
                                // already accepted — ack immediately
                                // instead of resubmitting.
                                let ws = t.proto.on_storage_completion(sub.request.id, now);
                                io_step.clear();
                                net.send_into(ws.flow, ws.bytes, ws.tag, now, &mut *io_step);
                                for &(tt, e) in &io_step.schedule {
                                    q.schedule(tt, Ev::Net(e));
                                }
                            } else {
                                let mut s = ssd_pool.pop().unwrap_or_default();
                                t.node.submit_into(sub.request, now, &mut s);
                                ssd_scheds.push((tgt_idx, s));
                            }
                        }
                    }
                    MsgKind::ReadData => {
                        // None: a late reply to a request already
                        // completed (a retry raced it) or abandoned.
                        if let Some(c) = initiators[a.initiator].on_inbound(kind, req_id, now) {
                            report.reads_completed += 1;
                            report.read_bytes += c.size;
                            report.per_target[tgt_idx].reads_completed += 1;
                            report.per_target[tgt_idx].read_bytes += c.size;
                            report.read_series.add(now, c.size as f64);
                            report.read_latency_us.push(now.since(c.issued).as_us_f64());
                            finished += 1;
                            if let Some(st) = req_state.get_mut(req_id as usize) {
                                st.done = true;
                            }
                        }
                    }
                    MsgKind::WriteAck => {
                        if initiators[a.initiator]
                            .on_inbound(kind, req_id, now)
                            .is_some()
                        {
                            finished += 1;
                            if let Some(st) = req_state.get_mut(req_id as usize) {
                                st.done = true;
                            }
                        }
                    }
                }
            }
        }

        // Fold storage-side schedules and new completions that appeared
        // while pumping.
        while let Some((t_idx, mut step)) = ssd_scheds.pop() {
            // A dropout window swallows this Target's replies: proto
            // state is still cleared (the device did the work), but
            // nothing is counted or sent — the initiator's timeout
            // recovers the request.
            let lost = dropped[t_idx];
            for c in &step.completions {
                if c.op == IoType::Write && !lost {
                    report.writes_completed += 1;
                    report.write_bytes += c.size;
                    report.per_target[t_idx].writes_completed += 1;
                    report.per_target[t_idx].write_bytes += c.size;
                    report.write_series.add(now, c.size as f64);
                    let issued = assignments[c.id as usize].request.arrival;
                    report.write_latency_us.push(now.since(issued).as_us_f64());
                }
                let ws = targets[t_idx].proto.on_storage_completion(c.id, now);
                if !lost {
                    io_step.clear();
                    net.send_into(ws.flow, ws.bytes, ws.tag, now, &mut *io_step);
                    for &(t, e) in &io_step.schedule {
                        q.schedule(t, Ev::Net(e));
                    }
                    // (Sends here can't complete requests or change
                    // rates synchronously; deliveries come back as
                    // events.)
                    debug_assert!(io_step.deliveries.is_empty());
                }
            }
            for &(t, e) in &step.schedule {
                q.schedule(
                    t,
                    Ev::Ssd {
                        target: t_idx,
                        ev: e,
                    },
                );
            }
            step.clear();
            ssd_pool.push(step);
        }

        // TXQ backpressure: observe every target's NIC backlog and open/
        // close the SSD fetch gate accordingly.
        for (t_idx, t) in targets.iter_mut().enumerate() {
            let backlog = net.host_backlog_bytes(t.host);
            if let Some(open) = t.txq.observe(backlog) {
                // TxqPolicy has no clock or buffer of its own, so gate
                // transitions are recorded here at the observation site.
                if tracing {
                    sink.record(TraceRecord {
                        at: now,
                        component: "txq",
                        scope: t_idx as u64,
                        metric: "gate_open",
                        value: if open { 1.0 } else { 0.0 },
                    });
                }
                t.node.set_read_gate(open);
                if open {
                    let lost = dropped[t_idx];
                    let mut step = ssd_pool.pop().unwrap_or_default();
                    t.node.pump_into(now, &mut step);
                    for c in &step.completions {
                        if c.op == IoType::Write && !lost {
                            report.writes_completed += 1;
                            report.write_bytes += c.size;
                            report.per_target[t_idx].writes_completed += 1;
                            report.per_target[t_idx].write_bytes += c.size;
                            report.write_series.add(now, c.size as f64);
                            let issued = assignments[c.id as usize].request.arrival;
                            report.write_latency_us.push(now.since(issued).as_us_f64());
                        }
                        let ws = t.proto.on_storage_completion(c.id, now);
                        if !lost {
                            io_step.clear();
                            net.send_into(ws.flow, ws.bytes, ws.tag, now, &mut *io_step);
                            for &(tt, e) in &io_step.schedule {
                                q.schedule(tt, Ev::Net(e));
                            }
                        }
                    }
                    for &(tt, e) in &step.schedule {
                        q.schedule(
                            tt,
                            Ev::Ssd {
                                target: t_idx,
                                ev: e,
                            },
                        );
                    }
                    step.clear();
                    ssd_pool.push(step);
                } else {
                    report.gate_closures.push((now, t_idx));
                }
            }
        }

        // Telemetry: sample gauges once per bin, then drain every
        // component's probe buffer in a fixed order so the trace is
        // deterministic.
        if tracing {
            if now.since(last_sample) >= SAMPLE_BIN {
                last_sample = now;
                for (t_idx, t) in targets.iter_mut().enumerate() {
                    t.node.sample_telemetry(now);
                    let scope = t_idx as u64;
                    let gauges: [(&'static str, &'static str, f64); 6] = [
                        (
                            "txq",
                            "backlog_bytes",
                            net.host_backlog_bytes(t.host) as f64,
                        ),
                        ("ssq", "weight_ratio", t.node.weight_ratio() as f64),
                        (
                            "ssq",
                            "outstanding",
                            t.node.discipline().outstanding() as f64,
                        ),
                        ("ssd", "cache_occupancy", t.node.ssd().cache_occupancy()),
                        ("ssd", "in_flight", t.node.ssd().in_flight() as f64),
                        ("tgt", "proto_in_flight", t.proto.in_flight() as f64),
                    ];
                    for (component, metric, value) in gauges {
                        sink.record(TraceRecord {
                            at: now,
                            component,
                            scope,
                            metric,
                            value,
                        });
                    }
                }
            }
            net.drain_probes_into(sink);
            for t in targets.iter_mut() {
                t.node.drain_probes_into(sink);
                if let Some(src) = t.src.as_mut() {
                    src.drain_probes_into(sink);
                }
            }
        }

        report.makespan = report.makespan.max(now.since(SimTime::ZERO));
        if finished + abandoned >= total {
            break;
        }
    }

    assert!(
        finished + abandoned >= total,
        "system run starved: {finished}/{total} requests finished ({abandoned} abandoned)"
    );
    for (t_idx, t) in targets.iter().enumerate() {
        if let Some(src) = t.src.as_ref() {
            report.decisions[t_idx] = src.decisions().to_vec();
            let (hits, misses) = src.tpm_cache_stats();
            report.tpm_cache_hits += hits;
            report.tpm_cache_misses += misses;
        }
    }
    report.ecn_marked = net.ecn_marked();
    report.cnps = net.cnps_sent();
    report.packets_coalesced = net.packets_coalesced();
    for link in 0..net.topology().n_links() {
        report.bursts_coalesced += net.bursts_coalesced(link);
    }
    if tracing {
        sink.count(("net", 0, "ecn_marked"), report.ecn_marked);
        sink.count(("net", 0, "cnps_sent"), report.cnps);
        sink.count(("net", 0, "pauses_received"), report.pauses_total);
        sink.count(
            ("txq", 0, "gate_closures"),
            report.gate_closures.len() as u64,
        );
        sink.count(("sys", 0, "reads_completed"), report.reads_completed);
        sink.count(("sys", 0, "writes_completed"), report.writes_completed);
        // Fault-recovery counters only exist when the machinery is
        // active, keeping legacy traces byte-identical.
        if robustness.is_some() || !plan.is_empty() {
            sink.count(("fabric", 0, "timeouts"), report.timeouts);
            sink.count(("fabric", 0, "retries"), report.retries);
            sink.count(("fabric", 0, "abandoned"), report.abandoned);
            for (t_idx, &n) in report.per_target_abandoned.iter().enumerate() {
                sink.count(("fabric", t_idx as u64, "abandoned_at_target"), n);
            }
        }
        // Fast-path counters are new in the PR-9 trace vocabulary;
        // emitting them only in SRC mode keeps the pinned DCQCN-only
        // fixture traces byte-identical.
        if matches!(cfg.mode, Mode::DcqcnSrc) {
            for (t_idx, t) in targets.iter().enumerate() {
                let (hits, misses) = t.src.as_ref().map_or((0, 0), |s| s.tpm_cache_stats());
                sink.count(("src", t_idx as u64, "tpm_cache_hits"), hits);
                sink.count(("src", t_idx as u64, "tpm_cache_misses"), misses);
            }
            for link in 0..net.topology().n_links() {
                let n = net.bursts_coalesced(link);
                if n > 0 {
                    sink.count(("net", link as u64, "bursts_coalesced"), n);
                }
            }
        }
    }
    // Hand each controller's prediction-cache storage back to the
    // workspace so the next run through it reuses the allocation.
    for t in targets {
        if let Some(src) = t.src {
            tpm_caches.push(src.into_cache());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::spread_trace;
    use workload::micro::{generate_micro, MicroConfig};

    fn small_assignments(n: usize, seed: u64) -> Vec<Assignment> {
        let t = generate_micro(
            &MicroConfig {
                read_count: n / 2,
                write_count: n / 2,
                read_iat_mean_us: 20.0,
                write_iat_mean_us: 20.0,
                read_size_mean: 24_000.0,
                write_size_mean: 24_000.0,
                ..MicroConfig::default()
            },
            seed,
        );
        spread_trace(&t, 1, 2)
    }

    #[test]
    fn baseline_run_completes() {
        let cfg = SystemConfig::default();
        let a = small_assignments(400, 1);
        let r = run_system(&cfg, RunOptions::assignments(&a), &mut sim_engine::NullSink);
        assert_eq!(r.reads_completed, 200);
        // Writes counted at Targets.
        assert_eq!(r.writes_completed, 200);
        assert!(r.read_latency_us.mean() > 0.0);
        assert!(r.makespan > sim_engine::SimDuration::ZERO);
        assert_eq!((r.timeouts, r.retries, r.abandoned), (0, 0, 0));
    }

    #[test]
    fn deterministic() {
        let cfg = SystemConfig::default();
        let a = small_assignments(200, 2);
        let r1 = run_system(&cfg, RunOptions::assignments(&a), &mut sim_engine::NullSink);
        let r2 = run_system(&cfg, RunOptions::assignments(&a), &mut sim_engine::NullSink);
        assert_eq!(r1.read_series.bins(), r2.read_series.bins());
        assert_eq!(r1.pauses_total, r2.pauses_total);
        assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn seeded_options_match_explicit_assignments() {
        let cfg = SystemConfig::default();
        let a = cfg.assignments(11);
        let from_seed = run_system(&cfg, RunOptions::seeded(11), &mut sim_engine::NullSink);
        let from_slice = run_system(&cfg, RunOptions::assignments(&a), &mut sim_engine::NullSink);
        assert_eq!(from_seed.makespan, from_slice.makespan);
        assert_eq!(from_seed.read_series.bins(), from_slice.read_series.bins());
    }

    #[test]
    fn traced_run_is_identical_and_deterministic() {
        use sim_engine::RingSink;
        let cfg = SystemConfig::default();
        let a = small_assignments(200, 4);
        let plain = run_system(&cfg, RunOptions::assignments(&a), &mut sim_engine::NullSink);
        let mut sink = RingSink::new(1 << 18);
        let traced = run_system(&cfg, RunOptions::assignments(&a), &mut sink);
        // A no-op sink gives the same report as a recording one.
        let nulled = run_system(&cfg, RunOptions::assignments(&a), &mut sim_engine::NullSink);
        assert_eq!(nulled.reads_completed, traced.reads_completed);
        assert_eq!(nulled.read_series.bins(), traced.read_series.bins());
        assert_eq!(nulled.makespan, traced.makespan);
        // Telemetry must not perturb the simulation.
        assert_eq!(plain.reads_completed, traced.reads_completed);
        assert_eq!(plain.writes_completed, traced.writes_completed);
        assert_eq!(plain.read_series.bins(), traced.read_series.bins());
        assert_eq!(plain.write_series.bins(), traced.write_series.bins());
        assert_eq!(plain.pauses_total, traced.pauses_total);
        assert_eq!(plain.ecn_marked, traced.ecn_marked);
        assert_eq!(plain.makespan, traced.makespan);
        let rep = sink.into_report();
        assert!(!rep.series("txq", "backlog_bytes").is_empty());
        assert!(!rep.series("ssd", "chip_util").is_empty());
        assert_eq!(rep.counter(("net", 0, "ecn_marked")), plain.ecn_marked);
        assert_eq!(
            rep.counter(("sys", 0, "reads_completed")),
            plain.reads_completed
        );
        // Same inputs: byte-identical JSON-lines export.
        let mut sink2 = RingSink::new(1 << 18);
        let _ = run_system(&cfg, RunOptions::assignments(&a), &mut sink2);
        assert_eq!(rep.to_json_lines(), sink2.into_report().to_json_lines());
    }

    #[test]
    #[should_panic(expected = "requires a trained TPM")]
    fn src_mode_needs_tpm() {
        let cfg = SystemConfig {
            mode: Mode::DcqcnSrc,
            ..SystemConfig::default()
        };
        let a = small_assignments(10, 3);
        let _ = run_system(&cfg, RunOptions::assignments(&a), &mut sim_engine::NullSink);
    }

    #[test]
    fn dropout_abandons_requests_and_counts() {
        use sim_engine::FaultEvent;
        let cfg = SystemConfig::default();
        let a = small_assignments(40, 5);
        // Target 1 is gone for the whole run; a tight budget abandons
        // everything routed there while Target 0 completes normally.
        let plan = FaultPlan::seeded(9).with(FaultEvent {
            scope: FaultScope::Target { index: 1 },
            kind: FaultKind::TargetDropout,
            start: SimTime::ZERO,
            duration: SimDuration::from_ms(10_000),
        });
        let rb = RobustnessConfig {
            timeout: SimDuration::from_us(500),
            retry_budget: 1,
            backoff_base: SimDuration::from_us(100),
        };
        let r = run_system(
            &cfg,
            RunOptions::assignments(&a).faults(&plan).robustness(rb),
            &mut sim_engine::NullSink,
        );
        assert!(r.abandoned > 0, "dropout must abandon requests");
        assert_eq!(r.abandoned, r.per_target_abandoned.iter().sum::<u64>());
        assert_eq!(r.per_target_abandoned[0], 0);
        assert!(r.availability(1) < 1.0);
        assert!((r.availability(0) - 1.0).abs() < 1e-12);
        assert!(r.timeouts >= r.abandoned);
        assert!(r.retries <= r.timeouts);
        assert_eq!(
            r.reads_completed + r.writes_completed + r.abandoned,
            a.len() as u64
        );
    }
}
