//! One function per table/figure of the paper's evaluation. The bench
//! binaries print these results; integration tests run them at reduced
//! scale and assert the qualitative shapes.

use crate::config::{
    per_target_sources, spread_source, BackgroundTraffic, Mode, SystemConfig, TargetSelection,
};
use crate::report::SystemReport;
use crate::scripted::{fig9_events, run_scripted, ScriptedResult};
use crate::system::{run_system, RobustnessConfig, RunOptions};
use ml::Dataset;
use serde::{Deserialize, Serialize};
use sim_engine::runner::join;
use sim_engine::{
    CheckpointSpec, FaultEvent, FaultKind, FaultPlan, FaultScope, NullSink, ScenarioRunner,
    SimDuration, SimTime, TraceSink,
};
use src_core::tpm::{
    generate_training_samples, samples_to_dataset, table1_accuracy, ThroughputPredictionModel,
    TrainingConfig,
};
use src_core::SrcConfig;
use ssd_sim::SsdConfig;
use std::sync::Arc;
use storage_node::{weight_sweep, SweepPoint};
use workload::micro::MicroConfig;
use workload::source::{ReplaySpec, WorkloadSource, WorkloadSpec};
use workload::synthetic::{ScvQuadrant, SyntheticConfig};

/// Scale knob: `full()` reproduces the paper's sizes; `quick()` keeps CI
/// runtimes in seconds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scale {
    /// Requests per class per target in system runs.
    pub requests_per_target: usize,
    /// Samples per class in model-training sweeps.
    pub train: TrainKnob,
}

/// Which training grid to use.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum TrainKnob {
    /// The full Fig. 5 grid.
    Full,
    /// The reduced grid.
    Quick,
}

impl Scale {
    /// Paper-scale (5000 requests per class per target, full grid).
    pub fn full() -> Self {
        Scale {
            requests_per_target: 5_000,
            train: TrainKnob::Full,
        }
    }

    /// Test-scale.
    pub fn quick() -> Self {
        Scale {
            requests_per_target: 700,
            train: TrainKnob::Quick,
        }
    }

    /// Resolve the training grid.
    pub fn training_config(&self) -> TrainingConfig {
        match self.train {
            TrainKnob::Full => TrainingConfig::full(),
            TrainKnob::Quick => TrainingConfig::quick(),
        }
    }
}

// ----------------------------------------------------------------------
// Fig. 5 — throughput vs weight ratio grid

/// One cell of the Fig. 5 grid.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig5Cell {
    /// Mean inter-arrival time, µs.
    pub iat_us: f64,
    /// Mean request size, bytes.
    pub size_bytes: f64,
    /// Sweep points across weight ratios.
    pub points: Vec<SweepPoint>,
}

/// Sweep read/write throughput across weight ratios for the paper's
/// 4×4 workload grid (10–25 µs × 10–40 KB), on the given device. Grid
/// cells are independent seeded sweeps, so the [`ScenarioRunner`]
/// evaluates them in parallel; each cell's trace seed stays the same
/// pure function of its `(i, j)` grid position as the original serial
/// loop, so results are byte-identical at any thread count. With
/// `SRCSIM_CHECKPOINT` set, completed cells land in a sweep manifest
/// and an interrupted grid resumes where it left off.
pub fn fig5(ssd: &SsdConfig, scale: &Scale, seed: u64) -> Vec<Fig5Cell> {
    let cfg = scale.training_config();
    let ckpt =
        CheckpointSpec::from_env("fig5", &format!("fig5 ssd={ssd:?} cfg={cfg:?} seed={seed}"));
    let mut cells: Vec<(usize, usize, f64, f64)> = Vec::new();
    for (i, &iat) in cfg.iat_means_us.iter().enumerate() {
        for (j, &size) in cfg.size_means.iter().enumerate() {
            cells.push((i, j, iat, size));
        }
    }
    ScenarioRunner::from_env().run_cells_resumable(
        ckpt.as_ref(),
        seed,
        &cells,
        |_, &(i, j, iat, size)| {
            let spec = WorkloadSpec::Micro(MicroConfig {
                read_iat_mean_us: iat,
                write_iat_mean_us: iat,
                read_size_mean: size,
                write_size_mean: size,
                read_count: cfg.requests_per_class,
                write_count: cfg.requests_per_class,
                ..MicroConfig::default()
            });
            let trace = spec.generate(seed.wrapping_add((i * 16 + j) as u64));
            Fig5Cell {
                iat_us: iat,
                size_bytes: size,
                points: weight_sweep(ssd, &trace, &cfg.weights),
            }
        },
    )
}

// ----------------------------------------------------------------------
// Table I — regression accuracy of the five model families

/// Table I rows: `(model label, R²)` on a 60/40 split of micro sweeps.
pub fn table1(ssd: &SsdConfig, scale: &Scale, seed: u64) -> Vec<(&'static str, f64)> {
    let samples = generate_training_samples(ssd, &scale.training_config(), seed);
    let data = samples_to_dataset(&samples);
    table1_accuracy(&data, 0.6, seed)
}

/// Breiman feature importance of the TPM trained on the same sweep
/// (the paper: flow speed dominates with weight 0.39).
pub fn feature_importance(ssd: &SsdConfig, scale: &Scale, seed: u64) -> Vec<(String, f64)> {
    let samples = generate_training_samples(ssd, &scale.training_config(), seed);
    let data = samples_to_dataset(&samples);
    let tpm = ThroughputPredictionModel::train(&data, scale.training_config().n_trees, seed);
    let mut names: Vec<String> = workload::features::FEATURE_NAMES
        .iter()
        .map(|s| s.to_string())
        .collect();
    names.push("weight_ratio".into());
    names.into_iter().zip(tpm.feature_importance()).collect()
}

// ----------------------------------------------------------------------
// Table III — cross-validation over SCV quadrants

/// Table III rows: leave-one-quadrant-out R² of the random forest.
///
/// The `(quadrant, workload)` sweep cells and the four holdout fits are
/// each independent, so both stages run on the [`ScenarioRunner`]; the
/// per-cell trace seed stays the original pure function of `(qi, k)`.
pub fn table3(ssd: &SsdConfig, scale: &Scale, seed: u64) -> Vec<(&'static str, f64)> {
    let cfg = scale.training_config();
    let fp = format!("table3 ssd={ssd:?} cfg={cfg:?} seed={seed}");
    // Synthetic sweeps: one flat grid cell per (quadrant, workload).
    let mut cells: Vec<(usize, ScvQuadrant, usize, f64, f64)> = Vec::new();
    for (qi, q) in ScvQuadrant::ALL.into_iter().enumerate() {
        for (k, (&iat, &size)) in cfg
            .iat_means_us
            .iter()
            .zip(cfg.size_means.iter().cycle())
            .enumerate()
        {
            cells.push((qi, q, k, iat, size));
        }
    }
    let runner = ScenarioRunner::from_env();
    let ckpt_synth = CheckpointSpec::from_env("table3_synth", &fp);
    let cell_samples = runner.run_cells_resumable(
        ckpt_synth.as_ref(),
        seed,
        &cells,
        |_, &(qi, q, k, iat, size)| {
            let p = q.profile(iat, size);
            let spec = WorkloadSpec::Synthetic(SyntheticConfig {
                read: p,
                write: p,
                read_count: cfg.requests_per_class,
                write_count: cfg.requests_per_class,
                lba_space_sectors: 1 << 22,
                lba_model: workload::spatial::LbaModel::Uniform,
            });
            let trace = spec.generate(seed.wrapping_add((qi * 31 + k) as u64));
            weight_sweep(ssd, &trace, &cfg.weights)
        },
    );
    let mut quadrant_data: Vec<(ScvQuadrant, Dataset)> = Vec::new();
    for (qi, q) in ScvQuadrant::ALL.into_iter().enumerate() {
        let mut samples: Vec<SweepPoint> = Vec::new();
        for ((ci, ..), s) in cells.iter().zip(&cell_samples) {
            if *ci == qi {
                samples.extend(s.iter().cloned());
            }
        }
        quadrant_data.push((q, samples_to_dataset(&samples)));
    }
    // Micro sweeps are always in the training set (paper Sec. IV-C).
    let micro = samples_to_dataset(&generate_training_samples(ssd, &cfg, seed));

    // The holdout labels are `&'static str`, so the checkpoint payload
    // is the R² alone; labels re-attach by cell index.
    let ckpt_holdout = CheckpointSpec::from_env("table3_holdout", &fp);
    let r2s = runner.run_cells_resumable(
        ckpt_holdout.as_ref(),
        seed,
        &ScvQuadrant::ALL,
        |_, &held| {
            let mut train = micro.clone();
            let mut test = Dataset::default();
            for (q, d) in &quadrant_data {
                if *q == held {
                    test = d.clone();
                } else {
                    train = train.concat(d.clone());
                }
            }
            ml::cv::holdout_r2(&train, &test, &ml::ModelKind::RandomForest, seed)
        },
    );
    ScvQuadrant::ALL
        .into_iter()
        .map(|q| q.label())
        .zip(r2s)
        .collect()
}

// ----------------------------------------------------------------------
// Figs. 7/8 — runtime throughput and pause count, DCQCN vs DCQCN-SRC

/// Both modes on the VDI-like workload (1 Initiator × 2 Targets).
pub struct Fig7Result {
    /// DCQCN-only run.
    pub dcqcn_only: SystemReport,
    /// DCQCN-SRC run.
    pub dcqcn_src: SystemReport,
}

/// Train a TPM for a device at the given scale.
pub fn train_tpm(ssd: &SsdConfig, scale: &Scale, seed: u64) -> Arc<ThroughputPredictionModel> {
    Arc::new(ThroughputPredictionModel::train_for_device(
        ssd,
        &scale.training_config(),
        seed,
    ))
}

/// The congestion environment shared by the system experiments
/// (Figs. 7/8/10, Table IV): non-adaptive fabric-sharing traffic into
/// Initiator 0 covering ~65 % of the expected run (see
/// [`BackgroundTraffic`] and DESIGN.md).
pub fn paper_background(assignments: &[crate::config::Assignment]) -> Option<BackgroundTraffic> {
    let total_bytes: u64 = assignments.iter().map(|a| a.request.size).sum();
    let est_makespan_ms = (total_bytes as f64 * 8.0 / 7.5e9 * 1e3).max(10.0);
    Some(BackgroundTraffic {
        // 14 x 3 Gbps of non-adaptive traffic slightly oversubscribes
        // the 40 Gbps link: the paper's regime, where the Targets' flows
        // are squeezed to a fraction of the SSDs' read output.
        n_sources: 14,
        rate_per_source: sim_engine::Rate::from_gbps(3),
        bytes_per_burst: 128 * 1024,
        burst_interval: SimDuration::from_us(100),
        start: SimTime::from_ms(2),
        stop: SimTime::from_ms((est_makespan_ms * 0.65) as u64),
    })
}

/// Tight PFC thresholds used with [`paper_background`] so pause frames
/// reach the Targets during congestion onset (Fig. 8's metric).
pub fn paper_pfc() -> net_sim::PfcParams {
    net_sim::PfcParams {
        xoff_bytes: 64 * 1024,
        xon_bytes: 32 * 1024,
    }
}

/// Run the Fig. 7/8 experiment. Each mode's run streams into its own
/// sink (`sinks.0` DCQCN-only, `sinks.1` DCQCN-SRC) so the two traces
/// stay comparable line-by-line; pass `(&mut NullSink, &mut NullSink)`
/// for an untraced run.
pub fn fig7_fig8(
    ssd: &SsdConfig,
    scale: &Scale,
    tpm: Arc<ThroughputPredictionModel>,
    seed: u64,
    sinks: (&mut dyn TraceSink, &mut dyn TraceSink),
) -> Fig7Result {
    let n = scale.requests_per_target;
    // Per-target VDI stream at 20 µs inter-arrival so the two Targets
    // together offer the paper's ~35.2 Gbps of read traffic into the
    // single Initiator link.
    let mut vdi = SyntheticConfig::vdi(n, n);
    vdi.read.iat_mean_us = 20.0;
    vdi.write.iat_mean_us = 20.0;
    let specs = vec![WorkloadSpec::Synthetic(vdi); 2];
    let assignments = per_target_sources(&specs, seed, 1);
    // Congestion (paper Fig. 7: heavy from the start, relieved around
    // 70 % of the timeline): enough competing traffic that the Targets'
    // DCQCN share falls below the SSDs' read output — only then does
    // the TXQ become the bottleneck the paper describes.
    let base = SystemConfig::builder()
        .n_initiators(1)
        .n_targets(2)
        .ssd(ssd.clone())
        .workloads(specs)
        .background(paper_background(&assignments))
        .pfc(paper_pfc())
        .build();
    let only_cfg = base.to_builder().mode(Mode::DcqcnOnly).build();
    let src_cfg = base.to_builder().mode(Mode::DcqcnSrc).build();
    // The two modes are independent runs; `join` overlaps them when the
    // thread budget allows (sinks are `Send`, each owned by one run).
    let (s_only, s_src) = sinks;
    let (dcqcn_only, dcqcn_src) = join(
        || run_system(&only_cfg, RunOptions::assignments(&assignments), s_only),
        || {
            run_system(
                &src_cfg,
                RunOptions::assignments(&assignments).tpm(tpm),
                s_src,
            )
        },
    );
    Fig7Result {
        dcqcn_only,
        dcqcn_src,
    }
}

// ----------------------------------------------------------------------
// Fig. 9 — dynamic control convergence on SSD-B

/// Run the Fig. 9 scripted-congestion experiment on SSD-B. SRC
/// demand/weight decisions and the storage node's SSQ/SSD series stream
/// into `sink`; pass `&mut NullSink` for an untraced run.
pub fn fig9(scale: &Scale, seed: u64, sink: &mut dyn TraceSink) -> ScriptedResult {
    let ssd = SsdConfig::ssd_b();
    let tpm = train_tpm(&ssd, scale, seed);
    // Sustained heavy workload so the weight knob has authority.
    let n = scale.requests_per_target * 8;
    let trace = WorkloadSpec::Micro(MicroConfig {
        read_iat_mean_us: 10.0,
        write_iat_mean_us: 10.0,
        read_size_mean: 40_000.0,
        write_size_mean: 40_000.0,
        read_count: n,
        write_count: n,
        ..MicroConfig::default()
    })
    .generate(seed);
    // Baseline read throughput at w = 1 sets the event scale.
    let baseline = weight_sweep(&ssd, &trace, &[1])[0].read_gbps;
    let span_ms = trace.span().as_ms_f64();
    let spacing = SimDuration::from_ms(((span_ms / 5.0).max(2.0)) as u64);
    let events = fig9_events(baseline, SimTime::ZERO + spacing, spacing);
    run_scripted(&ssd, &trace, &events, tpm, &SrcConfig::default(), sink)
}

/// Companion fabric slice for the Fig. 9 trace: the scripted convergence
/// run has no network in the loop, so this short congested system run
/// (same device, derived seed) supplies the real DCQCN per-flow rate and
/// TXQ backlog series for the same trace file.
pub fn fig9_fabric_slice(scale: &Scale, seed: u64, sink: &mut dyn TraceSink) -> SystemReport {
    let ssd = SsdConfig::ssd_b();
    let n = (scale.requests_per_target / 2).max(150);
    let spec = WorkloadSpec::Micro(MicroConfig {
        read_iat_mean_us: 10.0,
        write_iat_mean_us: 10.0,
        read_size_mean: 40_000.0,
        write_size_mean: 40_000.0,
        read_count: n,
        write_count: n,
        ..MicroConfig::default()
    });
    let assignments = spread_source(&spec, seed, 1, 2);
    let cfg = SystemConfig::builder()
        .n_initiators(1)
        .n_targets(2)
        .ssd(ssd)
        .workload(spec)
        .background(paper_background(&assignments))
        .pfc(paper_pfc())
        .build();
    run_system(&cfg, RunOptions::assignments(&assignments), sink)
}

// ----------------------------------------------------------------------
// Fig. 10 — workload-intensity sensitivity

/// `(label, DCQCN-only, DCQCN-SRC)` per intensity class.
pub fn fig10(
    ssd: &SsdConfig,
    scale: &Scale,
    tpm: Arc<ThroughputPredictionModel>,
    seed: u64,
) -> Vec<(&'static str, SystemReport, SystemReport)> {
    let mk = |mc: MicroConfig| {
        let n = scale.requests_per_target;
        WorkloadSpec::Micro(MicroConfig {
            read_count: n,
            write_count: n,
            ..mc
        })
    };
    // Intensity classes scaled to this reproduction's device (our SSD
    // model runs at a few Gbps per class where the paper's MQSim config
    // ran several times faster): "light" must leave the device
    // unsaturated for the paper's no-difference result to be meaningful.
    // Ratios between the classes match the paper's 22/32/44 KB and
    // 60/80/100 per-ms ladder.
    let light = MicroConfig {
        read_iat_mean_us: 40.0,
        write_iat_mean_us: 40.0,
        read_size_mean: 4_000.0,
        write_size_mean: 4_000.0,
        ..MicroConfig::default()
    };
    let classes = [
        ("light", light),
        ("moderate", MicroConfig::moderate()),
        ("heavy", MicroConfig::heavy()),
    ];
    // Intensity classes (and the two modes within each) are independent
    // runs; spread them across the pool. The class labels are
    // `&'static str`, so checkpoint payloads carry only the two reports
    // and labels re-attach by cell index.
    let ckpt = CheckpointSpec::from_env(
        "fig10",
        &format!("fig10 ssd={ssd:?} scale={scale:?} seed={seed}"),
    );
    let reports = ScenarioRunner::from_env().run_cells_resumable(
        ckpt.as_ref(),
        seed,
        &classes,
        |_, (_, mc)| {
            let specs = vec![mk(mc.clone()); 2];
            let assignments = per_target_sources(&specs, seed, 1);
            let base = SystemConfig::builder()
                .n_initiators(1)
                .n_targets(2)
                .ssd(ssd.clone())
                .workloads(specs)
                .background(paper_background(&assignments))
                .pfc(paper_pfc())
                .build();
            join(
                || {
                    run_system(
                        &base.to_builder().mode(Mode::DcqcnOnly).build(),
                        RunOptions::assignments(&assignments),
                        &mut NullSink,
                    )
                },
                || {
                    run_system(
                        &base.to_builder().mode(Mode::DcqcnSrc).build(),
                        RunOptions::assignments(&assignments).tpm(tpm.clone()),
                        &mut NullSink,
                    )
                },
            )
        },
    );
    classes
        .iter()
        .zip(reports)
        .map(|((label, _), (only, src))| (*label, only, src))
        .collect()
}

// ----------------------------------------------------------------------
// Table IV — in-cast ratio analysis

/// One Table IV row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IncastRow {
    /// Ratio label, e.g. "2:1".
    pub ratio: String,
    /// DCQCN-SRC aggregated throughput, Gbps.
    pub src_gbps: f64,
    /// DCQCN-only aggregated throughput, Gbps.
    pub only_gbps: f64,
    /// Improvement of SRC over the baseline, percent.
    pub improvement_pct: f64,
}

/// The Table IV in-cast workload: one heavy micro stream (~38 Gbps of
/// reads: 44 KB every 9.2 µs) sized for `n_targets` Targets. Shared by
/// the homogeneous ([`table4`]), fleet ([`ext_heterogeneous`],
/// [`extension_distribution_fleet`]) and traced-bin in-cast sweeps.
pub fn incast_spec(scale: &Scale, n_targets: usize) -> WorkloadSpec {
    let total_requests = scale.requests_per_target * n_targets;
    WorkloadSpec::Micro(MicroConfig {
        read_iat_mean_us: 9.2,
        write_iat_mean_us: 9.2,
        read_size_mean: 44_000.0,
        write_size_mean: 23_000.0,
        read_count: total_requests,
        write_count: total_requests,
        ..MicroConfig::default()
    })
}

/// Run the in-cast sweep: Targets:Initiators of 2:1, 3:1, 4:1 and 4:4
/// with (approximately) the same total offered traffic.
pub fn table4(
    ssd: &SsdConfig,
    scale: &Scale,
    tpm: Arc<ThroughputPredictionModel>,
    seed: u64,
) -> Vec<IncastRow> {
    let ratios: [(usize, usize); 4] = [(2, 1), (3, 1), (4, 1), (4, 4)];
    // Every ratio (and both modes within it) is an independent seeded
    // run; the grid executes on the pool with rows in ratio order.
    let ckpt = CheckpointSpec::from_env(
        "table4",
        &format!("table4 ssd={ssd:?} scale={scale:?} seed={seed}"),
    );
    ScenarioRunner::from_env().run_cells_resumable(
        ckpt.as_ref(),
        seed,
        &ratios,
        |_, &(n_targets, n_initiators)| {
            // Fixed total read load ≈ 38 Gbps: one heavy stream split
            // across all targets.
            let spec = incast_spec(scale, n_targets);
            let assignments = spread_source(&spec, seed, n_initiators, n_targets);
            let base = SystemConfig::builder()
                .n_initiators(n_initiators)
                .n_targets(n_targets)
                .ssd(ssd.clone())
                .workload(spec)
                .background(paper_background(&assignments))
                .pfc(paper_pfc())
                .build();
            let (only, src) = join(
                || {
                    run_system(
                        &base.to_builder().mode(Mode::DcqcnOnly).build(),
                        RunOptions::assignments(&assignments),
                        &mut NullSink,
                    )
                },
                || {
                    run_system(
                        &base.to_builder().mode(Mode::DcqcnSrc).build(),
                        RunOptions::assignments(&assignments).tpm(tpm.clone()),
                        &mut NullSink,
                    )
                },
            );
            let only_gbps = only.aggregated_tput().as_gbps_f64();
            let src_gbps = src.aggregated_tput().as_gbps_f64();
            IncastRow {
                ratio: format!("{n_targets}:{n_initiators}"),
                src_gbps,
                only_gbps,
                improvement_pct: if only_gbps > 0.0 {
                    (src_gbps - only_gbps) / only_gbps * 100.0
                } else {
                    0.0
                },
            }
        },
    )
}

// ----------------------------------------------------------------------
// Extension: fault injection over the in-cast grid

/// One row of the fault-injection sweep: a Table IV cell under a
/// scheduled fault storm of the given intensity. The recovery counters
/// and availability come from the DCQCN-SRC run (the mode under study);
/// both modes run against the identical plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultRow {
    /// Ratio label, e.g. "2:1".
    pub ratio: String,
    /// Fault intensity in `[0, 1]` (0 = empty plan).
    pub intensity: f64,
    /// DCQCN-only aggregated throughput, Gbps.
    pub only_gbps: f64,
    /// DCQCN-SRC aggregated throughput, Gbps.
    pub src_gbps: f64,
    /// Improvement of SRC over the baseline, percent.
    pub improvement_pct: f64,
    /// Timed-out attempts in the SRC run.
    pub timeouts: u64,
    /// Retries issued in the SRC run.
    pub retries: u64,
    /// Requests abandoned in the SRC run.
    pub abandoned: u64,
    /// Worst per-Target availability in the SRC run.
    pub min_availability: f64,
}

/// Time base for one cell's fault windows: roughly the fault-free
/// makespan of an in-cast cell at this scale, so the storm covers the
/// bulk of the run at `quick` and `full` alike instead of a fixed few
/// milliseconds.
pub fn fault_horizon(scale: &Scale) -> SimDuration {
    SimDuration::from_ms(scale.requests_per_target as u64 / 4)
}

/// The timeout/retry policy the fault sweep arms. The in-cast workload
/// is open-loop overloaded — fault-free tail latency is on the order of
/// the makespan — so the deadline sits several makespans out: its job
/// is recovering *lost* work (dropped commands and replies), not
/// policing congestion latency.
pub fn fault_robustness(scale: &Scale) -> RobustnessConfig {
    RobustnessConfig {
        timeout: SimDuration::from_ms(scale.requests_per_target as u64),
        retry_budget: 3,
        backoff_base: SimDuration::from_ms(10),
    }
}

/// The fault schedule for one in-cast cell, scaled by `intensity` in
/// `[0, 1]`: 0 is the empty plan (bit-identical to the fault-free
/// Table IV cell), 1 the full storm. Windows are fractions of
/// `horizon` (see [`fault_horizon`]). Faults concentrate on Target 0's
/// read path — its switch uplink degrades, then drops packets — while
/// CNPs are lost fabric-wide and the last Target's device first slows
/// down, then (from intensity 0.5) fail-stops for a window; at
/// intensity ≥ 0.75 Target 0 additionally drops out entirely.
///
/// Link indices follow `build_star`: host `h`'s uplink is link `2h`,
/// and Target `t` is host `n_initiators + t`.
pub fn faults_for_incast(
    intensity: f64,
    horizon: SimDuration,
    n_initiators: usize,
    n_targets: usize,
    seed: u64,
) -> FaultPlan {
    assert!(
        (0.0..=1.0).contains(&intensity),
        "intensity {intensity} outside [0, 1]"
    );
    let mut plan = FaultPlan::seeded(seed);
    if intensity == 0.0 {
        return plan;
    }
    let at = |frac: f64| SimTime((horizon.0 as f64 * frac) as u64);
    let lasting = |frac: f64| SimDuration((horizon.0 as f64 * frac) as u64);
    let t0_uplink = 2 * n_initiators;
    plan.push(FaultEvent {
        scope: FaultScope::Link { index: t0_uplink },
        kind: FaultKind::LinkDegrade {
            bandwidth_factor: 1.0 - 0.6 * intensity,
            extra_delay: SimDuration::from_us((30.0 * intensity) as u64),
        },
        start: at(0.05),
        duration: lasting(0.4),
    });
    plan.push(FaultEvent {
        scope: FaultScope::Link { index: t0_uplink },
        kind: FaultKind::PacketLoss {
            probability: 0.05 * intensity,
        },
        start: at(0.1),
        duration: lasting(0.7),
    });
    plan.push(FaultEvent {
        scope: FaultScope::Global,
        kind: FaultKind::CnpLoss {
            probability: 0.5 * intensity,
        },
        start: at(0.05),
        duration: lasting(0.35),
    });
    plan.push(FaultEvent {
        scope: FaultScope::Target {
            index: n_targets - 1,
        },
        kind: FaultKind::SsdLatencySpike {
            factor: 1.0 + 3.0 * intensity,
        },
        start: at(0.1),
        duration: lasting(0.4),
    });
    if intensity >= 0.5 {
        plan.push(FaultEvent {
            scope: FaultScope::Target {
                index: n_targets - 1,
            },
            kind: FaultKind::TargetFailStop,
            start: at(0.55),
            duration: lasting(0.1),
        });
    }
    if intensity >= 0.75 {
        plan.push(FaultEvent {
            scope: FaultScope::Target { index: 0 },
            kind: FaultKind::TargetDropout,
            start: at(0.7),
            duration: lasting(0.1),
        });
    }
    plan
}

/// The in-cast grid swept by `ext_faults`.
pub const FAULT_RATIOS: [(usize, usize); 4] = [(2, 1), (3, 1), (4, 1), (4, 4)];
/// Fault intensities swept per ratio.
pub const FAULT_INTENSITIES: [f64; 3] = [0.0, 0.5, 1.0];

/// Fingerprint binding an `ext_faults` checkpoint manifest to its
/// inputs — including every cell's resolved [`FaultPlan`], so editing
/// the fault schedule invalidates stale manifests.
pub fn ext_faults_fingerprint(ssd: &SsdConfig, scale: &Scale, seed: u64) -> String {
    let horizon = fault_horizon(scale);
    let plans: Vec<String> = FAULT_RATIOS
        .iter()
        .flat_map(|&(nt, ni)| {
            FAULT_INTENSITIES
                .iter()
                .map(move |&i| format!("{:?}", faults_for_incast(i, horizon, ni, nt, seed)))
        })
        .collect();
    format!(
        "ext_faults ssd={ssd:?} scale={scale:?} seed={seed} robustness={:?} plans={}",
        fault_robustness(scale),
        plans.join(";")
    )
}

/// The Table IV in-cast sweep under scheduled fault injection:
/// DCQCN-only vs DCQCN-SRC across the ratio grid × fault intensities,
/// every cell running the identical seeded [`FaultPlan`] in both modes
/// (with the default timeout/retry policy armed by the active plan).
/// Checkpointable via `SRCSIM_CHECKPOINT` like the other sweeps.
pub fn ext_faults(
    ssd: &SsdConfig,
    scale: &Scale,
    tpm: Arc<ThroughputPredictionModel>,
    seed: u64,
) -> Vec<FaultRow> {
    let ckpt = CheckpointSpec::from_env("ext_faults", &ext_faults_fingerprint(ssd, scale, seed));
    ext_faults_checkpointed(ssd, scale, tpm, seed, ckpt.as_ref())
}

/// [`ext_faults`] with an explicit checkpoint (env-independent), for
/// harnesses that manage their own manifests.
pub fn ext_faults_checkpointed(
    ssd: &SsdConfig,
    scale: &Scale,
    tpm: Arc<ThroughputPredictionModel>,
    seed: u64,
    ckpt: Option<&CheckpointSpec>,
) -> Vec<FaultRow> {
    let mut cells: Vec<((usize, usize), f64)> = Vec::new();
    for &ratio in &FAULT_RATIOS {
        for &intensity in &FAULT_INTENSITIES {
            cells.push((ratio, intensity));
        }
    }
    ScenarioRunner::from_env().run_cells_resumable(
        ckpt,
        seed,
        &cells,
        |_, &((n_targets, n_initiators), intensity)| {
            let spec = incast_spec(scale, n_targets);
            let assignments = spread_source(&spec, seed, n_initiators, n_targets);
            let plan = faults_for_incast(
                intensity,
                fault_horizon(scale),
                n_initiators,
                n_targets,
                seed,
            );
            let rb = fault_robustness(scale);
            let base = SystemConfig::builder()
                .n_initiators(n_initiators)
                .n_targets(n_targets)
                .ssd(ssd.clone())
                .workload(spec)
                .background(paper_background(&assignments))
                .pfc(paper_pfc())
                .build();
            let (only, src) = join(
                || {
                    run_system(
                        &base.to_builder().mode(Mode::DcqcnOnly).build(),
                        RunOptions::assignments(&assignments)
                            .faults(&plan)
                            .robustness(rb),
                        &mut NullSink,
                    )
                },
                || {
                    run_system(
                        &base.to_builder().mode(Mode::DcqcnSrc).build(),
                        RunOptions::assignments(&assignments)
                            .faults(&plan)
                            .robustness(rb)
                            .tpm(tpm.clone()),
                        &mut NullSink,
                    )
                },
            );
            let only_gbps = only.aggregated_tput().as_gbps_f64();
            let src_gbps = src.aggregated_tput().as_gbps_f64();
            let min_availability = (0..n_targets)
                .map(|t| src.availability(t))
                .fold(1.0_f64, f64::min);
            FaultRow {
                ratio: format!("{n_targets}:{n_initiators}"),
                intensity,
                only_gbps,
                src_gbps,
                improvement_pct: if only_gbps > 0.0 {
                    (src_gbps - only_gbps) / only_gbps * 100.0
                } else {
                    0.0
                },
                timeouts: src.timeouts,
                retries: src.retries,
                abandoned: src.abandoned,
                min_availability,
            }
        },
    )
}

// ----------------------------------------------------------------------
// Extension (paper Sec. IV-F / V): initiator-side data distribution

/// Result row of the data-distribution extension experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DistributionRow {
    /// Target-selection policy label.
    pub policy: String,
    /// Aggregated throughput, Gbps.
    pub aggregated_gbps: f64,
    /// Trimmed write throughput, Gbps.
    pub write_gbps: f64,
}

/// The paper observes that at a 4:1 in-cast ratio the load spreads so
/// thin that WRR loses authority, and suggests a data-distribution
/// mechanism as the remedy (citing replica placement [29]). This
/// experiment implements that extension: DCQCN-SRC at 4:1, with static
/// assignment vs least-loaded Target selection.
pub fn extension_distribution(
    ssd: &SsdConfig,
    scale: &Scale,
    tpm: Arc<ThroughputPredictionModel>,
    seed: u64,
) -> Vec<DistributionRow> {
    let ssds = vec![ssd.clone(); 4];
    let tpms = vec![tpm; 4];
    extension_distribution_fleet(&ssds, scale, &tpms, seed)
}

/// [`extension_distribution`] on an arbitrary device fleet: one
/// [`SsdConfig`] and one (device-matched) TPM per Target. On a
/// heterogeneous fleet the least-loaded margin over static assignment
/// is structural — static round-robin feeds the slow and fast devices
/// equally, so the fast devices starve while the slow ones back up —
/// rather than the bimodal noise the homogeneous 4:1 grid shows.
pub fn extension_distribution_fleet(
    ssds: &[SsdConfig],
    scale: &Scale,
    tpms: &[Arc<ThroughputPredictionModel>],
    seed: u64,
) -> Vec<DistributionRow> {
    let n_targets = ssds.len();
    assert_eq!(tpms.len(), n_targets, "one TPM per target");
    let spec = incast_spec(scale, n_targets);
    let assignments = spread_source(&spec, seed, 1, n_targets);
    let policies = [
        ("static", TargetSelection::Static),
        ("least-loaded", TargetSelection::LeastLoaded),
        ("pack", TargetSelection::Pack { cap: 128 }),
    ];
    ScenarioRunner::from_env().run_cells(&policies, |_, &(label, policy)| {
        let cfg = SystemConfig::builder()
            .n_initiators(1)
            .n_targets(n_targets)
            .ssds(ssds.to_vec())
            .workload(spec.clone())
            .mode(Mode::DcqcnSrc)
            .background(paper_background(&assignments))
            .pfc(paper_pfc())
            .target_selection(policy)
            .build();
        let r = run_system(
            &cfg,
            RunOptions::assignments(&assignments).tpm_fleet(tpms),
            &mut NullSink,
        );
        DistributionRow {
            policy: label.to_string(),
            aggregated_gbps: r.aggregated_tput().as_gbps_f64(),
            write_gbps: r.write_tput().as_gbps_f64(),
        }
    })
}

// ----------------------------------------------------------------------
// Extension: SRC under TIMELY (CC-agnosticism)

/// Run the Fig. 7 scenario with TIMELY as the network congestion control
/// instead of DCQCN. SRC consumes the same rate-change notifications, so
/// the mechanism is CC-agnostic; returns (baseline, SRC) reports.
pub fn extension_timely(
    ssd: &SsdConfig,
    scale: &Scale,
    tpm: Arc<ThroughputPredictionModel>,
    seed: u64,
) -> Fig7Result {
    let n = scale.requests_per_target;
    let mut vdi = SyntheticConfig::vdi(n, n);
    vdi.read.iat_mean_us = 20.0;
    vdi.write.iat_mean_us = 20.0;
    let specs = vec![WorkloadSpec::Synthetic(vdi); 2];
    let assignments = per_target_sources(&specs, seed, 1);
    let base = SystemConfig::builder()
        .n_initiators(1)
        .n_targets(2)
        .ssd(ssd.clone())
        .workloads(specs)
        .background(paper_background(&assignments))
        .pfc(paper_pfc())
        .cc(crate::config::CcChoice::Timely)
        .build();
    let (dcqcn_only, dcqcn_src) = join(
        || {
            run_system(
                &base.to_builder().mode(Mode::DcqcnOnly).build(),
                RunOptions::assignments(&assignments),
                &mut NullSink,
            )
        },
        || {
            run_system(
                &base.to_builder().mode(Mode::DcqcnSrc).build(),
                RunOptions::assignments(&assignments).tpm(tpm),
                &mut NullSink,
            )
        },
    );
    Fig7Result {
        dcqcn_only,
        dcqcn_src,
    }
}

// ----------------------------------------------------------------------
// Extension: heterogeneous device fleets

/// Per-device lane of a heterogeneous in-cast cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceLane {
    /// Target index in the fleet.
    pub target: usize,
    /// Device model name ("ssd_a", "ssd_b", ...).
    pub model: String,
    /// DCQCN-only mean throughput of this device over the makespan, Gbps.
    pub only_gbps: f64,
    /// DCQCN-SRC mean throughput of this device over the makespan, Gbps.
    pub src_gbps: f64,
}

/// One cell of the heterogeneous in-cast sweep: a Table IV-style row
/// plus a per-device breakdown.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HeterogeneousRow {
    /// Ratio label, e.g. "2:1".
    pub ratio: String,
    /// DCQCN-only aggregated throughput, Gbps.
    pub only_gbps: f64,
    /// DCQCN-SRC aggregated throughput, Gbps.
    pub src_gbps: f64,
    /// Improvement of SRC over the baseline, percent.
    pub improvement_pct: f64,
    /// Per-device throughput split, in target order.
    pub lanes: Vec<DeviceLane>,
}

/// Alternating SSD-A / SSD-B fleet of `n_targets` devices (even targets
/// get the high-capacity SSD-A, odd ones the low-latency SSD-B).
pub fn ab_fleet(n_targets: usize) -> Vec<SsdConfig> {
    (0..n_targets)
        .map(|t| {
            if t % 2 == 0 {
                SsdConfig::ssd_a()
            } else {
                SsdConfig::ssd_b()
            }
        })
        .collect()
}

/// Train one TPM per device in `ssds`, reusing a single trained model
/// per distinct device config (the paper trains per device, not per
/// Target instance).
pub fn train_fleet_tpms(
    ssds: &[SsdConfig],
    scale: &Scale,
    seed: u64,
) -> Vec<Arc<ThroughputPredictionModel>> {
    let mut trained: Vec<(SsdConfig, Arc<ThroughputPredictionModel>)> = Vec::new();
    ssds.iter()
        .map(|ssd| {
            if let Some((_, tpm)) = trained.iter().find(|(s, _)| s == ssd) {
                return tpm.clone();
            }
            let tpm = train_tpm(ssd, scale, seed);
            trained.push((ssd.clone(), tpm.clone()));
            tpm
        })
        .collect()
}

/// The Table IV in-cast sweep on a heterogeneous fleet: an alternating
/// SSD-A/SSD-B mix swept over the same 2:1, 3:1, 4:1, 4:4 ratios, with
/// per-device TPMs so each Target's SRC weight decisions use its own
/// device's predicted throughput. `tpm_a`/`tpm_b` must be trained on
/// SSD-A/SSD-B respectively (see [`train_tpm`]).
///
/// The grid is checkpointable (`SRCSIM_CHECKPOINT_DIR`) and runs on the
/// scenario pool like the homogeneous Table IV.
pub fn ext_heterogeneous(
    scale: &Scale,
    tpm_a: Arc<ThroughputPredictionModel>,
    tpm_b: Arc<ThroughputPredictionModel>,
    seed: u64,
) -> Vec<HeterogeneousRow> {
    let ratios: [(usize, usize); 4] = [(2, 1), (3, 1), (4, 1), (4, 4)];
    let ckpt = CheckpointSpec::from_env(
        "ext_heterogeneous",
        &format!("ext_heterogeneous scale={scale:?} seed={seed}"),
    );
    ScenarioRunner::from_env().run_cells_resumable(
        ckpt.as_ref(),
        seed,
        &ratios,
        |_, &(n_targets, n_initiators)| {
            let ssds = ab_fleet(n_targets);
            let tpms: Vec<Arc<ThroughputPredictionModel>> = ssds
                .iter()
                .map(|s| {
                    if *s == SsdConfig::ssd_a() {
                        tpm_a.clone()
                    } else {
                        tpm_b.clone()
                    }
                })
                .collect();
            // Same offered load as Table IV: ~38 Gbps of reads.
            let spec = incast_spec(scale, n_targets);
            let assignments = spread_source(&spec, seed, n_initiators, n_targets);
            let base = SystemConfig::builder()
                .n_initiators(n_initiators)
                .n_targets(n_targets)
                .ssds(ssds.clone())
                .workload(spec)
                .background(paper_background(&assignments))
                .pfc(paper_pfc())
                .build();
            let (only, src) = join(
                || {
                    run_system(
                        &base.to_builder().mode(Mode::DcqcnOnly).build(),
                        RunOptions::assignments(&assignments),
                        &mut NullSink,
                    )
                },
                || {
                    run_system(
                        &base.to_builder().mode(Mode::DcqcnSrc).build(),
                        RunOptions::assignments(&assignments).tpm_fleet(&tpms),
                        &mut NullSink,
                    )
                },
            );
            let only_gbps = only.aggregated_tput().as_gbps_f64();
            let src_gbps = src.aggregated_tput().as_gbps_f64();
            let lanes = (0..n_targets)
                .map(|t| DeviceLane {
                    target: t,
                    model: ssds[t].model_name().to_string(),
                    only_gbps: only.per_target[t].mean_gbps(only.makespan),
                    src_gbps: src.per_target[t].mean_gbps(src.makespan),
                })
                .collect();
            HeterogeneousRow {
                ratio: format!("{n_targets}:{n_initiators}"),
                only_gbps,
                src_gbps,
                improvement_pct: if only_gbps > 0.0 {
                    (src_gbps - only_gbps) / only_gbps * 100.0
                } else {
                    0.0
                },
                lanes,
            }
        },
    )
}

// ----------------------------------------------------------------------
// Extension: trace-driven replay through the in-cast sweep

/// Fingerprint binding an `ext_replay` checkpoint manifest to its
/// inputs. The replayed trace itself is summarized by its label, length
/// and span — enough to invalidate the manifest when the recording or
/// the rescaling knobs change.
pub fn ext_replay_fingerprint(ssd: &SsdConfig, replay: &ReplaySpec, seed: u64) -> String {
    format!(
        "ext_replay ssd={ssd:?} replay={} len={} span_ps={} seed={seed}",
        replay.label(),
        replay.trace.len(),
        replay.trace.span().as_ps(),
    )
}

/// The Table IV in-cast sweep driven by a *replayed* trace instead of
/// the synthetic generators: the recording (with its rescaling knobs)
/// is spread over Targets:Initiators of 2:1, 3:1, 4:1 and 4:4, with
/// DCQCN-only vs DCQCN-SRC in every cell. Checkpointable via
/// `SRCSIM_CHECKPOINT` like the other sweeps.
pub fn ext_replay(
    ssd: &SsdConfig,
    replay: &ReplaySpec,
    tpm: Arc<ThroughputPredictionModel>,
    seed: u64,
) -> Vec<IncastRow> {
    let ckpt = CheckpointSpec::from_env("ext_replay", &ext_replay_fingerprint(ssd, replay, seed));
    ext_replay_checkpointed(ssd, replay, tpm, seed, ckpt.as_ref())
}

/// [`ext_replay`] with an explicit checkpoint (env-independent), for
/// harnesses that manage their own manifests.
pub fn ext_replay_checkpointed(
    ssd: &SsdConfig,
    replay: &ReplaySpec,
    tpm: Arc<ThroughputPredictionModel>,
    seed: u64,
    ckpt: Option<&CheckpointSpec>,
) -> Vec<IncastRow> {
    let ratios: [(usize, usize); 4] = [(2, 1), (3, 1), (4, 1), (4, 4)];
    let spec = WorkloadSpec::Replay(replay.clone());
    ScenarioRunner::from_env().run_cells_resumable(
        ckpt,
        seed,
        &ratios,
        |_, &(n_targets, n_initiators)| {
            // Replay ignores the seed; the spread is what varies by cell.
            let assignments = spread_source(&spec, seed, n_initiators, n_targets);
            let base = SystemConfig::builder()
                .n_initiators(n_initiators)
                .n_targets(n_targets)
                .ssd(ssd.clone())
                .workload(spec.clone())
                .background(paper_background(&assignments))
                .pfc(paper_pfc())
                .build();
            let (only, src) = join(
                || {
                    run_system(
                        &base.to_builder().mode(Mode::DcqcnOnly).build(),
                        RunOptions::assignments(&assignments),
                        &mut NullSink,
                    )
                },
                || {
                    run_system(
                        &base.to_builder().mode(Mode::DcqcnSrc).build(),
                        RunOptions::assignments(&assignments).tpm(tpm.clone()),
                        &mut NullSink,
                    )
                },
            );
            let only_gbps = only.aggregated_tput().as_gbps_f64();
            let src_gbps = src.aggregated_tput().as_gbps_f64();
            IncastRow {
                ratio: format!("{n_targets}:{n_initiators}"),
                src_gbps,
                only_gbps,
                improvement_pct: if only_gbps > 0.0 {
                    (src_gbps - only_gbps) / only_gbps * 100.0
                } else {
                    0.0
                },
            }
        },
    )
}
