//! System-run reports: the paper's runtime metrics.

use serde::{Deserialize, Serialize};
use sim_engine::stats::LatencyStats;
use sim_engine::{Rate, SimDuration, SimTime, TimeBinSeries};
use src_core::controller::Decision;

/// Trim fraction applied to summary rates (paper Sec. IV-B).
pub const TRIM_FRAC: f64 = 0.10;

/// Per-Target (per-device) completion totals — what heterogeneous-fleet
/// experiments report alongside the aggregate (reads are counted at the
/// Initiator against the Target that served them, writes at the Target).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TargetTotals {
    /// Completed read requests served by this Target.
    pub reads_completed: u64,
    /// Completed write requests at this Target.
    pub writes_completed: u64,
    /// Read bytes served by this Target.
    pub read_bytes: u64,
    /// Write bytes completed at this Target.
    pub write_bytes: u64,
}

impl TargetTotals {
    /// Mean aggregate (read + write) throughput of this Target over the
    /// run's makespan.
    pub fn mean_gbps(&self, makespan: SimDuration) -> f64 {
        let secs = makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.read_bytes + self.write_bytes) as f64 * 8.0 / secs / 1e9
    }
}

/// Metrics from one full-system run.
///
/// Serializable so checkpointed sweeps (`fig10`, Table IV) can cache
/// whole per-cell reports in their manifests; the serde stub's JSON
/// round-trip is lossless for every field, including the non-finite
/// `min_inbound_rate_gbps` sentinel.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SystemReport {
    /// Read bytes received at Initiators per ms (Fig. 7 blue bars).
    pub read_series: TimeBinSeries,
    /// Write bytes completed at Targets per ms (Fig. 7 orange bars).
    pub write_series: TimeBinSeries,
    /// PFC pause frames received by Targets per ms (Fig. 8).
    pub pause_series: TimeBinSeries,
    /// End-to-end read latency at Initiators, µs.
    pub read_latency_us: LatencyStats,
    /// End-to-end write latency (issue → Target completion), µs.
    pub write_latency_us: LatencyStats,
    /// Completed read requests.
    pub reads_completed: u64,
    /// Completed write requests.
    pub writes_completed: u64,
    /// Total read bytes delivered at Initiators.
    pub read_bytes: u64,
    /// Total write bytes completed at Targets.
    pub write_bytes: u64,
    /// Total pause frames received by Targets.
    pub pauses_total: u64,
    /// Per-target SRC weight decisions (empty in DCQCN-only mode).
    pub decisions: Vec<Vec<Decision>>,
    /// Per-Target completion totals (indexed by Target; see
    /// [`TargetTotals`]).
    pub per_target: Vec<TargetTotals>,
    /// Time of the last completion.
    pub makespan: SimDuration,
    /// Times at which each Target's fetch gate closed (TXQ full).
    pub gate_closures: Vec<(SimTime, usize)>,
    /// ECN-marked packets in the fabric.
    pub ecn_marked: u64,
    /// CNPs generated.
    pub cnps: u64,
    /// Lowest DCQCN rate observed on any Target inbound flow, Gbps.
    pub min_inbound_rate_gbps: f64,
    /// Request attempts that exceeded the initiator timeout (zero when
    /// robustness is off — see `RunOptions::robustness`).
    pub timeouts: u64,
    /// Retry attempts issued after a timeout.
    pub retries: u64,
    /// Requests abandoned after exhausting the retry budget.
    pub abandoned: u64,
    /// Abandoned requests broken down by the Target they were routed to.
    pub per_target_abandoned: Vec<u64>,
    /// TPM prediction-cache hits summed over Targets (zero in
    /// DCQCN-only mode; see `src_core::cache`).
    pub tpm_cache_hits: u64,
    /// TPM prediction-cache misses (each one ran the forest).
    pub tpm_cache_misses: u64,
    /// Burst-coalescing drains that delivered at least one deferred
    /// packet, summed over links (see `net_sim::Network`).
    pub bursts_coalesced: u64,
    /// Packets delivered through the deferred-arrival fast path — each
    /// one an `Arrive` event the wheel never carried.
    pub packets_coalesced: u64,
}

impl SystemReport {
    /// Fresh report with 1 ms bins.
    pub fn new(n_targets: usize) -> Self {
        let bin = SimDuration::from_ms(1);
        SystemReport {
            read_series: TimeBinSeries::new(bin),
            write_series: TimeBinSeries::new(bin),
            pause_series: TimeBinSeries::new(bin),
            read_latency_us: LatencyStats::new(),
            write_latency_us: LatencyStats::new(),
            reads_completed: 0,
            writes_completed: 0,
            read_bytes: 0,
            write_bytes: 0,
            pauses_total: 0,
            decisions: vec![Vec::new(); n_targets],
            per_target: vec![TargetTotals::default(); n_targets],
            makespan: SimDuration::ZERO,
            gate_closures: Vec::new(),
            ecn_marked: 0,
            cnps: 0,
            min_inbound_rate_gbps: f64::INFINITY,
            timeouts: 0,
            retries: 0,
            abandoned: 0,
            per_target_abandoned: vec![0; n_targets],
            tpm_cache_hits: 0,
            tpm_cache_misses: 0,
            bursts_coalesced: 0,
            packets_coalesced: 0,
        }
    }

    /// Fraction of this Target's routed requests that completed rather
    /// than being abandoned — 1.0 for a fault-free run. Reads count at
    /// the Initiator against the Target that served them, writes at the
    /// Target.
    pub fn availability(&self, target: usize) -> f64 {
        let done =
            self.per_target[target].reads_completed + self.per_target[target].writes_completed;
        let lost = self.per_target_abandoned[target];
        if done + lost == 0 {
            1.0
        } else {
            done as f64 / (done + lost) as f64
        }
    }

    /// Trimmed-mean read throughput (received at Initiators).
    pub fn read_tput(&self) -> Rate {
        self.read_series.trimmed_mean_rate(TRIM_FRAC)
    }

    /// Trimmed-mean write throughput (obtained at Targets).
    pub fn write_tput(&self) -> Rate {
        self.write_series.trimmed_mean_rate(TRIM_FRAC)
    }

    /// The paper's aggregated throughput: read at Initiators + write at
    /// Targets.
    pub fn aggregated_tput(&self) -> Rate {
        Rate::from_bps(self.read_tput().as_bps() + self.write_tput().as_bps())
    }
}

/// Serializable summary row for the experiment binaries.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SystemSummary {
    /// Trimmed-mean read throughput, Gbps.
    pub read_gbps: f64,
    /// Trimmed-mean write throughput, Gbps.
    pub write_gbps: f64,
    /// Aggregated throughput, Gbps.
    pub aggregated_gbps: f64,
    /// Total pause frames at Targets.
    pub pauses: u64,
    /// Completed requests.
    pub completed: u64,
    /// Makespan, ms.
    pub makespan_ms: f64,
}

impl From<&SystemReport> for SystemSummary {
    fn from(r: &SystemReport) -> Self {
        SystemSummary {
            read_gbps: r.read_tput().as_gbps_f64(),
            write_gbps: r.write_tput().as_gbps_f64(),
            aggregated_gbps: r.aggregated_tput().as_gbps_f64(),
            pauses: r.pauses_total,
            completed: r.reads_completed + r.writes_completed,
            makespan_ms: r.makespan.as_ms_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let mut r = SystemReport::new(2);
        for i in 0..10 {
            r.read_series.add(SimTime::from_ms(i), 500_000.0);
            r.write_series.add(SimTime::from_ms(i), 250_000.0);
        }
        let agg = r.aggregated_tput().as_gbps_f64();
        assert!((agg - 6.0).abs() < 0.05, "agg={agg}");
        let s = SystemSummary::from(&r);
        assert!((s.aggregated_gbps - agg).abs() < 1e-12);
    }

    #[test]
    fn empty_report() {
        let r = SystemReport::new(1);
        assert_eq!(r.read_tput(), Rate::ZERO);
        assert_eq!(r.decisions.len(), 1);
    }
}
