//! The Fig. 2 motivation example as an analytical toy model: an SSD that
//! can process 3 writes + 6 reads per time unit, an RDMA NIC that can
//! ship 6 requests' data per unit, and the three regimes (no congestion,
//! DCQCN halving the sending rate, SRC shifting priority to writes).

use serde::{Deserialize, Serialize};

/// Toy-model parameters (Fig. 2's numbers by default).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MotivationParams {
    /// Reads the SSD can process per time unit at equal priority.
    pub ssd_reads: f64,
    /// Writes the SSD can process per time unit at equal priority.
    pub ssd_writes: f64,
    /// Requests' data the NIC can transmit per time unit.
    pub nic_capacity: f64,
    /// DCQCN's cut factor under congestion (0.5 = half).
    pub congestion_cut: f64,
}

impl Default for MotivationParams {
    fn default() -> Self {
        MotivationParams {
            ssd_reads: 6.0,
            ssd_writes: 3.0,
            nic_capacity: 6.0,
            congestion_cut: 0.5,
        }
    }
}

/// Throughput of the toy system in one regime.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MotivationOutcome {
    /// Read requests completed per time unit (data actually shipped).
    pub reads: f64,
    /// Write requests completed per time unit.
    pub writes: f64,
}

impl MotivationOutcome {
    /// Overall throughput.
    pub fn total(&self) -> f64 {
        self.reads + self.writes
    }
}

/// Fig. 2-a: no congestion — the SSD's full mix flows through the NIC.
pub fn no_congestion(p: &MotivationParams) -> MotivationOutcome {
    MotivationOutcome {
        reads: p.ssd_reads.min(p.nic_capacity),
        writes: p.ssd_writes,
    }
}

/// Fig. 2-b: DCQCN cuts the NIC sending rate; the SSD keeps processing
/// reads whose data is stuck in the TXQ, so shipped reads drop while
/// writes stay at their (unboosted) SSD rate.
pub fn dcqcn_only(p: &MotivationParams) -> MotivationOutcome {
    MotivationOutcome {
        reads: (p.nic_capacity * p.congestion_cut).min(p.ssd_reads),
        writes: p.ssd_writes,
    }
}

/// Fig. 2-c: SRC reduces read processing to the allowed sending rate and
/// reallocates the freed SSD bandwidth to writes. In the toy model, one
/// read slot converts to one write slot (the paper's example doubles
/// writes from 3 to 6 while reads halve from 6 to 3).
pub fn with_src(p: &MotivationParams) -> MotivationOutcome {
    let reads = (p.nic_capacity * p.congestion_cut).min(p.ssd_reads);
    let freed = p.ssd_reads - reads;
    MotivationOutcome {
        reads,
        writes: p.ssd_writes + freed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig2_numbers() {
        let p = MotivationParams::default();
        let a = no_congestion(&p);
        assert_eq!(
            a,
            MotivationOutcome {
                reads: 6.0,
                writes: 3.0
            }
        );
        assert_eq!(a.total(), 9.0);

        let b = dcqcn_only(&p);
        assert_eq!(
            b,
            MotivationOutcome {
                reads: 3.0,
                writes: 3.0
            }
        );
        assert_eq!(b.total(), 6.0);

        let c = with_src(&p);
        assert_eq!(
            c,
            MotivationOutcome {
                reads: 3.0,
                writes: 6.0
            }
        );
        assert_eq!(c.total(), 9.0, "SRC preserves the aggregate");
    }

    #[test]
    fn src_never_worse_than_dcqcn_only() {
        for cut in [0.2, 0.5, 0.8] {
            let p = MotivationParams {
                congestion_cut: cut,
                ..Default::default()
            };
            assert!(with_src(&p).total() >= dcqcn_only(&p).total());
        }
    }
}
