//! Scripted-congestion runs (Fig. 9): the storage stack plus the SRC
//! controller, driven by synthetic pause/retrieval events with explicit
//! demanded sending rates — no network in the loop, so the convergence
//! of the dynamic adjustment itself is visible.

use sim_engine::{Rate, SimDuration, SimTime, TraceSink};
use src_core::algorithm::{CongestionEvent, CongestionKind};
use src_core::{SrcConfig, SrcController, ThroughputPredictionModel};
use std::sync::Arc;
use storage_node::report::NodeReport;
use storage_node::{run_trace_windowed_with_schedule, DisciplineKind, NodeConfig};
use workload::{extract_features, Trace};

/// Result of a scripted run: the node report plus the weight schedule
/// SRC chose and the measured convergence delay per event.
#[derive(Debug)]
pub struct ScriptedResult {
    /// Underlying storage run (read/write series are per ms).
    pub report: NodeReport,
    /// `(event time, demanded Gbps, chosen weight)` per event.
    pub responses: Vec<(SimTime, f64, u32)>,
    /// Convergence delay per event: time until the read throughput first
    /// comes within `tol` (relative) of its new steady level.
    pub convergence_ms: Vec<f64>,
}

/// Run `trace` on an SSQ storage node while injecting the scripted
/// congestion `events`; SRC picks a weight per event using features of
/// the trace window preceding the event.
///
/// SRC demand/weight decisions plus the storage node's SSQ and SSD
/// series flow into `sink`; pass `&mut NullSink` for an untraced run
/// (the result is identical either way).
pub fn run_scripted(
    ssd: &ssd_sim::SsdConfig,
    trace: &Trace,
    events: &[CongestionEvent],
    tpm: Arc<ThroughputPredictionModel>,
    src_cfg: &SrcConfig,
    sink: &mut dyn TraceSink,
) -> ScriptedResult {
    let tracing = sink.enabled();
    let mut controller = SrcController::new(tpm, src_cfg.clone());
    if tracing {
        controller.set_telemetry(true, 0);
    }
    // The controller's monitor is fed from the trace itself (arrivals
    // are what a Target observes).
    let mut schedule: Vec<(SimTime, u32)> = Vec::new();
    let mut responses = Vec::new();
    let mut cursor = 0usize;
    for ev in events {
        // Feed all arrivals up to the event into the monitor.
        while cursor < trace.len() && trace.requests()[cursor].arrival <= ev.at {
            let r = trace.requests()[cursor];
            controller.observe(&r, r.arrival);
            cursor += 1;
        }
        if let Some(w) = controller.on_congestion_notification(ev.demanded, ev.at) {
            schedule.push((ev.at, w));
        }
        let w_now = controller.current_weight();
        responses.push((ev.at, ev.demanded.as_gbps_f64(), w_now));
    }
    let node_cfg = NodeConfig {
        ssd: ssd.clone(),
        discipline: DisciplineKind::Ssq { weight: 1 },
        merge_cap: None,
    };
    // SRC's decisions first (they happen "before" the replayed storage
    // run applies them as a schedule), then the node run.
    if tracing {
        controller.drain_probes_into(sink);
    }
    let report = run_trace_windowed_with_schedule(&node_cfg, trace, &schedule, sink);
    let convergence_ms = convergence_delays(&report, events);
    ScriptedResult {
        report,
        responses,
        convergence_ms,
    }
}

/// Measure, for each event, how long the per-ms read throughput takes to
/// settle: the first bin after the event that is within 25 % of the
/// median read rate over the post-event steady window.
fn convergence_delays(report: &NodeReport, events: &[CongestionEvent]) -> Vec<f64> {
    let bins = report.read_series.bins();
    let bin_ms = report.read_series.bin_width().as_ms_f64();
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let start = (ev.at.as_ms_f64() / bin_ms).ceil() as usize;
        let end = events
            .get(i + 1)
            .map(|n| (n.at.as_ms_f64() / bin_ms) as usize)
            .unwrap_or(bins.len())
            .min(bins.len());
        if start + 2 >= end {
            out.push(f64::NAN);
            continue;
        }
        // Steady level: median of the second half of the interval.
        let tail = &bins[(start + end) / 2..end];
        let steady = sim_engine::stats::percentile(tail, 50.0);
        if !(steady.is_finite()) || steady <= 0.0 {
            out.push(f64::NAN);
            continue;
        }
        let mut delay = f64::NAN;
        for (k, &b) in bins[start..end].iter().enumerate() {
            if (b - steady).abs() / steady < 0.25 {
                delay = k as f64 * bin_ms;
                break;
            }
        }
        out.push(delay);
    }
    out
}

/// Build the paper's Fig. 9 event script scaled to a device: pause to
/// 60 % of the baseline read rate, pause to 30 %, retrieve to 60 %, then
/// retrieve to full speed. (The paper's absolute numbers — 6, 3, 6,
/// 10 Gbps on SSD-B — correspond to the same fractions of its 10 Gbps
/// baseline.)
pub fn fig9_events(
    baseline_read_gbps: f64,
    first_at: SimTime,
    spacing: SimDuration,
) -> Vec<CongestionEvent> {
    let frac = [0.6, 0.3, 0.6, 1.0];
    let kind = [
        CongestionKind::Pause,
        CongestionKind::Pause,
        CongestionKind::Retrieval,
        CongestionKind::Retrieval,
    ];
    frac.iter()
        .zip(kind)
        .enumerate()
        .map(|(i, (&f, k))| CongestionEvent {
            at: first_at + spacing.saturating_mul(i as u64),
            demanded: Rate::from_gbps_f64(baseline_read_gbps * f),
            kind: k,
        })
        .collect()
}

/// Feature snapshot of a trace (helper for bench binaries).
pub fn trace_features(trace: &Trace) -> workload::WorkloadFeatures {
    extract_features(trace.requests())
}
