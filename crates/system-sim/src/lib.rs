//! The full disaggregated-storage system simulator (paper Fig. 1/3):
//! Initiators issuing NVMe-oF requests over an RDMA network with DCQCN
//! congestion control, Targets running the NVMe driver (FIFO or SSQ) in
//! front of simulated SSDs, and — in `DcqcnSrc` mode — the SRC
//! controller closing the loop from congestion notifications to SSQ
//! weights.
//!
//! Entry points:
//!
//! * [`config::SystemConfig`] + [`system::run_system`] — one end-to-end
//!   run producing a [`report::SystemReport`] (runtime throughput
//!   series, pause counts, weight decisions; Figs. 7, 8, 10, Table IV).
//!   [`system::RunOptions`] selects the workload source (seed vs
//!   pre-built assignments), TPM assignment (shared vs per-Target
//!   fleet), fault plan, and timeout/retry policy for the run.
//! * [`scripted::run_scripted`] — SSD + SRC with injected congestion
//!   events, no network (Fig. 9 convergence experiment).
//! * [`experiments`] — one function per table/figure of the paper,
//!   returning structured results that the bench binaries print.

pub mod config;
pub mod controlled;
pub mod error;
pub mod experiments;
pub mod motivation;
pub mod report;
pub mod scripted;
pub mod system;

pub use config::{Mode, SystemConfig, SystemConfigBuilder, TopologyKind};
pub use error::SimError;
pub use report::SystemReport;
pub use system::{
    run_system, run_system_in, workspace_queue_migrations, RobustnessConfig, RunOptions,
};
