//! System configuration and workload assignment.

use crate::error::SimError;
use net_sim::{ClosConfig, DcqcnParams, PfcParams};
use serde::{Deserialize, Serialize};
use sim_engine::{FaultPlan, Rate, SimDuration, SimTime};
use src_core::SrcConfig;
use ssd_sim::SsdConfig;
use workload::micro::MicroConfig;
use workload::source::{WorkloadSource, WorkloadSpec};
use workload::{Request, Trace};

/// Which fabric shape to build.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum TopologyKind {
    /// All hosts on one ToR switch (the incast scenarios).
    Star {
        /// Link rate.
        rate: Rate,
        /// Link propagation delay.
        delay: SimDuration,
    },
    /// The paper's multi-pod Clos (Sec. IV-A).
    Clos(ClosConfig),
}

impl Default for TopologyKind {
    fn default() -> Self {
        TopologyKind::Star {
            rate: Rate::from_gbps(40),
            delay: SimDuration::from_us(1),
        }
    }
}

/// Which network congestion-control scheme runs on the fabric.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CcChoice {
    /// DCQCN (the paper's choice).
    Dcqcn,
    /// TIMELY (RTT-gradient; demonstrates SRC is CC-agnostic).
    Timely,
}

/// Baseline or SRC-assisted congestion control.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// DCQCN only; Targets run the default FIFO NVMe queues.
    DcqcnOnly,
    /// DCQCN plus SRC: Targets run SSQ and the SRC controller adjusts
    /// the weights on congestion notifications.
    DcqcnSrc,
}

/// Background traffic crossing the measured Initiator's downlink.
///
/// The paper's testbed is a 256-host Clos whose fabric is shared by many
/// tenants; congestion on the measured flows comes from that sharing. We
/// make the congestion source explicit and controllable: `n_sources`
/// extra hosts each blast `bytes_per_burst` at Initiator 0 every
/// `burst_interval` during `[start, stop)`. The background flows are
/// ordinary DCQCN flows — they get throttled too, sustaining exactly the
/// kind of persistent, partially-controlled congestion the paper's
/// Figs. 7–8 show (heavy at the start, relieved later).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BackgroundTraffic {
    /// Number of background sender hosts.
    pub n_sources: usize,
    /// Fixed (non-adaptive) sending rate per source. Background flows do
    /// not participate in DCQCN — they model competing tenants whose
    /// traffic the measured flows cannot negotiate with.
    pub rate_per_source: Rate,
    /// Bytes sent per burst per source.
    pub bytes_per_burst: u64,
    /// Interval between bursts.
    pub burst_interval: SimDuration,
    /// First burst time.
    pub start: SimTime,
    /// No bursts at or after this time.
    pub stop: SimTime,
}

/// How Initiators choose the Target for each request.
///
/// `Static` follows the assignment list (data lives on exactly one
/// Target). `LeastLoaded` is the extension the paper's Sec. IV-F
/// proposes for the large-in-cast regime (citing replica-placement work
/// [29]): data is replicated across Targets and each request goes to the
/// currently least-loaded one, re-concentrating per-Target queues so the
/// weighted round-robin keeps its authority.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetSelection {
    /// Use the per-request assignment as given.
    Static,
    /// Route each request to the Target with the fewest outstanding
    /// commands (requires replicated data).
    LeastLoaded,
    /// Consolidate: fill the first Target up to `cap` outstanding
    /// commands before spilling to the next. Deepens per-Target queues
    /// so the weighted round-robin keeps its authority at large in-cast
    /// ratios — the distribution direction the paper's Sec. IV-F
    /// remedy needs.
    Pack {
        /// Outstanding-command threshold before spilling over.
        cap: usize,
    },
}

/// Full system configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Fabric shape.
    pub topology: TopologyKind,
    /// Number of Initiator hosts.
    pub n_initiators: usize,
    /// Number of Target hosts.
    pub n_targets: usize,
    /// SSD model per Target. A single-element vector is the homogeneous
    /// shorthand: that one device model applies to every Target. A
    /// longer vector must have exactly `n_targets` entries, giving each
    /// Target its own device (heterogeneous fleets; see DESIGN.md
    /// "Heterogeneous fleets").
    pub ssds: Vec<SsdConfig>,
    /// Workload source per Target, mirroring the `ssds` shape: a
    /// single-element vector is the homogeneous shorthand (one spec
    /// drives the whole system through [`spread_source`]), while an
    /// `n_targets`-length vector gives each Target its own source
    /// (resolved through [`per_target_sources`], each Target seeded
    /// with `seed + t`). See [`SystemConfig::assignments`].
    pub workloads: Vec<WorkloadSpec>,
    /// Baseline vs SRC.
    pub mode: Mode,
    /// DCQCN parameters (also carries the switch ECN thresholds).
    pub dcqcn: DcqcnParams,
    /// PFC thresholds.
    pub pfc: PfcParams,
    /// RoCE MTU.
    pub mtu: u64,
    /// Target TXQ watermarks `(high, low)` gating the SSD fetch.
    pub txq_watermarks: (u64, u64),
    /// SRC controller configuration (used in `DcqcnSrc` mode).
    pub src: SrcConfig,
    /// Optional background congestion (see [`BackgroundTraffic`]).
    pub background: Option<BackgroundTraffic>,
    /// Target-selection policy (see [`TargetSelection`]).
    pub target_selection: TargetSelection,
    /// Network congestion-control scheme.
    pub cc: CcChoice,
    /// Scheduled fault injection (see [`FaultPlan`]). The default empty
    /// plan schedules nothing and reproduces fault-free runs
    /// bit-identically; [`crate::RunOptions::faults`] can override it
    /// per run.
    pub faults: FaultPlan,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            topology: TopologyKind::default(),
            n_initiators: 1,
            n_targets: 2,
            ssds: vec![SsdConfig::ssd_a()],
            workloads: vec![WorkloadSpec::Micro(MicroConfig::default())],
            mode: Mode::DcqcnOnly,
            dcqcn: DcqcnParams::default(),
            pfc: PfcParams::default(),
            mtu: net_sim::DEFAULT_MTU,
            txq_watermarks: (256 * 1024, 128 * 1024),
            src: SrcConfig::default(),
            background: None,
            target_selection: TargetSelection::Static,
            cc: CcChoice::Dcqcn,
            faults: FaultPlan::default(),
        }
    }
}

impl SystemConfig {
    /// Builder starting from [`SystemConfig::default`].
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: SystemConfig::default(),
            fleet_explicit: false,
            workloads_explicit: false,
        }
    }

    /// Builder starting from this configuration — the idiom for mode
    /// variants of a shared base (`base.to_builder().mode(…).build()`).
    pub fn to_builder(&self) -> SystemConfigBuilder {
        SystemConfigBuilder {
            fleet_explicit: self.ssds.len() > 1,
            workloads_explicit: self.workloads.len() > 1,
            cfg: self.clone(),
        }
    }

    /// The device model serving Target `t` — `ssds[t]`, or the single
    /// shared entry under the homogeneous shorthand.
    ///
    /// # Panics
    /// Panics when `t >= n_targets` or the fleet shape is invalid (see
    /// [`SystemConfig::validate_fleet`]).
    pub fn ssd_for(&self, t: usize) -> &SsdConfig {
        assert!(t < self.n_targets, "target {t} out of {}", self.n_targets);
        self.validate_fleet();
        if self.ssds.len() == 1 {
            &self.ssds[0]
        } else {
            &self.ssds[t]
        }
    }

    /// Check the fleet shape: `ssds` must hold either one entry (the
    /// homogeneous shorthand) or exactly one entry per Target.
    ///
    /// # Panics
    /// Panics on any other length.
    pub fn validate_fleet(&self) {
        assert!(
            self.ssds.len() == 1 || self.ssds.len() == self.n_targets,
            "ssds holds {} device configs for {} targets (expected 1 or {})",
            self.ssds.len(),
            self.n_targets,
            self.n_targets
        );
        assert!(!self.ssds.is_empty(), "ssds must not be empty");
    }

    /// True when the Targets do not all run the same device model.
    pub fn is_heterogeneous(&self) -> bool {
        self.ssds.len() > 1 && self.ssds.iter().any(|s| *s != self.ssds[0])
    }

    /// The workload source driving Target `t` — `workloads[t]`, or the
    /// single shared entry under the homogeneous shorthand.
    ///
    /// # Panics
    /// Panics when `t >= n_targets` or the workloads shape is invalid
    /// (see [`SystemConfig::validate_workloads`]).
    pub fn workload_for(&self, t: usize) -> &WorkloadSpec {
        assert!(t < self.n_targets, "target {t} out of {}", self.n_targets);
        self.validate_workloads();
        if self.workloads.len() == 1 {
            &self.workloads[0]
        } else {
            &self.workloads[t]
        }
    }

    /// Check the workloads shape: `workloads` must hold either one entry
    /// (the homogeneous shorthand) or exactly one entry per Target.
    ///
    /// # Panics
    /// Panics on any other length.
    pub fn validate_workloads(&self) {
        assert!(
            self.workloads.len() == 1 || self.workloads.len() == self.n_targets,
            "workloads holds {} specs for {} targets (expected 1 or {})",
            self.workloads.len(),
            self.n_targets,
            self.n_targets
        );
        assert!(!self.workloads.is_empty(), "workloads must not be empty");
    }

    /// Resolve the configured workload sources into the assignment list
    /// for one simulation, deterministically from `seed`.
    ///
    /// * Homogeneous shorthand (one spec): the spec generates a single
    ///   trace with `seed` and [`spread_source`] fans it out across all
    ///   initiators and targets — exactly the legacy
    ///   `generate(cfg, seed)` + [`spread_trace`] call sequence.
    /// * Per-Target specs: each Target `t` generates its own trace with
    ///   seed `seed + t` and [`per_target_sources`] interleaves them —
    ///   exactly the legacy per-target `generate(cfg, seed + t)` +
    ///   [`per_target_traces`] sequence.
    pub fn assignments(&self, seed: u64) -> Vec<Assignment> {
        self.validate_workloads();
        if self.workloads.len() == 1 {
            spread_source(&self.workloads[0], seed, self.n_initiators, self.n_targets)
        } else {
            per_target_sources(&self.workloads, seed, self.n_initiators)
        }
    }
}

/// Fluent builder for [`SystemConfig`]; every setter has the field's
/// name and the field's documentation applies.
///
/// ```
/// use system_sim::{Mode, SystemConfig};
///
/// let base = SystemConfig::builder().n_targets(4).build();
/// let src = base.to_builder().mode(Mode::DcqcnSrc).build();
/// assert_eq!(src.n_targets, 4);
/// ```
#[derive(Clone, Debug)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
    /// Set once the fleet is given explicitly (`ssds` /
    /// `ssd_for_target`), after which [`SystemConfigBuilder::build`]
    /// demands exactly `n_targets` entries. The `ssd` shorthand keeps a
    /// single broadcast entry instead.
    fleet_explicit: bool,
    /// Same latch for the workloads vector (`workloads` /
    /// `workload_for_target` vs the `workload` broadcast shorthand).
    workloads_explicit: bool,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $field(mut self, $field: $ty) -> Self {
                self.cfg.$field = $field;
                self
            }
        )+
    };
}

impl SystemConfigBuilder {
    builder_setters! {
        /// Fabric shape.
        topology: TopologyKind,
        /// Number of Initiator hosts.
        n_initiators: usize,
        /// Number of Target hosts.
        n_targets: usize,
        /// Baseline vs SRC.
        mode: Mode,
        /// DCQCN parameters (also carries the switch ECN thresholds).
        dcqcn: DcqcnParams,
        /// PFC thresholds.
        pfc: PfcParams,
        /// RoCE MTU.
        mtu: u64,
        /// Target TXQ watermarks `(high, low)` gating the SSD fetch.
        txq_watermarks: (u64, u64),
        /// SRC controller configuration (used in `DcqcnSrc` mode).
        src: SrcConfig,
        /// Optional background congestion (see [`BackgroundTraffic`]).
        background: Option<BackgroundTraffic>,
        /// Target-selection policy (see [`TargetSelection`]).
        target_selection: TargetSelection,
        /// Network congestion-control scheme.
        cc: CcChoice,
        /// Scheduled fault injection (see [`FaultPlan`]).
        faults: FaultPlan,
    }

    /// SSD model on every Target (the homogeneous shorthand: one entry
    /// broadcast across the fleet, whatever `n_targets` ends up being).
    pub fn ssd(mut self, ssd: SsdConfig) -> Self {
        self.cfg.ssds = vec![ssd];
        self.fleet_explicit = false;
        self
    }

    /// Explicit per-Target device fleet. [`SystemConfigBuilder::build`]
    /// rejects the configuration unless `ssds.len() == n_targets`.
    pub fn ssds(mut self, ssds: Vec<SsdConfig>) -> Self {
        self.cfg.ssds = ssds;
        self.fleet_explicit = true;
        self
    }

    /// Override the device on Target `t` only. Set `n_targets` first:
    /// the current fleet (or homogeneous shorthand) is materialized to
    /// `n_targets` entries before the override lands.
    ///
    /// # Panics
    /// Panics when `t >= n_targets`, or when an explicit fleet of the
    /// wrong length was set earlier.
    pub fn ssd_for_target(mut self, t: usize, ssd: SsdConfig) -> Self {
        let n = self.cfg.n_targets;
        assert!(t < n, "target {t} out of {n} (set n_targets first)");
        if self.cfg.ssds.len() != n {
            assert!(
                !self.fleet_explicit && self.cfg.ssds.len() == 1,
                "explicit fleet has {} entries for {n} targets",
                self.cfg.ssds.len()
            );
            self.cfg.ssds = vec![self.cfg.ssds[0].clone(); n];
        }
        self.cfg.ssds[t] = ssd;
        self.fleet_explicit = true;
        self
    }

    /// Workload source on every Target (the homogeneous shorthand: one
    /// spec broadcast across the system, whatever `n_targets` ends up
    /// being).
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.cfg.workloads = vec![spec];
        self.workloads_explicit = false;
        self
    }

    /// Explicit per-Target workload sources.
    /// [`SystemConfigBuilder::build`] rejects the configuration unless
    /// `workloads.len() == n_targets`.
    pub fn workloads(mut self, specs: Vec<WorkloadSpec>) -> Self {
        self.cfg.workloads = specs;
        self.workloads_explicit = true;
        self
    }

    /// Override the workload on Target `t` only. Set `n_targets` first:
    /// the current specs (or homogeneous shorthand) are materialized to
    /// `n_targets` entries before the override lands.
    ///
    /// # Panics
    /// Panics when `t >= n_targets`, or when an explicit workloads
    /// vector of the wrong length was set earlier.
    pub fn workload_for_target(mut self, t: usize, spec: WorkloadSpec) -> Self {
        let n = self.cfg.n_targets;
        assert!(t < n, "target {t} out of {n} (set n_targets first)");
        if self.cfg.workloads.len() != n {
            assert!(
                !self.workloads_explicit && self.cfg.workloads.len() == 1,
                "explicit workloads vector has {} entries for {n} targets",
                self.cfg.workloads.len()
            );
            self.cfg.workloads = vec![self.cfg.workloads[0].clone(); n];
        }
        self.cfg.workloads[t] = spec;
        self.workloads_explicit = true;
        self
    }

    /// Finish, yielding the configuration.
    ///
    /// # Panics
    /// Panics on any validation failure
    /// (see [`SystemConfigBuilder::try_build`]).
    pub fn build(self) -> SystemConfig {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Finish, yielding the configuration or a [`SimError::Config`]
    /// when an explicit fleet (`ssds` / `ssd_for_target`) or workloads
    /// vector (`workloads` / `workload_for_target`) does not hold
    /// exactly `n_targets` entries, the shapes are otherwise invalid,
    /// or the fault plan fails [`FaultPlan::validate`].
    pub fn try_build(self) -> Result<SystemConfig, SimError> {
        if self.fleet_explicit && self.cfg.ssds.len() != self.cfg.n_targets {
            return Err(SimError::Config(format!(
                "ssds holds {} device configs for {} targets",
                self.cfg.ssds.len(),
                self.cfg.n_targets
            )));
        }
        if self.workloads_explicit && self.cfg.workloads.len() != self.cfg.n_targets {
            return Err(SimError::Config(format!(
                "workloads holds {} specs for {} targets",
                self.cfg.workloads.len(),
                self.cfg.n_targets
            )));
        }
        if self.cfg.ssds.is_empty() {
            return Err(SimError::Config("ssds must not be empty".into()));
        }
        if !(self.cfg.ssds.len() == 1 || self.cfg.ssds.len() == self.cfg.n_targets) {
            return Err(SimError::Config(format!(
                "ssds holds {} device configs for {} targets (expected 1 or {})",
                self.cfg.ssds.len(),
                self.cfg.n_targets,
                self.cfg.n_targets
            )));
        }
        if self.cfg.workloads.is_empty() {
            return Err(SimError::Config("workloads must not be empty".into()));
        }
        if !(self.cfg.workloads.len() == 1 || self.cfg.workloads.len() == self.cfg.n_targets) {
            return Err(SimError::Config(format!(
                "workloads holds {} specs for {} targets (expected 1 or {})",
                self.cfg.workloads.len(),
                self.cfg.n_targets,
                self.cfg.n_targets
            )));
        }
        self.cfg
            .faults
            .validate()
            .map_err(|e| SimError::Config(format!("invalid fault plan: {e}")))?;
        Ok(self.cfg)
    }
}

/// One request bound to an (initiator, target) pair.
#[derive(Clone, Copy, Debug)]
pub struct Assignment {
    /// Initiator index (0-based).
    pub initiator: usize,
    /// Target index (0-based).
    pub target: usize,
    /// The request (globally unique id).
    pub request: Request,
}

/// Spread a trace over initiators and targets: requests go round-robin
/// to initiators and, independently, round-robin to targets, preserving
/// arrival order and reassigning globally unique ids.
pub fn spread_trace(trace: &Trace, n_initiators: usize, n_targets: usize) -> Vec<Assignment> {
    assert!(n_initiators > 0 && n_targets > 0);
    trace
        .requests()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut request = *r;
            request.id = i as u64;
            Assignment {
                initiator: i % n_initiators,
                target: (i / n_initiators) % n_targets,
                request,
            }
        })
        .collect()
}

/// Resolve one workload source into a system-wide assignment list: the
/// source generates a single trace with `seed` and [`spread_trace`] fans
/// it out. This is the source-consuming form of the legacy
/// `generate(cfg, seed)` + `spread_trace(..)` call sequence and produces
/// bit-identical assignments to it.
pub fn spread_source<S: WorkloadSource + ?Sized>(
    source: &S,
    seed: u64,
    n_initiators: usize,
    n_targets: usize,
) -> Vec<Assignment> {
    spread_trace(&source.generate(seed), n_initiators, n_targets)
}

/// Resolve per-Target workload sources into an assignment list: Target
/// `t` generates its own trace with seed `seed + t` (the workspace's
/// per-target seeding convention) and [`per_target_traces`] interleaves
/// them. Bit-identical to the legacy per-target
/// `generate(cfg, seed.wrapping_add(t))` + `per_target_traces(..)`
/// sequence.
pub fn per_target_sources<S: WorkloadSource>(
    sources: &[S],
    seed: u64,
    n_initiators: usize,
) -> Vec<Assignment> {
    let traces: Vec<Trace> = sources
        .iter()
        .enumerate()
        .map(|(t, s)| s.generate(seed.wrapping_add(t as u64)))
        .collect();
    per_target_traces(&traces, n_initiators)
}

/// Build one trace per target (each target gets its own workload, as in
/// Sec. IV-D: "each Target processes 5,000 read and 5,000 write
/// requests") and interleave them into a single assignment list with
/// globally unique ids; all requests issue from initiators round-robin.
pub fn per_target_traces(traces: &[Trace], n_initiators: usize) -> Vec<Assignment> {
    assert!(n_initiators > 0 && !traces.is_empty());
    let mut all: Vec<Assignment> = Vec::new();
    for (t_idx, trace) in traces.iter().enumerate() {
        for r in trace.requests() {
            all.push(Assignment {
                initiator: 0, // fixed up below once globally sorted
                target: t_idx,
                request: *r,
            });
        }
    }
    all.sort_by_key(|a| (a.request.arrival, a.target, a.request.id));
    for (i, a) in all.iter_mut().enumerate() {
        a.request.id = i as u64;
        a.initiator = i % n_initiators;
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::micro::generate_micro;
    use workload::synthetic::{generate_synthetic, SyntheticConfig};

    #[test]
    fn spread_covers_all_pairs() {
        let t = generate_micro(
            &MicroConfig {
                read_count: 50,
                write_count: 50,
                ..MicroConfig::default()
            },
            1,
        );
        let a = spread_trace(&t, 2, 3);
        assert_eq!(a.len(), 100);
        // Unique ids.
        let mut ids: Vec<u64> = a.iter().map(|x| x.request.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 100);
        // Every initiator and target used.
        for i in 0..2 {
            assert!(a.iter().any(|x| x.initiator == i));
        }
        for t in 0..3 {
            assert!(a.iter().any(|x| x.target == t));
        }
        // Arrival order preserved.
        assert!(a
            .windows(2)
            .all(|w| w[0].request.arrival <= w[1].request.arrival));
    }

    #[test]
    fn per_target_merging() {
        let mk = |seed| {
            generate_micro(
                &MicroConfig {
                    read_count: 20,
                    write_count: 20,
                    ..MicroConfig::default()
                },
                seed,
            )
        };
        let a = per_target_traces(&[mk(1), mk(2)], 1);
        assert_eq!(a.len(), 80);
        assert!(a.iter().all(|x| x.initiator == 0));
        assert_eq!(a.iter().filter(|x| x.target == 0).count(), 40);
        assert_eq!(a.iter().filter(|x| x.target == 1).count(), 40);
        let mut ids: Vec<u64> = a.iter().map(|x| x.request.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 80);
        assert!(a
            .windows(2)
            .all(|w| w[0].request.arrival <= w[1].request.arrival));
    }

    fn same_assignments(a: &[Assignment], b: &[Assignment]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                (x.initiator, x.target, x.request) == (y.initiator, y.target, y.request)
            })
    }

    /// The source-consuming helpers and `SystemConfig::assignments` must
    /// reproduce the legacy generate-then-assign call sequences
    /// bit-for-bit — the whole refactor rests on this equivalence.
    #[test]
    fn assignments_match_legacy_call_sequences() {
        let mc = MicroConfig {
            read_count: 40,
            write_count: 40,
            ..MicroConfig::default()
        };
        // Homogeneous shorthand == generate + spread_trace.
        let cfg = SystemConfig::builder()
            .n_initiators(2)
            .n_targets(3)
            .workload(WorkloadSpec::Micro(mc.clone()))
            .build();
        let legacy = spread_trace(&generate_micro(&mc, 9), 2, 3);
        assert!(same_assignments(&cfg.assignments(9), &legacy));
        assert!(same_assignments(&spread_source(&mc, 9, 2, 3), &legacy));

        // Per-target specs == per-target generate(seed + t) +
        // per_target_traces (the fig7/fig10 convention).
        let sc = SyntheticConfig::vdi(30, 30);
        let cfg = SystemConfig::builder()
            .n_initiators(1)
            .n_targets(2)
            .workloads(vec![
                WorkloadSpec::Synthetic(sc.clone()),
                WorkloadSpec::Synthetic(sc.clone()),
            ])
            .build();
        let traces: Vec<Trace> = (0..2u64)
            .map(|t| generate_synthetic(&sc, 7u64.wrapping_add(t)))
            .collect();
        let legacy = per_target_traces(&traces, 1);
        assert!(same_assignments(&cfg.assignments(7), &legacy));
    }

    #[test]
    fn workload_builder_shapes() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let micro = WorkloadSpec::Micro(MicroConfig::default());
        let synth = WorkloadSpec::Synthetic(SyntheticConfig::vdi(5, 5));

        // Broadcast shorthand applies to every target.
        let cfg = SystemConfig::builder()
            .n_targets(4)
            .workload(synth.clone())
            .build();
        assert!(matches!(cfg.workload_for(3), WorkloadSpec::Synthetic(_)));

        // Per-target override materializes the vector.
        let cfg = SystemConfig::builder()
            .n_targets(3)
            .workload(micro.clone())
            .workload_for_target(1, synth.clone())
            .build();
        assert!(matches!(cfg.workload_for(0), WorkloadSpec::Micro(_)));
        assert!(matches!(cfg.workload_for(1), WorkloadSpec::Synthetic(_)));
        assert!(matches!(cfg.workload_for(2), WorkloadSpec::Micro(_)));

        // Length mismatches fail at build(), in either setter order.
        let too_short = catch_unwind(AssertUnwindSafe(|| {
            SystemConfig::builder()
                .n_targets(3)
                .workloads(vec![micro.clone(), synth.clone()])
                .build()
        }));
        assert!(too_short.is_err(), "2 specs for 3 targets must panic");
        let too_long = catch_unwind(AssertUnwindSafe(|| {
            SystemConfig::builder()
                .workloads(vec![micro.clone(), synth.clone(), micro.clone()])
                .n_targets(2)
                .build()
        }));
        assert!(too_long.is_err(), "3 specs for 2 targets must panic");
        let empty = catch_unwind(AssertUnwindSafe(|| {
            SystemConfig::builder().workloads(Vec::new()).build()
        }));
        assert!(empty.is_err(), "empty workloads must panic");

        // to_builder round-trips the explicit flag.
        let cfg = SystemConfig::builder()
            .n_targets(2)
            .workloads(vec![micro.clone(), synth.clone()])
            .build();
        let grown = catch_unwind(AssertUnwindSafe(|| cfg.to_builder().n_targets(3).build()));
        assert!(
            grown.is_err(),
            "stale 2-spec vector for 3 targets must panic"
        );
    }
}
