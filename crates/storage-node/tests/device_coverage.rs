//! Fig. 5's qualitative shape holds on every Table II device (the paper:
//! "Similar accuracy is also obtained for the other two types of SSDs").

use ssd_sim::SsdConfig;
use storage_node::weight_sweep;
use workload::micro::{generate_micro, MicroConfig};

fn saturating(seed: u64) -> workload::Trace {
    generate_micro(
        &MicroConfig {
            read_iat_mean_us: 8.0,
            write_iat_mean_us: 8.0,
            read_size_mean: 40_000.0,
            write_size_mean: 40_000.0,
            read_count: 2_500,
            write_count: 2_500,
            ..MicroConfig::default()
        },
        seed,
    )
}

fn check_shape(label: &str, ssd: SsdConfig) {
    let pts = weight_sweep(&ssd, &saturating(11), &[1, 2, 4, 8]);
    let r: Vec<f64> = pts.iter().map(|p| p.read_gbps).collect();
    let w: Vec<f64> = pts.iter().map(|p| p.write_gbps).collect();
    // Equal-ish at w=1.
    assert!(
        (r[0] - w[0]).abs() / r[0].max(w[0]) < 0.35,
        "{label}: w=1 should be near-fair: R={:.2} W={:.2}",
        r[0],
        w[0]
    );
    // Read monotonically non-increasing across the sweep ends; write
    // non-decreasing.
    assert!(r[3] < r[0] * 0.7, "{label}: read should fall: {r:?}");
    assert!(w[3] > w[0] * 1.1, "{label}: write should rise: {w:?}");
    // Throughputs positive and below device channel bound.
    let bound = ssd.channel_bound_bw() * 8.0 / 1e9;
    for p in &pts {
        assert!(p.read_gbps > 0.0 && p.write_gbps > 0.0, "{label}");
        assert!(
            p.read_gbps + p.write_gbps <= bound * 1.05,
            "{label}: exceeds channel bound {bound:.1}"
        );
    }
}

#[test]
fn fig5_shape_ssd_a() {
    check_shape("SSD-A", SsdConfig::ssd_a());
}

#[test]
fn fig5_shape_ssd_b() {
    check_shape("SSD-B", SsdConfig::ssd_b());
}

#[test]
fn fig5_shape_ssd_c() {
    check_shape("SSD-C", SsdConfig::ssd_c());
}

/// SSD-B (2 µs reads, QD 512) delivers clearly more read throughput at
/// w = 1 than SSD-A (75 µs reads, QD 128) on the same workload.
#[test]
fn device_ordering_at_w1() {
    let a = weight_sweep(&SsdConfig::ssd_a(), &saturating(4), &[1]);
    let b = weight_sweep(&SsdConfig::ssd_b(), &saturating(4), &[1]);
    assert!(
        b[0].read_gbps > a[0].read_gbps,
        "SSD-B {:.2} should beat SSD-A {:.2}",
        b[0].read_gbps,
        a[0].read_gbps
    );
}
