//! Block-layer merging through the whole storage stack (the paper's
//! Sec. V block-layer direction): sequential streams coalesce, byte
//! accounting is preserved, command count drops.

use sim_engine::SimTime;
use storage_node::{run_trace, DisciplineKind, NodeConfig};
use workload::{IoType, Request, Trace};

/// A sequential read stream (each request continues the previous LBA)
/// interleaved with a random write stream.
fn sequential_trace(n: usize) -> Trace {
    let mut reqs = Vec::new();
    let mut lba = 0u64;
    for i in 0..n as u64 {
        reqs.push(Request {
            id: i * 2,
            op: IoType::Read,
            lba,
            size: 16 * 1024, // 4 sectors
            arrival: SimTime::from_us(i * 12),
        });
        lba += 4;
        reqs.push(Request {
            id: i * 2 + 1,
            op: IoType::Write,
            lba: 1_000_000 + i * 997 % 100_000,
            size: 16 * 1024,
            arrival: SimTime::from_us(i * 12 + 6),
        });
    }
    Trace::from_requests(reqs)
}

#[test]
fn merging_preserves_bytes_and_reduces_commands() {
    let trace = sequential_trace(600);
    let total_read: u64 = trace
        .requests()
        .iter()
        .filter(|r| r.op.is_read())
        .map(|r| r.size)
        .sum();
    let total_write: u64 = trace
        .requests()
        .iter()
        .filter(|r| !r.op.is_read())
        .map(|r| r.size)
        .sum();

    let plain = run_trace(
        &NodeConfig {
            discipline: DisciplineKind::Ssq { weight: 1 },
            merge_cap: None,
            ..NodeConfig::default()
        },
        &trace,
    );
    let merged = run_trace(
        &NodeConfig {
            discipline: DisciplineKind::Ssq { weight: 1 },
            merge_cap: Some(128 * 1024),
            ..NodeConfig::default()
        },
        &trace,
    );
    // Bytes conserved in both runs.
    assert_eq!(plain.read_bytes, total_read);
    assert_eq!(plain.write_bytes, total_write);
    assert_eq!(merged.read_bytes, total_read);
    assert_eq!(merged.write_bytes, total_write);
    // Merging absorbed a meaningful share of the sequential reads into
    // fewer commands.
    assert!(
        merged.reads_completed < plain.reads_completed,
        "merged {} vs plain {}",
        merged.reads_completed,
        plain.reads_completed
    );
    assert_eq!(plain.reads_completed, 600);
}

#[test]
fn random_workload_rarely_merges() {
    // Random LBAs: merging is configured but almost never applicable.
    let t = workload::micro::generate_micro(
        &workload::micro::MicroConfig {
            read_count: 400,
            write_count: 400,
            ..Default::default()
        },
        3,
    );
    let merged = run_trace(
        &NodeConfig {
            merge_cap: Some(128 * 1024),
            ..NodeConfig::default()
        },
        &t,
    );
    // All (or nearly all) requests complete individually.
    assert!(
        merged.reads_completed + merged.writes_completed >= 790,
        "random workload should rarely merge: {}",
        merged.reads_completed + merged.writes_completed
    );
}
