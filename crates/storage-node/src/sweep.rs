//! Weight-ratio sweeps (Fig. 5) and TPM training-sample generation.

use crate::node::{DisciplineKind, NodeConfig};
use crate::runner::run_trace_windowed_in;
use serde::{Deserialize, Serialize};
use sim_engine::ScenarioRunner;
use ssd_sim::SsdConfig;
use workload::source::WorkloadSource;
use workload::{extract_features, Trace, WorkloadFeatures};

/// One point of a weight sweep: the measured read/write throughput of a
/// workload under a given SSQ weight ratio.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Write:read weight ratio.
    pub weight: u32,
    /// Trimmed-mean read throughput, Gbps.
    pub read_gbps: f64,
    /// Trimmed-mean write throughput, Gbps.
    pub write_gbps: f64,
    /// Workload features of the trace that produced this point.
    pub features: WorkloadFeatures,
}

/// Run `trace` on `ssd` for every weight in `weights`; one sweep row of
/// Fig. 5, and the raw material for TPM training samples. Each weight
/// cell is an independent seeded DES run, so the [`ScenarioRunner`]
/// evaluates them in parallel with results in weight order.
pub fn weight_sweep(ssd: &SsdConfig, trace: &Trace, weights: &[u32]) -> Vec<SweepPoint> {
    let features = extract_features(trace.requests());
    ScenarioRunner::from_env().run_cells_with_workspace(weights, |ws, _, &w| {
        let cfg = NodeConfig {
            ssd: ssd.clone(),
            discipline: DisciplineKind::Ssq { weight: w },
            merge_cap: None,
        };
        let r = run_trace_windowed_in(&cfg, trace, ws);
        SweepPoint {
            weight: w,
            read_gbps: r.read_tput().as_gbps_f64(),
            write_gbps: r.write_tput().as_gbps_f64(),
            features,
        }
    })
}

/// [`weight_sweep`] on a workload source: the source resolves to its
/// trace with `seed` first (bit-identical to generating the trace by
/// hand and calling [`weight_sweep`]). This is the seam replayed
/// recordings use to enter the Fig. 5 sweep machinery.
pub fn weight_sweep_source<S: WorkloadSource + ?Sized>(
    ssd: &SsdConfig,
    source: &S,
    seed: u64,
    weights: &[u32],
) -> Vec<SweepPoint> {
    weight_sweep(ssd, &source.generate(seed), weights)
}

impl SweepPoint {
    /// TPM feature vector: workload features followed by the weight
    /// ratio (the `(Ch, w)` input of Eq. 1).
    pub fn x(&self) -> Vec<f64> {
        let mut v = self.features.to_vec();
        v.push(self.weight as f64);
        v
    }

    /// TPM target vector `[TPUT_R, TPUT_W]` in Gbps.
    pub fn y(&self) -> Vec<f64> {
        vec![self.read_gbps, self.write_gbps]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::micro::{generate_micro, MicroConfig};

    #[test]
    fn sweep_has_expected_shape() {
        let trace = generate_micro(
            &MicroConfig {
                read_count: 1_200,
                write_count: 1_200,
                read_iat_mean_us: 8.0,
                write_iat_mean_us: 8.0,
                read_size_mean: 36_000.0,
                write_size_mean: 36_000.0,
                ..MicroConfig::default()
            },
            7,
        );
        let pts = weight_sweep(&SsdConfig::ssd_a(), &trace, &[1, 2, 4, 8]);
        assert_eq!(pts.len(), 4);
        // Read throughput monotonically non-increasing (within noise),
        // write non-decreasing, across the sweep's ends.
        assert!(pts[3].read_gbps < pts[0].read_gbps);
        assert!(pts[3].write_gbps > pts[0].write_gbps);
        // x/y vectors shaped for the TPM.
        assert_eq!(pts[0].x().len(), workload::features::N_FEATURES + 1);
        assert_eq!(pts[0].y().len(), 2);
        assert_eq!(pts[0].x().last().copied(), Some(1.0));
    }

    #[test]
    fn light_workload_insensitive_to_weight() {
        // Fig. 5 bottom-left corner: long inter-arrival, small requests —
        // the weight knob has no authority.
        let trace = generate_micro(
            &MicroConfig {
                read_count: 400,
                write_count: 400,
                read_iat_mean_us: 120.0,
                write_iat_mean_us: 120.0,
                read_size_mean: 8_000.0,
                write_size_mean: 8_000.0,
                ..MicroConfig::default()
            },
            8,
        );
        let pts = weight_sweep(&SsdConfig::ssd_a(), &trace, &[1, 8]);
        let rel = (pts[0].read_gbps - pts[1].read_gbps).abs() / pts[0].read_gbps.max(1e-9);
        assert!(rel < 0.1, "light load should fade out WRR, delta={rel}");
    }
}
