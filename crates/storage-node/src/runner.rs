//! Standalone trace runner: arrivals from a trace, storage-node stack,
//! optional scripted weight changes.

use crate::node::{NodeConfig, StorageNode};
use crate::report::NodeReport;
use sim_engine::{
    AdaptiveEventQueue, NullSink, Scratch, SimDuration, SimTime, SimWorkspace, TraceRecord,
    TraceSink,
};
use ssd_sim::SsdEvent;
use std::collections::HashMap;
use workload::{IoType, Trace};

/// Bin width used for runtime throughput series (the paper plots per
/// millisecond).
pub const BIN: SimDuration = SimDuration(1_000_000_000); // 1 ms in ps

enum Ev {
    Arrival(usize),
    Ssd(SsdEvent),
    SetWeight(u32),
}

/// Per-worker reusable state for the trace runner (the device-level
/// analogue of system-sim's workspace scratch): the event queue, the
/// SSD step buffer, and the submit-time map keep their allocations
/// across runs. `reset` restores observable `Default`, keeping heap
/// capacity.
#[derive(Default)]
struct TraceScratch {
    queue: AdaptiveEventQueue<Ev>,
    step: ssd_sim::SsdStep,
    submit_time: HashMap<u64, SimTime>,
}

impl Scratch for TraceScratch {
    fn reset(&mut self) {
        self.queue.reset();
        self.step.clear();
        self.submit_time.clear();
    }
}

/// Run a trace through a fresh node until *all* work drains; returns the
/// report. Latency statistics are exact; the trimmed throughput rates are
/// meaningful only when the workload keeps the device busy for most of
/// the run.
pub fn run_trace(cfg: &NodeConfig, trace: &Trace) -> NodeReport {
    run_trace_impl(
        cfg,
        trace,
        &[],
        None,
        &mut SimWorkspace::new(),
        &mut NullSink,
    )
}

/// Run a trace and stop the clock at the last arrival: steady-state
/// throughput measurement under sustained offered load, the semantics of
/// the paper's Fig. 5 sweeps. Backlog still queued at the horizon is
/// intentionally not drained — under saturation the split of *completed*
/// bytes inside the window is exactly what the weight ratio controls.
pub fn run_trace_windowed(cfg: &NodeConfig, trace: &Trace) -> NodeReport {
    run_trace_windowed_in(cfg, trace, &mut SimWorkspace::new())
}

/// [`run_trace_windowed`] against caller-provided per-worker scratch
/// storage (event queue, step buffer, submit-time map): the form sweep
/// workers use so every cell after a worker's first reuses the same
/// allocations. The scratch is fully reset at the start of every run,
/// so the report is identical to [`run_trace_windowed`]'s.
pub fn run_trace_windowed_in(cfg: &NodeConfig, trace: &Trace, ws: &mut SimWorkspace) -> NodeReport {
    run_trace_impl(cfg, trace, &[], Some(trace.span()), ws, &mut NullSink)
}

/// Windowed run with scripted weight changes (see
/// [`run_trace_with_schedule`]).
///
/// This is the sink-polymorphic entry point: SSQ fetch decisions and
/// weight changes, per-bin queue occupancy and SSD channel/chip
/// utilization flow into `sink` as they happen. Pass `&mut NullSink`
/// for an untraced run — the returned report is identical either way.
pub fn run_trace_windowed_with_schedule(
    cfg: &NodeConfig,
    trace: &Trace,
    weight_schedule: &[(SimTime, u32)],
    sink: &mut dyn TraceSink,
) -> NodeReport {
    run_trace_impl(
        cfg,
        trace,
        weight_schedule,
        Some(trace.span()),
        &mut SimWorkspace::new(),
        sink,
    )
}

/// Run a trace, applying `(time, weight)` changes as they come due
/// (scripted version of SRC's dynamic adjustment, for device-level
/// experiments).
pub fn run_trace_with_schedule(
    cfg: &NodeConfig,
    trace: &Trace,
    weight_schedule: &[(SimTime, u32)],
) -> NodeReport {
    run_trace_impl(
        cfg,
        trace,
        weight_schedule,
        None,
        &mut SimWorkspace::new(),
        &mut NullSink,
    )
}

fn run_trace_impl(
    cfg: &NodeConfig,
    trace: &Trace,
    weight_schedule: &[(SimTime, u32)],
    horizon: Option<SimTime>,
    ws: &mut SimWorkspace,
    sink: &mut dyn TraceSink,
) -> NodeReport {
    let tracing = sink.enabled();
    let mut node = StorageNode::new(cfg);
    if tracing {
        node.set_telemetry(true, 0);
    }
    let mut last_sample = SimTime::ZERO;
    // Per-worker scratch, reset at the start of every run (see the
    // workspace reset contract in `sim_engine::workspace`).
    let scratch = ws.slot::<TraceScratch>();
    scratch.reset();
    let TraceScratch {
        queue: q,
        step,
        submit_time,
    } = scratch;
    let mut report = NodeReport::new(BIN);

    for (i, r) in trace.requests().iter().enumerate() {
        q.schedule(r.arrival, Ev::Arrival(i));
    }
    for &(t, w) in weight_schedule {
        q.schedule(t, Ev::SetWeight(w));
    }

    while let Some((now, ev)) = q.pop() {
        if let Some(h) = horizon {
            if now > h {
                break;
            }
        }
        step.clear();
        match ev {
            Ev::Arrival(i) => {
                let r = trace.requests()[i];
                submit_time.insert(r.id, now);
                node.submit_into(r, now, &mut *step);
            }
            Ev::Ssd(e) => node.on_ssd_event_into(e, now, &mut *step),
            Ev::SetWeight(w) => {
                node.set_weight_ratio(w);
                report.weight_changes.push((now, w));
                if tracing {
                    sink.record(TraceRecord {
                        at: now,
                        component: "ssq",
                        scope: 0,
                        metric: "weight",
                        value: w as f64,
                    });
                }
                node.pump_into(now, &mut *step);
            }
        };
        if tracing {
            if now.since(last_sample) >= BIN {
                node.sample_telemetry(now);
                last_sample = now;
            }
            node.drain_probes_into(sink);
        }
        for c in &step.completions {
            let lat = submit_time
                .remove(&c.id)
                .map(|t0| c.at.since(t0).as_us_f64())
                .unwrap_or(0.0);
            match c.op {
                IoType::Read => {
                    report.reads_completed += 1;
                    report.read_bytes += c.size;
                    report.read_series.add(c.at, c.size as f64);
                    report.read_latency_us.push(lat);
                }
                IoType::Write => {
                    report.writes_completed += 1;
                    report.write_bytes += c.size;
                    report.write_series.add(c.at, c.size as f64);
                    report.write_latency_us.push(lat);
                }
            }
            report.makespan = report.makespan.max(c.at.since(SimTime::ZERO));
        }
        for &(t, e) in &step.schedule {
            q.schedule(t, Ev::Ssd(e));
        }
    }

    if let Some(h) = horizon {
        report.makespan = h.since(SimTime::ZERO);
    } else {
        assert!(
            node.is_idle(),
            "run ended with work still pending: {} queued, {} in flight",
            node.discipline().queued(),
            node.ssd().in_flight()
        );
    }
    report.ssd = node.ssd().stats();
    if tracing {
        let stats = report.ssd;
        sink.count(("ssd", 0, "reads_completed"), stats.reads_completed);
        sink.count(("ssd", 0, "writes_completed"), stats.writes_completed);
        sink.count(("ssd", 0, "gc_copies"), stats.gc_copies);
        sink.count(("ssd", 0, "erases"), stats.erases);
        sink.gauge(("ssq", 0, "weight"), node.weight_ratio() as f64);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DisciplineKind;
    use workload::micro::{generate_micro, MicroConfig};

    fn small_trace(seed: u64) -> Trace {
        generate_micro(
            &MicroConfig {
                read_count: 300,
                write_count: 300,
                read_iat_mean_us: 10.0,
                write_iat_mean_us: 10.0,
                read_size_mean: 24_000.0,
                write_size_mean: 24_000.0,
                ..MicroConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn completes_everything() {
        let r = run_trace(&NodeConfig::default(), &small_trace(1));
        assert_eq!(r.reads_completed, 300);
        assert_eq!(r.writes_completed, 300);
        assert!(r.makespan > SimDuration::ZERO);
        assert!(r.read_latency_us.mean() > 0.0);
    }

    #[test]
    fn deterministic() {
        let a = run_trace(&NodeConfig::default(), &small_trace(2));
        let b = run_trace(&NodeConfig::default(), &small_trace(2));
        assert_eq!(a.read_series.bins(), b.read_series.bins());
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn fifo_and_ssq_both_run() {
        let t = small_trace(3);
        let f = run_trace(
            &NodeConfig {
                discipline: DisciplineKind::Fifo,
                ..NodeConfig::default()
            },
            &t,
        );
        let s = run_trace(
            &NodeConfig {
                discipline: DisciplineKind::Ssq { weight: 1 },
                ..NodeConfig::default()
            },
            &t,
        );
        assert_eq!(f.reads_completed, s.reads_completed);
        assert_eq!(f.writes_completed, s.writes_completed);
    }

    #[test]
    fn weight_schedule_applies() {
        let t = small_trace(4);
        let r = run_trace_with_schedule(
            &NodeConfig::default(),
            &t,
            &[(SimTime::from_ms(1), 4), (SimTime::from_ms(2), 2)],
        );
        assert_eq!(r.weight_changes.len(), 2);
        assert_eq!(r.weight_changes[0].1, 4);
    }

    #[test]
    fn traced_run_matches_untraced_and_emits_series() {
        use sim_engine::RingSink;
        let t = small_trace(7);
        let schedule = [(SimTime::from_ms(1), 4), (SimTime::from_ms(2), 2)];
        let plain =
            run_trace_windowed_with_schedule(&NodeConfig::default(), &t, &schedule, &mut NullSink);
        let mut sink = RingSink::new(1 << 16);
        let traced =
            run_trace_windowed_with_schedule(&NodeConfig::default(), &t, &schedule, &mut sink);
        // Telemetry must not perturb the simulation.
        assert_eq!(plain.reads_completed, traced.reads_completed);
        assert_eq!(plain.writes_completed, traced.writes_completed);
        assert_eq!(plain.read_series.bins(), traced.read_series.bins());
        assert_eq!(plain.write_series.bins(), traced.write_series.bins());
        assert_eq!(plain.makespan, traced.makespan);
        let rep = sink.into_report();
        assert_eq!(
            rep.series("ssq", "weight").len(),
            2,
            "both weight changes traced"
        );
        assert!(!rep.series("ssq", "fetch_class").is_empty());
        assert!(!rep.series("ssd", "chip_util").is_empty());
        assert_eq!(
            rep.counter(("ssd", 0, "reads_completed")),
            plain.reads_completed
        );
        // Same seed, same schedule: byte-identical JSON-lines export.
        let mut sink2 = RingSink::new(1 << 16);
        let _ = run_trace_windowed_with_schedule(&NodeConfig::default(), &t, &schedule, &mut sink2);
        assert_eq!(rep.to_json_lines(), sink2.into_report().to_json_lines());
    }

    #[test]
    fn higher_weight_shifts_throughput_under_saturation() {
        // Saturating workload: the SSQ weight should visibly shift
        // completed bytes from reads to writes (Fig. 5's core effect).
        let t = generate_micro(
            &MicroConfig {
                read_count: 2_000,
                write_count: 2_000,
                read_iat_mean_us: 8.0,
                write_iat_mean_us: 8.0,
                read_size_mean: 40_000.0,
                write_size_mean: 40_000.0,
                ..MicroConfig::default()
            },
            5,
        );
        let at = |w: u32| {
            run_trace_windowed(
                &NodeConfig {
                    discipline: DisciplineKind::Ssq { weight: w },
                    ..NodeConfig::default()
                },
                &t,
            )
        };
        let w1 = at(1);
        let w4 = at(4);
        let r1 = w1.read_tput().as_gbps_f64();
        let r4 = w4.read_tput().as_gbps_f64();
        let wr1 = w1.write_tput().as_gbps_f64();
        let wr4 = w4.write_tput().as_gbps_f64();
        assert!(r4 < r1 * 0.9, "read tput should fall: {r1} -> {r4}");
        assert!(wr4 > wr1 * 1.1, "write tput should rise: {wr1} -> {wr4}");
    }
}
