//! Run reports: per-class throughput series, latency statistics and
//! totals, with the paper's 10 % head/tail trimming applied to summary
//! rates.

use serde::{Deserialize, Serialize};
use sim_engine::stats::LatencyStats;
use sim_engine::{Rate, SimDuration, SimTime, TimeBinSeries};
use ssd_sim::ssd::SsdStats;

/// Trim fraction the paper applies to runtime results ("we omit the
/// start (first 10%) and tail (last 10%)").
pub const TRIM_FRAC: f64 = 0.10;

/// Metrics from one storage-node (or system) run.
#[derive(Debug)]
pub struct NodeReport {
    /// Completed read bytes per time bin.
    pub read_series: TimeBinSeries,
    /// Completed write bytes per time bin.
    pub write_series: TimeBinSeries,
    /// Read request latency, µs.
    pub read_latency_us: LatencyStats,
    /// Write request latency, µs.
    pub write_latency_us: LatencyStats,
    /// Completed read commands.
    pub reads_completed: u64,
    /// Completed write commands.
    pub writes_completed: u64,
    /// Total read bytes completed.
    pub read_bytes: u64,
    /// Total write bytes completed.
    pub write_bytes: u64,
    /// Time of the last completion.
    pub makespan: SimDuration,
    /// Device statistics snapshot.
    pub ssd: SsdStats,
    /// Weight-ratio changes applied during the run `(time, w)`.
    pub weight_changes: Vec<(SimTime, u32)>,
}

impl NodeReport {
    /// Fresh report with the given bin width.
    pub fn new(bin: SimDuration) -> Self {
        NodeReport {
            read_series: TimeBinSeries::new(bin),
            write_series: TimeBinSeries::new(bin),
            read_latency_us: LatencyStats::new(),
            write_latency_us: LatencyStats::new(),
            reads_completed: 0,
            writes_completed: 0,
            read_bytes: 0,
            write_bytes: 0,
            makespan: SimDuration::ZERO,
            ssd: SsdStats::default(),
            weight_changes: Vec::new(),
        }
    }

    /// Trimmed-mean read throughput.
    pub fn read_tput(&self) -> Rate {
        self.read_series.trimmed_mean_rate(TRIM_FRAC)
    }

    /// Trimmed-mean write throughput.
    pub fn write_tput(&self) -> Rate {
        self.write_series.trimmed_mean_rate(TRIM_FRAC)
    }

    /// Trimmed-mean aggregated throughput (the paper's headline metric:
    /// read received at Initiators + write obtained at Targets).
    pub fn aggregated_tput(&self) -> Rate {
        Rate::from_bps(self.read_tput().as_bps() + self.write_tput().as_bps())
    }

    /// Untrimmed average read throughput over the makespan.
    pub fn read_tput_overall(&self) -> Rate {
        sim_engine::rate::achieved_rate(self.read_bytes, self.makespan.max(SimDuration::from_ps(1)))
    }

    /// Untrimmed average write throughput over the makespan.
    pub fn write_tput_overall(&self) -> Rate {
        sim_engine::rate::achieved_rate(
            self.write_bytes,
            self.makespan.max(SimDuration::from_ps(1)),
        )
    }
}

/// A compact, serializable summary of a [`NodeReport`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReportSummary {
    /// Trimmed-mean read throughput, Gbps.
    pub read_gbps: f64,
    /// Trimmed-mean write throughput, Gbps.
    pub write_gbps: f64,
    /// Aggregated throughput, Gbps.
    pub aggregated_gbps: f64,
    /// Mean read latency, µs.
    pub read_lat_mean_us: f64,
    /// Mean write latency, µs.
    pub write_lat_mean_us: f64,
    /// Completed commands.
    pub completed: u64,
    /// Makespan, ms.
    pub makespan_ms: f64,
}

impl From<&NodeReport> for ReportSummary {
    fn from(r: &NodeReport) -> Self {
        ReportSummary {
            read_gbps: r.read_tput().as_gbps_f64(),
            write_gbps: r.write_tput().as_gbps_f64(),
            aggregated_gbps: r.aggregated_tput().as_gbps_f64(),
            read_lat_mean_us: r.read_latency_us.mean(),
            write_lat_mean_us: r.write_latency_us.mean(),
            completed: r.reads_completed + r.writes_completed,
            makespan_ms: r.makespan.as_ms_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_adds_classes() {
        let mut r = NodeReport::new(SimDuration::from_ms(1));
        // 10 bins of 1.25 MB reads (10 Gbps) and 0.625 MB writes (5 Gbps).
        for i in 0..10 {
            r.read_series.add(SimTime::from_ms(i), 1_250_000.0);
            r.write_series.add(SimTime::from_ms(i), 625_000.0);
        }
        assert!((r.read_tput().as_gbps_f64() - 10.0).abs() < 0.01);
        assert!((r.write_tput().as_gbps_f64() - 5.0).abs() < 0.01);
        assert!((r.aggregated_tput().as_gbps_f64() - 15.0).abs() < 0.02);
    }

    #[test]
    fn summary_conversion() {
        let mut r = NodeReport::new(SimDuration::from_ms(1));
        r.reads_completed = 3;
        r.writes_completed = 4;
        r.makespan = SimDuration::from_ms(25);
        r.read_latency_us.push(100.0);
        let s = ReportSummary::from(&r);
        assert_eq!(s.completed, 7);
        assert!((s.makespan_ms - 25.0).abs() < 1e-12);
        assert_eq!(s.read_lat_mean_us, 100.0);
    }

    #[test]
    fn empty_report_rates_are_zero() {
        let r = NodeReport::new(SimDuration::from_ms(1));
        assert_eq!(r.read_tput(), Rate::ZERO);
        assert_eq!(r.aggregated_tput(), Rate::ZERO);
        assert_eq!(r.read_tput_overall(), Rate::ZERO);
    }
}
