//! The storage stack itself: discipline + device, with a pump that moves
//! commands from the submission queues into the SSD whenever the
//! discipline's budget allows.

use nvme_queues::{FifoQueues, QueueDiscipline, SsqQueues};
use serde::{Deserialize, Serialize};
use sim_engine::{ProbeBuffer, SimTime, TraceRecord};
use ssd_sim::{CommandCompletion, Ssd, SsdCommand, SsdConfig, SsdEvent, SsdStep};
use workload::{IoType, Request};

/// Which submission-queue discipline a node runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisciplineKind {
    /// Default NVMe FIFO queuing (the DCQCN-only baseline).
    Fifo,
    /// The paper's separate submission queue with an initial
    /// write:read weight ratio.
    Ssq {
        /// Initial weight ratio (w >= 1).
        weight: u32,
    },
}

/// Storage-node configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeConfig {
    /// SSD model configuration.
    pub ssd: SsdConfig,
    /// Queueing discipline.
    pub discipline: DisciplineKind,
    /// Block-layer-style request merging cap in bytes (None = off;
    /// SSQ only — the paper's Sec. V block-layer direction).
    pub merge_cap: Option<u64>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            ssd: SsdConfig::ssd_a(),
            discipline: DisciplineKind::Ssq { weight: 1 },
            merge_cap: None,
        }
    }
}

/// A Target's storage stack: NVMe submission queues in front of an SSD.
pub struct StorageNode {
    disc: Box<dyn QueueDiscipline>,
    ssd: Ssd,
    /// Read gate closed by the owner (e.g. a full transmit queue):
    /// while closed, read commands are not fetched into the device.
    /// Under FIFO this head-of-line-blocks writes too; under SSQ the
    /// write queue keeps flowing (paper Sec. II-B vs III-A).
    read_gate_open: bool,
    /// Requests absorbed by block-layer merging.
    merged: u64,
    /// Telemetry probes (fetch decisions, queue occupancy, SSD
    /// utilization); drained by the owning event loop.
    probes: ProbeBuffer,
    /// Scope tag on this node's records (target index in system runs).
    scope: u64,
    /// `busy_ps` snapshot at the previous utilization sample.
    util_prev: Option<(SimTime, Vec<u64>, Vec<u64>)>,
}

impl StorageNode {
    /// Build a node from a configuration.
    pub fn new(cfg: &NodeConfig) -> Self {
        let qd = cfg.ssd.queue_depth;
        let disc: Box<dyn QueueDiscipline> = match cfg.discipline {
            DisciplineKind::Fifo => Box::new(FifoQueues::new(qd)),
            DisciplineKind::Ssq { weight } => Box::new(SsqQueues::new(qd, weight)),
        };
        let mut disc = disc;
        disc.set_merge_cap(cfg.merge_cap);
        StorageNode {
            disc,
            ssd: Ssd::new(cfg.ssd.clone()),
            read_gate_open: true,
            merged: 0,
            probes: ProbeBuffer::default(),
            scope: 0,
            util_prev: None,
        }
    }

    /// Enable or disable telemetry (discipline fetch decisions, queue
    /// occupancy, SSD channel/chip utilization), tagging records with
    /// `scope` — the target index in multi-target runs.
    pub fn set_telemetry(&mut self, on: bool, scope: u64) {
        self.probes.set_enabled(on);
        self.disc.set_telemetry(on);
        self.scope = scope;
        self.util_prev = None;
    }

    /// Move pending probe records out, preserving record order.
    pub fn drain_probes(&mut self) -> Vec<TraceRecord> {
        self.probes.drain()
    }

    /// Drain pending probe records straight into `sink`, preserving
    /// order and the probe buffer's capacity (the hot-loop form of
    /// [`StorageNode::drain_probes`]).
    pub fn drain_probes_into(&mut self, sink: &mut dyn sim_engine::TraceSink) {
        self.probes.drain_into(sink);
    }

    /// Record one telemetry sample: SSD channel/chip utilization over
    /// the window since the previous sample, and per-class queue
    /// occupancy. The owner calls this on its series bin boundaries.
    pub fn sample_telemetry(&mut self, now: SimTime) {
        if !self.probes.is_enabled() {
            return;
        }
        let (chan, chip) = self.ssd.busy_ps(now);
        if let Some((t0, chan0, chip0)) = &self.util_prev {
            let dt = now.since(*t0).as_ps();
            if dt > 0 {
                let mean_util = |cur: &[u64], prev: &[u64]| {
                    let busy: u64 = cur.iter().zip(prev).map(|(a, b)| a - b).sum();
                    busy as f64 / (dt as f64 * cur.len().max(1) as f64)
                };
                let cu = mean_util(&chan, chan0);
                let pu = mean_util(&chip, chip0);
                self.probes.record(now, "ssd", self.scope, "chan_util", cu);
                self.probes.record(now, "ssd", self.scope, "chip_util", pu);
            }
        }
        self.util_prev = Some((now, chan, chip));
        let qr = self.disc.queued_of(IoType::Read) as f64;
        let qw = self.disc.queued_of(IoType::Write) as f64;
        self.probes
            .record(now, "ssq", self.scope, "queued_reads", qr);
        self.probes
            .record(now, "ssq", self.scope, "queued_writes", qw);
    }

    /// Accept one request from above (application or NVMe-oF target
    /// driver) and pump the device. When merging is configured and the
    /// request was absorbed into an existing command, it will produce no
    /// separate completion.
    pub fn submit(&mut self, req: Request, now: SimTime) -> SsdStep {
        let mut step = SsdStep::default();
        self.submit_into(req, now, &mut step);
        step
    }

    /// Allocation-free variant of [`StorageNode::submit`]: appends to a
    /// caller-owned step instead of returning a fresh one.
    pub fn submit_into(&mut self, req: Request, now: SimTime, step: &mut SsdStep) {
        let merged = self.disc.enqueue_or_merge(req);
        self.merged += merged as u64;
        self.pump_into(now, step);
    }

    /// Requests absorbed by merging so far.
    pub fn merged(&self) -> u64 {
        self.merged
    }

    /// Advance on a device event; returns completions and new events.
    /// Queue-depth slots are returned to the discipline on *releases*
    /// (flash work finished), not on host completions — cached writes
    /// complete early but keep their slot until the destage lands.
    pub fn on_ssd_event(&mut self, ev: SsdEvent, now: SimTime) -> SsdStep {
        let mut step = SsdStep::default();
        self.on_ssd_event_into(ev, now, &mut step);
        step
    }

    /// Allocation-free variant of [`StorageNode::on_ssd_event`]: appends
    /// to a caller-owned step instead of returning a fresh one.
    pub fn on_ssd_event_into(&mut self, ev: SsdEvent, now: SimTime, step: &mut SsdStep) {
        let rel_start = step.releases.len();
        self.ssd.handle_into(ev, now, step);
        for i in rel_start..step.releases.len() {
            self.disc.on_complete(step.releases[i].op);
        }
        self.pump_into(now, step);
    }

    /// Move fetchable commands into the SSD, honoring the read gate.
    pub fn pump(&mut self, now: SimTime) -> SsdStep {
        let mut step = SsdStep::default();
        self.pump_into(now, &mut step);
        step
    }

    /// Allocation-free variant of [`StorageNode::pump`]: appends to a
    /// caller-owned step instead of returning a fresh one.
    pub fn pump_into(&mut self, now: SimTime, step: &mut SsdStep) {
        while let Some(cmd) = self.disc.fetch_gated(self.read_gate_open) {
            let (n_compl, n_rel) = (step.completions.len(), step.releases.len());
            self.ssd.submit_into(
                SsdCommand {
                    id: cmd.id,
                    op: cmd.op,
                    lba: cmd.lba,
                    size: cmd.size,
                },
                now,
                step,
            );
            debug_assert!(step.completions.len() == n_compl && step.releases.len() == n_rel);
        }
        if self.probes.is_enabled() {
            for d in self.disc.drain_decisions() {
                let class = if d.op.is_read() { 0.0 } else { 1.0 };
                self.probes
                    .record(now, "ssq", self.scope, "fetch_class", class);
                if !d.charged {
                    self.probes
                        .record(now, "ssq", self.scope, "free_fetch", 1.0);
                }
            }
        }
    }

    /// Open or close the read gate (transmit-queue backpressure). The
    /// caller must pump after reopening.
    pub fn set_read_gate(&mut self, open: bool) {
        self.read_gate_open = open;
    }

    /// Whether the read gate is open.
    pub fn read_gate_open(&self) -> bool {
        self.read_gate_open
    }

    /// Change the SSQ weight ratio (no-op under FIFO).
    pub fn set_weight_ratio(&mut self, w: u32) {
        self.disc.set_weight_ratio(w);
    }

    /// Current weight ratio (1 under FIFO).
    pub fn weight_ratio(&self) -> u32 {
        self.disc.weight_ratio()
    }

    /// Access the queueing discipline (read-only).
    pub fn discipline(&self) -> &dyn QueueDiscipline {
        self.disc.as_ref()
    }

    /// Access the SSD model (read-only).
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// Fault overlay: scale the SSD's chip/channel service durations
    /// (latency-spike fault; 1.0 restores nominal service).
    pub fn set_ssd_latency_factor(&mut self, factor: f64) {
        self.ssd.set_latency_factor(factor);
    }

    /// Fault overlay: enter or leave an SSD fail-stop window. Leaving
    /// the halt restarts queued flash work and re-pumps the submission
    /// queues; resulting events land in `step`.
    pub fn set_ssd_halted(&mut self, halted: bool, now: SimTime, step: &mut SsdStep) {
        self.ssd.set_halted(halted, now, step);
        if !halted {
            self.pump_into(now, step);
        }
    }

    /// True when no work is queued, outstanding, or in flight.
    pub fn is_idle(&self) -> bool {
        self.disc.is_idle() && self.ssd.in_flight() == 0
    }
}

/// Extension trait: merge two [`SsdStep`]s (completions + schedules).
pub trait StepMerge {
    /// Append the completions and schedules of `other`.
    fn merge_from(&mut self, other: SsdStep);
}

impl StepMerge for SsdStep {
    fn merge_from(&mut self, other: SsdStep) {
        self.completions.extend(other.completions);
        self.releases.extend(other.releases);
        self.schedule.extend(other.schedule);
    }
}

/// Convenience: is this completion a read?
pub fn is_read(c: &CommandCompletion) -> bool {
    c.op.is_read()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::EventQueue;
    use workload::IoType;

    fn req(id: u64, op: IoType, size: u64) -> Request {
        Request {
            id,
            op,
            lba: id * 100,
            size,
            arrival: SimTime::ZERO,
        }
    }

    fn drain(node: &mut StorageNode, q: &mut EventQueue<SsdEvent>) -> Vec<CommandCompletion> {
        let mut out = Vec::new();
        while let Some((t, e)) = q.pop() {
            let s = node.on_ssd_event(e, t);
            out.extend(s.completions);
            for (t2, e2) in s.schedule {
                q.schedule(t2, e2);
            }
        }
        out
    }

    #[test]
    fn submit_and_complete() {
        let mut node = StorageNode::new(&NodeConfig::default());
        let mut q = EventQueue::new();
        let s = node.submit(req(1, IoType::Read, 16 * 1024), SimTime::ZERO);
        for (t, e) in s.schedule {
            q.schedule(t, e);
        }
        let done = drain(&mut node, &mut q);
        assert_eq!(done.len(), 1);
        assert!(node.is_idle());
    }

    #[test]
    fn read_gate_blocks_reads() {
        let mut node = StorageNode::new(&NodeConfig::default());
        node.set_read_gate(false);
        let s = node.submit(req(1, IoType::Read, 4096), SimTime::ZERO);
        assert!(s.schedule.is_empty(), "gated read must not start");
        assert_eq!(node.ssd().in_flight(), 0);
        assert_eq!(node.discipline().queued(), 1);
        // Reopen and pump.
        node.set_read_gate(true);
        let s = node.pump(SimTime::ZERO);
        assert!(!s.schedule.is_empty());
        assert_eq!(node.ssd().in_flight(), 1);
    }

    #[test]
    fn read_gate_head_of_line_semantics() {
        // FIFO: a gated read at the head stalls writes behind it.
        let mut fifo = StorageNode::new(&NodeConfig {
            discipline: DisciplineKind::Fifo,
            ..NodeConfig::default()
        });
        fifo.set_read_gate(false);
        let _ = fifo.submit(req(1, IoType::Read, 4096), SimTime::ZERO);
        let _ = fifo.submit(req(2, IoType::Write, 4096), SimTime::ZERO);
        assert_eq!(fifo.ssd().in_flight(), 0, "FIFO head-of-line blocks");

        // SSQ: the write proceeds while reads are gated.
        let mut ssq = StorageNode::new(&NodeConfig {
            discipline: DisciplineKind::Ssq { weight: 1 },
            ..NodeConfig::default()
        });
        ssq.set_read_gate(false);
        let _ = ssq.submit(req(1, IoType::Read, 4096), SimTime::ZERO);
        let _ = ssq.submit(req(2, IoType::Write, 4096), SimTime::ZERO);
        assert_eq!(ssq.ssd().in_flight(), 1, "SSQ serves writes past the gate");
        assert_eq!(ssq.discipline().queued_of(IoType::Read), 1);
    }

    #[test]
    fn weight_ratio_plumbs_through() {
        let mut node = StorageNode::new(&NodeConfig {
            discipline: DisciplineKind::Ssq { weight: 2 },
            ..NodeConfig::default()
        });
        assert_eq!(node.weight_ratio(), 2);
        node.set_weight_ratio(5);
        assert_eq!(node.weight_ratio(), 5);
        let fifo = StorageNode::new(&NodeConfig {
            discipline: DisciplineKind::Fifo,
            ..NodeConfig::default()
        });
        assert_eq!(fifo.weight_ratio(), 1);
    }

    #[test]
    fn qd_respected_through_stack() {
        let cfg = NodeConfig {
            ssd: ssd_sim::SsdConfig {
                queue_depth: 4,
                ..ssd_sim::SsdConfig::ssd_a()
            },
            discipline: DisciplineKind::Fifo,
            merge_cap: None,
        };
        let mut node = StorageNode::new(&cfg);
        for i in 0..10 {
            let _ = node.submit(req(i, IoType::Read, 16 * 1024), SimTime::ZERO);
        }
        assert_eq!(node.ssd().in_flight(), 4);
        assert_eq!(node.discipline().queued(), 6);
    }
}
