//! A Target's storage stack, standalone: NVMe queueing discipline
//! ([`nvme_queues`]) feeding the SSD model ([`ssd_sim`]) under one event
//! loop, with no network in the way.
//!
//! This is the harness behind the paper's device-level experiments:
//! Fig. 5's weight-ratio sweeps, and the training-sample generation for
//! the throughput prediction model (Tables I and III). The full
//! disaggregated system (initiators, RDMA network, DCQCN, SRC) lives in
//! the `system-sim` crate and reuses [`StorageNode`] as the per-target
//! storage stack.
//!
//! # Example
//!
//! ```
//! use storage_node::{run_trace, DisciplineKind, NodeConfig};
//! use workload::micro::{generate_micro, MicroConfig};
//!
//! let trace = generate_micro(&MicroConfig { read_count: 200, write_count: 200,
//!     ..MicroConfig::default() }, 1);
//! let cfg = NodeConfig { discipline: DisciplineKind::Ssq { weight: 2 },
//!     ..NodeConfig::default() };
//! let report = run_trace(&cfg, &trace);
//! assert_eq!(report.reads_completed + report.writes_completed, 400);
//! ```

pub mod node;
pub mod report;
pub mod runner;
pub mod sweep;

pub use node::{DisciplineKind, NodeConfig, StorageNode};
pub use report::NodeReport;
pub use runner::{
    run_trace, run_trace_windowed, run_trace_windowed_in, run_trace_windowed_with_schedule,
    run_trace_with_schedule,
};
pub use sweep::{weight_sweep, weight_sweep_source, SweepPoint};
