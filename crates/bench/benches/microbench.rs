//! Microbenchmarks of the hot paths: event queue, token bucket, DCQCN
//! updates, WRR arbitration, SSD transaction pipeline, feature
//! extraction and random-forest train/predict.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ml::{Dataset, RandomForest, RandomForestParams, Regressor};
use net_sim::{DcqcnParams, RpState};
use nvme_queues::{QueueDiscipline, SsqQueues};
use sim_engine::{EventQueue, Rate, SimDuration, SimTime, TokenBucket};
use ssd_sim::standalone::run_closed_loop;
use ssd_sim::{SsdCommand, SsdConfig};
use workload::micro::{generate_micro, MicroConfig};
use workload::{extract_features, IoType, Request};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_ns((i * 37) % 50_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_token_bucket(c: &mut Criterion) {
    c.bench_function("token_bucket_consume", |b| {
        let mut tb = TokenBucket::new(Rate::from_gbps(40), 64 * 1024);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_ns(300);
            black_box(tb.try_consume(t, 1500))
        })
    });
}

fn bench_dcqcn(c: &mut Criterion) {
    let p = DcqcnParams::default();
    c.bench_function("dcqcn_cnp_and_recover", |b| {
        let mut rp = RpState::new(Rate::from_gbps(40));
        b.iter(|| {
            rp.on_cnp(&p);
            for _ in 0..8 {
                rp.on_rate_timer();
                rp.increase(&p);
            }
            black_box(rp.rate)
        })
    });
}

fn bench_wrr(c: &mut Criterion) {
    let mut g = c.benchmark_group("ssq");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("wrr_fetch_1k", |b| {
        b.iter(|| {
            let mut q = SsqQueues::new(128, 4);
            for i in 0..500u64 {
                q.enqueue(Request {
                    id: i,
                    op: IoType::Read,
                    lba: 1_000_000 + i * 32,
                    size: 16 * 1024,
                    arrival: SimTime::ZERO,
                });
                q.enqueue(Request {
                    id: 10_000 + i,
                    op: IoType::Write,
                    lba: 9_000_000 + i * 32,
                    size: 16 * 1024,
                    arrival: SimTime::ZERO,
                });
            }
            let mut n = 0;
            while let Some(cmd) = q.fetch() {
                q.on_complete(cmd.op);
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_ssd(c: &mut Criterion) {
    let mut g = c.benchmark_group("ssd");
    g.sample_size(10);
    g.bench_function("closed_loop_500_reads", |b| {
        b.iter(|| {
            let cmds: Vec<SsdCommand> = (0..500)
                .map(|i| SsdCommand {
                    id: i,
                    op: IoType::Read,
                    lba: (i * 64) % (1 << 20),
                    size: 32 * 1024,
                })
                .collect();
            black_box(run_closed_loop(SsdConfig::ssd_a(), cmds))
        })
    });
    g.finish();
}

fn bench_features_and_forest(c: &mut Criterion) {
    let trace = generate_micro(
        &MicroConfig {
            read_count: 2_000,
            write_count: 2_000,
            ..MicroConfig::default()
        },
        1,
    );
    c.bench_function("feature_extraction_4k_requests", |b| {
        b.iter(|| black_box(extract_features(trace.requests())))
    });

    // A small regression problem shaped like the TPM's.
    let x: Vec<Vec<f64>> = (0..256)
        .map(|i| (0..12).map(|j| ((i * (j + 3)) % 17) as f64).collect())
        .collect();
    let y: Vec<Vec<f64>> = x
        .iter()
        .map(|r| vec![r[0] * 0.5 + r[11], r[3] - r[11] * 0.2])
        .collect();
    let data = Dataset::new(x, y);
    let mut g = c.benchmark_group("forest");
    g.sample_size(10);
    g.bench_function("train_30_trees_256x12", |b| {
        b.iter(|| {
            black_box(RandomForest::fit(
                &data,
                &RandomForestParams {
                    n_trees: 30,
                    ..Default::default()
                },
                7,
            ))
        })
    });
    let forest = RandomForest::fit(
        &data,
        &RandomForestParams {
            n_trees: 100,
            ..Default::default()
        },
        7,
    );
    g.bench_function("predict_100_trees", |b| {
        let q: Vec<f64> = (0..12).map(|j| j as f64).collect();
        b.iter(|| black_box(forest.predict_one(&q)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_token_bucket,
    bench_dcqcn,
    bench_wrr,
    bench_ssd,
    bench_features_and_forest
);
criterion_main!(benches);
