//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * `ablation_txq` — TXQ watermark depth vs the backpressure cliff;
//! * `ablation_cmt` — CMT capacity vs device throughput (miss penalty);
//! * `ablation_wrr_vs_fifo` — the queueing discipline itself under a
//!   saturating mixed workload;
//! * `ablation_forest_size` — TPM accuracy/cost tradeoff across tree
//!   counts;
//! * `ablation_executor` — serial vs parallel `ScenarioRunner` on a
//!   weight sweep (the determinism contract makes the outputs
//!   identical, so this measures pure executor overhead/speedup).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ml::{Dataset, RandomForest, RandomForestParams, Regressor};
use sim_engine::runner::with_threads;
use sim_engine::ByteSize;
use ssd_sim::SsdConfig;
use storage_node::{run_trace_windowed, weight_sweep, DisciplineKind, NodeConfig};
use workload::micro::{generate_micro, MicroConfig};

fn saturating_trace(seed: u64) -> workload::Trace {
    generate_micro(
        &MicroConfig {
            read_iat_mean_us: 8.0,
            write_iat_mean_us: 8.0,
            read_size_mean: 36_000.0,
            write_size_mean: 36_000.0,
            read_count: 1_500,
            write_count: 1_500,
            ..MicroConfig::default()
        },
        seed,
    )
}

fn ablation_wrr_vs_fifo(c: &mut Criterion) {
    let trace = saturating_trace(3);
    let mut g = c.benchmark_group("ablation_discipline");
    g.sample_size(10);
    for (name, disc) in [
        ("fifo", DisciplineKind::Fifo),
        ("ssq_w1", DisciplineKind::Ssq { weight: 1 }),
        ("ssq_w4", DisciplineKind::Ssq { weight: 4 }),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &disc, |b, disc| {
            b.iter(|| {
                black_box(run_trace_windowed(
                    &NodeConfig {
                        ssd: SsdConfig::ssd_a(),
                        discipline: *disc,
                        merge_cap: None,
                    },
                    &trace,
                ))
            })
        });
    }
    g.finish();
}

fn ablation_cmt(c: &mut Criterion) {
    let trace = saturating_trace(5);
    let mut g = c.benchmark_group("ablation_cmt");
    g.sample_size(10);
    for mib in [0u64, 2, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(mib), &mib, |b, &mib| {
            let cfg = NodeConfig {
                ssd: SsdConfig {
                    cmt: ByteSize::from_mib(mib),
                    ..SsdConfig::ssd_a()
                },
                discipline: DisciplineKind::Ssq { weight: 1 },
                merge_cap: None,
            };
            b.iter(|| black_box(run_trace_windowed(&cfg, &trace)))
        });
    }
    g.finish();
}

fn ablation_forest_size(c: &mut Criterion) {
    let x: Vec<Vec<f64>> = (0..200)
        .map(|i| (0..12).map(|j| ((i * (j + 3)) % 23) as f64).collect())
        .collect();
    let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0] + r[11] * 2.0, r[5]]).collect();
    let data = Dataset::new(x, y);
    let mut g = c.benchmark_group("ablation_forest_size");
    g.sample_size(10);
    for n_trees in [10usize, 50, 100] {
        g.bench_with_input(BenchmarkId::from_parameter(n_trees), &n_trees, |b, &n| {
            b.iter(|| {
                let f = RandomForest::fit(
                    &data,
                    &RandomForestParams {
                        n_trees: n,
                        ..Default::default()
                    },
                    1,
                );
                black_box(f.predict_one(&[1.0; 12]))
            })
        });
    }
    g.finish();
}

fn ablation_executor(c: &mut Criterion) {
    let trace = saturating_trace(9);
    let ssd = SsdConfig::ssd_a();
    let weights: Vec<u32> = (1..=8).collect();
    let mut g = c.benchmark_group("ablation_executor");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| with_threads(t, || black_box(weight_sweep(&ssd, &trace, &weights))))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_wrr_vs_fifo,
    ablation_cmt,
    ablation_forest_size,
    ablation_executor
);
criterion_main!(benches);
