//! Scaled-down end-to-end runs of every paper experiment, so
//! `cargo bench` exercises each table/figure code path with measured
//! timings. Full-scale reproductions are the `src/bin` binaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sim_engine::NullSink;
use ssd_sim::SsdConfig;
use system_sim::experiments::{
    fig10, fig5, fig7_fig8, fig9, table1, table3, table4, train_tpm, Scale, TrainKnob,
};

fn bench_scale() -> Scale {
    Scale {
        requests_per_target: 400,
        train: TrainKnob::Quick,
    }
}

fn tiny_scale() -> Scale {
    Scale {
        requests_per_target: 200,
        train: TrainKnob::Quick,
    }
}

fn bench_experiments(c: &mut Criterion) {
    let ssd = SsdConfig::ssd_a();
    let scale = bench_scale();
    let tpm = train_tpm(&ssd, &tiny_scale(), 42);

    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    g.bench_function("fig5_grid", |b| {
        let s = tiny_scale();
        b.iter(|| black_box(fig5(&ssd, &s, 1)))
    });
    g.bench_function("table1_models", |b| {
        let s = tiny_scale();
        b.iter(|| black_box(table1(&ssd, &s, 1)))
    });
    g.bench_function("table3_crossval", |b| {
        let s = tiny_scale();
        b.iter(|| black_box(table3(&ssd, &s, 1)))
    });
    g.bench_function("fig7_fig8_both_modes", |b| {
        b.iter(|| {
            black_box(fig7_fig8(
                &ssd,
                &scale,
                tpm.clone(),
                7,
                (&mut NullSink, &mut NullSink),
            ))
        })
    });
    g.bench_function("fig9_scripted", |b| {
        let s = tiny_scale();
        b.iter(|| black_box(fig9(&s, 11, &mut NullSink)))
    });
    g.bench_function("fig10_intensities", |b| {
        let s = tiny_scale();
        b.iter(|| black_box(fig10(&ssd, &s, tpm.clone(), 23)))
    });
    g.bench_function("table4_incast", |b| {
        let s = tiny_scale();
        b.iter(|| black_box(table4(&ssd, &s, tpm.clone(), 31)))
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
