//! Reproduce Fig. 10: workload-intensity sensitivity — light, moderate
//! and heavy micro workloads under DCQCN-only vs DCQCN-SRC.
//!
//! With `SRCSIM_CHECKPOINT=<prefix>` the TPM training sweep and the
//! per-intensity grid commit completed cells to sweep manifests; a
//! killed run resumes from the last committed cell on re-invocation.
//!
//! Usage: `fig10_intensity [quick|full]`

use src_bench::{announce_checkpoint, rule, scale_from_args, scale_label};
use ssd_sim::SsdConfig;
use system_sim::experiments::{fig10, train_tpm};

fn main() {
    let scale = scale_from_args();
    println!("Fig. 10 — workload intensity ({})", scale_label(&scale));
    rule();
    announce_checkpoint();
    let ssd = SsdConfig::ssd_a();
    eprintln!("training TPM on SSD-A ...");
    let tpm = train_tpm(&ssd, &scale, 42);
    eprintln!("running 3 intensities x 2 modes ...");
    let rows = fig10(&ssd, &scale, tpm, 23);

    println!(
        "{:<10} {:>16} {:>16} {:>12}",
        "intensity", "DCQCN-only", "DCQCN-SRC", "improvement"
    );
    for (label, only, src) in &rows {
        let o = only.aggregated_tput().as_gbps_f64();
        let s = src.aggregated_tput().as_gbps_f64();
        println!(
            "{label:<10} {o:>11.2} Gbps {s:>11.2} Gbps {:>10.1} %",
            (s - o) / o.max(1e-9) * 100.0
        );
    }
    rule();
    println!(
        "paper: no visible difference for the light workload (WRR fades \
         out);\nsignificant write-throughput gains for moderate and heavy."
    );
}
