//! Extension experiment: heterogeneous device fleets. An alternating
//! SSD-A / SSD-B mix swept over the Table IV in-cast ratios, with one
//! TPM per device model so each Target's SRC weight decisions track its
//! own device. Reports per-device and aggregate throughput for
//! DCQCN-only vs DCQCN-SRC.
//!
//! With `SRCSIM_CHECKPOINT=<prefix>` the sweep commits completed cells
//! to `<prefix>.ext_heterogeneous.<tag>.ckpt.jsonl`; a killed run
//! resumes from the last committed cell on re-invocation.
//!
//! With `SRCSIM_TRACE=<prefix>` an extra traced 4:1 DCQCN-SRC run
//! streams to `<prefix>.het_4to1_src.jsonl`, including the per-target
//! `model_ssd_a`/`model_ssd_b` gauges that identify each Target's
//! device in the trace.
//!
//! Usage: `ext_heterogeneous [quick|full]`

use sim_engine::FileSink;
use src_bench::{announce_checkpoint, rule, scale_from_args, scale_label};
use ssd_sim::SsdConfig;
use system_sim::config::{spread_trace, Mode, SystemConfig};
use system_sim::experiments::{
    ab_fleet, ext_heterogeneous, paper_background, paper_pfc, train_fleet_tpms, train_tpm,
};
use system_sim::{run_system, RunOptions};
use workload::micro::{generate_micro, MicroConfig};

const SEED: u64 = 17;

fn main() {
    let scale = scale_from_args();
    println!(
        "Extension — heterogeneous SSD-A/SSD-B fleet over in-cast ratios ({})",
        scale_label(&scale)
    );
    rule();
    announce_checkpoint();
    eprintln!("training TPMs on SSD-A and SSD-B ...");
    let tpm_a = train_tpm(&SsdConfig::ssd_a(), &scale, 42);
    let tpm_b = train_tpm(&SsdConfig::ssd_b(), &scale, 42);
    let rows = ext_heterogeneous(&scale, tpm_a.clone(), tpm_b.clone(), SEED);

    println!(
        "{:<6} {:>12} {:>12} {:>8}   per-device (only -> src, Gbps)",
        "ratio", "only", "src", "gain"
    );
    for r in &rows {
        let lanes: Vec<String> = r
            .lanes
            .iter()
            .map(|l| {
                format!(
                    "t{} {}: {:.2} -> {:.2}",
                    l.target,
                    l.model.replace("ssd_", "").to_uppercase(),
                    l.only_gbps,
                    l.src_gbps
                )
            })
            .collect();
        println!(
            "{:<6} {:>9.2} Gbps {:>7.2} Gbps {:>+7.1}%   {}",
            r.ratio,
            r.only_gbps,
            r.src_gbps,
            r.improvement_pct,
            lanes.join(", ")
        );
    }
    rule();

    if let Some(prefix) = std::env::var_os("SRCSIM_TRACE") {
        let prefix = prefix.to_string_lossy().into_owned();
        let path = format!("{prefix}.het_4to1_src.jsonl");
        if let Some(dir) = std::path::Path::new(&path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir).expect("create trace dir");
        }
        eprintln!("tracing the 4:1 DCQCN-SRC cell -> {path} ...");
        let ssds = ab_fleet(4);
        let tpms = train_fleet_tpms(&ssds, &scale, 42);
        let trace = generate_micro(
            &MicroConfig {
                read_iat_mean_us: 9.2,
                write_iat_mean_us: 9.2,
                read_size_mean: 44_000.0,
                write_size_mean: 23_000.0,
                read_count: scale.requests_per_target * 4,
                write_count: scale.requests_per_target * 4,
                ..MicroConfig::default()
            },
            SEED,
        );
        let assignments = spread_trace(&trace, 1, 4);
        let cfg = SystemConfig::builder()
            .n_initiators(1)
            .n_targets(4)
            .ssds(ssds)
            .mode(Mode::DcqcnSrc)
            .background(paper_background(&assignments))
            .pfc(paper_pfc())
            .build();
        let mut sink = FileSink::create(&path).expect("create trace file");
        let _ = run_system(
            &cfg,
            RunOptions::assignments(&assignments).tpm_fleet(&tpms),
            &mut sink,
        );
        let samples = sink.samples_written();
        sink.finish().expect("flush trace file");
        println!("trace: {path} ({samples} samples; per-target model gauges included)");
        rule();
    }

    println!(
        "finding: per-device TPMs let SRC pick each Target's weight from its own\n\
         device's predicted throughput, so the slow SSD-As and the fast SSD-Bs are\n\
         throttled independently instead of sharing one model's operating point."
    );
}
