//! Extension experiment: fault injection and initiator robustness. The
//! Table IV in-cast ratios swept across fault intensities 0 / 0.5 / 1:
//! every cell runs DCQCN-only vs DCQCN-SRC against the identical seeded
//! fault plan (Target-0 uplink degradation and packet loss, fabric-wide
//! CNP loss, an SSD latency spike and fail-stop window, and — at full
//! intensity — a Target dropout), with the initiator timeout/retry
//! policy armed. Intensity 0 is the empty plan and reproduces the
//! fault-free Table IV cells bit-identically.
//!
//! With `SRCSIM_CHECKPOINT=<prefix>` the sweep commits completed cells
//! to `<prefix>.ext_faults.<tag>.ckpt.jsonl`; a killed run resumes from
//! the last committed cell on re-invocation. The manifest fingerprint
//! embeds every cell's resolved fault plan, so editing the schedule
//! invalidates stale manifests.
//!
//! With `SRCSIM_TRACE=<prefix>` an extra traced 4:1 DCQCN-SRC run at
//! full intensity streams to `<prefix>.faults_4to1_src.jsonl`,
//! including the fabric timeout/retry/abandon counters.
//!
//! Usage: `ext_faults [quick|full]`

use sim_engine::FileSink;
use src_bench::{announce_checkpoint, rule, scale_from_args, scale_label};
use ssd_sim::SsdConfig;
use system_sim::config::{spread_source, Mode, SystemConfig};
use system_sim::experiments::{
    ext_faults, fault_horizon, fault_robustness, faults_for_incast, incast_spec, paper_background,
    paper_pfc, train_tpm,
};
use system_sim::{run_system, RunOptions};

const SEED: u64 = 29;

fn main() {
    let scale = scale_from_args();
    println!(
        "Extension — in-cast sweep under seeded fault injection ({})",
        scale_label(&scale)
    );
    rule();
    announce_checkpoint();
    let ssd = SsdConfig::ssd_a();
    eprintln!("training TPM ...");
    let tpm = train_tpm(&ssd, &scale, 42);
    let rows = ext_faults(&ssd, &scale, tpm.clone(), SEED);

    println!(
        "{:<6} {:>5} {:>12} {:>12} {:>8} {:>9} {:>8} {:>10} {:>7}",
        "ratio", "fault", "only", "src", "gain", "timeouts", "retries", "abandoned", "avail"
    );
    for r in &rows {
        println!(
            "{:<6} {:>5.2} {:>9.2} Gbps {:>7.2} Gbps {:>+7.1}% {:>9} {:>8} {:>10} {:>6.1}%",
            r.ratio,
            r.intensity,
            r.only_gbps,
            r.src_gbps,
            r.improvement_pct,
            r.timeouts,
            r.retries,
            r.abandoned,
            r.min_availability * 100.0
        );
    }
    rule();

    if let Some(prefix) = std::env::var_os("SRCSIM_TRACE") {
        let prefix = prefix.to_string_lossy().into_owned();
        let path = format!("{prefix}.faults_4to1_src.jsonl");
        if let Some(dir) = std::path::Path::new(&path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir).expect("create trace dir");
        }
        eprintln!("tracing the 4:1 full-intensity DCQCN-SRC cell -> {path} ...");
        let spec = incast_spec(&scale, 4);
        let assignments = spread_source(&spec, SEED, 1, 4);
        let plan = faults_for_incast(1.0, fault_horizon(&scale), 1, 4, SEED);
        let cfg = SystemConfig::builder()
            .n_initiators(1)
            .n_targets(4)
            .ssd(ssd.clone())
            .mode(Mode::DcqcnSrc)
            .workload(spec)
            .background(paper_background(&assignments))
            .pfc(paper_pfc())
            .build();
        let mut sink = FileSink::create(&path).expect("create trace file");
        let report = run_system(
            &cfg,
            RunOptions::assignments(&assignments)
                .faults(&plan)
                .robustness(fault_robustness(&scale))
                .tpm(tpm),
            &mut sink,
        );
        let samples = sink.samples_written();
        sink.finish().expect("flush trace file");
        println!(
            "trace: {path} ({samples} samples; {} timeouts, {} retries, {} abandoned)",
            report.timeouts, report.retries, report.abandoned
        );
        rule();
    }

    println!(
        "finding: the timeout/retry policy converts every injected loss into\n\
         recovered work — zero abandoned requests and 100% availability across\n\
         the grid — at the price of a retry tail that stretches the measured\n\
         makespan. The storm itself sets the throughput cost in both modes, and\n\
         SRC's fault-free edge narrows or inverts at full intensity: the\n\
         per-target damage lands exactly on the flows SRC keeps busiest, while\n\
         the already-collapsed DCQCN-only flows have little left to lose."
    );
}
