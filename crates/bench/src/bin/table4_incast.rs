//! Reproduce Table IV: in-cast ratio analysis — aggregated throughput
//! of DCQCN-SRC vs DCQCN-only at Targets:Initiators ratios of 2:1, 3:1,
//! 4:1 and 4:4 under (approximately) constant total traffic.
//!
//! With `SRCSIM_CHECKPOINT=<prefix>` the TPM training sweep and the
//! per-ratio grid commit completed cells to sweep manifests
//! (`<prefix>.tpm_train.<tag>.ckpt.jsonl`, `<prefix>.table4.<tag>.ckpt.jsonl`);
//! a killed run resumes from the last committed cell on re-invocation.
//!
//! Usage: `table4_incast [quick|full]`

use src_bench::{announce_checkpoint, rule, scale_from_args, scale_label};
use ssd_sim::SsdConfig;
use system_sim::experiments::{table4, train_tpm};

fn main() {
    let scale = scale_from_args();
    println!(
        "Table IV — in-cast ratio analysis ({})",
        scale_label(&scale)
    );
    rule();
    announce_checkpoint();
    let ssd = SsdConfig::ssd_a();
    eprintln!("training TPM on SSD-A ...");
    let tpm = train_tpm(&ssd, &scale, 42);
    eprintln!("running 4 ratios x 2 modes ...");
    let rows = table4(&ssd, &scale, tpm, 31);

    println!(
        "{:>8} {:>14} {:>14} {:>13}",
        "ratio", "DCQCN-SRC", "DCQCN-only", "improvement"
    );
    for row in &rows {
        println!(
            "{:>8} {:>11.2} Gbps {:>11.2} Gbps {:>11.1} %",
            row.ratio, row.src_gbps, row.only_gbps, row.improvement_pct
        );
    }
    rule();
    println!("paper: 33 % / 17 % / 5 % / 3 % — the benefit shrinks as load");
    println!("spreads over more Targets and as more Initiators relieve congestion.");
    println!(
        "\n{}",
        serde_json::to_string_pretty(&rows).expect("serializable rows")
    );
}
