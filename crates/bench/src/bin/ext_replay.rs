//! Extension experiment: the Table IV in-cast sweep driven by a
//! *replayed* recording instead of the synthetic generators. A
//! fio-style JSON-lines trace is parsed into a [`ReplaySpec`], a TPM is
//! trained from profiles *fitted to the recording* (the paper's
//! fit-then-generate methodology closed over the replay), and the
//! recording is spread over Targets:Initiators of 2:1, 3:1, 4:1 and
//! 4:4 with DCQCN-only vs DCQCN-SRC in every cell.
//!
//! With `SRCSIM_CHECKPOINT=<prefix>` the TPM training grid and the
//! in-cast sweep commit completed cells to
//! `<prefix>.tpm_replay.<tag>.ckpt.jsonl` and
//! `<prefix>.ext_replay.<tag>.ckpt.jsonl`; a killed run resumes from
//! the last committed cell on re-invocation.
//!
//! With `SRCSIM_TRACE=<prefix>` an extra traced 4:1 DCQCN-SRC replay
//! cell streams its runtime telemetry to `<prefix>.replay_4to1_src.jsonl`.
//!
//! Usage: `ext_replay [quick|full] [trace.jsonl]`
//! (default trace: the committed `tests/fixtures/replay_incast_seed2026.jsonl`)

use std::fs::File;
use std::io::BufReader;

use sim_engine::FileSink;
use src_bench::{announce_checkpoint, rule, scale_from_args, scale_label};
use src_core::ThroughputPredictionModel;
use ssd_sim::SsdConfig;
use std::sync::Arc;
use system_sim::config::{Mode, SystemConfig};
use system_sim::experiments::{ext_replay, paper_pfc, train_tpm};
use system_sim::{run_system, RunOptions};
use workload::source::{ReplaySpec, WorkloadSource, WorkloadSpec};
use workload::trace_io::{read_fio_jsonl, FioReadOptions};

const SEED: u64 = 47;

fn default_fixture() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/replay_incast_seed2026.jsonl"
    )
    .to_string()
}

fn main() {
    let scale = scale_from_args();
    let path = std::env::args().nth(2).unwrap_or_else(default_fixture);
    println!(
        "Extension — in-cast sweep replaying {path} ({})",
        scale_label(&scale)
    );
    rule();
    announce_checkpoint();
    if let Some(prefix) = std::env::var_os("SRCSIM_TRACE") {
        eprintln!(
            "tracing the 4:1 DCQCN-SRC replay cell to {}.replay_4to1_src.jsonl",
            prefix.to_string_lossy()
        );
    }

    let file = File::open(&path).unwrap_or_else(|e| panic!("open {path}: {e}"));
    let trace = read_fio_jsonl(BufReader::new(file), &FioReadOptions::default())
        .unwrap_or_else(|e| panic!("{path}: {e}"));
    let mut replay = ReplaySpec::new(&path, trace);
    if scale.requests_per_target < 1_000 {
        // Quick scale: replay a prefix of the recording.
        replay = replay.truncate(scale.requests_per_target * 4);
    }
    println!(
        "recording: {} requests over {:.1} ms; replaying {} \
         (~{:.1} Gbps offered reads)",
        replay.trace.len(),
        replay.trace.span().as_ms_f64(),
        replay.label(),
        replay.offered_read_load_bps().unwrap_or(0.0) / 1e9,
    );

    let ssd = SsdConfig::ssd_a();
    eprintln!("fitting profiles to the recording and training a TPM ...");
    let tpm = match ThroughputPredictionModel::train_for_replay(
        &ssd,
        &replay.trace,
        &scale.training_config(),
        42,
    ) {
        Some(m) => Arc::new(m),
        None => {
            eprintln!("recording too small to fit profiles; training on the micro grid");
            train_tpm(&ssd, &scale, 42)
        }
    };

    let rows = ext_replay(&ssd, &replay, tpm.clone(), SEED);
    println!("{:<6} {:>12} {:>12} {:>8}", "ratio", "only", "src", "gain");
    for r in &rows {
        println!(
            "{:<6} {:>9.2} Gbps {:>7.2} Gbps {:>+7.1}%",
            r.ratio, r.only_gbps, r.src_gbps, r.improvement_pct
        );
    }
    rule();

    if let Some(prefix) = std::env::var_os("SRCSIM_TRACE") {
        let prefix = prefix.to_string_lossy().into_owned();
        let out = format!("{prefix}.replay_4to1_src.jsonl");
        if let Some(dir) = std::path::Path::new(&out)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir).expect("create trace dir");
        }
        eprintln!("tracing the 4:1 DCQCN-SRC replay cell -> {out} ...");
        let spec = WorkloadSpec::Replay(replay.clone());
        let cfg = SystemConfig::builder()
            .n_initiators(1)
            .n_targets(4)
            .ssd(ssd.clone())
            .mode(Mode::DcqcnSrc)
            .workload(spec)
            .pfc(paper_pfc())
            .build();
        let mut sink = FileSink::create(&out).expect("create trace file");
        let _ = run_system(&cfg, RunOptions::seeded(SEED).tpm(tpm), &mut sink);
        let samples = sink.samples_written();
        sink.finish().expect("flush trace file");
        println!("trace: {out} ({samples} samples)");
        rule();
    }

    println!(
        "finding: SRC's weight control carries over from synthetic generators to\n\
         replayed recordings — the TPM fitted to the recording's own per-class\n\
         profiles steers SSQ weights through the same in-cast sweep."
    );
}
