//! Reproduce Figs. 7 and 8: runtime read/write/aggregated throughput
//! and PFC pause counts under DCQCN-only vs DCQCN-SRC, on the VDI-like
//! synthetic workload (1 Initiator × 2 Targets, SSD-A).
//!
//! Usage: `fig7_fig8_throughput [quick|full]`

use src_bench::{rule, scale_from_args, scale_label};
use ssd_sim::SsdConfig;
use system_sim::experiments::{fig7_fig8, train_tpm};
use system_sim::SystemReport;

fn series_table(label: &str, r: &SystemReport, step_ms: usize) {
    println!("\n{label}: per-{step_ms}ms throughput (Gbps) and pauses");
    println!("{:>7} {:>9} {:>9} {:>9} {:>8}", "t(ms)", "read", "write", "aggr", "pauses");
    let reads = r.read_series.bins();
    let writes = r.write_series.bins();
    let pauses = r.pause_series.bins();
    let n = reads.len().max(writes.len());
    let to_gbps = |v: f64| v * 8.0 / 1e6; // bytes per 1ms bin -> Gbps
    let mut t = 0;
    while t < n {
        let rsum: f64 = reads.iter().skip(t).take(step_ms).sum::<f64>() / step_ms as f64;
        let wsum: f64 = writes.iter().skip(t).take(step_ms).sum::<f64>() / step_ms as f64;
        let psum: f64 = pauses.iter().skip(t).take(step_ms).sum();
        println!(
            "{:>7} {:>9.2} {:>9.2} {:>9.2} {:>8.0}",
            t,
            to_gbps(rsum),
            to_gbps(wsum),
            to_gbps(rsum + wsum),
            psum
        );
        t += step_ms;
    }
}

fn main() {
    let scale = scale_from_args();
    println!(
        "Figs. 7/8 — runtime throughput and pause number ({})",
        scale_label(&scale)
    );
    rule();
    let ssd = SsdConfig::ssd_a();
    eprintln!("training TPM on SSD-A ...");
    let tpm = train_tpm(&ssd, &scale, 42);
    eprintln!("running DCQCN-only and DCQCN-SRC ...");
    let r = fig7_fig8(&ssd, &scale, tpm, 7);

    let step = (r.dcqcn_only.read_series.len() / 20).max(1);
    series_table("DCQCN-only", &r.dcqcn_only, step);
    series_table("DCQCN-SRC", &r.dcqcn_src, step);

    rule();
    let o = &r.dcqcn_only;
    let s = &r.dcqcn_src;
    println!(
        "summary        read      write      aggregate   pauses   makespan"
    );
    println!(
        "DCQCN-only {:>7.2} {:>10.2} {:>11.2} Gbps {:>7} {:>8.1} ms",
        o.read_tput().as_gbps_f64(),
        o.write_tput().as_gbps_f64(),
        o.aggregated_tput().as_gbps_f64(),
        o.pauses_total,
        o.makespan.as_ms_f64()
    );
    println!(
        "DCQCN-SRC  {:>7.2} {:>10.2} {:>11.2} Gbps {:>7} {:>8.1} ms",
        s.read_tput().as_gbps_f64(),
        s.write_tput().as_gbps_f64(),
        s.aggregated_tput().as_gbps_f64(),
        s.pauses_total,
        s.makespan.as_ms_f64()
    );
    let gain = (s.aggregated_tput().as_gbps_f64() / o.aggregated_tput().as_gbps_f64() - 1.0) * 100.0;
    println!("\naggregate improvement of SRC: {gain:+.0} %");
    println!(
        "paper: DCQCN-only aggregate collapses (7.5 -> 2.5 Gbps) during \
         congestion;\nSRC holds it near the uncongested level and boosts writes."
    );
}
