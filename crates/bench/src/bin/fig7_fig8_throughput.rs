//! Reproduce Figs. 7 and 8: runtime read/write/aggregated throughput
//! and PFC pause counts under DCQCN-only vs DCQCN-SRC, on the VDI-like
//! synthetic workload (1 Initiator × 2 Targets, SSD-A).
//!
//! Both runs stream telemetry; the traces land in
//! `results/fig7_fig8_dcqcn_only.jsonl` and
//! `results/fig7_fig8_dcqcn_src.jsonl` (deterministic: same seed →
//! byte-identical files).
//!
//! With `SRCSIM_TRACE=<prefix>` each mode streams straight to
//! `<prefix>.dcqcn_only.jsonl` / `<prefix>.dcqcn_src.jsonl` through
//! [`FileSink`]s as the simulations run (bounded memory, same schema);
//! without it the traces buffer in [`RingSink`]s, which additionally
//! enables the in-memory series summaries below.
//!
//! With `SRCSIM_CHECKPOINT=<prefix>` the TPM training sweep commits
//! completed cells to `<prefix>.tpm_train.<tag>.ckpt.jsonl`; a killed
//! run resumes from the last committed cell on re-invocation.
//!
//! Usage: `fig7_fig8_throughput [quick|full]`

use sim_engine::{FileSink, RingSink, TelemetryReport};
use src_bench::{announce_checkpoint, rule, scale_from_args, scale_label};
use ssd_sim::SsdConfig;
use system_sim::experiments::{fig7_fig8, train_tpm, Fig7Result};
use system_sim::SystemReport;

const SEED: u64 = 7;
const ONLY_PATH: &str = "results/fig7_fig8_dcqcn_only.jsonl";
const SRC_PATH: &str = "results/fig7_fig8_dcqcn_src.jsonl";

fn series_table(label: &str, r: &SystemReport, step_ms: usize) {
    println!("\n{label}: per-{step_ms}ms throughput (Gbps) and pauses");
    println!(
        "{:>7} {:>9} {:>9} {:>9} {:>8}",
        "t(ms)", "read", "write", "aggr", "pauses"
    );
    let reads = r.read_series.bins();
    let writes = r.write_series.bins();
    let pauses = r.pause_series.bins();
    let n = reads.len().max(writes.len());
    let to_gbps = |v: f64| v * 8.0 / 1e6; // bytes per 1ms bin -> Gbps
    let mut t = 0;
    while t < n {
        let rsum: f64 = reads.iter().skip(t).take(step_ms).sum::<f64>() / step_ms as f64;
        let wsum: f64 = writes.iter().skip(t).take(step_ms).sum::<f64>() / step_ms as f64;
        let psum: f64 = pauses.iter().skip(t).take(step_ms).sum();
        println!(
            "{:>7} {:>9.2} {:>9.2} {:>9.2} {:>8.0}",
            t,
            to_gbps(rsum),
            to_gbps(wsum),
            to_gbps(rsum + wsum),
            psum
        );
        t += step_ms;
    }
}

fn telemetry_summary(label: &str, rep: &TelemetryReport) {
    let rates = rep.series("dcqcn", "rate_gbps");
    let min_rate = rates
        .iter()
        .map(|&(_, _, v)| v)
        .fold(f64::INFINITY, f64::min);
    let backlog = rep.series("txq", "backlog_bytes");
    let max_backlog = backlog.iter().map(|&(_, _, v)| v).fold(0.0, f64::max);
    println!(
        "{label:<11} rate samples {:>6} (min {:>6.2} Gbps)  txq max {:>6.0} KB  \
         ecn {:>6}  cnps {:>5}  gate closures {:>3}",
        rates.len(),
        if min_rate.is_finite() { min_rate } else { 0.0 },
        max_backlog / 1024.0,
        rep.counter(("net", 0, "ecn_marked")),
        rep.counter(("net", 0, "cnps_sent")),
        rep.counter(("txq", 0, "gate_closures")),
    );
}

fn streaming_summary(label: &str, sink: &FileSink) {
    println!(
        "{label:<11} samples {:>7}  ecn {:>6}  cnps {:>5}  gate closures {:>3}",
        sink.samples_written(),
        sink.counter(("net", 0, "ecn_marked")),
        sink.counter(("net", 0, "cnps_sent")),
        sink.counter(("txq", 0, "gate_closures")),
    );
}

fn print_results(r: &Fig7Result) {
    let step = (r.dcqcn_only.read_series.len() / 20).max(1);
    series_table("DCQCN-only", &r.dcqcn_only, step);
    series_table("DCQCN-SRC", &r.dcqcn_src, step);

    rule();
    let o = &r.dcqcn_only;
    let s = &r.dcqcn_src;
    println!("summary        read      write      aggregate   pauses   makespan");
    println!(
        "DCQCN-only {:>7.2} {:>10.2} {:>11.2} Gbps {:>7} {:>8.1} ms",
        o.read_tput().as_gbps_f64(),
        o.write_tput().as_gbps_f64(),
        o.aggregated_tput().as_gbps_f64(),
        o.pauses_total,
        o.makespan.as_ms_f64()
    );
    println!(
        "DCQCN-SRC  {:>7.2} {:>10.2} {:>11.2} Gbps {:>7} {:>8.1} ms",
        s.read_tput().as_gbps_f64(),
        s.write_tput().as_gbps_f64(),
        s.aggregated_tput().as_gbps_f64(),
        s.pauses_total,
        s.makespan.as_ms_f64()
    );
    let gain =
        (s.aggregated_tput().as_gbps_f64() / o.aggregated_tput().as_gbps_f64() - 1.0) * 100.0;
    println!("\naggregate improvement of SRC: {gain:+.0} %");
}

fn main() {
    let scale = scale_from_args();
    println!(
        "Figs. 7/8 — runtime throughput and pause number ({})",
        scale_label(&scale)
    );
    rule();
    announce_checkpoint();
    let ssd = SsdConfig::ssd_a();
    eprintln!("training TPM on SSD-A ...");
    let tpm = train_tpm(&ssd, &scale, 42);
    eprintln!("running DCQCN-only and DCQCN-SRC ...");

    if let Some(prefix) = std::env::var_os("SRCSIM_TRACE") {
        // Streaming mode: two files, one per mode, written as the runs
        // execute. Series summaries need the in-memory report, so only
        // counter summaries print here.
        let prefix = prefix.to_string_lossy().into_owned();
        let only_path = format!("{prefix}.dcqcn_only.jsonl");
        let src_path = format!("{prefix}.dcqcn_src.jsonl");
        if let Some(dir) = std::path::Path::new(&only_path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(dir).expect("create trace dir");
        }
        let mut sink_only = FileSink::create(&only_path).expect("create trace file");
        let mut sink_src = FileSink::create(&src_path).expect("create trace file");
        let r = fig7_fig8(&ssd, &scale, tpm, SEED, (&mut sink_only, &mut sink_src));
        print_results(&r);
        println!("\nfabric telemetry (streamed):");
        streaming_summary("DCQCN-only", &sink_only);
        streaming_summary("DCQCN-SRC", &sink_src);
        sink_only.finish().expect("flush trace file");
        sink_src.finish().expect("flush trace file");
        println!("\ntraces: {only_path}, {src_path} (streamed)");
    } else {
        let mut sink_only = RingSink::new(1 << 20);
        let mut sink_src = RingSink::new(1 << 20);
        let r = fig7_fig8(&ssd, &scale, tpm, SEED, (&mut sink_only, &mut sink_src));
        let rep_only = sink_only.into_report();
        let rep_src = sink_src.into_report();
        print_results(&r);

        println!("\nfabric telemetry:");
        telemetry_summary("DCQCN-only", &rep_only);
        telemetry_summary("DCQCN-SRC", &rep_src);
        // Print only the decisions that changed a target's weight; the
        // full per-notification stream is in the trace file.
        let weights = rep_src.series("src", "weight");
        let mut last: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        let mut changes: Vec<String> = Vec::new();
        for &(at, tgt, w) in &weights {
            let w = w as u32;
            if last.insert(tgt, w) != Some(w) {
                changes.push(format!("t={:.1}ms tgt{tgt} w={w}", at.as_ms_f64()));
            }
        }
        if !changes.is_empty() {
            println!(
                "SRC weight changes ({} decisions total): {}",
                weights.len(),
                changes.join(", ")
            );
        }

        std::fs::create_dir_all("results").expect("create results dir");
        std::fs::write(ONLY_PATH, rep_only.to_json_lines()).expect("write trace file");
        std::fs::write(SRC_PATH, rep_src.to_json_lines()).expect("write trace file");
        println!("\ntraces: {ONLY_PATH}, {SRC_PATH}");
    }

    println!(
        "paper: DCQCN-only aggregate collapses (7.5 -> 2.5 Gbps) during \
         congestion;\nSRC holds it near the uncongested level and boosts writes."
    );
}
