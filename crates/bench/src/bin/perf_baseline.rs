//! Perf baseline for the event core, the TPM inference fast path, and
//! the end-to-end experiments: the numbers behind the committed
//! `BENCH_PR9.json` (superseding `BENCH_PR4.json`'s two suites).
//!
//! Four suites, every timed entry the **median of 3 repetitions**:
//!
//! * **Queue hold model** — steady-state `pop` + `schedule` pairs on a
//!   queue pre-filled to 1k / 64k / 1M pending events, timing-wheel
//!   [`EventQueue`] vs the binary-heap reference
//!   [`HeapEventQueue`]. The hold model (pop the earliest event,
//!   schedule a replacement at a pseudo-random future offset) is the
//!   classic event-queue benchmark: it measures the amortized cost the
//!   simulators actually pay, not raw push or pop throughput.
//! * **Forest inference** — single-point prediction on TPM-shaped
//!   random forests (12 features, 2 outputs, 30- and 100-tree
//!   configurations): the boxed per-tree walk with its per-call `Vec`
//!   allocations vs the flattened SoA [`FlatForest`] fast path. The
//!   outputs are asserted bitwise identical before anything is timed.
//! * **Coalescing counterfactual** — one congested system run timed
//!   with packet-burst coalescing on and off. The two reports are
//!   asserted byte-identical (minus the counters that measure the fast
//!   path itself), so the wall-clock delta is attributable to event
//!   elision alone; the elided-event count rides along in the row.
//! * **End-to-end wall clock** — the Fig. 9 scripted run (with its
//!   fabric slice) and the Fig. 5 weight-sweep grid, timed as the
//!   binaries run them. These absorb every fast path together.
//!
//! Usage: `perf_baseline [quick|full] [out.json]` — `quick` shrinks
//! the hold-op counts and uses quick experiment scales (the CI smoke
//! job); `full` is what `BENCH_PR9.json` is generated from. The JSON
//! report is written to `out.json` (default `results/bench_pr9.json`)
//! and echoed to stdout.

use std::time::Instant;

use ml::{Dataset, FlatForest, RandomForest, RandomForestParams, Regressor};
use serde::Value;
use sim_engine::{EventQueue, HeapEventQueue, NullSink, SimDuration, SimTime};
use src_bench::rule;
use ssd_sim::SsdConfig;
use system_sim::config::{spread_trace, Mode, SystemConfig};
use system_sim::experiments::{fig5, fig9, fig9_fabric_slice, Scale};
use system_sim::{run_system, RunOptions, SystemReport};
use workload::micro::{generate_micro, MicroConfig};

const SEED: u64 = 42;
/// Repetitions per timed entry; the reported number is the median.
const REPS: usize = 3;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// Median of [`REPS`] runs of a timer returning one number.
fn median(mut sample: impl FnMut() -> f64) -> f64 {
    let mut xs: Vec<f64> = (0..REPS).map(|_| sample()).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Deterministic xorshift64 offsets so both queues replay the exact
/// same schedule.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// One hold-model run: pre-fill `pending` events, then `ops` rounds of
/// pop-earliest + schedule-replacement. Returns (ns/op, checksum); the
/// checksum both defeats dead-code elimination and asserts the two
/// implementations walked the identical event sequence.
fn hold<Q>(
    pending: usize,
    ops: usize,
    schedule: impl Fn(&mut Q, SimTime, u64),
    pop: impl Fn(&mut Q) -> Option<(SimTime, u64)>,
    mut q: Q,
) -> (f64, u64) {
    let mut rng = XorShift(0x9e3779b97f4a7c15 ^ pending as u64);
    // Offsets mix short (collision-prone) and long horizons, like the
    // simulators: NIC serialization in the hundreds of ps, SSD program
    // latencies in the hundreds of us.
    let offset = |rng: &mut XorShift| match rng.next() % 4 {
        0 => rng.next() % 512,               // sub-slot, collisions
        1 => rng.next() % 200_000,           // packet scale
        2 => rng.next() % 600_000_000,       // SSD op scale
        _ => rng.next() % 4_000_000_000_000, // near the wheel span
    };
    let mut now = SimTime::ZERO;
    for i in 0..pending {
        let d = offset(&mut rng);
        schedule(&mut q, now + SimDuration::from_ps(d), i as u64);
    }
    let mut checksum = 0u64;
    let started = Instant::now();
    for i in 0..ops {
        let (t, id) = pop(&mut q).expect("queue stays at steady state");
        now = t;
        checksum = checksum
            .wrapping_mul(0x100000001b3)
            .wrapping_add(t.as_ps() ^ id);
        let d = offset(&mut rng);
        schedule(&mut q, now + SimDuration::from_ps(d), (pending + i) as u64);
    }
    let elapsed = started.elapsed();
    (elapsed.as_nanos() as f64 / ops as f64, checksum)
}

fn queue_suite(quick: bool) -> Value {
    let mut rows = Vec::new();
    for &pending in &[1_000usize, 64_000, 1_000_000] {
        let ops = if quick { 200_000 } else { 2_000_000 };
        let mut sums = (None, None);
        let wheel_ns = median(|| {
            let (ns, sum) = hold(
                pending,
                ops,
                |q: &mut EventQueue<u64>, t, e| q.schedule(t, e),
                |q| q.pop(),
                EventQueue::new(),
            );
            assert!(sums.0.replace(sum).is_none_or(|prev| prev == sum));
            ns
        });
        let heap_ns = median(|| {
            let (ns, sum) = hold(
                pending,
                ops,
                |q: &mut HeapEventQueue<u64>, t, e| q.schedule(t, e),
                |q| q.pop(),
                HeapEventQueue::new(),
            );
            assert!(sums.1.replace(sum).is_none_or(|prev| prev == sum));
            ns
        });
        assert_eq!(
            sums.0, sums.1,
            "wheel and heap diverged at pending={pending}"
        );
        println!(
            "  pending {:>9}: wheel {:>7.1} ns/op   heap {:>7.1} ns/op   ({:.2}x)",
            pending,
            wheel_ns,
            heap_ns,
            heap_ns / wheel_ns
        );
        rows.push(obj(vec![
            ("pending", Value::UInt(pending as u64)),
            ("hold_ops", Value::UInt(ops as u64)),
            ("wheel_ns_per_op", Value::Float(wheel_ns)),
            ("heap_ns_per_op", Value::Float(heap_ns)),
            ("heap_over_wheel", Value::Float(heap_ns / wheel_ns)),
        ]));
    }
    Value::Array(rows)
}

/// TPM-shaped training set: 12 features (the 11 workload features plus
/// the weight knob), 2 outputs, deterministic splitmix64 noise.
fn tpm_shaped_dataset(n: usize) -> Dataset {
    let mut state = 0xdead_beef_u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..12).map(|_| next() * 40.0).collect())
        .collect();
    let y: Vec<Vec<f64>> = x
        .iter()
        .map(|row| {
            let s: f64 = row.iter().sum();
            vec![s / (1.0 + row[11]), s * row[11] / 40.0]
        })
        .collect();
    Dataset::new(x, y)
}

fn forest_suite(quick: bool) -> Value {
    let data = tpm_shaped_dataset(400);
    let queries: Vec<Vec<f64>> = data.x.iter().step_by(3).cloned().collect();
    let reps = if quick { 2_000 } else { 20_000 };
    let mut rows = Vec::new();
    for &n_trees in &[30usize, 100] {
        let params = RandomForestParams {
            n_trees,
            ..RandomForestParams::default()
        };
        let forest = RandomForest::fit(&data, &params, SEED);
        let flat = FlatForest::from_forest(&forest);
        // Exactness first: timing a fast path that drifts would be
        // meaningless.
        let mut out = [0.0f64; 2];
        for q in &queries {
            let boxed = forest.predict_one(q);
            flat.predict_into(q, &mut out);
            assert_eq!(boxed[0].to_bits(), out[0].to_bits());
            assert_eq!(boxed[1].to_bits(), out[1].to_bits());
        }
        let n_calls = (reps * queries.len()) as f64;
        let mut sink = 0.0f64;
        // Interleave boxed/flat reps so clock drift or a thermal dip
        // hits both variants evenly rather than whichever runs first.
        let mut boxed_reps = Vec::with_capacity(REPS);
        let mut flat_reps = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let started = Instant::now();
            for _ in 0..reps {
                for q in &queries {
                    sink += forest.predict_one(q)[0];
                }
            }
            boxed_reps.push(started.elapsed().as_nanos() as f64 / n_calls);
            let started = Instant::now();
            for _ in 0..reps {
                for q in &queries {
                    flat.predict_into(q, &mut out);
                    sink += out[0];
                }
            }
            flat_reps.push(started.elapsed().as_nanos() as f64 / n_calls);
        }
        assert!(sink.is_finite());
        let mid = |mut xs: Vec<f64>| {
            xs.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
            xs[xs.len() / 2]
        };
        let (boxed_ns, flat_ns) = (mid(boxed_reps), mid(flat_reps));
        println!(
            "  {:>3} trees ({:>5} nodes): boxed {:>8.1} ns/op   flat {:>8.1} ns/op   ({:.2}x)",
            n_trees,
            flat.n_nodes(),
            boxed_ns,
            flat_ns,
            boxed_ns / flat_ns
        );
        rows.push(obj(vec![
            ("n_trees", Value::UInt(n_trees as u64)),
            ("n_nodes", Value::UInt(flat.n_nodes() as u64)),
            ("boxed_ns_per_op", Value::Float(boxed_ns)),
            ("flat_ns_per_op", Value::Float(flat_ns)),
            ("boxed_over_flat", Value::Float(boxed_ns / flat_ns)),
        ]));
    }
    Value::Array(rows)
}

/// Congested single-initiator run for the coalescing counterfactual —
/// heavy enough that PFC and ECN fire, so the fast path is exercised
/// under the conditions it must be transparent in.
fn coalescing_cell(quick: bool) -> (SystemConfig, Vec<system_sim::config::Assignment>) {
    let n = if quick { 600 } else { 2_400 };
    let t = generate_micro(
        &MicroConfig {
            read_count: n,
            write_count: n,
            read_iat_mean_us: 10.0,
            write_iat_mean_us: 10.0,
            read_size_mean: 40_000.0,
            write_size_mean: 40_000.0,
            ..MicroConfig::default()
        },
        SEED,
    );
    let a = spread_trace(&t, 1, 2);
    let cfg = SystemConfig {
        mode: Mode::DcqcnOnly,
        ..SystemConfig::default()
    };
    (cfg, a)
}

/// The report minus the counters that measure the fast path itself.
fn canon(mut r: SystemReport) -> String {
    r.bursts_coalesced = 0;
    r.packets_coalesced = 0;
    serde_json::to_string(&r).expect("serializable report")
}

fn coalescing_suite(quick: bool) -> Value {
    let (cfg, a) = coalescing_cell(quick);
    // One untimed warmup, then *interleaved* on/off reps: the first run
    // of a fresh cell pays one-time costs (allocator pools, page
    // faults) that would otherwise land entirely on whichever variant
    // is timed first and drown the effect being measured.
    let warm = run_system(&cfg, RunOptions::assignments(&a), &mut NullSink);
    let elided = warm.packets_coalesced;
    let canon_on_ref = canon(warm);
    let mut canon_on = String::new();
    let mut canon_off = String::new();
    let mut on_reps = Vec::with_capacity(REPS);
    let mut off_reps = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let started = Instant::now();
        let r = run_system(&cfg, RunOptions::assignments(&a), &mut NullSink);
        on_reps.push(started.elapsed().as_nanos() as f64 / 1e6);
        canon_on = canon(r);
        let started = Instant::now();
        let r = run_system(
            &cfg,
            RunOptions::assignments(&a).no_coalescing(),
            &mut NullSink,
        );
        off_reps.push(started.elapsed().as_nanos() as f64 / 1e6);
        assert_eq!(r.packets_coalesced, 0);
        canon_off = canon(r);
    }
    assert_eq!(canon_on, canon_on_ref, "non-deterministic run");
    let mid = |mut xs: Vec<f64>| {
        xs.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
        xs[xs.len() / 2]
    };
    let (on_ms, off_ms) = (mid(on_reps), mid(off_reps));
    assert_eq!(
        canon_on, canon_off,
        "coalescing changed the report — the counterfactual is invalid"
    );
    println!(
        "  congested cell: coalesced {on_ms:>8.1} ms   per-packet {off_ms:>8.1} ms   \
         ({:.2}x, {elided} arrivals elided)",
        off_ms / on_ms
    );
    Value::Array(vec![obj(vec![
        (
            "name",
            Value::Str(
                if quick {
                    "congested_cell_quick"
                } else {
                    "congested_cell_full"
                }
                .into(),
            ),
        ),
        ("coalesced_wall_ms", Value::Float(on_ms)),
        ("per_packet_wall_ms", Value::Float(off_ms)),
        ("per_packet_over_coalesced", Value::Float(off_ms / on_ms)),
        ("packets_coalesced", Value::UInt(elided)),
        ("reports_identical", Value::Bool(true)),
    ])])
}

fn end_to_end(quick: bool) -> Value {
    let fig9_scale = if quick { Scale::quick() } else { Scale::full() };
    let fig9_ms = median(|| {
        let started = Instant::now();
        let mut sink = NullSink;
        let _ = fig9(&fig9_scale, SEED, &mut sink);
        let _ = fig9_fabric_slice(&fig9_scale, SEED, &mut sink);
        started.elapsed().as_nanos() as f64 / 1e6
    });
    println!(
        "  fig9 scripted + fabric ({}): {:>9.1} ms",
        if quick { "quick" } else { "full" },
        fig9_ms
    );
    // Fig. 5 always runs at quick scale: the full grid takes minutes
    // and adds no information the quick grid doesn't.
    let fig5_ms = median(|| {
        let started = Instant::now();
        let _ = fig5(&SsdConfig::ssd_a(), &Scale::quick(), SEED);
        started.elapsed().as_nanos() as f64 / 1e6
    });
    println!("  fig5 weight sweep (quick):   {fig5_ms:>9.1} ms");
    Value::Array(vec![
        obj(vec![
            (
                "name",
                Value::Str(
                    if quick {
                        "fig9_scripted_quick"
                    } else {
                        "fig9_scripted_full"
                    }
                    .into(),
                ),
            ),
            ("wall_ms", Value::Float(fig9_ms)),
        ]),
        obj(vec![
            ("name", Value::Str("fig5_quick".into())),
            ("wall_ms", Value::Float(fig5_ms)),
        ]),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = !args.iter().any(|a| a == "full");
    let out = args
        .iter()
        .find(|a| a.ends_with(".json"))
        .cloned()
        .unwrap_or_else(|| "results/bench_pr9.json".into());

    println!(
        "perf baseline ({} mode) — median of {REPS} reps per entry",
        if quick { "quick" } else { "full" }
    );
    rule();
    println!("queue hold model (pop earliest + schedule replacement):");
    let queue = queue_suite(quick);
    println!("\nforest inference (TPM shape: 12 features, 2 outputs):");
    let forest = forest_suite(quick);
    println!("\npacket-burst coalescing counterfactual:");
    let coalescing = coalescing_suite(quick);
    println!("\nend-to-end wall clock:");
    let e2e = end_to_end(quick);

    let report = obj(vec![
        (
            "schema",
            Value::Str("srcsim-bench-pr9/v1 (each number = median of 3 reps)".into()),
        ),
        (
            "mode",
            Value::Str(if quick { "quick" } else { "full" }.into()),
        ),
        ("queue_hold", queue),
        ("forest_inference", forest),
        ("coalescing", coalescing),
        ("end_to_end", e2e),
    ]);
    let text = serde_json::to_string_pretty(&report).expect("serializable report");
    if let Some(dir) = std::path::Path::new(&out)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&out, format!("{text}\n")).expect("write bench report");
    rule();
    println!("{text}");
    println!("\nreport: {out}");
    println!(
        "caveat: wall-clock numbers are from whatever machine ran this — \
         compare only runs from the same host (CI runners are often 1-2 vCPUs)."
    );
}
