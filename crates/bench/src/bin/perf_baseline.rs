//! Perf baseline for the event core and the end-to-end experiments:
//! the numbers behind the committed `BENCH_PR4.json`.
//!
//! Two suites:
//!
//! * **Queue hold model** — steady-state `pop` + `schedule` pairs on a
//!   queue pre-filled to 1k / 64k / 1M pending events, timing-wheel
//!   [`EventQueue`] vs the binary-heap reference
//!   [`HeapEventQueue`]. The hold model (pop the earliest event,
//!   schedule a replacement at a pseudo-random future offset) is the
//!   classic event-queue benchmark: it measures the amortized cost the
//!   simulators actually pay, not raw push or pop throughput.
//! * **End-to-end wall clock** — the Fig. 9 scripted run (with its
//!   fabric slice) and the Fig. 5 weight-sweep grid, timed as the
//!   binaries run them. These absorb the queue and the allocation-free
//!   step plumbing together.
//!
//! Usage: `perf_baseline [quick|full] [out.json]` — `quick` shrinks
//! the hold-op counts and uses quick experiment scales (the CI smoke
//! job); `full` is what `BENCH_PR4.json` is generated from. The JSON
//! report is written to `out.json` (default `results/bench_pr4.json`)
//! and echoed to stdout.

use std::time::Instant;

use serde::Value;
use sim_engine::{EventQueue, HeapEventQueue, NullSink, SimDuration, SimTime};
use src_bench::rule;
use ssd_sim::SsdConfig;
use system_sim::experiments::{fig5, fig9, fig9_fabric_slice, Scale};

const SEED: u64 = 42;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// Deterministic xorshift64 offsets so both queues replay the exact
/// same schedule.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// One hold-model run: pre-fill `pending` events, then `ops` rounds of
/// pop-earliest + schedule-replacement. Returns (ns/op, checksum); the
/// checksum both defeats dead-code elimination and asserts the two
/// implementations walked the identical event sequence.
fn hold<Q>(
    pending: usize,
    ops: usize,
    schedule: impl Fn(&mut Q, SimTime, u64),
    pop: impl Fn(&mut Q) -> Option<(SimTime, u64)>,
    mut q: Q,
) -> (f64, u64) {
    let mut rng = XorShift(0x9e3779b97f4a7c15 ^ pending as u64);
    // Offsets mix short (collision-prone) and long horizons, like the
    // simulators: NIC serialization in the hundreds of ps, SSD program
    // latencies in the hundreds of us.
    let offset = |rng: &mut XorShift| match rng.next() % 4 {
        0 => rng.next() % 512,               // sub-slot, collisions
        1 => rng.next() % 200_000,           // packet scale
        2 => rng.next() % 600_000_000,       // SSD op scale
        _ => rng.next() % 4_000_000_000_000, // near the wheel span
    };
    let mut now = SimTime::ZERO;
    for i in 0..pending {
        let d = offset(&mut rng);
        schedule(&mut q, now + SimDuration::from_ps(d), i as u64);
    }
    let mut checksum = 0u64;
    let started = Instant::now();
    for i in 0..ops {
        let (t, id) = pop(&mut q).expect("queue stays at steady state");
        now = t;
        checksum = checksum
            .wrapping_mul(0x100000001b3)
            .wrapping_add(t.as_ps() ^ id);
        let d = offset(&mut rng);
        schedule(&mut q, now + SimDuration::from_ps(d), (pending + i) as u64);
    }
    let elapsed = started.elapsed();
    (elapsed.as_nanos() as f64 / ops as f64, checksum)
}

fn queue_suite(quick: bool) -> Value {
    let mut rows = Vec::new();
    for &pending in &[1_000usize, 64_000, 1_000_000] {
        let ops = if quick { 200_000 } else { 2_000_000 };
        let (wheel_ns, wheel_sum) = hold(
            pending,
            ops,
            |q: &mut EventQueue<u64>, t, e| q.schedule(t, e),
            |q| q.pop(),
            EventQueue::new(),
        );
        let (heap_ns, heap_sum) = hold(
            pending,
            ops,
            |q: &mut HeapEventQueue<u64>, t, e| q.schedule(t, e),
            |q| q.pop(),
            HeapEventQueue::new(),
        );
        assert_eq!(
            wheel_sum, heap_sum,
            "wheel and heap diverged at pending={pending}"
        );
        println!(
            "  pending {:>9}: wheel {:>7.1} ns/op   heap {:>7.1} ns/op   ({:.2}x)",
            pending,
            wheel_ns,
            heap_ns,
            heap_ns / wheel_ns
        );
        rows.push(obj(vec![
            ("pending", Value::UInt(pending as u64)),
            ("hold_ops", Value::UInt(ops as u64)),
            ("wheel_ns_per_op", Value::Float(wheel_ns)),
            ("heap_ns_per_op", Value::Float(heap_ns)),
            ("heap_over_wheel", Value::Float(heap_ns / wheel_ns)),
        ]));
    }
    Value::Array(rows)
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let started = Instant::now();
    f();
    started.elapsed().as_nanos() as f64 / 1e6
}

fn end_to_end(quick: bool) -> Value {
    let fig9_scale = if quick { Scale::quick() } else { Scale::full() };
    let fig9_ms = time_ms(|| {
        let mut sink = NullSink;
        let _ = fig9(&fig9_scale, SEED, &mut sink);
        let _ = fig9_fabric_slice(&fig9_scale, SEED, &mut sink);
    });
    println!(
        "  fig9 scripted + fabric ({}): {:>9.1} ms",
        if quick { "quick" } else { "full" },
        fig9_ms
    );
    // Fig. 5 always runs at quick scale: the full grid takes minutes
    // and adds no information the quick grid doesn't.
    let fig5_ms = time_ms(|| {
        let _ = fig5(&SsdConfig::ssd_a(), &Scale::quick(), SEED);
    });
    println!("  fig5 weight sweep (quick):   {fig5_ms:>9.1} ms");
    Value::Array(vec![
        obj(vec![
            (
                "name",
                Value::Str(
                    if quick {
                        "fig9_scripted_quick"
                    } else {
                        "fig9_scripted_full"
                    }
                    .into(),
                ),
            ),
            ("wall_ms", Value::Float(fig9_ms)),
        ]),
        obj(vec![
            ("name", Value::Str("fig5_quick".into())),
            ("wall_ms", Value::Float(fig5_ms)),
        ]),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = !args.iter().any(|a| a == "full");
    let out = args
        .iter()
        .find(|a| a.ends_with(".json"))
        .cloned()
        .unwrap_or_else(|| "results/bench_pr4.json".into());

    println!(
        "perf baseline ({} mode) — event-queue hold model + end-to-end wall clock",
        if quick { "quick" } else { "full" }
    );
    rule();
    println!("queue hold model (pop earliest + schedule replacement):");
    let queue = queue_suite(quick);
    println!("\nend-to-end wall clock:");
    let e2e = end_to_end(quick);

    let report = obj(vec![
        ("schema", Value::Str("srcsim-bench-pr4/v1".into())),
        (
            "mode",
            Value::Str(if quick { "quick" } else { "full" }.into()),
        ),
        ("queue_hold", queue),
        ("end_to_end", e2e),
    ]);
    let text = serde_json::to_string_pretty(&report).expect("serializable report");
    if let Some(dir) = std::path::Path::new(&out)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&out, format!("{text}\n")).expect("write bench report");
    rule();
    println!("{text}");
    println!("\nreport: {out}");
    println!(
        "caveat: wall-clock numbers are from whatever machine ran this — \
         compare only runs from the same host (CI runners are often 1-2 vCPUs)."
    );
}
