//! Perf baseline for the event core, the TPM inference fast path, and
//! the end-to-end experiments: the numbers behind the committed
//! `BENCH_PR10.json` (superseding `BENCH_PR9.json`'s four suites).
//!
//! Five suites, every timed entry the **median of 3 repetitions**:
//!
//! * **Queue hold model** — steady-state `pop` + `schedule` pairs on a
//!   queue pre-filled to 1k … 1M pending events, three ways: the
//!   timing-wheel [`EventQueue`], the binary-heap reference
//!   [`HeapEventQueue`], and the size-adaptive
//!   [`AdaptiveEventQueue`] the simulators actually run on. The
//!   intermediate sizes (2k–32k) bracket the heap→wheel crossover and
//!   validate [`ADAPTIVE_MIGRATION_THRESHOLD`]: the adaptive queue
//!   must track the better of the two pure implementations at every
//!   size. The hold model (pop the earliest event, schedule a
//!   replacement at a pseudo-random future offset) measures the
//!   amortized cost the simulators pay, not raw push or pop
//!   throughput.
//! * **Forest inference** — single-point prediction on TPM-shaped
//!   random forests (12 features, 2 outputs, 30- and 100-tree
//!   configurations): the boxed per-tree walk with its per-call `Vec`
//!   allocations vs the flattened sibling-pair [`FlatForest`] fast
//!   path. The outputs are asserted bitwise identical before anything
//!   is timed.
//! * **Sweep suite** — a quick Table-3-style grid of full-system cells
//!   run twice per rep: once through a single reused [`SimWorkspace`]
//!   (what `ScenarioRunner` hands each worker) and once with a fresh
//!   workspace per cell. Reports are asserted byte-identical; the
//!   rows carry wall clock, allocation events/bytes per cell (via the
//!   `alloc-count` feature's counting allocator), TPM prediction-cache
//!   hit/miss totals, and the adaptive queue's cumulative heap→wheel
//!   migration count.
//! * **Coalescing counterfactual** — one congested system run timed
//!   with packet-burst coalescing on and off. The two reports are
//!   asserted byte-identical (minus the counters that measure the fast
//!   path itself), so the wall-clock delta is attributable to event
//!   elision alone; the elided-event count rides along in the row.
//! * **End-to-end wall clock** — the Fig. 9 scripted run (with its
//!   fabric slice) and the Fig. 5 weight-sweep grid, timed as the
//!   binaries run them. These absorb every fast path together.
//!
//! Usage: `perf_baseline [quick|full] [out.json] [--baseline old.json]`
//! — `quick` shrinks the hold-op counts and uses quick experiment
//! scales (the CI smoke job); `full` is what `BENCH_PR10.json` is
//! generated from. `--baseline` prints a report-only delta against a
//! previously committed report (no thresholds: CI runners are 1–2
//! vCPUs and wall clocks are not comparable across hosts). The JSON
//! report is written to `out.json` (default `results/bench_pr10.json`)
//! and echoed to stdout.

use std::time::Instant;

use ml::{Dataset, FlatForest, RandomForest, RandomForestParams, Regressor};
use serde::Value;
use sim_engine::{
    AdaptiveEventQueue, EventQueue, HeapEventQueue, NullSink, SimDuration, SimTime, SimWorkspace,
    ADAPTIVE_MIGRATION_THRESHOLD,
};
use src_bench::rule;
use src_core::ThroughputPredictionModel;
use ssd_sim::SsdConfig;
use system_sim::config::{spread_source, spread_trace, Assignment, Mode, SystemConfig};
use system_sim::experiments::{fig5, fig9, fig9_fabric_slice, paper_background, paper_pfc, Scale};
use system_sim::{run_system, run_system_in, workspace_queue_migrations, RunOptions, SystemReport};
use workload::micro::{generate_micro, MicroConfig};
use workload::source::WorkloadSpec;
use workload::WorkloadFeatures;

/// Count allocations in this binary (and only this binary): the
/// counting allocator is ~1 ns of relaxed-atomic overhead per
/// allocation, noise for the wall-clock suites, and it buys the sweep
/// suite's allocations-per-cell column.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: src_bench::alloc_count::CountingAlloc = src_bench::alloc_count::CountingAlloc;

/// `(allocation events, requested bytes)` so far, if counting is on.
fn alloc_snapshot() -> Option<(u64, u64)> {
    #[cfg(feature = "alloc-count")]
    {
        Some(src_bench::alloc_count::snapshot())
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        None
    }
}

const SEED: u64 = 42;
/// Repetitions per timed entry; the reported number is the median.
const REPS: usize = 3;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// Median of [`REPS`] runs of a timer returning one number.
fn median(mut sample: impl FnMut() -> f64) -> f64 {
    let mut xs: Vec<f64> = (0..REPS).map(|_| sample()).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Median of an already-collected sample.
fn mid(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Deterministic xorshift64 offsets so all queues replay the exact
/// same schedule.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// One hold-model run: pre-fill `pending` events, then `ops` rounds of
/// pop-earliest + schedule-replacement. Returns (ns/op, checksum, the
/// spent queue); the checksum both defeats dead-code elimination and
/// asserts the implementations walked the identical event sequence,
/// and the returned queue lets the caller read diagnostics (the
/// adaptive queue's migration count).
fn hold<Q>(
    pending: usize,
    ops: usize,
    schedule: impl Fn(&mut Q, SimTime, u64),
    pop: impl Fn(&mut Q) -> Option<(SimTime, u64)>,
    mut q: Q,
) -> (f64, u64, Q) {
    let mut rng = XorShift(0x9e3779b97f4a7c15 ^ pending as u64);
    // Offsets mix short (collision-prone) and long horizons, like the
    // simulators: NIC serialization in the hundreds of ps, SSD program
    // latencies in the hundreds of us.
    let offset = |rng: &mut XorShift| match rng.next() % 4 {
        0 => rng.next() % 512,               // sub-slot, collisions
        1 => rng.next() % 200_000,           // packet scale
        2 => rng.next() % 600_000_000,       // SSD op scale
        _ => rng.next() % 4_000_000_000_000, // near the wheel span
    };
    let mut now = SimTime::ZERO;
    for i in 0..pending {
        let d = offset(&mut rng);
        schedule(&mut q, now + SimDuration::from_ps(d), i as u64);
    }
    let mut checksum = 0u64;
    let started = Instant::now();
    for i in 0..ops {
        let (t, id) = pop(&mut q).expect("queue stays at steady state");
        now = t;
        checksum = checksum
            .wrapping_mul(0x100000001b3)
            .wrapping_add(t.as_ps() ^ id);
        let d = offset(&mut rng);
        schedule(&mut q, now + SimDuration::from_ps(d), (pending + i) as u64);
    }
    let elapsed = started.elapsed();
    (elapsed.as_nanos() as f64 / ops as f64, checksum, q)
}

fn queue_suite(quick: bool) -> Value {
    let mut rows = Vec::new();
    // 2k–32k bracket the heap→wheel crossover around the migration
    // threshold; 1k / 64k / 1M are the headline sizes.
    let sizes = [
        1_000usize, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 1_000_000,
    ];
    for &pending in &sizes {
        let ops = if quick { 200_000 } else { 2_000_000 };
        let mut sums: [Option<u64>; 3] = [None; 3];
        let mut check = |slot: usize, sum: u64| {
            assert!(
                sums[slot].replace(sum).is_none_or(|prev| prev == sum),
                "non-deterministic replay at pending={pending}"
            );
        };
        let wheel_ns = median(|| {
            let (ns, sum, _) = hold(
                pending,
                ops,
                |q: &mut EventQueue<u64>, t, e| q.schedule(t, e),
                |q| q.pop(),
                EventQueue::new(),
            );
            check(0, sum);
            ns
        });
        let heap_ns = median(|| {
            let (ns, sum, _) = hold(
                pending,
                ops,
                |q: &mut HeapEventQueue<u64>, t, e| q.schedule(t, e),
                |q| q.pop(),
                HeapEventQueue::new(),
            );
            check(1, sum);
            ns
        });
        let mut migrated = false;
        let adaptive_ns = median(|| {
            let (ns, sum, q) = hold(
                pending,
                ops,
                |q: &mut AdaptiveEventQueue<u64>, t, e| q.schedule(t, e),
                |q| q.pop(),
                AdaptiveEventQueue::new(),
            );
            check(2, sum);
            migrated = q.migrations() > 0;
            ns
        });
        assert_eq!(
            sums[0], sums[1],
            "wheel and heap diverged at pending={pending}"
        );
        assert_eq!(
            sums[0], sums[2],
            "wheel and adaptive diverged at pending={pending}"
        );
        let best_ns = wheel_ns.min(heap_ns);
        println!(
            "  pending {:>9}: wheel {:>7.1}   heap {:>7.1}   adaptive {:>7.1} ns/op   \
             (adaptive/best {:.2}x, {})",
            pending,
            wheel_ns,
            heap_ns,
            adaptive_ns,
            adaptive_ns / best_ns,
            if migrated { "migrated" } else { "on heap" },
        );
        rows.push(obj(vec![
            ("pending", Value::UInt(pending as u64)),
            ("hold_ops", Value::UInt(ops as u64)),
            ("wheel_ns_per_op", Value::Float(wheel_ns)),
            ("heap_ns_per_op", Value::Float(heap_ns)),
            ("adaptive_ns_per_op", Value::Float(adaptive_ns)),
            ("heap_over_wheel", Value::Float(heap_ns / wheel_ns)),
            ("adaptive_over_best", Value::Float(adaptive_ns / best_ns)),
            ("adaptive_migrated", Value::Bool(migrated)),
        ]));
    }
    Value::Array(rows)
}

/// TPM-shaped training set: 12 features (the 11 workload features plus
/// the weight knob), 2 outputs, deterministic splitmix64 noise.
fn tpm_shaped_dataset(n: usize) -> Dataset {
    let mut state = 0xdead_beef_u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..12).map(|_| next() * 40.0).collect())
        .collect();
    let y: Vec<Vec<f64>> = x
        .iter()
        .map(|row| {
            let s: f64 = row.iter().sum();
            vec![s / (1.0 + row[11]), s * row[11] / 40.0]
        })
        .collect();
    Dataset::new(x, y)
}

fn forest_suite(quick: bool) -> Value {
    let data = tpm_shaped_dataset(400);
    let queries: Vec<Vec<f64>> = data.x.iter().step_by(3).cloned().collect();
    let reps = if quick { 2_000 } else { 20_000 };
    let mut rows = Vec::new();
    for &n_trees in &[30usize, 100] {
        let params = RandomForestParams {
            n_trees,
            ..RandomForestParams::default()
        };
        let forest = RandomForest::fit(&data, &params, SEED);
        let flat = FlatForest::from_forest(&forest);
        // Exactness first: timing a fast path that drifts would be
        // meaningless.
        let mut out = [0.0f64; 2];
        for q in &queries {
            let boxed = forest.predict_one(q);
            flat.predict_into(q, &mut out);
            assert_eq!(boxed[0].to_bits(), out[0].to_bits());
            assert_eq!(boxed[1].to_bits(), out[1].to_bits());
        }
        let n_calls = (reps * queries.len()) as f64;
        let mut sink = 0.0f64;
        // Interleave boxed/flat reps so clock drift or a thermal dip
        // hits both variants evenly rather than whichever runs first.
        let mut boxed_reps = Vec::with_capacity(REPS);
        let mut flat_reps = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let started = Instant::now();
            for _ in 0..reps {
                for q in &queries {
                    sink += forest.predict_one(q)[0];
                }
            }
            boxed_reps.push(started.elapsed().as_nanos() as f64 / n_calls);
            let started = Instant::now();
            for _ in 0..reps {
                for q in &queries {
                    flat.predict_into(q, &mut out);
                    sink += out[0];
                }
            }
            flat_reps.push(started.elapsed().as_nanos() as f64 / n_calls);
        }
        assert!(sink.is_finite());
        let (boxed_ns, flat_ns) = (mid(boxed_reps), mid(flat_reps));
        println!(
            "  {:>3} trees ({:>5} nodes): boxed {:>8.1} ns/op   flat {:>8.1} ns/op   ({:.2}x)",
            n_trees,
            flat.n_nodes(),
            boxed_ns,
            flat_ns,
            boxed_ns / flat_ns
        );
        rows.push(obj(vec![
            ("n_trees", Value::UInt(n_trees as u64)),
            ("n_nodes", Value::UInt(flat.n_nodes() as u64)),
            ("boxed_ns_per_op", Value::Float(boxed_ns)),
            ("flat_ns_per_op", Value::Float(flat_ns)),
            ("boxed_over_flat", Value::Float(boxed_ns / flat_ns)),
        ]));
    }
    Value::Array(rows)
}

/// A tiny synthetic TPM (read throughput ~ 10/w Gbps) for the SRC
/// cells of the sweep suite: the cache and controller machinery it
/// exercises is the same as a fully trained model's, at a fraction of
/// the training time.
fn sweep_tpm() -> std::sync::Arc<ThroughputPredictionModel> {
    let ch = WorkloadFeatures {
        read_ratio: 0.5,
        read_iat_mean_us: 10.0,
        write_iat_mean_us: 10.0,
        read_size_mean: 30_000.0,
        write_size_mean: 30_000.0,
        read_flow_bpus: 3_000.0,
        write_flow_bpus: 3_000.0,
        ..Default::default()
    };
    let mut x = Vec::new();
    let mut y = Vec::new();
    for _rep in 0..8 {
        for w in 1..=12u32 {
            let mut row = ch.to_vec();
            row.push(w as f64);
            x.push(row);
            y.push(vec![10.0 / w as f64, 2.0 + w as f64]);
        }
    }
    std::sync::Arc::new(ThroughputPredictionModel::train(&Dataset::new(x, y), 40, 0))
}

/// The sweep-suite grid: a quick Table-3-style mix of DCQCN-only and
/// DCQCN+SRC cells across seeds, each the paper's congested cell shape
/// (1 initiator fanning to 2 targets, background traffic, paper PFC) —
/// congested enough that DCQCN rate notifications fire and the SRC
/// cells actually query the TPM through the prediction cache.
fn sweep_grid(quick: bool) -> Vec<(SystemConfig, Vec<Assignment>)> {
    let n = if quick { 150 } else { 600 };
    let mut cells = Vec::new();
    for seed in 1..=8u64 {
        let mode = if seed % 2 == 0 {
            Mode::DcqcnSrc
        } else {
            Mode::DcqcnOnly
        };
        let spec = WorkloadSpec::Micro(MicroConfig {
            read_count: n,
            write_count: n,
            read_iat_mean_us: 10.0,
            write_iat_mean_us: 10.0,
            read_size_mean: 40_000.0,
            write_size_mean: 40_000.0,
            ..MicroConfig::default()
        });
        let assignments = spread_source(&spec, seed, 1, 2);
        let cfg = SystemConfig::builder()
            .n_initiators(1)
            .n_targets(2)
            .workload(spec)
            .background(paper_background(&assignments))
            .pfc(paper_pfc())
            .mode(mode)
            .build();
        cells.push((cfg, assignments));
    }
    cells
}

fn sweep_suite(quick: bool) -> Value {
    let tpm = sweep_tpm();
    let cells = sweep_grid(quick);
    fn cell_opts<'a>(
        tpm: &std::sync::Arc<ThroughputPredictionModel>,
        cfg: &SystemConfig,
        a: &'a [Assignment],
    ) -> RunOptions<'a> {
        let o = RunOptions::assignments(a);
        match cfg.mode {
            Mode::DcqcnOnly => o,
            Mode::DcqcnSrc => o.tpm(tpm.clone()),
        }
    }
    // One run of the grid through `ws`, returning the serialized
    // reports (the byte-identity evidence) and cache-stat totals.
    let run_grid = |ws: &mut SimWorkspace| -> (Vec<String>, u64, u64) {
        let (mut hits, mut misses) = (0u64, 0u64);
        let reports = cells
            .iter()
            .map(|(cfg, a)| {
                let r = run_system_in(cfg, cell_opts(&tpm, cfg, a), ws, &mut NullSink);
                hits += r.tpm_cache_hits;
                misses += r.tpm_cache_misses;
                serde_json::to_string(&r).expect("serializable report")
            })
            .collect();
        (reports, hits, misses)
    };
    // Untimed warmup on a throwaway workspace absorbs one-time costs
    // (allocator pools, page faults) so they don't land on whichever
    // variant runs first.
    let (reference, hits, misses) = run_grid(&mut SimWorkspace::new());
    let mut ws = SimWorkspace::new();
    let mut reuse_reps = Vec::with_capacity(REPS);
    let mut fresh_reps = Vec::with_capacity(REPS);
    let mut reuse_allocs = (0u64, 0u64);
    let mut fresh_allocs = (0u64, 0u64);
    let run_fresh_grid = || -> (Vec<String>, u64, u64) {
        let (mut hits, mut misses) = (0u64, 0u64);
        let reports = cells
            .iter()
            .map(|(cfg, a)| {
                let r = run_system_in(
                    cfg,
                    cell_opts(&tpm, cfg, a),
                    &mut SimWorkspace::new(),
                    &mut NullSink,
                );
                hits += r.tpm_cache_hits;
                misses += r.tpm_cache_misses;
                serde_json::to_string(&r).expect("serializable report")
            })
            .collect();
        (reports, hits, misses)
    };
    // Interleave reuse/fresh reps like the other counterfactuals, and
    // alternate which variant goes first so per-rep ordering effects
    // (a warm data cache for whatever ran second) cancel in the
    // medians.
    for rep in 0..REPS {
        for variant in 0..2 {
            let reuse_turn = (rep + variant) % 2 == 0;
            let before = alloc_snapshot();
            let started = Instant::now();
            let (reports, h, m) = if reuse_turn {
                run_grid(&mut ws)
            } else {
                run_fresh_grid()
            };
            let wall_ms = started.elapsed().as_nanos() as f64 / 1e6;
            let allocs = match (before, alloc_snapshot()) {
                (Some(b), Some(a)) => (a.0 - b.0, a.1 - b.1),
                _ => (0, 0),
            };
            assert_eq!(reports, reference, "a sweep variant changed a report");
            assert_eq!((h, m), (hits, misses), "cache stats drifted");
            if reuse_turn {
                reuse_reps.push(wall_ms);
                reuse_allocs = allocs;
            } else {
                fresh_reps.push(wall_ms);
                fresh_allocs = allocs;
            }
        }
    }
    // Cumulative across all reuse reps: the counter deliberately
    // survives `reset()` so reuse keeps the full history.
    let migrations = workspace_queue_migrations(&mut ws);
    let (reuse_ms, fresh_ms) = (mid(reuse_reps), mid(fresh_reps));
    let n_cells = cells.len() as u64;
    println!(
        "  {} cells: reused workspace {:>8.1} ms   fresh per cell {:>8.1} ms   ({:.2}x)",
        n_cells,
        reuse_ms,
        fresh_ms,
        fresh_ms / reuse_ms
    );
    match alloc_snapshot() {
        Some(_) => println!(
            "    allocs/cell: reused {:>8}   fresh {:>8}   ({} vs {} KiB/cell)",
            reuse_allocs.0 / n_cells,
            fresh_allocs.0 / n_cells,
            reuse_allocs.1 / n_cells / 1024,
            fresh_allocs.1 / n_cells / 1024,
        ),
        None => println!("    allocs/cell: (alloc-count feature disabled)"),
    }
    println!(
        "    tpm cache: {hits} hits / {misses} misses per pass   \
         queue migrations: {migrations} over {REPS} reused passes"
    );
    let alloc_field = |v: u64| match alloc_snapshot() {
        Some(_) => Value::UInt(v),
        None => Value::Null,
    };
    Value::Array(vec![obj(vec![
        (
            "name",
            Value::Str(
                if quick {
                    "table3_style_grid_quick"
                } else {
                    "table3_style_grid_full"
                }
                .into(),
            ),
        ),
        ("cells", Value::UInt(n_cells)),
        ("reused_workspace_wall_ms", Value::Float(reuse_ms)),
        ("fresh_workspace_wall_ms", Value::Float(fresh_ms)),
        ("fresh_over_reused", Value::Float(fresh_ms / reuse_ms)),
        (
            "reused_allocs_per_cell",
            alloc_field(reuse_allocs.0 / n_cells),
        ),
        (
            "reused_alloc_bytes_per_cell",
            alloc_field(reuse_allocs.1 / n_cells),
        ),
        (
            "fresh_allocs_per_cell",
            alloc_field(fresh_allocs.0 / n_cells),
        ),
        (
            "fresh_alloc_bytes_per_cell",
            alloc_field(fresh_allocs.1 / n_cells),
        ),
        ("tpm_cache_hits", Value::UInt(hits)),
        ("tpm_cache_misses", Value::UInt(misses)),
        ("queue_migrations", Value::UInt(migrations)),
        ("reused_passes", Value::UInt(REPS as u64)),
        ("reports_identical", Value::Bool(true)),
    ])])
}

/// Congested single-initiator run for the coalescing counterfactual —
/// heavy enough that PFC and ECN fire, so the fast path is exercised
/// under the conditions it must be transparent in.
fn coalescing_cell(quick: bool) -> (SystemConfig, Vec<system_sim::config::Assignment>) {
    let n = if quick { 600 } else { 2_400 };
    let t = generate_micro(
        &MicroConfig {
            read_count: n,
            write_count: n,
            read_iat_mean_us: 10.0,
            write_iat_mean_us: 10.0,
            read_size_mean: 40_000.0,
            write_size_mean: 40_000.0,
            ..MicroConfig::default()
        },
        SEED,
    );
    let a = spread_trace(&t, 1, 2);
    let cfg = SystemConfig {
        mode: Mode::DcqcnOnly,
        ..SystemConfig::default()
    };
    (cfg, a)
}

/// The report minus the counters that measure the fast path itself.
fn canon(mut r: SystemReport) -> String {
    r.bursts_coalesced = 0;
    r.packets_coalesced = 0;
    serde_json::to_string(&r).expect("serializable report")
}

fn coalescing_suite(quick: bool) -> Value {
    let (cfg, a) = coalescing_cell(quick);
    // One untimed warmup, then *interleaved* on/off reps: the first run
    // of a fresh cell pays one-time costs (allocator pools, page
    // faults) that would otherwise land entirely on whichever variant
    // is timed first and drown the effect being measured.
    let warm = run_system(&cfg, RunOptions::assignments(&a), &mut NullSink);
    let elided = warm.packets_coalesced;
    let canon_on_ref = canon(warm);
    let mut canon_on = String::new();
    let mut canon_off = String::new();
    let mut on_reps = Vec::with_capacity(REPS);
    let mut off_reps = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let started = Instant::now();
        let r = run_system(&cfg, RunOptions::assignments(&a), &mut NullSink);
        on_reps.push(started.elapsed().as_nanos() as f64 / 1e6);
        canon_on = canon(r);
        let started = Instant::now();
        let r = run_system(
            &cfg,
            RunOptions::assignments(&a).no_coalescing(),
            &mut NullSink,
        );
        off_reps.push(started.elapsed().as_nanos() as f64 / 1e6);
        assert_eq!(r.packets_coalesced, 0);
        canon_off = canon(r);
    }
    assert_eq!(canon_on, canon_on_ref, "non-deterministic run");
    let (on_ms, off_ms) = (mid(on_reps), mid(off_reps));
    assert_eq!(
        canon_on, canon_off,
        "coalescing changed the report — the counterfactual is invalid"
    );
    println!(
        "  congested cell: coalesced {on_ms:>8.1} ms   per-packet {off_ms:>8.1} ms   \
         ({:.2}x, {elided} arrivals elided)",
        off_ms / on_ms
    );
    Value::Array(vec![obj(vec![
        (
            "name",
            Value::Str(
                if quick {
                    "congested_cell_quick"
                } else {
                    "congested_cell_full"
                }
                .into(),
            ),
        ),
        ("coalesced_wall_ms", Value::Float(on_ms)),
        ("per_packet_wall_ms", Value::Float(off_ms)),
        ("per_packet_over_coalesced", Value::Float(off_ms / on_ms)),
        ("packets_coalesced", Value::UInt(elided)),
        ("reports_identical", Value::Bool(true)),
    ])])
}

fn end_to_end(quick: bool) -> Value {
    let fig9_scale = if quick { Scale::quick() } else { Scale::full() };
    let fig9_ms = median(|| {
        let started = Instant::now();
        let mut sink = NullSink;
        let _ = fig9(&fig9_scale, SEED, &mut sink);
        let _ = fig9_fabric_slice(&fig9_scale, SEED, &mut sink);
        started.elapsed().as_nanos() as f64 / 1e6
    });
    println!(
        "  fig9 scripted + fabric ({}): {:>9.1} ms",
        if quick { "quick" } else { "full" },
        fig9_ms
    );
    // Fig. 5 always runs at quick scale: the full grid takes minutes
    // and adds no information the quick grid doesn't.
    let fig5_ms = median(|| {
        let started = Instant::now();
        let _ = fig5(&SsdConfig::ssd_a(), &Scale::quick(), SEED);
        started.elapsed().as_nanos() as f64 / 1e6
    });
    println!("  fig5 weight sweep (quick):   {fig5_ms:>9.1} ms");
    Value::Array(vec![
        obj(vec![
            (
                "name",
                Value::Str(
                    if quick {
                        "fig9_scripted_quick"
                    } else {
                        "fig9_scripted_full"
                    }
                    .into(),
                ),
            ),
            ("wall_ms", Value::Float(fig9_ms)),
        ]),
        obj(vec![
            ("name", Value::Str("fig5_quick".into())),
            ("wall_ms", Value::Float(fig5_ms)),
        ]),
    ])
}

/// Report-only delta print against a previously committed report.
/// Matches rows by their identifying field and prints side-by-side
/// numbers; no thresholds, because wall clocks are only comparable
/// between runs on the same host.
fn print_baseline_delta(report: &Value, baseline_path: &str) {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            println!("baseline {baseline_path}: unreadable ({e}) — skipping delta");
            return;
        }
    };
    let base = match serde_json::parse_value(&text) {
        Ok(v) => v,
        Err(e) => {
            println!("baseline {baseline_path}: unparsable ({e}) — skipping delta");
            return;
        }
    };
    let num = |v: &Value| match v {
        Value::Float(f) => Some(*f),
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    };
    // Find the row in `suite` whose `key` field equals `id`.
    let find_row = |root: &Value, suite: &str, key: &str, id: &Value| -> Option<Value> {
        match root.get(suite)? {
            Value::Array(rows) => rows
                .iter()
                .find(|r| r.get(key).map(|v| format!("{v:?}") == format!("{id:?}")) == Some(true))
                .cloned(),
            _ => None,
        }
    };
    println!("delta vs {baseline_path} (report-only, same-host caveat applies):");
    let mut printed = false;
    // (suite, row-identity key, metric fields)
    let plan: &[(&str, &str, &[&str])] = &[
        (
            "queue_hold",
            "pending",
            &["wheel_ns_per_op", "heap_ns_per_op", "adaptive_ns_per_op"],
        ),
        (
            "forest_inference",
            "n_trees",
            &["boxed_ns_per_op", "flat_ns_per_op"],
        ),
        (
            "sweep_suite",
            "name",
            &["reused_workspace_wall_ms", "fresh_workspace_wall_ms"],
        ),
        (
            "coalescing",
            "name",
            &["coalesced_wall_ms", "per_packet_wall_ms"],
        ),
        ("end_to_end", "name", &["wall_ms"]),
    ];
    for &(suite, key, metrics) in plan {
        let rows = match report.get(suite) {
            Some(Value::Array(rows)) => rows,
            _ => continue,
        };
        for row in rows {
            let Some(id) = row.get(key) else { continue };
            let Some(old) = find_row(&base, suite, key, id) else {
                continue;
            };
            for &m in metrics {
                if let (Some(new_v), Some(old_v)) =
                    (row.get(m).and_then(num), old.get(m).and_then(num))
                {
                    if old_v > 0.0 {
                        println!(
                            "  {suite}[{key}={id:?}].{m}: {old_v:.1} -> {new_v:.1}  ({:+.1}%)",
                            (new_v / old_v - 1.0) * 100.0
                        );
                        printed = true;
                    }
                }
            }
        }
    }
    if !printed {
        println!("  (no comparable rows found — schemas may not overlap)");
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let baseline = args.iter().position(|a| a == "--baseline").map(|i| {
        let path = args.get(i + 1).cloned().expect("--baseline takes a path");
        args.drain(i..=i + 1);
        path
    });
    let quick = !args.iter().any(|a| a == "full");
    let out = args
        .iter()
        .find(|a| a.ends_with(".json"))
        .cloned()
        .unwrap_or_else(|| "results/bench_pr10.json".into());

    println!(
        "perf baseline ({} mode) — median of {REPS} reps per entry \
         (adaptive threshold: {ADAPTIVE_MIGRATION_THRESHOLD} pending)",
        if quick { "quick" } else { "full" }
    );
    rule();
    println!("queue hold model (pop earliest + schedule replacement):");
    let queue = queue_suite(quick);
    println!("\nforest inference (TPM shape: 12 features, 2 outputs):");
    let forest = forest_suite(quick);
    println!("\nsweep suite (reused vs fresh per-cell workspaces):");
    let sweep = sweep_suite(quick);
    println!("\npacket-burst coalescing counterfactual:");
    let coalescing = coalescing_suite(quick);
    println!("\nend-to-end wall clock:");
    let e2e = end_to_end(quick);

    let report = obj(vec![
        (
            "schema",
            Value::Str("srcsim-bench-pr10/v1 (each number = median of 3 reps)".into()),
        ),
        (
            "mode",
            Value::Str(if quick { "quick" } else { "full" }.into()),
        ),
        (
            "adaptive_migration_threshold",
            Value::UInt(ADAPTIVE_MIGRATION_THRESHOLD as u64),
        ),
        ("queue_hold", queue),
        ("forest_inference", forest),
        ("sweep_suite", sweep),
        ("coalescing", coalescing),
        ("end_to_end", e2e),
    ]);
    let text = serde_json::to_string_pretty(&report).expect("serializable report");
    if let Some(dir) = std::path::Path::new(&out)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&out, format!("{text}\n")).expect("write bench report");
    rule();
    println!("{text}");
    println!("\nreport: {out}");
    if let Some(b) = baseline {
        rule();
        print_baseline_delta(&report, &b);
    }
    println!(
        "caveat: wall-clock numbers are from whatever machine ran this — \
         compare only runs from the same host (CI runners are often 1-2 vCPUs)."
    );
}
