//! Reproduce Table I: regression accuracy (R²) of the five model
//! families on micro-trace sweeps, plus the Breiman feature-importance
//! result (the paper: arrival flow speed dominates at 0.39).
//!
//! With `SRCSIM_CHECKPOINT=<prefix>` the training sweeps commit
//! completed cells to `<prefix>.tpm_train.<tag>.ckpt.jsonl`; a killed
//! run resumes from the last committed cell on re-invocation.
//!
//! Usage: `table1_regression [quick|full]`

use src_bench::{announce_checkpoint, rule, scale_from_args, scale_label};
use ssd_sim::SsdConfig;
use system_sim::experiments::{feature_importance, table1};

fn main() {
    let scale = scale_from_args();
    println!("Table I — regression accuracy ({})", scale_label(&scale));
    rule();
    announce_checkpoint();
    let rows = table1(&SsdConfig::ssd_a(), &scale, 42);
    println!("{:<28} {:>9}", "Model", "Accuracy");
    for (label, r2) in &rows {
        println!("{label:<28} {r2:>9.2}");
    }
    rule();
    println!("paper: 0.77 / 0.74 / 0.86 / 0.89 / 0.94 (random forest best)\n");

    println!("TPM feature importance (Breiman):");
    let mut imp = feature_importance(&SsdConfig::ssd_a(), &scale, 42);
    imp.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, v) in imp.iter().take(6) {
        println!("  {name:<20} {v:.3}");
    }
    let flow: f64 = imp
        .iter()
        .filter(|(n, _)| n.contains("flow"))
        .map(|(_, v)| v)
        .sum();
    println!(
        "\ncombined read+write arrival-flow-speed importance: {flow:.2} \
         (paper reports 0.39)"
    );
}
