//! Reproduce Fig. 9: dynamic throughput adjustment under scripted
//! pause/retrieval congestion events on SSD-B — SRC's convergence speed.
//!
//! Emits a deterministic JSON-lines trace (`results/fig9_trace.jsonl`)
//! combining the scripted convergence run (SRC demand/weight, SSQ fetch
//! decisions, SSD utilization) with a short congested fabric slice on
//! the same device (DCQCN per-flow rate, TXQ backlog) — the scripted run
//! itself has no network in the loop. Two runs with the same seed write
//! byte-identical files.
//!
//! With `SRCSIM_TRACE=<path>` the trace streams straight to `<path>`
//! through a [`FileSink`] as the simulation runs (bounded memory, same
//! JSON-lines schema); without it the trace buffers in a [`RingSink`]
//! and is written at the end, which additionally enables the in-memory
//! series summaries below.
//!
//! Usage: `fig9_dynamic [quick|full]`

use sim_engine::{FileSink, Reduced, Reduction, RingSink};
use src_bench::{announce_checkpoint, rule, scale_from_args, scale_label};
use system_sim::experiments::{fig9, fig9_fabric_slice};
use system_sim::scripted::ScriptedResult;

const SEED: u64 = 42;
const TRACE_PATH: &str = "results/fig9_trace.jsonl";

fn print_responses(r: &ScriptedResult) {
    println!("congestion events and SRC responses:");
    println!(
        "{:>9} {:>15} {:>9} {:>16}",
        "t(ms)", "demanded(Gbps)", "w chosen", "convergence(ms)"
    );
    for (i, (at, demanded, w)) in r.responses.iter().enumerate() {
        let conv = r
            .convergence_ms
            .get(i)
            .copied()
            .filter(|d| d.is_finite())
            .map(|d| format!("{d:.1}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>9.1} {:>15.2} {:>9} {:>16}",
            at.as_ms_f64(),
            demanded,
            w,
            conv
        );
    }

    let finite: Vec<f64> = r
        .convergence_ms
        .iter()
        .copied()
        .filter(|d| d.is_finite())
        .collect();
    if !finite.is_empty() {
        let avg = finite.iter().sum::<f64>() / finite.len() as f64;
        println!("\naverage control delay: {avg:.1} ms (paper: ~7.3 ms)");
    }
}

fn print_throughput(r: &ScriptedResult) {
    println!("\nper-ms read/write throughput around the events:");
    let reads = r.report.read_series.bins();
    let writes = r.report.write_series.bins();
    let to_gbps = |v: f64| v * 8.0 / 1e6;
    let step = (reads.len() / 24).max(1);
    println!("{:>7} {:>9} {:>9}", "t(ms)", "read", "write");
    let mut t = 0;
    while t < reads.len() {
        let rv: f64 = reads.iter().skip(t).take(step).sum::<f64>() / step as f64;
        let wv: f64 = writes.iter().skip(t).take(step).sum::<f64>() / step as f64;
        println!("{:>7} {:>9.2} {:>9.2}", t, to_gbps(rv), to_gbps(wv));
        t += step;
    }
}

fn print_fabric_counters(ecn: u64, cnps: u64, pauses: u64, gates: u64) {
    println!("  ecn marked: {ecn}   cnps: {cnps}   pauses: {pauses}   gate closures: {gates}");
}

/// Buffered mode: trace into RingSinks, print the in-memory series
/// summaries, then write the merged report as one JSON-lines file.
fn run_buffered(scale: &system_sim::experiments::Scale) {
    let mut sink = RingSink::new(1 << 20);
    let r = fig9(scale, SEED, &mut sink);
    let mut rep = sink.into_report();

    print_responses(&r);

    // Weight-ratio series as traced at the storage node (the applied
    // schedule, not just the controller's decisions).
    println!("\napplied SSQ weight changes (from the trace):");
    for (at, _, w) in rep.series("ssq", "weight") {
        println!("  t={:>7.1} ms  w={}", at.as_ms_f64(), w as u32);
    }

    print_throughput(&r);

    // Fabric slice: real DCQCN rates and TXQ occupancy on the same
    // device under background congestion.
    eprintln!("\nrunning congested fabric slice for DCQCN/TXQ series ...");
    let mut fabric_sink = RingSink::new(1 << 20);
    let slice = fig9_fabric_slice(scale, SEED, &mut fabric_sink);
    rep.merge(fabric_sink.into_report());

    let rates = rep.series("dcqcn", "rate_gbps");
    let min_rate = rates
        .iter()
        .map(|&(_, _, v)| v)
        .fold(f64::INFINITY, f64::min);
    let backlog = rep.series("txq", "backlog_bytes");
    let max_backlog = backlog.iter().map(|&(_, _, v)| v).fold(0.0, f64::max);
    rule();
    println!(
        "fabric slice ({:.1} ms simulated):",
        slice.makespan.as_ms_f64()
    );
    println!(
        "  dcqcn rate samples: {:>6}   min rate: {:.2} Gbps",
        rates.len(),
        min_rate
    );
    println!(
        "  txq backlog samples: {:>5}   max backlog: {:.0} KB",
        backlog.len(),
        max_backlog / 1024.0
    );
    print_fabric_counters(
        rep.counter(("net", 0, "ecn_marked")),
        rep.counter(("net", 0, "cnps_sent")),
        rep.counter(("net", 0, "pauses_received")),
        rep.counter(("txq", 0, "gate_closures")),
    );

    std::fs::create_dir_all("results").expect("create results dir");
    let lines = rep.to_json_lines();
    std::fs::write(TRACE_PATH, &lines).expect("write trace file");
    println!("\ntrace: {TRACE_PATH} ({} lines)", lines.lines().count());
}

/// Streaming mode (`SRCSIM_TRACE=<path>`): one FileSink spans the
/// scripted run and the fabric slice, so the file carries the same
/// merged trace as buffered mode without holding samples in memory.
/// Streaming reducers on the sink path recover the series summaries
/// buffered mode reads from the in-memory report — the applied SSQ
/// weight changes, the minimum DCQCN rate, and the maximum TXQ
/// backlog — while the samples flow straight to disk.
fn run_streaming(scale: &system_sim::experiments::Scale, path: std::path::PathBuf) {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create trace dir");
    }
    let mut sink = Reduced::new(FileSink::create(&path).expect("create trace file"))
        .with("ssq", "weight", Reduction::Log)
        .with("dcqcn", "rate_gbps", Reduction::Min)
        .with("txq", "backlog_bytes", Reduction::Max);
    let r = fig9(scale, SEED, &mut sink);

    print_responses(&r);

    println!("\napplied SSQ weight changes (from the trace):");
    for &(at, _, w) in sink.log_of("ssq", "weight") {
        println!("  t={:>7.1} ms  w={}", at.as_ms_f64(), w as u32);
    }

    print_throughput(&r);

    eprintln!("\nrunning congested fabric slice for DCQCN/TXQ series ...");
    let slice = fig9_fabric_slice(scale, SEED, &mut sink);
    rule();
    println!(
        "fabric slice ({:.1} ms simulated):",
        slice.makespan.as_ms_f64()
    );
    println!(
        "  dcqcn rate samples: {:>6}   min rate: {:.2} Gbps",
        sink.count_of("dcqcn", "rate_gbps"),
        sink.value_of("dcqcn", "rate_gbps").unwrap_or(f64::INFINITY)
    );
    println!(
        "  txq backlog samples: {:>5}   max backlog: {:.0} KB",
        sink.count_of("txq", "backlog_bytes"),
        sink.value_of("txq", "backlog_bytes").unwrap_or(0.0) / 1024.0
    );
    print_fabric_counters(
        sink.inner().counter(("net", 0, "ecn_marked")),
        sink.inner().counter(("net", 0, "cnps_sent")),
        sink.inner().counter(("net", 0, "pauses_received")),
        sink.inner().counter(("txq", 0, "gate_closures")),
    );

    let samples = sink.into_inner().finish().expect("flush trace file");
    println!("\ntrace: {} ({samples} samples, streamed)", path.display());
}

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig. 9 — dynamic throughput adjustment, SSD-B ({})",
        scale_label(&scale)
    );
    rule();
    announce_checkpoint();
    match std::env::var_os("SRCSIM_TRACE") {
        Some(p) => run_streaming(&scale, std::path::PathBuf::from(p)),
        None => run_buffered(&scale),
    }

    rule();
    println!(
        "paper: read throughput steps 10 -> ~6 -> ~2.5 -> ~6 -> 10 Gbps \
         tracking the demanded rates,\nconverging within ~7-12 ms per event."
    );
}
