//! Reproduce Fig. 9: dynamic throughput adjustment under scripted
//! pause/retrieval congestion events on SSD-B — SRC's convergence speed.
//!
//! Usage: `fig9_dynamic [quick|full]`

use src_bench::{rule, scale_from_args, scale_label};
use system_sim::experiments::fig9;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 9 — dynamic throughput adjustment, SSD-B ({})", scale_label(&scale));
    rule();
    let r = fig9(&scale, 42);

    println!("congestion events and SRC responses:");
    println!(
        "{:>9} {:>15} {:>9} {:>16}",
        "t(ms)", "demanded(Gbps)", "w chosen", "convergence(ms)"
    );
    for (i, (at, demanded, w)) in r.responses.iter().enumerate() {
        let conv = r
            .convergence_ms
            .get(i)
            .copied()
            .filter(|d| d.is_finite())
            .map(|d| format!("{d:.1}"))
            .unwrap_or_else(|| "-".into());
        println!("{:>9.1} {:>15.2} {:>9} {:>16}", at.as_ms_f64(), demanded, w, conv);
    }

    let finite: Vec<f64> = r
        .convergence_ms
        .iter()
        .copied()
        .filter(|d| d.is_finite())
        .collect();
    if !finite.is_empty() {
        let avg = finite.iter().sum::<f64>() / finite.len() as f64;
        println!("\naverage control delay: {avg:.1} ms (paper: ~7.3 ms)");
    }

    println!("\nper-ms read/write throughput around the events:");
    let reads = r.report.read_series.bins();
    let writes = r.report.write_series.bins();
    let to_gbps = |v: f64| v * 8.0 / 1e6;
    let step = (reads.len() / 24).max(1);
    println!("{:>7} {:>9} {:>9}", "t(ms)", "read", "write");
    let mut t = 0;
    while t < reads.len() {
        let rv: f64 = reads.iter().skip(t).take(step).sum::<f64>() / step as f64;
        let wv: f64 = writes.iter().skip(t).take(step).sum::<f64>() / step as f64;
        println!("{:>7} {:>9.2} {:>9.2}", t, to_gbps(rv), to_gbps(wv));
        t += step;
    }
    rule();
    println!(
        "paper: read throughput steps 10 -> ~6 -> ~2.5 -> ~6 -> 10 Gbps \
         tracking the demanded rates,\nconverging within ~7-12 ms per event."
    );
}
