//! Reproduce Fig. 5: read/write throughput across SSQ weight ratios for
//! the 4×4 grid of micro workloads (inter-arrival 10–25 µs × request
//! size 10–40 KB) on SSD-A.
//!
//! Usage: `fig5_weight_sweep [quick|full] [a|b|c]`

use src_bench::{rule, scale_from_args, scale_label};
use ssd_sim::SsdConfig;
use system_sim::experiments::fig5;

fn main() {
    let scale = scale_from_args();
    let ssd = match std::env::args().nth(2).as_deref() {
        Some("b") => SsdConfig::ssd_b(),
        Some("c") => SsdConfig::ssd_c(),
        _ => SsdConfig::ssd_a(),
    };
    println!(
        "Fig. 5 — I/O throughput across weight ratios ({})",
        scale_label(&scale)
    );
    rule();
    let cells = fig5(&ssd, &scale, 42);
    let weights: Vec<u32> = cells[0].points.iter().map(|p| p.weight).collect();
    println!(
        "{:>8} {:>9} | {}",
        "IAT(us)",
        "size(KB)",
        weights
            .iter()
            .map(|w| format!("{:>13}", format!("w={w} R/W")))
            .collect::<String>()
    );
    for c in &cells {
        let row: String = c
            .points
            .iter()
            .map(|p| format!("{:>6.2}/{:<6.2}", p.read_gbps, p.write_gbps))
            .collect();
        println!("{:>8.0} {:>9.0} | {row}", c.iat_us, c.size_bytes / 1000.0);
    }
    rule();
    // Shape checks matching the paper's observations.
    let heavy = cells
        .iter()
        .min_by(|a, b| {
            (a.iat_us / a.size_bytes)
                .partial_cmp(&(b.iat_us / b.size_bytes))
                .unwrap()
        })
        .unwrap();
    let light = cells
        .iter()
        .max_by(|a, b| {
            (a.iat_us / a.size_bytes)
                .partial_cmp(&(b.iat_us / b.size_bytes))
                .unwrap()
        })
        .unwrap();
    let h0 = &heavy.points[0];
    let hn = heavy.points.last().unwrap();
    println!(
        "heaviest cell: read {:.2} -> {:.2} Gbps, write {:.2} -> {:.2} Gbps across w",
        h0.read_gbps, hn.read_gbps, h0.write_gbps, hn.write_gbps
    );
    let l0 = &light.points[0];
    let ln = light.points.last().unwrap();
    println!(
        "lightest cell: read {:.2} -> {:.2} Gbps (weight knob fades out)",
        l0.read_gbps, ln.read_gbps
    );
    println!("paper: w shifts throughput under heavy load; no effect under light load.");
}
