//! Design-argument ablation (paper Sec. II-C): the "intuitive" reactive
//! controller vs SRC's TPM-based one, head to head in the same
//! in-the-loop harness. The paper's claim — the reactive method
//! "suffers from slow response and control delay" — is measured here as
//! settle time and number of control actions.
//!
//! Usage: `ablation_reactive [quick|full]`

use sim_engine::{Rate, SimDuration, SimTime};
use src_bench::{rule, scale_from_args, scale_label};
use src_core::algorithm::{CongestionEvent, CongestionKind};
use src_core::reactive::{ReactiveConfig, ReactiveController, TpmRateController};
use ssd_sim::SsdConfig;
use system_sim::controlled::run_controlled;
use system_sim::experiments::train_tpm;
use workload::micro::{generate_micro, MicroConfig};

fn main() {
    let scale = scale_from_args();
    println!(
        "Ablation — reactive vs TPM-based control ({})",
        scale_label(&scale)
    );
    rule();
    let ssd = SsdConfig::ssd_a();
    eprintln!("training TPM on SSD-A ...");
    let tpm = train_tpm(&ssd, &scale, 42);

    let n = scale.requests_per_target * 4;
    let trace = generate_micro(
        &MicroConfig {
            read_iat_mean_us: 8.0,
            write_iat_mean_us: 8.0,
            read_size_mean: 40_000.0,
            write_size_mean: 40_000.0,
            read_count: n,
            write_count: n,
            ..MicroConfig::default()
        },
        7,
    );
    let span = trace.span();
    let mk_events = || {
        vec![
            CongestionEvent {
                at: SimTime::from_ps(span.as_ps() / 4),
                demanded: Rate::from_gbps_f64(0.8),
                kind: CongestionKind::Pause,
            },
            CongestionEvent {
                at: SimTime::from_ps(span.as_ps() / 2),
                demanded: Rate::from_gbps_f64(1.6),
                kind: CongestionKind::Retrieval,
            },
        ]
    };
    let tick = SimDuration::from_ms(1);

    let mut reactive = ReactiveController::new(ReactiveConfig::default());
    let r_reactive = run_controlled(&ssd, &trace, &mk_events(), &mut reactive, tick);

    let mut tpm_ctl = TpmRateController::new(tpm, 0.1, 16);
    let r_tpm = run_controlled(&ssd, &trace, &mk_events(), &mut tpm_ctl, tick);

    let fmt = |v: &[f64]| {
        v.iter()
            .map(|d| {
                if d.is_finite() {
                    format!("{d:.1} ms")
                } else {
                    "never".into()
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!(
        "{:<12} {:>16} {:>24}",
        "controller", "weight changes", "settle per event"
    );
    println!(
        "{:<12} {:>16} {:>24}",
        "reactive",
        r_reactive.weight_changes.len(),
        fmt(&r_reactive.settle_ms)
    );
    println!(
        "{:<12} {:>16} {:>24}",
        "TPM (SRC)",
        r_tpm.weight_changes.len(),
        fmt(&r_tpm.settle_ms)
    );
    rule();
    println!(
        "the reactive stepper needs one control period per weight step; the \
         TPM\ncontroller jumps to Algorithm 1's answer in a single action — \
         the paper's\nSec. II-C design argument, quantified."
    );
}
