//! Checkpoint/resume self-test harness: a small deterministic
//! storage-node sweep over [`ScenarioRunner::run_cells_resumable`],
//! built for kill-and-resume drills (CI runs one on every push).
//!
//! Per-cell results print to **stdout** — byte-identical whether the
//! sweep ran clean, resumed from a manifest, or was served entirely
//! from cache. Progress (manifest state, cells computed this
//! invocation) prints to **stderr**, so `diff` on stdout is the
//! resume-correctness check.
//!
//! Knobs:
//!
//! * `SRCSIM_CHECKPOINT=<prefix>` — commit completed cells to
//!   `<prefix>.selftest.<tag>.ckpt.jsonl` (without it the sweep still
//!   runs, uncheckpointed).
//! * `SRCSIM_CKPT_ABORT_AFTER=<k>` — simulate a crash: `abort()` the
//!   process (no destructors, no flushing) when the sweep tries to
//!   compute its `k+1`-th cell. Run with `SRCSIM_THREADS=1` so exactly
//!   cells `0..k` are committed before the abort.
//!
//! Usage: `checkpoint_selftest`

use sim_engine::checkpoint::committed_cells;
use sim_engine::{CheckpointSpec, ScenarioRunner};
use std::sync::atomic::{AtomicUsize, Ordering};
use storage_node::{run_trace_windowed, DisciplineKind, NodeConfig};
use workload::micro::{generate_micro, MicroConfig};

const N_CELLS: u64 = 8;
const SEED: u64 = 42;

/// Cells computed (not served from the manifest) in this process.
static COMPUTED: AtomicUsize = AtomicUsize::new(0);

fn main() {
    let abort_after: Option<usize> = std::env::var("SRCSIM_CKPT_ABORT_AFTER")
        .ok()
        .and_then(|v| v.parse().ok());
    let ckpt = CheckpointSpec::from_env("selftest", "checkpoint selftest grid v1");
    match &ckpt {
        Some(c) => eprintln!(
            "manifest {}: {} committed cells",
            c.path().display(),
            committed_cells(c.path()).unwrap_or(0)
        ),
        None => eprintln!("SRCSIM_CHECKPOINT unset; running uncheckpointed"),
    }

    let cells: Vec<u64> = (0..N_CELLS).collect();
    let results =
        ScenarioRunner::from_env().run_cells_resumable(ckpt.as_ref(), SEED, &cells, |i, &cell| {
            if let Some(k) = abort_after {
                if COMPUTED.fetch_add(1, Ordering::SeqCst) >= k {
                    eprintln!("simulated crash entering cell {i} (SRCSIM_CKPT_ABORT_AFTER={k})");
                    std::process::abort();
                }
            } else {
                COMPUTED.fetch_add(1, Ordering::SeqCst);
            }
            let trace = generate_micro(
                &MicroConfig {
                    read_count: 150,
                    write_count: 150,
                    read_iat_mean_us: 12.0,
                    write_iat_mean_us: 12.0,
                    read_size_mean: 24_000.0,
                    write_size_mean: 24_000.0,
                    ..MicroConfig::default()
                },
                SEED ^ cell,
            );
            let r = run_trace_windowed(
                &NodeConfig {
                    discipline: DisciplineKind::Ssq {
                        weight: 1 + (cell % 4) as u32,
                    },
                    ..NodeConfig::default()
                },
                &trace,
            );
            (
                r.reads_completed,
                r.writes_completed,
                r.read_bytes,
                r.write_bytes,
            )
        });

    for (i, (reads, writes, read_bytes, write_bytes)) in results.iter().enumerate() {
        println!(
            "cell {i}: reads={reads} writes={writes} read_bytes={read_bytes} \
             write_bytes={write_bytes}"
        );
    }
    eprintln!(
        "computed {} of {N_CELLS} cells this invocation",
        COMPUTED.load(Ordering::SeqCst)
    );
}
