//! Reproduce Table III: random-forest cross-validation accuracy over
//! the four SCV quadrants of synthetic (MMPP) workloads — each quadrant
//! held out in turn, trained on the rest plus all micro traces.
//!
//! With `SRCSIM_CHECKPOINT=<prefix>` the synthetic sweep, the holdout
//! fits and the micro training sweep commit completed cells to sweep
//! manifests (`table3_synth`, `table3_holdout`, `tpm_train`); a killed
//! run resumes from the last committed cell on re-invocation.
//!
//! Usage: `table3_crossval [quick|full]`

use src_bench::{announce_checkpoint, rule, scale_from_args, scale_label};
use ssd_sim::SsdConfig;
use system_sim::experiments::table3;

fn main() {
    let scale = scale_from_args();
    println!(
        "Table III — cross-validation accuracy, random forest ({})",
        scale_label(&scale)
    );
    rule();
    announce_checkpoint();
    let rows = table3(&SsdConfig::ssd_a(), &scale, 42);
    println!("{:<42} {:>9}", "Data Subset", "Accuracy");
    for (label, r2) in &rows {
        println!("{label:<42} {r2:>9.2}");
    }
    rule();
    println!("paper: 0.89 / 0.98 / 0.96 / 0.95");
}
