//! Extension — SRC under TIMELY congestion control.
//!
//! The paper evaluates SRC with DCQCN, but the mechanism only consumes
//! "demanded sending rate" notifications; this binary reruns the Fig. 7
//! scenario with TIMELY (RTT-gradient, SIGCOMM'15) as the fabric's rate
//! control to show the storage-side controller is CC-agnostic.
//!
//! Usage: `ext_timely [quick|full]`

use src_bench::{rule, scale_from_args, scale_label};
use ssd_sim::SsdConfig;
use system_sim::experiments::{extension_timely, train_tpm};

fn main() {
    let scale = scale_from_args();
    println!("Extension — SRC under TIMELY ({})", scale_label(&scale));
    rule();
    let ssd = SsdConfig::ssd_a();
    eprintln!("training TPM on SSD-A ...");
    let tpm = train_tpm(&ssd, &scale, 42);
    eprintln!("running TIMELY-only and TIMELY-SRC ...");
    let r = extension_timely(&ssd, &scale, tpm, 7);
    let p = |label: &str, rep: &system_sim::SystemReport| {
        println!(
            "{label:<12} read={:>5.2} write={:>5.2} aggregate={:>5.2} Gbps  makespan={:.1} ms",
            rep.read_tput().as_gbps_f64(),
            rep.write_tput().as_gbps_f64(),
            rep.aggregated_tput().as_gbps_f64(),
            rep.makespan.as_ms_f64(),
        );
    };
    p("TIMELY-only", &r.dcqcn_only);
    p("TIMELY-SRC", &r.dcqcn_src);
    let gain = (r.dcqcn_src.aggregated_tput().as_gbps_f64()
        / r.dcqcn_only.aggregated_tput().as_gbps_f64()
        - 1.0)
        * 100.0;
    rule();
    println!("aggregate improvement of SRC under TIMELY: {gain:+.0} %");
    println!("SRC only needs the congestion control's demanded-rate signal;");
    println!("the storage-side mechanism is independent of how that signal is produced.");
}
