//! Reproduce Fig. 2: the motivation example — data transmission under
//! (a) no congestion, (b) DCQCN, (c) SRC.

use system_sim::motivation::{dcqcn_only, no_congestion, with_src, MotivationParams};

fn main() {
    println!("Fig. 2 — motivation example (requests completed per time unit)");
    println!("SSD capacity: 6 reads + 3 writes; NIC capacity: 6; congestion cut: 50%\n");
    let p = MotivationParams::default();
    let rows = [
        ("(a) no congestion", no_congestion(&p)),
        ("(b) DCQCN", dcqcn_only(&p)),
        ("(c) DCQCN + SRC", with_src(&p)),
    ];
    println!(
        "{:<20} {:>6} {:>7} {:>7}",
        "regime", "reads", "writes", "total"
    );
    for (label, o) in rows {
        println!(
            "{label:<20} {:>6} {:>7} {:>7}",
            o.reads,
            o.writes,
            o.total()
        );
    }
    println!("\npaper: 9 -> 6 -> 9 I/Os per time unit; SRC preserves the aggregate.");
}
