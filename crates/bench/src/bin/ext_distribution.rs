//! Extension experiment (paper Sec. IV-F / V): initiator-side data
//! distribution at a 4:1 in-cast ratio — the remedy the paper proposes
//! for the regime where weighted round-robin loses authority.
//!
//! Usage: `ext_distribution [quick|full]`

use src_bench::{rule, scale_from_args, scale_label};
use ssd_sim::SsdConfig;
use system_sim::experiments::{extension_distribution, train_tpm};

fn main() {
    let scale = scale_from_args();
    println!(
        "Extension — data distribution at 4:1 in-cast ({})",
        scale_label(&scale)
    );
    rule();
    let ssd = SsdConfig::ssd_a();
    eprintln!("training TPM on SSD-A ...");
    let tpm = train_tpm(&ssd, &scale, 42);
    let rows = extension_distribution(&ssd, &scale, tpm, 17);
    println!("{:<14} {:>14} {:>12}", "policy", "aggregate", "write");
    for r in &rows {
        println!(
            "{:<14} {:>11.2} Gbps {:>9.2} Gbps",
            r.policy, r.aggregated_gbps, r.write_gbps
        );
    }
    rule();
    println!(
        "paper Sec. IV-F: \"this case can be addressed by designing a data \
         distribution mechanism\"."
    );
    println!(
        "finding: load-aware (least-loaded) selection is the effective remedy — \
         it keeps every\nTarget's queues fed so both the WRR and the device \
         parallelism stay utilized. The\nconsolidating (pack) policy is shown \
         for contrast; at very heavy backlog all\npolicies converge."
    );
}
