//! Shared helpers for the reproduction binaries.

use system_sim::experiments::{Scale, TrainKnob};

/// Parse the common `[quick|full]` CLI argument (default: full).
pub fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("quick") => Scale::quick(),
        _ => Scale::full(),
    }
}

/// Pretty horizontal rule.
pub fn rule() {
    println!("{}", "-".repeat(72));
}

/// Announce checkpointing on stderr when `SRCSIM_CHECKPOINT` is set, so
/// long sweeps make their resume story visible up front. The manifests
/// themselves are opened lazily by each experiment's sweep.
pub fn announce_checkpoint() {
    if let Some(prefix) = std::env::var_os(sim_engine::CHECKPOINT_ENV) {
        eprintln!(
            "checkpointing sweeps to {}.<label>.<tag>.ckpt.jsonl \
             (re-run with the same config to resume)",
            prefix.to_string_lossy()
        );
    }
}

/// Format a scale for banners.
pub fn scale_label(s: &Scale) -> String {
    format!(
        "{} requests/class/target, {:?} training grid",
        s.requests_per_target, s.train
    )
}

/// Counting global allocator (feature `alloc-count`, default on): a
/// thin wrapper over the system allocator that tallies allocation
/// events and requested bytes in relaxed atomics. Binaries opt in with
/// `#[global_allocator]`; the library never installs it itself, so
/// Criterion benches and the experiment binaries are untouched unless
/// they ask.
#[cfg(feature = "alloc-count")]
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// The counting wrapper. Frees are not counted (a steady-state
    /// simulation frees what it allocates, so the alloc side is the
    /// whole story); a `realloc` counts as one event plus the *new*
    /// size in bytes.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            BYTES.fetch_add(layout.size() as u64, Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            BYTES.fetch_add(layout.size() as u64, Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            BYTES.fetch_add(new_size as u64, Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    /// `(allocation events, requested bytes)` since process start;
    /// subtract two snapshots to attribute a region.
    pub fn snapshot() -> (u64, u64) {
        (ALLOCS.load(Relaxed), BYTES.load(Relaxed))
    }
}

/// Re-export for binary convenience.
pub use system_sim;

/// The knob type, re-exported.
pub type Knob = TrainKnob;
