//! Shared helpers for the reproduction binaries.

use system_sim::experiments::{Scale, TrainKnob};

/// Parse the common `[quick|full]` CLI argument (default: full).
pub fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("quick") => Scale::quick(),
        _ => Scale::full(),
    }
}

/// Pretty horizontal rule.
pub fn rule() {
    println!("{}", "-".repeat(72));
}

/// Format a scale for banners.
pub fn scale_label(s: &Scale) -> String {
    format!(
        "{} requests/class/target, {:?} training grid",
        s.requests_per_target, s.train
    )
}

/// Re-export for binary convenience.
pub use system_sim;

/// The knob type, re-exported.
pub type Knob = TrainKnob;
