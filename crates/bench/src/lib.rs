//! Shared helpers for the reproduction binaries.

use system_sim::experiments::{Scale, TrainKnob};

/// Parse the common `[quick|full]` CLI argument (default: full).
pub fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("quick") => Scale::quick(),
        _ => Scale::full(),
    }
}

/// Pretty horizontal rule.
pub fn rule() {
    println!("{}", "-".repeat(72));
}

/// Announce checkpointing on stderr when `SRCSIM_CHECKPOINT` is set, so
/// long sweeps make their resume story visible up front. The manifests
/// themselves are opened lazily by each experiment's sweep.
pub fn announce_checkpoint() {
    if let Some(prefix) = std::env::var_os(sim_engine::CHECKPOINT_ENV) {
        eprintln!(
            "checkpointing sweeps to {}.<label>.<tag>.ckpt.jsonl \
             (re-run with the same config to resume)",
            prefix.to_string_lossy()
        );
    }
}

/// Format a scale for banners.
pub fn scale_label(s: &Scale) -> String {
    format!(
        "{} requests/class/target, {:?} training grid",
        s.requests_per_target, s.train
    )
}

/// Re-export for binary convenience.
pub use system_sim;

/// The knob type, re-exported.
pub type Knob = TrainKnob;
