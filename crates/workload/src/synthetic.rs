//! Synthetic traces: MMPP-generated workloads fitted to the summary
//! statistics of real storage traces (paper Sec. IV-A).
//!
//! The paper extracts mean/SCV/skewness/autocorrelation of inter-arrival
//! time and request size from SNIA traces (Fujitsu VDI, Tencent CBS) and
//! feeds them to the KPC-Toolbox to build an MMPP generator. We keep the
//! published summary statistics as presets and generate with the
//! moment-matched models from [`crate::mmpp`].

use crate::mmpp::{IatModel, SizeModel};
use crate::request::{IoType, Request, SECTOR_BYTES};
use crate::spatial::LbaModel;
use crate::trace::Trace;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sim_engine::rng::stream_rng;
use sim_engine::{SimDuration, SimTime};

/// Statistical profile of one I/O stream (one class of one trace).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StreamProfile {
    /// Mean inter-arrival time, µs.
    pub iat_mean_us: f64,
    /// SCV of inter-arrival time.
    pub iat_scv: f64,
    /// Mean request size, bytes.
    pub size_mean: f64,
    /// SCV of request size.
    pub size_scv: f64,
}

/// Configuration of a synthetic workload: independent read and write
/// streams, merged in arrival order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Read-stream profile.
    pub read: StreamProfile,
    /// Write-stream profile.
    pub write: StreamProfile,
    /// Number of read requests.
    pub read_count: usize,
    /// Number of write requests.
    pub write_count: usize,
    /// Logical address space in sectors.
    pub lba_space_sectors: u64,
    /// Spatial access pattern (VDI-like traces are Zipf-skewed).
    pub lba_model: LbaModel,
}

impl SyntheticConfig {
    /// The Fujitsu-VDI-like workload used in Sec. IV-D: average read size
    /// 44 KB, write size 23 KB, ~10 µs inter-arrival for both classes,
    /// read traffic ≈ 35.2 Gbps, bursty arrivals. The paper reports read
    /// intensity about twice the write intensity; we encode that by
    /// giving reads twice the request count per unit time window.
    pub fn vdi(read_count: usize, write_count: usize) -> Self {
        SyntheticConfig {
            read: StreamProfile {
                iat_mean_us: 10.0,
                iat_scv: 4.0,
                size_mean: 44_000.0,
                size_scv: 1.8,
            },
            write: StreamProfile {
                iat_mean_us: 10.0,
                iat_scv: 3.0,
                size_mean: 23_000.0,
                size_scv: 1.4,
            },
            read_count,
            write_count,
            lba_space_sectors: 1 << 22,
            lba_model: LbaModel::Zipf {
                regions: 16,
                s: 1.1,
            },
        }
    }

    /// A Tencent-CBS-like profile: smaller, write-heavier, highly bursty.
    pub fn cbs(read_count: usize, write_count: usize) -> Self {
        SyntheticConfig {
            read: StreamProfile {
                iat_mean_us: 18.0,
                iat_scv: 6.0,
                size_mean: 16_000.0,
                size_scv: 2.5,
            },
            write: StreamProfile {
                iat_mean_us: 9.0,
                iat_scv: 5.0,
                size_mean: 12_000.0,
                size_scv: 2.0,
            },
            read_count,
            write_count,
            lba_space_sectors: 1 << 22,
            lba_model: LbaModel::Zipf {
                regions: 32,
                s: 1.2,
            },
        }
    }
}

/// The four spatial/temporal variation classes of Table III.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScvQuadrant {
    /// low size SCV + low inter-arrival SCV
    LowSizeLowIat,
    /// low size SCV + high inter-arrival SCV
    LowSizeHighIat,
    /// high size SCV + low inter-arrival SCV
    HighSizeLowIat,
    /// high size SCV + high inter-arrival SCV
    HighSizeHighIat,
}

impl ScvQuadrant {
    /// All four quadrants in Table III's row order.
    pub const ALL: [ScvQuadrant; 4] = [
        ScvQuadrant::LowSizeLowIat,
        ScvQuadrant::LowSizeHighIat,
        ScvQuadrant::HighSizeLowIat,
        ScvQuadrant::HighSizeHighIat,
    ];

    /// Table III row label.
    pub fn label(self) -> &'static str {
        match self {
            ScvQuadrant::LowSizeLowIat => "low size SCV + low inter-arrival SCV",
            ScvQuadrant::LowSizeHighIat => "low size SCV + high inter-arrival SCV",
            ScvQuadrant::HighSizeLowIat => "high size SCV + low inter-arrival SCV",
            ScvQuadrant::HighSizeHighIat => "high size SCV + high inter-arrival SCV",
        }
    }

    /// Classify a profile by its SCVs using threshold 1.0 (variation
    /// above exponential = "high").
    pub fn classify(size_scv: f64, iat_scv: f64) -> ScvQuadrant {
        match (size_scv > 1.0, iat_scv > 1.0) {
            (false, false) => ScvQuadrant::LowSizeLowIat,
            (false, true) => ScvQuadrant::LowSizeHighIat,
            (true, false) => ScvQuadrant::HighSizeLowIat,
            (true, true) => ScvQuadrant::HighSizeHighIat,
        }
    }

    /// A representative synthetic profile inside this quadrant, scaled by
    /// an intensity knob (mean IAT µs and mean size bytes).
    pub fn profile(self, iat_mean_us: f64, size_mean: f64) -> StreamProfile {
        let (size_scv, iat_scv) = match self {
            ScvQuadrant::LowSizeLowIat => (0.4, 0.5),
            ScvQuadrant::LowSizeHighIat => (0.4, 4.0),
            ScvQuadrant::HighSizeLowIat => (2.5, 0.5),
            ScvQuadrant::HighSizeHighIat => (2.5, 4.0),
        };
        StreamProfile {
            iat_mean_us,
            iat_scv,
            size_mean,
            size_scv,
        }
    }
}

fn gen_stream(
    op: IoType,
    profile: &StreamProfile,
    count: usize,
    lba_space: u64,
    lba_model: &LbaModel,
    rng: &mut impl Rng,
) -> Vec<Request> {
    let iat_model = IatModel::fit(profile.iat_mean_us, profile.iat_scv);
    let size_model = SizeModel::new(profile.size_mean, profile.size_scv);
    let mut iat = iat_model.sampler(rng);
    let mut lba_sampler = lba_model.sampler(lba_space);
    let mut t = SimTime::ZERO;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        t += SimDuration::from_us_f64(iat.next_us(rng));
        let size = size_model.sample(rng);
        let sectors = size / SECTOR_BYTES;
        let lba = lba_sampler.sample(sectors, rng);
        out.push(Request {
            id: i as u64,
            op,
            lba,
            size,
            arrival: t,
        });
    }
    out
}

/// Generate a synthetic trace from `cfg` with deterministic `seed`.
pub fn generate_synthetic(cfg: &SyntheticConfig, seed: u64) -> Trace {
    let mut r_rng = stream_rng(seed, "synth-read");
    let mut w_rng = stream_rng(seed, "synth-write");
    let reads = gen_stream(
        IoType::Read,
        &cfg.read,
        cfg.read_count,
        cfg.lba_space_sectors,
        &cfg.lba_model,
        &mut r_rng,
    );
    let writes = gen_stream(
        IoType::Write,
        &cfg.write,
        cfg.write_count,
        cfg.lba_space_sectors,
        &cfg.lba_model,
        &mut w_rng,
    );
    Trace::from_requests(reads).merge(Trace::from_requests(writes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vdi_matches_published_statistics() {
        let cfg = SyntheticConfig::vdi(20_000, 10_000);
        let t = generate_synthetic(&cfg, 5);
        let r = t.class_stats(IoType::Read);
        let w = t.class_stats(IoType::Write);
        assert!(
            (r.size_mean - 44_000.0).abs() / 44_000.0 < 0.05,
            "{}",
            r.size_mean
        );
        assert!(
            (w.size_mean - 23_000.0).abs() / 23_000.0 < 0.05,
            "{}",
            w.size_mean
        );
        assert!(
            (r.iat_mean_us - 10.0).abs() / 10.0 < 0.1,
            "{}",
            r.iat_mean_us
        );
        // Read traffic load ≈ 35.2 Gbps (Sec. IV-D).
        let load = t.offered_load_bps(IoType::Read);
        assert!((load - 35.2e9).abs() / 35.2e9 < 0.12, "load={load}");
        // Bursty arrivals: measured IAT SCV well above 1.
        assert!(r.iat_scv > 2.0, "iat scv {}", r.iat_scv);
    }

    #[test]
    fn quadrant_generation_lands_in_quadrant() {
        for q in ScvQuadrant::ALL {
            let p = q.profile(15.0, 24_000.0);
            let cfg = SyntheticConfig {
                read: p,
                write: p,
                read_count: 20_000,
                write_count: 0,
                lba_space_sectors: 1 << 22,
                lba_model: LbaModel::Uniform,
            };
            let t = generate_synthetic(&cfg, 9);
            let s = t.class_stats(IoType::Read);
            assert_eq!(
                ScvQuadrant::classify(s.size_scv, s.iat_scv),
                q,
                "measured size_scv={} iat_scv={} for {q:?}",
                s.size_scv,
                s.iat_scv
            );
        }
    }

    #[test]
    fn classify_thresholds() {
        assert_eq!(ScvQuadrant::classify(0.5, 0.5), ScvQuadrant::LowSizeLowIat);
        assert_eq!(ScvQuadrant::classify(0.5, 2.0), ScvQuadrant::LowSizeHighIat);
        assert_eq!(ScvQuadrant::classify(2.0, 0.5), ScvQuadrant::HighSizeLowIat);
        assert_eq!(
            ScvQuadrant::classify(2.0, 2.0),
            ScvQuadrant::HighSizeHighIat
        );
    }

    #[test]
    fn deterministic() {
        let cfg = SyntheticConfig::cbs(500, 500);
        let a = generate_synthetic(&cfg, 3);
        let b = generate_synthetic(&cfg, 3);
        assert_eq!(a.requests(), b.requests());
    }

    #[test]
    fn labels_are_table_iii_rows() {
        assert_eq!(
            ScvQuadrant::LowSizeLowIat.label(),
            "low size SCV + low inter-arrival SCV"
        );
        assert_eq!(ScvQuadrant::ALL.len(), 4);
    }
}
