//! Unified workload sources: every trace producer in the workspace
//! behind one seeded, deterministic interface.
//!
//! Historically each experiment hard-wired a generator call
//! (`generate_micro(..)`, `generate_synthetic(..)`, or a pre-built
//! [`Trace`]). [`WorkloadSource`] is the seam that makes the producer a
//! value: a [`WorkloadSpec`] is serializable configuration that resolves
//! to a trace only when handed a seed, so sweep engines, checkpoints and
//! config files can all carry *which workload* without carrying the
//! requests themselves. The [`WorkloadSpec::Replay`] variant feeds a
//! recorded trace (see [`crate::trace_io::read_fio_jsonl`]) through the
//! exact same seam, with rescaling knobs so one recording can sweep load
//! levels.

use crate::micro::{generate_micro, MicroConfig};
use crate::request::{IoType, Request};
use crate::synthetic::{generate_synthetic, SyntheticConfig};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use sim_engine::SimTime;

/// A deterministic trace producer.
///
/// The contract mirrors the generators it unifies: `generate` must be a
/// pure function of `self` and `seed` (byte-identical traces on repeated
/// calls), and sources that replay recorded data simply ignore the seed.
pub trait WorkloadSource {
    /// Produce the trace for `seed`.
    fn generate(&self, seed: u64) -> Trace;

    /// Short human-readable label for banners, manifests and reports.
    fn label(&self) -> String;

    /// Offered read load in bits per second when statically known from
    /// the configuration (the paper's "traffic load": mean size / mean
    /// inter-arrival time). `None` when it can only be measured from a
    /// generated trace.
    fn offered_read_load_bps(&self) -> Option<f64>;
}

impl WorkloadSource for MicroConfig {
    fn generate(&self, seed: u64) -> Trace {
        generate_micro(self, seed)
    }

    fn label(&self) -> String {
        format!(
            "micro(iat={}us,size={}B,n={}+{})",
            self.read_iat_mean_us, self.read_size_mean, self.read_count, self.write_count
        )
    }

    fn offered_read_load_bps(&self) -> Option<f64> {
        Some(self.read_load_bps())
    }
}

impl WorkloadSource for SyntheticConfig {
    fn generate(&self, seed: u64) -> Trace {
        generate_synthetic(self, seed)
    }

    fn label(&self) -> String {
        format!(
            "synthetic(iat={}us,size={}B,scv={}/{},n={}+{})",
            self.read.iat_mean_us,
            self.read.size_mean,
            self.read.size_scv,
            self.read.iat_scv,
            self.read_count,
            self.write_count
        )
    }

    fn offered_read_load_bps(&self) -> Option<f64> {
        Some(self.read.size_mean * 8.0 / (self.read.iat_mean_us * 1e-6))
    }
}

/// Raw passthrough: a pre-built trace is its own source (seed ignored).
impl WorkloadSource for Trace {
    fn generate(&self, _seed: u64) -> Trace {
        self.clone()
    }

    fn label(&self) -> String {
        format!("fixed({} requests)", self.len())
    }

    fn offered_read_load_bps(&self) -> Option<f64> {
        Some(self.offered_load_bps(IoType::Read))
    }
}

/// A recorded trace replayed through the workload seam, with the two
/// knobs that let one recording sweep operating points:
///
/// * **time rescaling** — every arrival timestamp is multiplied by
///   `time_scale`, so `0.5` doubles the offered load and `2.0` halves
///   it while preserving the recording's burst structure;
/// * **LBA remapping** — request addresses are folded into a target
///   device's `[0, lba_space_sectors)` address space (wrap-around
///   modulo, end-clamped), so a recording taken on a larger device
///   replays on a smaller simulated one.
///
/// Replay is deterministic and seed-independent: the same spec always
/// yields the same trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplaySpec {
    /// Where the recording came from (file name, trace id) — used in
    /// labels and checkpoint fingerprints.
    pub source: String,
    /// The recorded trace, as parsed (see
    /// [`crate::trace_io::read_fio_jsonl`]).
    pub trace: Trace,
    /// Arrival-timestamp multiplier (> 0). 1.0 replays in recorded time.
    pub time_scale: f64,
    /// Fold LBAs into this address space (sectors) when set.
    pub lba_space_sectors: Option<u64>,
    /// Replay only the first N requests when set (quick modes).
    pub max_requests: Option<usize>,
}

impl ReplaySpec {
    /// Replay `trace` verbatim.
    pub fn new(source: impl Into<String>, trace: Trace) -> Self {
        ReplaySpec {
            source: source.into(),
            trace,
            time_scale: 1.0,
            lba_space_sectors: None,
            max_requests: None,
        }
    }

    /// Set the arrival-timestamp multiplier.
    ///
    /// # Panics
    /// Panics unless `scale` is finite and positive.
    pub fn time_scale(mut self, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "time_scale must be positive, got {scale}"
        );
        self.time_scale = scale;
        self
    }

    /// Fold LBAs into `[0, sectors)`.
    ///
    /// # Panics
    /// Panics when `sectors` is zero.
    pub fn remap_lba(mut self, sectors: u64) -> Self {
        assert!(sectors > 0, "LBA space must be nonempty");
        self.lba_space_sectors = Some(sectors);
        self
    }

    /// Replay only the first `n` requests of the recording.
    pub fn truncate(mut self, n: usize) -> Self {
        self.max_requests = Some(n);
        self
    }
}

impl WorkloadSource for ReplaySpec {
    fn generate(&self, _seed: u64) -> Trace {
        let mut requests: Vec<Request> = self.trace.requests().to_vec();
        if let Some(n) = self.max_requests {
            requests.truncate(n);
        }
        for r in requests.iter_mut() {
            if self.time_scale != 1.0 {
                let ps = (r.arrival.as_ps() as f64 * self.time_scale).round();
                r.arrival = SimTime::from_ps(ps as u64);
            }
            if let Some(space) = self.lba_space_sectors {
                let sectors = r.sectors().min(space);
                // Wrap into the device, then clamp so the request still
                // ends inside it.
                r.lba = (r.lba % space).min(space - sectors);
            }
        }
        // Rescaling preserves arrival order (monotone map), but rounding
        // can create ties; `from_requests` re-sorts by `(arrival, id)`
        // so the result is canonical either way.
        Trace::from_requests(requests)
    }

    fn label(&self) -> String {
        format!(
            "replay({}, {} requests, x{} time{})",
            self.source,
            self.max_requests
                .map_or(self.trace.len(), |n| n.min(self.trace.len())),
            self.time_scale,
            match self.lba_space_sectors {
                Some(s) => format!(", lba%{s}"),
                None => String::new(),
            }
        )
    }

    fn offered_read_load_bps(&self) -> Option<f64> {
        // Time rescaling divides the load; truncation changes the window
        // the statistics are taken over, so measure the actual replay.
        Some(self.generate(0).offered_load_bps(IoType::Read))
    }
}

/// Serializable description of a workload: which producer, with which
/// configuration. The system stack carries specs (see
/// `system_sim::SystemConfig::workloads`) and resolves them to traces
/// per sweep cell with the cell's seed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Exponential micro generator ([`crate::micro`]).
    Micro(MicroConfig),
    /// MMPP synthetic generator ([`crate::synthetic`]).
    Synthetic(SyntheticConfig),
    /// A pre-built trace passed through unchanged.
    Fixed(Trace),
    /// A recorded trace replayed with rescaling knobs.
    Replay(ReplaySpec),
}

impl WorkloadSource for WorkloadSpec {
    fn generate(&self, seed: u64) -> Trace {
        match self {
            WorkloadSpec::Micro(cfg) => cfg.generate(seed),
            WorkloadSpec::Synthetic(cfg) => cfg.generate(seed),
            WorkloadSpec::Fixed(trace) => trace.generate(seed),
            WorkloadSpec::Replay(spec) => spec.generate(seed),
        }
    }

    fn label(&self) -> String {
        match self {
            WorkloadSpec::Micro(cfg) => cfg.label(),
            WorkloadSpec::Synthetic(cfg) => cfg.label(),
            WorkloadSpec::Fixed(trace) => WorkloadSource::label(trace),
            WorkloadSpec::Replay(spec) => spec.label(),
        }
    }

    fn offered_read_load_bps(&self) -> Option<f64> {
        match self {
            WorkloadSpec::Micro(cfg) => cfg.offered_read_load_bps(),
            WorkloadSpec::Synthetic(cfg) => cfg.offered_read_load_bps(),
            WorkloadSpec::Fixed(trace) => trace.offered_read_load_bps(),
            WorkloadSpec::Replay(spec) => spec.offered_read_load_bps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SECTOR_BYTES;

    fn mk(id: u64, at_us: u64, lba: u64, size: u64) -> Request {
        Request {
            id,
            op: IoType::Read,
            lba,
            size,
            arrival: SimTime::from_us(at_us),
        }
    }

    #[test]
    fn micro_spec_matches_direct_generator() {
        let cfg = MicroConfig {
            read_count: 50,
            write_count: 50,
            ..MicroConfig::default()
        };
        let spec = WorkloadSpec::Micro(cfg.clone());
        assert_eq!(
            spec.generate(9).requests(),
            generate_micro(&cfg, 9).requests()
        );
        assert_eq!(spec.offered_read_load_bps(), Some(cfg.read_load_bps()));
    }

    #[test]
    fn synthetic_spec_matches_direct_generator() {
        let cfg = SyntheticConfig::vdi(80, 40);
        let spec = WorkloadSpec::Synthetic(cfg.clone());
        assert_eq!(
            spec.generate(5).requests(),
            generate_synthetic(&cfg, 5).requests()
        );
    }

    #[test]
    fn fixed_spec_ignores_seed() {
        let t = Trace::from_requests(vec![mk(0, 10, 0, 4096), mk(1, 20, 8, 8192)]);
        let spec = WorkloadSpec::Fixed(t.clone());
        assert_eq!(spec.generate(1).requests(), t.requests());
        assert_eq!(spec.generate(999).requests(), t.requests());
    }

    #[test]
    fn replay_time_rescaling_scales_arrivals_and_load() {
        let t = Trace::from_requests((0..100).map(|i| mk(i, 10 * i, i * 8, 40_000)).collect());
        let base_load = t.offered_load_bps(IoType::Read);
        let spec = ReplaySpec::new("test", t).time_scale(0.5);
        let replayed = spec.generate(0);
        // Arrivals halved -> load doubled.
        assert_eq!(replayed.requests()[10].arrival, SimTime::from_us(50));
        let load = replayed.offered_load_bps(IoType::Read);
        assert!((load - 2.0 * base_load).abs() / base_load < 1e-9, "{load}");
        assert_eq!(spec.offered_read_load_bps(), Some(load));
    }

    #[test]
    fn replay_lba_remap_fits_device() {
        let space = 1 << 10;
        let t = Trace::from_requests(vec![
            mk(0, 0, 5, 4096),
            mk(1, 10, (1 << 20) + 3, 8192),
            // Wraps to the very end of the space: must be end-clamped.
            mk(2, 20, space - 1, 4 * SECTOR_BYTES),
        ]);
        let spec = ReplaySpec::new("test", t).remap_lba(space);
        for r in spec.generate(0).requests() {
            assert!(r.lba_end() <= space, "request escapes the device: {r:?}");
        }
        // In-range LBAs are untouched.
        assert_eq!(spec.generate(0).requests()[0].lba, 5);
    }

    #[test]
    fn replay_truncation_takes_prefix() {
        let t = Trace::from_requests((0..10).map(|i| mk(i, i, i, 4096)).collect());
        let spec = ReplaySpec::new("test", t).truncate(4);
        let r = spec.generate(0);
        assert_eq!(r.len(), 4);
        assert_eq!(r.span(), SimTime::from_us(3));
        assert!(spec.label().contains("4 requests"), "{}", spec.label());
    }

    #[test]
    fn replay_is_seed_independent_and_deterministic() {
        let t = Trace::from_requests((0..20).map(|i| mk(i, 3 * i, i, 8192)).collect());
        let spec = ReplaySpec::new("test", t).time_scale(1.7);
        assert_eq!(spec.generate(1).requests(), spec.generate(42).requests());
    }

    #[test]
    #[should_panic(expected = "time_scale must be positive")]
    fn replay_rejects_nonpositive_scale() {
        let _ = ReplaySpec::new("x", Trace::new()).time_scale(0.0);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = WorkloadSpec::Replay(
            ReplaySpec::new(
                "fixture.jsonl",
                Trace::from_requests(vec![mk(0, 1, 2, 4096)]),
            )
            .time_scale(2.0)
            .remap_lba(1 << 20),
        );
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.generate(0).requests(), spec.generate(0).requests());
        assert_eq!(back.label(), spec.label());
        let micro = WorkloadSpec::Micro(MicroConfig::default());
        let back: WorkloadSpec =
            serde_json::from_str(&serde_json::to_string(&micro).unwrap()).unwrap();
        assert_eq!(back.generate(3).requests(), micro.generate(3).requests());
    }

    #[test]
    fn labels_name_the_producer() {
        assert!(WorkloadSpec::Micro(MicroConfig::default())
            .label()
            .starts_with("micro("));
        assert!(WorkloadSpec::Synthetic(SyntheticConfig::vdi(1, 1))
            .label()
            .starts_with("synthetic("));
        assert!(WorkloadSpec::Fixed(Trace::new())
            .label()
            .starts_with("fixed("));
    }
}
