//! Spatial (LBA) access models: uniform, Zipf-skewed hot regions, and
//! sequential streams.
//!
//! Real traces like the Fujitsu VDI workload are spatially skewed (the
//! paper calls out "skewed data" as a motivation for disaggregation):
//! most accesses hit a small hot set. Skew matters to the SSD model
//! because it drives the cached-mapping-table hit rate and the write
//! cache's overwrite behavior.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How request addresses are drawn over the logical space.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum LbaModel {
    /// Uniform over the whole space (the default).
    Uniform,
    /// The space is split into `regions` equal regions whose access
    /// probability follows a Zipf law with exponent `s`; addresses are
    /// uniform within the chosen region. Higher `s` = hotter hot set.
    Zipf {
        /// Number of equal-size regions.
        regions: u32,
        /// Zipf exponent (> 0; 1.0 is classic Zipf).
        s: f64,
    },
    /// Sequential: each request continues where the previous one ended,
    /// wrapping at the end of the space (per-stream sequential scan).
    Sequential,
}

impl LbaModel {
    /// Build a stateful sampler over a space of `space_sectors` sectors.
    ///
    /// # Panics
    /// Panics on a zero-sized space or invalid Zipf parameters.
    pub fn sampler(&self, space_sectors: u64) -> LbaSampler {
        assert!(space_sectors > 0, "empty LBA space");
        match self {
            LbaModel::Uniform => LbaSampler::Uniform {
                space: space_sectors,
            },
            LbaModel::Zipf { regions, s } => {
                assert!(*regions >= 1, "need at least one region");
                assert!(*s > 0.0, "Zipf exponent must be positive");
                // Precompute the region CDF.
                let weights: Vec<f64> = (1..=*regions).map(|k| 1.0 / (k as f64).powf(*s)).collect();
                let total: f64 = weights.iter().sum();
                let mut cdf = Vec::with_capacity(weights.len());
                let mut acc = 0.0;
                for w in weights {
                    acc += w / total;
                    cdf.push(acc);
                }
                LbaSampler::Zipf {
                    space: space_sectors,
                    cdf,
                }
            }
            LbaModel::Sequential => LbaSampler::Sequential {
                space: space_sectors,
                next: 0,
            },
        }
    }
}

/// Stateful LBA sampler produced by [`LbaModel::sampler`].
#[derive(Clone, Debug)]
pub enum LbaSampler {
    /// Uniform sampler.
    Uniform {
        /// Space size in sectors.
        space: u64,
    },
    /// Region-Zipf sampler.
    Zipf {
        /// Space size in sectors.
        space: u64,
        /// Region-selection CDF.
        cdf: Vec<f64>,
    },
    /// Sequential cursor.
    Sequential {
        /// Space size in sectors.
        space: u64,
        /// Next sector to hand out.
        next: u64,
    },
}

impl LbaSampler {
    /// Draw a starting LBA for a request of `sectors` sectors; the
    /// returned range always fits inside the space.
    pub fn sample(&mut self, sectors: u64, rng: &mut impl Rng) -> u64 {
        match self {
            LbaSampler::Uniform { space } => {
                let hi = space.saturating_sub(sectors).max(1);
                rng.gen_range(0..hi)
            }
            LbaSampler::Zipf { space, cdf } => {
                let u: f64 = rng.gen();
                let region = cdf.partition_point(|&c| c < u).min(cdf.len() - 1) as u64;
                let region_size = (*space / cdf.len() as u64).max(1);
                let base = region * region_size;
                let hi = region_size.saturating_sub(sectors).max(1);
                (base + rng.gen_range(0..hi)).min(space.saturating_sub(sectors.max(1)))
            }
            LbaSampler::Sequential { space, next } => {
                if *next + sectors > *space {
                    *next = 0;
                }
                let lba = *next;
                *next += sectors.max(1);
                lba
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::rng::stream_rng;

    #[test]
    fn uniform_spreads() {
        let mut s = LbaModel::Uniform.sampler(1000);
        let mut rng = stream_rng(1, "u");
        let mut lo = 0usize;
        for _ in 0..2000 {
            if s.sample(4, &mut rng) < 500 {
                lo += 1;
            }
        }
        // Roughly half below the midpoint.
        assert!((800..1200).contains(&lo), "lo={lo}");
    }

    #[test]
    fn zipf_concentrates_on_first_region() {
        let mut s = LbaModel::Zipf {
            regions: 10,
            s: 1.2,
        }
        .sampler(10_000);
        let mut rng = stream_rng(2, "z");
        let mut first = 0usize;
        let n = 5000;
        for _ in 0..n {
            if s.sample(4, &mut rng) < 1000 {
                first += 1;
            }
        }
        let frac = first as f64 / n as f64;
        // Region 1 carries 1/H(10,1.2) ≈ 0.36 of the mass vs 0.10 uniform.
        assert!(frac > 0.25, "first-region fraction {frac}");
    }

    #[test]
    fn sequential_is_contiguous_and_wraps() {
        let mut s = LbaModel::Sequential.sampler(10);
        let mut rng = stream_rng(3, "s");
        assert_eq!(s.sample(4, &mut rng), 0);
        assert_eq!(s.sample(4, &mut rng), 4);
        // 8 + 4 > 10: wraps.
        assert_eq!(s.sample(4, &mut rng), 0);
    }

    #[test]
    fn requests_always_fit() {
        let mut rng = stream_rng(4, "f");
        for model in [
            LbaModel::Uniform,
            LbaModel::Zipf { regions: 7, s: 0.8 },
            LbaModel::Sequential,
        ] {
            let mut s = model.sampler(500);
            for _ in 0..1000 {
                let lba = s.sample(13, &mut rng);
                assert!(lba + 13 <= 500, "{model:?}: {lba}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty LBA space")]
    fn zero_space_rejected() {
        let _ = LbaModel::Uniform.sampler(0);
    }
}
