//! Workload feature extraction — the `Ch` input of the paper's
//! throughput prediction model (Eq. 1, Sec. III-B).
//!
//! The paper lists: (1) the ratio of read to write requests, (2) the SCV
//! of request size and inter-arrival time for reads and writes, and
//! (3) the per-class arrival flow speed (data size arrived per time
//! unit). We also include the per-class means, which the SCVs are defined
//! against; the feature-importance experiment (Table I discussion)
//! reports flow speed as the dominant feature.

use crate::request::{IoType, Request};
use crate::trace::class_stats_of;
use serde::{Deserialize, Serialize};

/// Extracted workload characteristics over a request window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadFeatures {
    /// Fraction of requests that are reads, in `[0, 1]`.
    pub read_ratio: f64,
    /// Mean read inter-arrival time, µs.
    pub read_iat_mean_us: f64,
    /// SCV of read inter-arrival time.
    pub read_iat_scv: f64,
    /// Mean write inter-arrival time, µs.
    pub write_iat_mean_us: f64,
    /// SCV of write inter-arrival time.
    pub write_iat_scv: f64,
    /// Mean read size, bytes.
    pub read_size_mean: f64,
    /// SCV of read size.
    pub read_size_scv: f64,
    /// Mean write size, bytes.
    pub write_size_mean: f64,
    /// SCV of write size.
    pub write_size_scv: f64,
    /// Read arrival flow speed, bytes per microsecond.
    pub read_flow_bpus: f64,
    /// Write arrival flow speed, bytes per microsecond.
    pub write_flow_bpus: f64,
}

/// Number of scalar features in [`WorkloadFeatures::to_vec`].
pub const N_FEATURES: usize = 11;

/// Human-readable feature names, aligned with [`WorkloadFeatures::to_vec`].
pub const FEATURE_NAMES: [&str; N_FEATURES] = [
    "read_ratio",
    "read_iat_mean_us",
    "read_iat_scv",
    "write_iat_mean_us",
    "write_iat_scv",
    "read_size_mean",
    "read_size_scv",
    "write_size_mean",
    "write_size_scv",
    "read_flow_bpus",
    "write_flow_bpus",
];

impl WorkloadFeatures {
    /// Flatten into a feature vector (order matches [`FEATURE_NAMES`]).
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.read_ratio,
            self.read_iat_mean_us,
            self.read_iat_scv,
            self.write_iat_mean_us,
            self.write_iat_scv,
            self.read_size_mean,
            self.read_size_scv,
            self.write_size_mean,
            self.write_size_scv,
            self.read_flow_bpus,
            self.write_flow_bpus,
        ]
    }

    /// Allocation-free variant of [`WorkloadFeatures::to_vec`]: write
    /// the features into the first [`N_FEATURES`] slots of `out` (hot
    /// prediction paths keep one stack buffer instead of building a
    /// `Vec` per query).
    pub fn write_into(&self, out: &mut [f64]) {
        out[..N_FEATURES].copy_from_slice(&[
            self.read_ratio,
            self.read_iat_mean_us,
            self.read_iat_scv,
            self.write_iat_mean_us,
            self.write_iat_scv,
            self.read_size_mean,
            self.read_size_scv,
            self.write_size_mean,
            self.write_size_scv,
            self.read_flow_bpus,
            self.write_flow_bpus,
        ]);
    }
}

/// Extract features from a window of requests (the workload monitor
/// calls this on every prediction window).
pub fn extract_features(window: &[Request]) -> WorkloadFeatures {
    let r = class_stats_of(window, IoType::Read);
    let w = class_stats_of(window, IoType::Write);
    let total = (r.count + w.count) as f64;
    let read_ratio = if total == 0.0 {
        0.0
    } else {
        r.count as f64 / total
    };
    // Flow speed = mean size / mean IAT; when a class has a single request
    // (no IAT sample) the flow speed is reported as 0 — the window is too
    // short to say anything about its rate.
    let flow = |size_mean: f64, iat_mean: f64| {
        if iat_mean > 0.0 {
            size_mean / iat_mean
        } else {
            0.0
        }
    };
    WorkloadFeatures {
        read_ratio,
        read_iat_mean_us: r.iat_mean_us,
        read_iat_scv: r.iat_scv,
        write_iat_mean_us: w.iat_mean_us,
        write_iat_scv: w.iat_scv,
        read_size_mean: r.size_mean,
        read_size_scv: r.size_scv,
        write_size_mean: w.size_mean,
        write_size_scv: w.size_scv,
        read_flow_bpus: flow(r.size_mean, r.iat_mean_us),
        write_flow_bpus: flow(w.size_mean, w.iat_mean_us),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::{generate_micro, MicroConfig};
    use sim_engine::SimTime;

    #[test]
    fn names_match_vector_length() {
        let f = WorkloadFeatures::default();
        assert_eq!(f.to_vec().len(), N_FEATURES);
        assert_eq!(FEATURE_NAMES.len(), N_FEATURES);
    }

    #[test]
    fn empty_window_is_all_zero() {
        let f = extract_features(&[]);
        assert_eq!(f, WorkloadFeatures::default());
    }

    #[test]
    fn read_ratio_counts() {
        let reqs: Vec<Request> = (0..10)
            .map(|i| Request {
                id: i,
                op: if i < 7 { IoType::Read } else { IoType::Write },
                lba: 0,
                size: 4096,
                arrival: SimTime::from_us(i),
            })
            .collect();
        let f = extract_features(&reqs);
        assert!((f.read_ratio - 0.7).abs() < 1e-12);
    }

    #[test]
    fn flow_speed_matches_load() {
        // 40 KB reads every 10 µs => 4000 bytes/µs.
        let reqs: Vec<Request> = (0..200)
            .map(|i| Request {
                id: i,
                op: IoType::Read,
                lba: 0,
                size: 40_000,
                arrival: SimTime::from_us(10 * i),
            })
            .collect();
        let f = extract_features(&reqs);
        assert!((f.read_flow_bpus - 4000.0).abs() < 1e-9);
        assert_eq!(f.write_flow_bpus, 0.0);
        assert_eq!(f.read_ratio, 1.0);
    }

    #[test]
    fn features_from_generated_trace_are_sane() {
        let t = generate_micro(&MicroConfig::default(), 21);
        let f = extract_features(t.requests());
        assert!(f.read_ratio > 0.4 && f.read_ratio < 0.6);
        assert!(f.read_iat_mean_us > 0.0);
        assert!(f.read_size_mean > 0.0);
        for v in f.to_vec() {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn single_request_class_has_zero_flow() {
        let reqs = vec![Request {
            id: 0,
            op: IoType::Write,
            lba: 0,
            size: 8192,
            arrival: SimTime::from_us(5),
        }];
        let f = extract_features(&reqs);
        assert_eq!(f.write_flow_bpus, 0.0);
        assert_eq!(f.write_iat_mean_us, 0.0);
        assert_eq!(f.write_size_mean, 8192.0);
    }
}
