//! Import/export of block-trace files in the common CSV shape used by
//! SNIA IOTTA block traces (the paper's raw material): one record per
//! line, `timestamp,op,lba,size`, where timestamp is in microseconds,
//! op is `R`/`W` (case-insensitive; `0`/`1` also accepted), lba is in
//! 4 KiB sectors and size in bytes.
//!
//! This lets users feed their own traces to every harness in the
//! workspace, and extract the fitted statistics the synthetic generator
//! needs (the paper's methodology: fit an MMPP to the real trace's
//! moments, then generate).
//!
//! [`read_fio_jsonl`] additionally accepts the JSON-lines shape emitted
//! by fio's log hooks and blktrace converters: one object per line with
//! a microsecond timestamp, an op, a byte offset and a byte length.
//! Parsed traces plug into the sweep engine through
//! [`crate::source::ReplaySpec`].

use crate::request::{IoType, Request, SECTOR_BYTES};
use crate::synthetic::StreamProfile;
use crate::trace::Trace;
use serde::Value;
use sim_engine::{SimDuration, SimTime};
use std::io::{BufRead, Write};

/// Parse error with line context.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn parse_op(tok: &str) -> Option<IoType> {
    match tok.trim().to_ascii_lowercase().as_str() {
        "r" | "read" | "0" => Some(IoType::Read),
        "w" | "write" | "1" => Some(IoType::Write),
        _ => None,
    }
}

/// Read a CSV trace. Lines starting with `#` and blank lines are
/// skipped. Request ids are assigned in file order; the trace is sorted
/// by arrival.
pub fn read_csv<R: BufRead>(reader: R) -> Result<Trace, ParseError> {
    let mut requests = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line.map_err(|e| ParseError {
            line: lineno,
            message: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split(',');
        let mut next = |what: &str| {
            parts
                .next()
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .ok_or(ParseError {
                    line: lineno,
                    message: format!("missing field: {what}"),
                })
        };
        let ts: f64 = next("timestamp")?.parse().map_err(|e| ParseError {
            line: lineno,
            message: format!("bad timestamp: {e}"),
        })?;
        let op = parse_op(next("op")?).ok_or(ParseError {
            line: lineno,
            message: "op must be R/W/read/write/0/1".into(),
        })?;
        let lba: u64 = next("lba")?.parse().map_err(|e| ParseError {
            line: lineno,
            message: format!("bad lba: {e}"),
        })?;
        let size: u64 = next("size")?.parse().map_err(|e| ParseError {
            line: lineno,
            message: format!("bad size: {e}"),
        })?;
        if size == 0 {
            return Err(ParseError {
                line: lineno,
                message: "size must be positive".into(),
            });
        }
        if ts < 0.0 {
            return Err(ParseError {
                line: lineno,
                message: "timestamp must be nonnegative".into(),
            });
        }
        if let Some(extra) = parts.next() {
            return Err(ParseError {
                line: lineno,
                message: format!(
                    "unexpected extra field after size: {:?} (expected timestamp,op,lba,size)",
                    extra.trim()
                ),
            });
        }
        requests.push(Request {
            id: requests.len() as u64,
            op,
            lba,
            size,
            arrival: SimTime::ZERO + SimDuration::from_us_f64(ts),
        });
    }
    Ok(Trace::from_requests(requests))
}

/// Write a trace in the same CSV shape (with a header comment).
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# timestamp_us,op,lba_sectors,size_bytes")?;
    for r in trace.requests() {
        writeln!(
            w,
            "{:.3},{},{},{}",
            r.arrival.as_us_f64(),
            if r.op.is_read() { "R" } else { "W" },
            r.lba,
            r.size
        )?;
    }
    Ok(())
}

/// Options for [`read_fio_jsonl`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FioReadOptions {
    /// Accept records whose timestamps go backwards by sorting the trace
    /// on arrival after parsing (request ids are reassigned in arrival
    /// order). Off by default: replayed traces drive a discrete-event
    /// simulation, so a timestamp that moves backwards is almost always
    /// a corrupt or mis-converted recording and is reported as a
    /// [`ParseError`] naming the offending line.
    pub sort_by_arrival: bool,
}

fn fio_field<'a>(v: &'a Value, lineno: usize, name: &str) -> Result<&'a Value, ParseError> {
    v.get(name).ok_or_else(|| ParseError {
        line: lineno,
        message: format!("missing field `{name}`"),
    })
}

fn fio_f64(v: &Value, lineno: usize, name: &str) -> Result<f64, ParseError> {
    match fio_field(v, lineno, name)? {
        Value::UInt(n) => Ok(*n as f64),
        Value::Int(n) => Ok(*n as f64),
        Value::Float(f) => Ok(*f),
        other => Err(ParseError {
            line: lineno,
            message: format!("field `{name}`: expected a number, got {}", other.kind()),
        }),
    }
}

fn fio_u64(v: &Value, lineno: usize, name: &str) -> Result<u64, ParseError> {
    match fio_field(v, lineno, name)? {
        Value::UInt(n) => Ok(*n),
        Value::Int(n) if *n >= 0 => Ok(*n as u64),
        other => Err(ParseError {
            line: lineno,
            message: format!(
                "field `{name}`: expected a nonnegative integer, got {}",
                other.kind()
            ),
        }),
    }
}

/// Read a fio/blktrace-style JSON-lines trace: one JSON object per line,
/// blank lines and `#` comments skipped. Recognized fields (all
/// required):
///
/// * `ts_us` — arrival timestamp in microseconds (nonnegative number,
///   non-decreasing across records unless
///   [`FioReadOptions::sort_by_arrival`] is set);
/// * `op` — `"R"`/`"W"`/`"read"`/`"write"` (case-insensitive) or the
///   blktrace numeric convention `0` (read) / `1` (write);
/// * `offset` — byte offset on the device (converted to 4 KiB-sector
///   LBAs; sub-sector offsets round down);
/// * `len` — transfer length in bytes (positive).
///
/// Request ids are assigned in arrival order; validation failures name
/// the line and field.
pub fn read_fio_jsonl<R: BufRead>(
    reader: R,
    options: &FioReadOptions,
) -> Result<Trace, ParseError> {
    let mut requests = Vec::new();
    let mut last_ts = f64::NEG_INFINITY;
    let mut out_of_order = false;
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line.map_err(|e| ParseError {
            line: lineno,
            message: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let record = serde_json::parse_value(trimmed).map_err(|e| ParseError {
            line: lineno,
            message: format!("bad JSON record: {e}"),
        })?;
        if record.as_object().is_none() {
            return Err(ParseError {
                line: lineno,
                message: format!("expected a JSON object, got {}", record.kind()),
            });
        }
        let ts = fio_f64(&record, lineno, "ts_us")?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(ParseError {
                line: lineno,
                message: format!(
                    "field `ts_us`: timestamp must be finite and nonnegative, got {ts}"
                ),
            });
        }
        if ts < last_ts {
            if options.sort_by_arrival {
                out_of_order = true;
            } else {
                return Err(ParseError {
                    line: lineno,
                    message: format!(
                        "field `ts_us`: timestamp goes backwards ({ts} after {last_ts}); \
                         enable FioReadOptions::sort_by_arrival to accept out-of-order records"
                    ),
                });
            }
        }
        last_ts = last_ts.max(ts);
        let op = match fio_field(&record, lineno, "op")? {
            Value::Str(s) => parse_op(s),
            Value::UInt(0) | Value::Int(0) => Some(IoType::Read),
            Value::UInt(1) | Value::Int(1) => Some(IoType::Write),
            _ => None,
        }
        .ok_or_else(|| ParseError {
            line: lineno,
            message: "field `op`: must be R/W/read/write/0/1".into(),
        })?;
        let offset = fio_u64(&record, lineno, "offset")?;
        let len = fio_u64(&record, lineno, "len")?;
        if len == 0 {
            return Err(ParseError {
                line: lineno,
                message: "field `len`: length must be positive".into(),
            });
        }
        requests.push(Request {
            id: requests.len() as u64,
            op,
            lba: offset / SECTOR_BYTES,
            size: len,
            arrival: SimTime::ZERO + SimDuration::from_us_f64(ts),
        });
    }
    let trace = Trace::from_requests(requests);
    // The sorted recovery path reorders records, leaving file-order ids
    // non-monotone; merging with the empty trace reassigns them.
    Ok(if out_of_order {
        trace.merge(Trace::new())
    } else {
        trace
    })
}

/// Write a trace in the fio JSON-lines shape read by [`read_fio_jsonl`]
/// (timestamps keep 3 decimals of µs, matching [`write_csv`], so the two
/// formats parse back to identical traces).
pub fn write_fio_jsonl<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    for r in trace.requests() {
        writeln!(
            w,
            "{{\"ts_us\":{:.3},\"op\":\"{}\",\"offset\":{},\"len\":{}}}",
            r.arrival.as_us_f64(),
            if r.op.is_read() { "R" } else { "W" },
            r.lba * SECTOR_BYTES,
            r.size
        )?;
    }
    Ok(())
}

/// Fit per-class [`StreamProfile`]s from a trace — the statistics the
/// paper extracts from SNIA traces to drive the MMPP generator
/// (`(mean, SCV)` of inter-arrival time and request size, per class).
/// Returns `(read_profile, write_profile)`; a class with fewer than two
/// requests yields `None`.
pub fn fit_profiles(trace: &Trace) -> (Option<StreamProfile>, Option<StreamProfile>) {
    let fit = |op: IoType| {
        let s = trace.class_stats(op);
        if s.count < 2 || s.iat_mean_us <= 0.0 || s.size_mean <= 0.0 {
            return None;
        }
        Some(StreamProfile {
            iat_mean_us: s.iat_mean_us,
            iat_scv: s.iat_scv.max(0.05),
            size_mean: s.size_mean,
            size_scv: s.size_scv.max(0.05),
        })
    };
    (fit(IoType::Read), fit(IoType::Write))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::{generate_micro, MicroConfig};
    use crate::synthetic::{generate_synthetic, SyntheticConfig};
    use std::io::Cursor;

    #[test]
    fn parses_well_formed_csv() {
        let data = "\
# a comment
10.5,R,100,4096

20.0,w,200,8192
30.25,1,300,16384
";
        let t = read_csv(Cursor::new(data)).unwrap();
        assert_eq!(t.len(), 3);
        let r = t.requests();
        assert_eq!(r[0].op, IoType::Read);
        assert_eq!(r[0].lba, 100);
        assert_eq!(r[1].op, IoType::Write);
        assert_eq!(r[2].op, IoType::Write);
        assert!((r[2].arrival.as_us_f64() - 30.25).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_lines() {
        for (bad, what) in [
            ("abc,R,1,4096", "timestamp"),
            ("1.0,X,1,4096", "op"),
            ("1.0,R,zzz,4096", "lba"),
            ("1.0,R,1,", "size"),
            ("1.0,R,1,0", "positive"),
            ("-1.0,R,1,4096", "nonnegative"),
            ("1.0,R", "missing"),
        ] {
            let err = read_csv(Cursor::new(bad)).unwrap_err();
            assert_eq!(err.line, 1, "case {bad}");
            let msg = err.to_string();
            assert!(
                msg.to_lowercase().contains(&what.to_lowercase()) || !msg.is_empty(),
                "case {bad}: {msg}"
            );
        }
    }

    #[test]
    fn rejects_surplus_trailing_fields() {
        let err = read_csv(Cursor::new("1.0,R,1,4096,99")).unwrap_err();
        assert_eq!(err.line, 1);
        let msg = err.to_string();
        assert!(
            msg.contains("extra field") && msg.contains("99"),
            "error should name the surplus field: {msg}"
        );
        // A trailing comma is also a surplus (empty) field.
        let err = read_csv(Cursor::new("2.0,R,1,4096\n1.0,W,2,512,")).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("extra field"), "{err}");
    }

    #[test]
    fn csv_round_trip() {
        let t = generate_micro(
            &MicroConfig {
                read_count: 100,
                write_count: 100,
                ..MicroConfig::default()
            },
            3,
        );
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let t2 = read_csv(Cursor::new(buf)).unwrap();
        assert_eq!(t2.len(), t.len());
        for (a, b) in t.requests().iter().zip(t2.requests()) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.lba, b.lba);
            assert_eq!(a.size, b.size);
            // Timestamps round-tripped at ns precision (CSV keeps 3
            // decimals of µs).
            assert!(a.arrival.since(b.arrival).as_us_f64().abs() < 0.001);
        }
    }

    #[test]
    fn fit_profiles_recovers_generator_moments() {
        // Generate a synthetic trace, fit it, and check the fitted
        // profile is close to the generating one — the paper's
        // fit-then-generate loop closes.
        let cfg = SyntheticConfig::vdi(8_000, 8_000);
        let t = generate_synthetic(&cfg, 5);
        let (r, w) = fit_profiles(&t);
        let r = r.expect("read profile");
        let w = w.expect("write profile");
        assert!((r.iat_mean_us - cfg.read.iat_mean_us).abs() / cfg.read.iat_mean_us < 0.1);
        assert!((r.size_mean - cfg.read.size_mean).abs() / cfg.read.size_mean < 0.1);
        assert!(
            r.iat_scv > 1.5,
            "bursty input should fit bursty: {}",
            r.iat_scv
        );
        assert!((w.size_mean - cfg.write.size_mean).abs() / cfg.write.size_mean < 0.1);
    }

    #[test]
    fn fit_profiles_clamps_constant_size_scv() {
        // All requests the same size: the sample size SCV is 0, which
        // the MMPP generator cannot consume — it must be clamped to the
        // same floor as the IAT SCV.
        let requests: Vec<Request> = (0..100)
            .map(|i| Request {
                id: i,
                op: if i % 2 == 0 {
                    IoType::Read
                } else {
                    IoType::Write
                },
                lba: i * 8,
                size: 4096,
                arrival: SimTime::ZERO + SimDuration::from_us_f64(10.0 + 7.3 * i as f64),
            })
            .collect();
        let t = Trace::from_requests(requests);
        let (r, w) = fit_profiles(&t);
        let r = r.expect("read profile");
        let w = w.expect("write profile");
        assert!(r.size_scv >= 0.05, "clamped: {}", r.size_scv);
        assert!(w.size_scv >= 0.05, "clamped: {}", w.size_scv);
    }

    #[test]
    fn parses_well_formed_fio_jsonl() {
        let data = r#"# exported by fio-to-jsonl
{"ts_us": 10.5, "op": "R", "offset": 409600, "len": 4096}

{"ts_us": 20, "op": "write", "offset": 8192, "len": 8192}
{"ts_us": 30.25, "op": 1, "offset": 4097, "len": 16384}
"#;
        let t = read_fio_jsonl(Cursor::new(data), &FioReadOptions::default()).unwrap();
        assert_eq!(t.len(), 3);
        let r = t.requests();
        assert_eq!(r[0].op, IoType::Read);
        assert_eq!(r[0].lba, 100); // 409600 bytes / 4096
        assert_eq!(r[1].op, IoType::Write);
        assert_eq!(r[1].lba, 2);
        assert_eq!(r[2].lba, 1); // sub-sector offset rounds down
        assert!((r[2].arrival.as_us_f64() - 30.25).abs() < 1e-9);
        assert_eq!(r.iter().map(|q| q.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn fio_rejects_invalid_records_naming_line_and_field() {
        let cases = [
            (
                r#"{"ts_us": 1, "op": "R", "offset": 0, "len": 0}"#,
                1,
                "`len`",
            ),
            (
                r#"{"ts_us": -2, "op": "R", "offset": 0, "len": 512}"#,
                1,
                "`ts_us`",
            ),
            (
                r#"{"ts_us": 1, "op": "X", "offset": 0, "len": 512}"#,
                1,
                "`op`",
            ),
            (r#"{"ts_us": 1, "op": "R", "len": 512}"#, 1, "`offset`"),
            (
                r#"{"ts_us": 1, "op": "R", "offset": -4, "len": 512}"#,
                1,
                "`offset`",
            ),
            (
                r#"{"ts_us": "soon", "op": "R", "offset": 0, "len": 512}"#,
                1,
                "`ts_us`",
            ),
            (
                "{\"ts_us\":1,\"op\":\"R\",\"offset\":0,\"len\":512}\n[1,2]",
                2,
                "object",
            ),
            ("not json at all", 1, "JSON"),
        ];
        for (data, line, needle) in cases {
            let err = read_fio_jsonl(Cursor::new(data), &FioReadOptions::default()).unwrap_err();
            assert_eq!(err.line, line, "case {data}");
            assert!(
                err.to_string().contains(needle),
                "case {data}: error should mention {needle}, got: {err}"
            );
        }
    }

    #[test]
    fn fio_rejects_backwards_timestamps_and_offers_recovery() {
        let data = "\
{\"ts_us\": 30, \"op\": \"R\", \"offset\": 0, \"len\": 512}
{\"ts_us\": 10, \"op\": \"W\", \"offset\": 4096, \"len\": 1024}
{\"ts_us\": 20, \"op\": \"R\", \"offset\": 8192, \"len\": 2048}
";
        // Strict mode: error names line 2 and the field, and points at
        // the recovery knob.
        let err = read_fio_jsonl(Cursor::new(data), &FioReadOptions::default()).unwrap_err();
        assert_eq!(err.line, 2);
        let msg = err.to_string();
        assert!(
            msg.contains("`ts_us`") && msg.contains("backwards"),
            "{msg}"
        );
        assert!(msg.contains("sort_by_arrival"), "{msg}");

        // Opt-in recovery: sorted by arrival, ids reassigned monotone.
        let t = read_fio_jsonl(
            Cursor::new(data),
            &FioReadOptions {
                sort_by_arrival: true,
            },
        )
        .unwrap();
        let arrivals: Vec<f64> = t.requests().iter().map(|r| r.arrival.as_us_f64()).collect();
        assert_eq!(arrivals, vec![10.0, 20.0, 30.0]);
        let ids: Vec<u64> = t.requests().iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            vec![0, 1, 2],
            "ids must be reassigned in arrival order"
        );
        assert_eq!(t.requests()[0].op, IoType::Write);
    }

    #[test]
    fn fio_ties_are_not_backwards() {
        let data = "\
{\"ts_us\": 10, \"op\": \"R\", \"offset\": 0, \"len\": 512}
{\"ts_us\": 10, \"op\": \"W\", \"offset\": 4096, \"len\": 1024}
";
        let t = read_fio_jsonl(Cursor::new(data), &FioReadOptions::default()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fio_round_trip() {
        let t = generate_micro(
            &MicroConfig {
                read_count: 200,
                write_count: 200,
                ..MicroConfig::default()
            },
            11,
        );
        let mut buf = Vec::new();
        write_fio_jsonl(&t, &mut buf).unwrap();
        let t2 = read_fio_jsonl(Cursor::new(buf), &FioReadOptions::default()).unwrap();
        assert_eq!(t2.len(), t.len());
        for (a, b) in t.requests().iter().zip(t2.requests()) {
            assert_eq!((a.id, a.op, a.lba, a.size), (b.id, b.op, b.lba, b.size));
            assert!(a.arrival.since(b.arrival).as_us_f64().abs() < 0.001);
        }
    }

    #[test]
    fn csv_and_fio_jsonl_parse_to_identical_traces() {
        // Both writers quantize timestamps to 3 decimals of µs and carry
        // the same (op, lba, size) payload, so the two on-disk formats
        // must parse back to bit-identical traces.
        let t = generate_synthetic(&SyntheticConfig::vdi(300, 150), 7);
        let mut csv = Vec::new();
        write_csv(&t, &mut csv).unwrap();
        let mut jsonl = Vec::new();
        write_fio_jsonl(&t, &mut jsonl).unwrap();
        let from_csv = read_csv(Cursor::new(csv)).unwrap();
        let from_jsonl = read_fio_jsonl(Cursor::new(jsonl), &FioReadOptions::default()).unwrap();
        assert_eq!(from_csv.requests(), from_jsonl.requests());
    }

    proptest::proptest! {
        /// `write_jsonl` ↔ `read_jsonl` is lossless for arbitrary
        /// request mixes (serde carries exact picosecond arrivals).
        #[test]
        fn prop_jsonl_round_trip(
            recs in proptest::collection::vec((0u64..1u64 << 40, 0u8..2, 1u64..1u64 << 20, 1u64..1u64 << 16), 1..60),
        ) {
            let reqs: Vec<Request> = recs
                .iter()
                .enumerate()
                .map(|(i, &(ps, op, lba, size))| Request {
                    id: i as u64,
                    op: if op == 0 { IoType::Read } else { IoType::Write },
                    lba,
                    size,
                    arrival: SimTime::from_ps(ps),
                })
                .collect();
            let t = Trace::from_requests(reqs);
            let mut buf = Vec::new();
            t.write_jsonl(&mut buf).unwrap();
            let t2 = Trace::read_jsonl(Cursor::new(buf)).unwrap();
            proptest::prop_assert_eq!(t.requests(), t2.requests());
        }
    }

    #[test]
    fn fit_profiles_empty_class() {
        let t = generate_micro(
            &MicroConfig {
                read_count: 50,
                write_count: 0,
                ..MicroConfig::default()
            },
            1,
        );
        let (r, w) = fit_profiles(&t);
        assert!(r.is_some());
        assert!(w.is_none());
    }
}
