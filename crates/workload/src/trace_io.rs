//! Import/export of block-trace files in the common CSV shape used by
//! SNIA IOTTA block traces (the paper's raw material): one record per
//! line, `timestamp,op,lba,size`, where timestamp is in microseconds,
//! op is `R`/`W` (case-insensitive; `0`/`1` also accepted), lba is in
//! 4 KiB sectors and size in bytes.
//!
//! This lets users feed their own traces to every harness in the
//! workspace, and extract the fitted statistics the synthetic generator
//! needs (the paper's methodology: fit an MMPP to the real trace's
//! moments, then generate).

use crate::request::{IoType, Request};
use crate::synthetic::StreamProfile;
use crate::trace::Trace;
use sim_engine::{SimDuration, SimTime};
use std::io::{BufRead, Write};

/// Parse error with line context.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn parse_op(tok: &str) -> Option<IoType> {
    match tok.trim().to_ascii_lowercase().as_str() {
        "r" | "read" | "0" => Some(IoType::Read),
        "w" | "write" | "1" => Some(IoType::Write),
        _ => None,
    }
}

/// Read a CSV trace. Lines starting with `#` and blank lines are
/// skipped. Request ids are assigned in file order; the trace is sorted
/// by arrival.
pub fn read_csv<R: BufRead>(reader: R) -> Result<Trace, ParseError> {
    let mut requests = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line.map_err(|e| ParseError {
            line: lineno,
            message: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split(',');
        let mut next = |what: &str| {
            parts
                .next()
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .ok_or(ParseError {
                    line: lineno,
                    message: format!("missing field: {what}"),
                })
        };
        let ts: f64 = next("timestamp")?.parse().map_err(|e| ParseError {
            line: lineno,
            message: format!("bad timestamp: {e}"),
        })?;
        let op = parse_op(next("op")?).ok_or(ParseError {
            line: lineno,
            message: "op must be R/W/read/write/0/1".into(),
        })?;
        let lba: u64 = next("lba")?.parse().map_err(|e| ParseError {
            line: lineno,
            message: format!("bad lba: {e}"),
        })?;
        let size: u64 = next("size")?.parse().map_err(|e| ParseError {
            line: lineno,
            message: format!("bad size: {e}"),
        })?;
        if size == 0 {
            return Err(ParseError {
                line: lineno,
                message: "size must be positive".into(),
            });
        }
        if ts < 0.0 {
            return Err(ParseError {
                line: lineno,
                message: "timestamp must be nonnegative".into(),
            });
        }
        if let Some(extra) = parts.next() {
            return Err(ParseError {
                line: lineno,
                message: format!(
                    "unexpected extra field after size: {:?} (expected timestamp,op,lba,size)",
                    extra.trim()
                ),
            });
        }
        requests.push(Request {
            id: requests.len() as u64,
            op,
            lba,
            size,
            arrival: SimTime::ZERO + SimDuration::from_us_f64(ts),
        });
    }
    Ok(Trace::from_requests(requests))
}

/// Write a trace in the same CSV shape (with a header comment).
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# timestamp_us,op,lba_sectors,size_bytes")?;
    for r in trace.requests() {
        writeln!(
            w,
            "{:.3},{},{},{}",
            r.arrival.as_us_f64(),
            if r.op.is_read() { "R" } else { "W" },
            r.lba,
            r.size
        )?;
    }
    Ok(())
}

/// Fit per-class [`StreamProfile`]s from a trace — the statistics the
/// paper extracts from SNIA traces to drive the MMPP generator
/// (`(mean, SCV)` of inter-arrival time and request size, per class).
/// Returns `(read_profile, write_profile)`; a class with fewer than two
/// requests yields `None`.
pub fn fit_profiles(trace: &Trace) -> (Option<StreamProfile>, Option<StreamProfile>) {
    let fit = |op: IoType| {
        let s = trace.class_stats(op);
        if s.count < 2 || s.iat_mean_us <= 0.0 || s.size_mean <= 0.0 {
            return None;
        }
        Some(StreamProfile {
            iat_mean_us: s.iat_mean_us,
            iat_scv: s.iat_scv.max(0.05),
            size_mean: s.size_mean,
            size_scv: s.size_scv.max(0.05),
        })
    };
    (fit(IoType::Read), fit(IoType::Write))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::{generate_micro, MicroConfig};
    use crate::synthetic::{generate_synthetic, SyntheticConfig};
    use std::io::Cursor;

    #[test]
    fn parses_well_formed_csv() {
        let data = "\
# a comment
10.5,R,100,4096

20.0,w,200,8192
30.25,1,300,16384
";
        let t = read_csv(Cursor::new(data)).unwrap();
        assert_eq!(t.len(), 3);
        let r = t.requests();
        assert_eq!(r[0].op, IoType::Read);
        assert_eq!(r[0].lba, 100);
        assert_eq!(r[1].op, IoType::Write);
        assert_eq!(r[2].op, IoType::Write);
        assert!((r[2].arrival.as_us_f64() - 30.25).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_lines() {
        for (bad, what) in [
            ("abc,R,1,4096", "timestamp"),
            ("1.0,X,1,4096", "op"),
            ("1.0,R,zzz,4096", "lba"),
            ("1.0,R,1,", "size"),
            ("1.0,R,1,0", "positive"),
            ("-1.0,R,1,4096", "nonnegative"),
            ("1.0,R", "missing"),
        ] {
            let err = read_csv(Cursor::new(bad)).unwrap_err();
            assert_eq!(err.line, 1, "case {bad}");
            let msg = err.to_string();
            assert!(
                msg.to_lowercase().contains(&what.to_lowercase()) || !msg.is_empty(),
                "case {bad}: {msg}"
            );
        }
    }

    #[test]
    fn rejects_surplus_trailing_fields() {
        let err = read_csv(Cursor::new("1.0,R,1,4096,99")).unwrap_err();
        assert_eq!(err.line, 1);
        let msg = err.to_string();
        assert!(
            msg.contains("extra field") && msg.contains("99"),
            "error should name the surplus field: {msg}"
        );
        // A trailing comma is also a surplus (empty) field.
        let err = read_csv(Cursor::new("2.0,R,1,4096\n1.0,W,2,512,")).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("extra field"), "{err}");
    }

    #[test]
    fn csv_round_trip() {
        let t = generate_micro(
            &MicroConfig {
                read_count: 100,
                write_count: 100,
                ..MicroConfig::default()
            },
            3,
        );
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let t2 = read_csv(Cursor::new(buf)).unwrap();
        assert_eq!(t2.len(), t.len());
        for (a, b) in t.requests().iter().zip(t2.requests()) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.lba, b.lba);
            assert_eq!(a.size, b.size);
            // Timestamps round-tripped at ns precision (CSV keeps 3
            // decimals of µs).
            assert!(a.arrival.since(b.arrival).as_us_f64().abs() < 0.001);
        }
    }

    #[test]
    fn fit_profiles_recovers_generator_moments() {
        // Generate a synthetic trace, fit it, and check the fitted
        // profile is close to the generating one — the paper's
        // fit-then-generate loop closes.
        let cfg = SyntheticConfig::vdi(8_000, 8_000);
        let t = generate_synthetic(&cfg, 5);
        let (r, w) = fit_profiles(&t);
        let r = r.expect("read profile");
        let w = w.expect("write profile");
        assert!((r.iat_mean_us - cfg.read.iat_mean_us).abs() / cfg.read.iat_mean_us < 0.1);
        assert!((r.size_mean - cfg.read.size_mean).abs() / cfg.read.size_mean < 0.1);
        assert!(
            r.iat_scv > 1.5,
            "bursty input should fit bursty: {}",
            r.iat_scv
        );
        assert!((w.size_mean - cfg.write.size_mean).abs() / cfg.write.size_mean < 0.1);
    }

    #[test]
    fn fit_profiles_clamps_constant_size_scv() {
        // All requests the same size: the sample size SCV is 0, which
        // the MMPP generator cannot consume — it must be clamped to the
        // same floor as the IAT SCV.
        let requests: Vec<Request> = (0..100)
            .map(|i| Request {
                id: i,
                op: if i % 2 == 0 {
                    IoType::Read
                } else {
                    IoType::Write
                },
                lba: i * 8,
                size: 4096,
                arrival: SimTime::ZERO + SimDuration::from_us_f64(10.0 + 7.3 * i as f64),
            })
            .collect();
        let t = Trace::from_requests(requests);
        let (r, w) = fit_profiles(&t);
        let r = r.expect("read profile");
        let w = w.expect("write profile");
        assert!(r.size_scv >= 0.05, "clamped: {}", r.size_scv);
        assert!(w.size_scv >= 0.05, "clamped: {}", w.size_scv);
    }

    #[test]
    fn fit_profiles_empty_class() {
        let t = generate_micro(
            &MicroConfig {
                read_count: 50,
                write_count: 0,
                ..MicroConfig::default()
            },
            1,
        );
        let (r, w) = fit_profiles(&t);
        assert!(r.is_some());
        assert!(w.is_none());
    }
}
