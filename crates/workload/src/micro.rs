//! Micro traces: exponential inter-arrival times and exponential request
//! sizes, as in the paper's Sec. IV-A ("the inter-arrival time and
//! request sizes are drawn from exponential distributions").

use crate::request::{IoType, Request, SECTOR_BYTES};
pub use crate::spatial::LbaModel;
use crate::trace::Trace;
use rand::Rng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};
use sim_engine::rng::stream_rng;
use sim_engine::{SimDuration, SimTime};

/// Configuration of a micro workload. Read and write streams are
/// generated independently and merged, like the paper's trace generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MicroConfig {
    /// Mean inter-arrival time of the read stream, microseconds.
    pub read_iat_mean_us: f64,
    /// Mean inter-arrival time of the write stream, microseconds.
    pub write_iat_mean_us: f64,
    /// Mean read request size in bytes (rounded up to whole sectors).
    pub read_size_mean: f64,
    /// Mean write request size in bytes.
    pub write_size_mean: f64,
    /// Number of read requests to generate.
    pub read_count: usize,
    /// Number of write requests to generate.
    pub write_count: usize,
    /// Logical address space, in sectors.
    pub lba_space_sectors: u64,
    /// Spatial access pattern over the address space.
    pub lba_model: LbaModel,
}

impl Default for MicroConfig {
    /// A moderate workload in the spirit of Fig. 5's middle cells:
    /// 15 µs mean inter-arrival, 20 KB mean size, equal read/write mix.
    fn default() -> Self {
        MicroConfig {
            read_iat_mean_us: 15.0,
            write_iat_mean_us: 15.0,
            read_size_mean: 20_000.0,
            write_size_mean: 20_000.0,
            read_count: 2_000,
            write_count: 2_000,
            lba_space_sectors: 1 << 22, // 16 GiB of 4 KiB sectors
            lba_model: LbaModel::Uniform,
        }
    }
}

impl MicroConfig {
    /// The paper's Fig. 10 "light" workload: 22 KB average size,
    /// 60 requests/ms average arrival rate (per class).
    pub fn light() -> Self {
        MicroConfig {
            read_iat_mean_us: 1000.0 / 60.0,
            write_iat_mean_us: 1000.0 / 60.0,
            read_size_mean: 22_000.0,
            write_size_mean: 22_000.0,
            ..Default::default()
        }
    }

    /// Fig. 10 "moderate": 32 KB, 80 /ms.
    pub fn moderate() -> Self {
        MicroConfig {
            read_iat_mean_us: 1000.0 / 80.0,
            write_iat_mean_us: 1000.0 / 80.0,
            read_size_mean: 32_000.0,
            write_size_mean: 32_000.0,
            ..Default::default()
        }
    }

    /// Fig. 10 "heavy": 44 KB, 100 /ms.
    pub fn heavy() -> Self {
        MicroConfig {
            read_iat_mean_us: 1000.0 / 100.0,
            write_iat_mean_us: 1000.0 / 100.0,
            read_size_mean: 44_000.0,
            write_size_mean: 44_000.0,
            ..Default::default()
        }
    }

    /// Offered read traffic load in bits per second (paper footnote 1:
    /// average size / average inter-arrival time).
    pub fn read_load_bps(&self) -> f64 {
        self.read_size_mean * 8.0 / (self.read_iat_mean_us * 1e-6)
    }
}

/// Round a sampled byte size to a positive whole number of sectors.
pub(crate) fn round_size(bytes: f64) -> u64 {
    let sectors = (bytes / SECTOR_BYTES as f64).round().max(1.0) as u64;
    sectors * SECTOR_BYTES
}

/// Generate one exponential stream of requests.
fn gen_stream(
    op: IoType,
    iat_mean_us: f64,
    size_mean: f64,
    count: usize,
    lba_space: u64,
    lba_model: &LbaModel,
    rng: &mut impl Rng,
) -> Vec<Request> {
    assert!(iat_mean_us > 0.0 && size_mean > 0.0);
    let iat = Exp::new(1.0 / iat_mean_us).expect("valid IAT rate");
    let size = Exp::new(1.0 / size_mean).expect("valid size rate");
    let mut sampler = lba_model.sampler(lba_space);
    let mut t = SimTime::ZERO;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        t += SimDuration::from_us_f64(iat.sample(rng));
        let sz = round_size(size.sample(rng));
        let sectors = sz / SECTOR_BYTES;
        let lba = sampler.sample(sectors, rng);
        out.push(Request {
            id: i as u64,
            op,
            lba,
            size: sz,
            arrival: t,
        });
    }
    out
}

/// Generate a micro trace from `cfg` with a deterministic `seed`.
pub fn generate_micro(cfg: &MicroConfig, seed: u64) -> Trace {
    let mut r_rng = stream_rng(seed, "micro-read");
    let mut w_rng = stream_rng(seed, "micro-write");
    let reads = gen_stream(
        IoType::Read,
        cfg.read_iat_mean_us,
        cfg.read_size_mean,
        cfg.read_count,
        cfg.lba_space_sectors,
        &cfg.lba_model,
        &mut r_rng,
    );
    let writes = gen_stream(
        IoType::Write,
        cfg.write_iat_mean_us,
        cfg.write_size_mean,
        cfg.write_count,
        cfg.lba_space_sectors,
        &cfg.lba_model,
        &mut w_rng,
    );
    Trace::from_requests(reads).merge(Trace::from_requests(writes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = MicroConfig::default();
        let a = generate_micro(&cfg, 9);
        let b = generate_micro(&cfg, 9);
        assert_eq!(a.requests(), b.requests());
        let c = generate_micro(&cfg, 10);
        assert_ne!(a.requests(), c.requests());
    }

    #[test]
    fn moments_close_to_config() {
        let cfg = MicroConfig {
            read_count: 20_000,
            write_count: 20_000,
            ..MicroConfig::default()
        };
        let t = generate_micro(&cfg, 1);
        let s = t.class_stats(IoType::Read);
        assert!(
            (s.iat_mean_us - cfg.read_iat_mean_us).abs() / cfg.read_iat_mean_us < 0.05,
            "iat mean {} vs {}",
            s.iat_mean_us,
            cfg.read_iat_mean_us
        );
        // Exponential IAT => SCV near 1.
        assert!((s.iat_scv - 1.0).abs() < 0.15, "iat scv {}", s.iat_scv);
        assert!(
            (s.size_mean - cfg.read_size_mean).abs() / cfg.read_size_mean < 0.07,
            "size mean {}",
            s.size_mean
        );
    }

    #[test]
    fn sizes_are_sector_multiples_and_positive() {
        let t = generate_micro(&MicroConfig::default(), 3);
        for r in t.requests() {
            assert!(r.size >= SECTOR_BYTES);
            assert_eq!(r.size % SECTOR_BYTES, 0);
            assert!(r.lba + r.sectors() <= MicroConfig::default().lba_space_sectors);
        }
    }

    #[test]
    fn intensity_presets_ordered() {
        assert!(MicroConfig::light().read_load_bps() < MicroConfig::moderate().read_load_bps());
        assert!(MicroConfig::moderate().read_load_bps() < MicroConfig::heavy().read_load_bps());
        // Heavy: 44 KB every 10 us = 35.2 Gbps, as quoted in Sec. IV-D.
        let heavy = MicroConfig::heavy().read_load_bps();
        assert!((heavy - 35.2e9).abs() / 35.2e9 < 1e-9, "{heavy}");
    }

    #[test]
    fn round_size_minimum_one_sector() {
        assert_eq!(round_size(1.0), SECTOR_BYTES);
        assert_eq!(round_size(6000.0), SECTOR_BYTES);
        assert_eq!(round_size(6200.0), 2 * SECTOR_BYTES);
    }

    #[test]
    fn counts_respected() {
        let cfg = MicroConfig {
            read_count: 7,
            write_count: 3,
            ..MicroConfig::default()
        };
        let t = generate_micro(&cfg, 0);
        assert_eq!(t.class_stats(IoType::Read).count, 7);
        assert_eq!(t.class_stats(IoType::Write).count, 3);
        assert_eq!(t.len(), 10);
    }
}
