//! Two-phase Markov-modulated Poisson process (MMPP) and moment-matched
//! arrival/size models.
//!
//! The paper generates its "synthetic" traces by fitting an MMPP — "a
//! two-phase MAP process that can be used to generate inter-arrival time
//! and request size with bursts" (Sec. IV-A) — to the summary statistics
//! of real SNIA traces using the KPC-Toolbox. This module reimplements
//! that generation path:
//!
//! * [`Mmpp2`] — a general 2-state MMPP sampler;
//! * [`IatModel::fit`] — moment matching: SCV > 1 maps to an Interrupted
//!   Poisson Process (a 2-state MMPP with one silent state) via the
//!   classic Kuczura H2 ↔ IPP equivalence, SCV ≈ 1 to a plain Poisson
//!   process, SCV < 1 to a Gamma renewal process (shape = 1/SCV);
//! * [`SizeModel`] — Gamma-distributed request sizes matched to a mean
//!   and SCV, rounded to whole 4 KiB sectors.

use crate::micro::round_size;
use rand::Rng;
use rand_distr::{Distribution, Exp, Gamma};
use serde::{Deserialize, Serialize};

/// A two-state Markov-modulated Poisson process.
///
/// The process alternates between states 0 and 1 with exponential sojourn
/// times; while in state `s`, arrivals occur as a Poisson process of rate
/// `lambda[s]` (arrivals per microsecond). A rate of zero makes the state
/// silent (the IPP special case).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mmpp2 {
    /// Arrival rate in each state, arrivals per microsecond.
    pub lambda: [f64; 2],
    /// Mean sojourn time in each state, microseconds.
    pub sojourn_mean_us: [f64; 2],
}

/// Sampler state for an [`Mmpp2`].
#[derive(Clone, Debug)]
pub struct Mmpp2Sampler {
    model: Mmpp2,
    state: usize,
    /// Time left in the current state, µs.
    remaining_us: f64,
}

impl Mmpp2 {
    /// Long-run average arrival rate (arrivals per µs).
    pub fn mean_rate(&self) -> f64 {
        let pi0 = self.sojourn_mean_us[0] / (self.sojourn_mean_us[0] + self.sojourn_mean_us[1]);
        pi0 * self.lambda[0] + (1.0 - pi0) * self.lambda[1]
    }

    /// Create a sampler starting in the steady-state-probable state.
    pub fn sampler(&self, rng: &mut impl Rng) -> Mmpp2Sampler {
        let pi0 = self.sojourn_mean_us[0] / (self.sojourn_mean_us[0] + self.sojourn_mean_us[1]);
        let state = if rng.gen_bool(pi0.clamp(0.0, 1.0)) {
            0
        } else {
            1
        };
        let mut s = Mmpp2Sampler {
            model: self.clone(),
            state,
            remaining_us: 0.0,
        };
        s.remaining_us = s.draw_sojourn(rng);
        s
    }
}

impl Mmpp2Sampler {
    fn draw_sojourn(&self, rng: &mut impl Rng) -> f64 {
        let mean = self.model.sojourn_mean_us[self.state].max(1e-9);
        Exp::new(1.0 / mean)
            .expect("positive sojourn rate")
            .sample(rng)
    }

    /// Sample the next inter-arrival time in microseconds.
    pub fn next_iat_us(&mut self, rng: &mut impl Rng) -> f64 {
        let mut elapsed = 0.0f64;
        loop {
            let lam = self.model.lambda[self.state];
            if lam > 0.0 {
                let gap = Exp::new(lam).expect("positive lambda").sample(rng);
                if gap < self.remaining_us {
                    self.remaining_us -= gap;
                    return elapsed + gap;
                }
            }
            // No arrival before the state switch: burn the rest of the
            // sojourn and move on (memorylessness makes this exact).
            elapsed += self.remaining_us;
            self.state ^= 1;
            self.remaining_us = self.draw_sojourn(rng);
        }
    }
}

/// An inter-arrival-time model matched to a target mean and SCV.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum IatModel {
    /// Poisson arrivals (SCV = 1).
    Exponential {
        /// Mean inter-arrival time, µs.
        mean_us: f64,
    },
    /// Gamma renewal process (SCV < 1; shape = 1/SCV).
    GammaRenewal {
        /// Mean inter-arrival time, µs.
        mean_us: f64,
        /// Target SCV in (0, 1).
        scv: f64,
    },
    /// Interrupted Poisson process — bursty arrivals (SCV > 1).
    Ipp(Mmpp2),
}

/// Tolerance around SCV = 1 treated as "exponential".
const SCV_EXP_BAND: f64 = 0.05;

impl IatModel {
    /// Moment-match an arrival model to `(mean_us, scv)`.
    ///
    /// For `scv > 1` the model is an IPP constructed from the
    /// balanced-means hyperexponential with the same first two moments,
    /// using Kuczura's equivalence:
    ///
    /// ```text
    /// H2(p, mu1, mu2)  <=>  IPP(lambda, w_on_off, w_off_on)
    /// lambda = p*mu1 + (1-p)*mu2
    /// w_off_on = mu1*mu2 / lambda
    /// w_on_off = mu1 + mu2 - lambda - w_off_on
    /// ```
    ///
    /// # Panics
    /// Panics if `mean_us <= 0` or `scv <= 0`.
    pub fn fit(mean_us: f64, scv: f64) -> IatModel {
        assert!(mean_us > 0.0, "mean must be positive");
        assert!(scv > 0.0, "SCV must be positive");
        if (scv - 1.0).abs() <= SCV_EXP_BAND {
            IatModel::Exponential { mean_us }
        } else if scv < 1.0 {
            IatModel::GammaRenewal { mean_us, scv }
        } else {
            // Balanced-means H2 with mean `mean_us` and SCV `scv`.
            let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
            let mu1 = 2.0 * p / mean_us;
            let mu2 = 2.0 * (1.0 - p) / mean_us;
            // Kuczura inverse mapping H2 -> IPP.
            let lambda = p * mu1 + (1.0 - p) * mu2;
            let w_off_on = mu1 * mu2 / lambda;
            let w_on_off = (mu1 + mu2 - lambda - w_off_on).max(1e-12);
            IatModel::Ipp(Mmpp2 {
                lambda: [lambda, 0.0],
                sojourn_mean_us: [1.0 / w_on_off, 1.0 / w_off_on],
            })
        }
    }

    /// The model's configured mean inter-arrival time (µs).
    pub fn mean_us(&self) -> f64 {
        match self {
            IatModel::Exponential { mean_us } => *mean_us,
            IatModel::GammaRenewal { mean_us, .. } => *mean_us,
            IatModel::Ipp(m) => 1.0 / m.mean_rate(),
        }
    }

    /// Create a stateful sampler.
    pub fn sampler(&self, rng: &mut impl Rng) -> IatSampler {
        match self {
            IatModel::Exponential { mean_us } => {
                IatSampler::Exp(Exp::new(1.0 / mean_us).expect("positive mean"))
            }
            IatModel::GammaRenewal { mean_us, scv } => {
                let shape = 1.0 / scv;
                let scale = mean_us / shape;
                IatSampler::Gamma(Gamma::new(shape, scale).expect("valid gamma"))
            }
            IatModel::Ipp(m) => IatSampler::Mmpp(Box::new(m.sampler(rng))),
        }
    }
}

/// Stateful inter-arrival sampler produced by [`IatModel::sampler`].
#[derive(Clone, Debug)]
pub enum IatSampler {
    /// Exponential renewal sampler.
    Exp(Exp<f64>),
    /// Gamma renewal sampler.
    Gamma(Gamma<f64>),
    /// Bursty MMPP sampler.
    Mmpp(Box<Mmpp2Sampler>),
}

impl IatSampler {
    /// Next inter-arrival time, µs.
    pub fn next_us(&mut self, rng: &mut impl Rng) -> f64 {
        match self {
            IatSampler::Exp(d) => d.sample(rng),
            IatSampler::Gamma(d) => d.sample(rng),
            IatSampler::Mmpp(s) => s.next_iat_us(rng),
        }
    }
}

/// Request-size model: Gamma-distributed bytes matched to mean and SCV,
/// rounded to whole sectors (deterministic when `scv == 0`).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SizeModel {
    /// Mean size in bytes.
    pub mean_bytes: f64,
    /// Squared coefficient of variation of the size distribution.
    pub scv: f64,
}

impl SizeModel {
    /// Construct, validating arguments.
    ///
    /// # Panics
    /// Panics if `mean_bytes <= 0` or `scv < 0`.
    pub fn new(mean_bytes: f64, scv: f64) -> Self {
        assert!(mean_bytes > 0.0, "mean size must be positive");
        assert!(scv >= 0.0, "size SCV must be nonnegative");
        SizeModel { mean_bytes, scv }
    }

    /// Sample one size, in bytes (positive sector multiple).
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        if self.scv == 0.0 {
            return round_size(self.mean_bytes);
        }
        let shape = 1.0 / self.scv;
        let scale = self.mean_bytes / shape;
        let g = Gamma::new(shape, scale).expect("valid gamma");
        round_size(g.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::rng::stream_rng;
    use sim_engine::stats::OnlineStats;

    fn empirical_moments(model: &IatModel, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = stream_rng(seed, "mmpp-test");
        let mut s = model.sampler(&mut rng);
        let mut st = OnlineStats::new();
        for _ in 0..n {
            st.push(s.next_us(&mut rng));
        }
        (st.mean(), st.scv())
    }

    #[test]
    fn exponential_fit_band() {
        assert!(matches!(
            IatModel::fit(10.0, 1.0),
            IatModel::Exponential { .. }
        ));
        assert!(matches!(
            IatModel::fit(10.0, 0.98),
            IatModel::Exponential { .. }
        ));
        assert!(matches!(
            IatModel::fit(10.0, 0.5),
            IatModel::GammaRenewal { .. }
        ));
        assert!(matches!(IatModel::fit(10.0, 4.0), IatModel::Ipp(_)));
    }

    #[test]
    fn exponential_moments() {
        let m = IatModel::fit(12.0, 1.0);
        let (mean, scv) = empirical_moments(&m, 200_000, 1);
        assert!((mean - 12.0).abs() / 12.0 < 0.02, "mean={mean}");
        assert!((scv - 1.0).abs() < 0.05, "scv={scv}");
    }

    #[test]
    fn gamma_moments_low_scv() {
        let m = IatModel::fit(20.0, 0.25);
        let (mean, scv) = empirical_moments(&m, 200_000, 2);
        assert!((mean - 20.0).abs() / 20.0 < 0.02, "mean={mean}");
        assert!((scv - 0.25).abs() < 0.03, "scv={scv}");
    }

    #[test]
    fn ipp_moments_high_scv() {
        for &target in &[2.0, 4.0, 8.0] {
            let m = IatModel::fit(10.0, target);
            assert!((m.mean_us() - 10.0).abs() < 1e-6, "model mean");
            let (mean, scv) = empirical_moments(&m, 400_000, 3);
            assert!(
                (mean - 10.0).abs() / 10.0 < 0.05,
                "mean={mean} for scv {target}"
            );
            assert!(
                (scv - target).abs() / target < 0.15,
                "scv={scv}, target={target}"
            );
        }
    }

    #[test]
    fn ipp_produces_bursts() {
        // Bursty arrivals: lag-1 autocorrelation of counts in windows
        // should be positive, unlike a Poisson process.
        let m = IatModel::fit(10.0, 8.0);
        let mut rng = stream_rng(7, "burst");
        let mut s = m.sampler(&mut rng);
        let mut t = 0.0f64;
        let window = 200.0; // µs
        let mut counts = vec![0.0f64; 2000];
        while let Some(slot) = {
            t += s.next_us(&mut rng);
            let idx = (t / window) as usize;
            (idx < counts.len()).then_some(idx)
        } {
            counts[slot] += 1.0;
        }
        let ac = sim_engine::stats::autocorrelation(&counts, 1);
        // A Poisson process has ~0 count autocorrelation; the IPP must be
        // clearly positive.
        assert!(ac > 0.05, "expected bursty counts, autocorr={ac}");
        // And clearly burstier than a Poisson stream of the same rate.
        let exp_model = IatModel::fit(10.0, 1.0);
        let mut rng2 = stream_rng(7, "burst-exp");
        let mut se = exp_model.sampler(&mut rng2);
        let mut t2 = 0.0f64;
        let mut counts2 = vec![0.0f64; 2000];
        loop {
            t2 += se.next_us(&mut rng2);
            let idx = (t2 / window) as usize;
            if idx >= counts2.len() {
                break;
            }
            counts2[idx] += 1.0;
        }
        let ac_exp = sim_engine::stats::autocorrelation(&counts2, 1);
        assert!(ac > ac_exp + 0.05, "ipp ac={ac} vs poisson ac={ac_exp}");
    }

    #[test]
    fn mmpp_mean_rate() {
        let m = Mmpp2 {
            lambda: [2.0, 0.0],
            sojourn_mean_us: [5.0, 5.0],
        };
        assert!((m.mean_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn size_model_moments() {
        let sm = SizeModel::new(32_000.0, 1.5);
        let mut rng = stream_rng(11, "size");
        let mut st = OnlineStats::new();
        for _ in 0..100_000 {
            st.push(sm.sample(&mut rng) as f64);
        }
        assert!(
            (st.mean() - 32_000.0).abs() / 32_000.0 < 0.05,
            "mean={}",
            st.mean()
        );
        // Rounding to sectors with a 4 KiB floor truncates the left tail,
        // so allow generous tolerance on the SCV.
        assert!((st.scv() - 1.5).abs() < 0.3, "scv={}", st.scv());
    }

    #[test]
    fn size_model_deterministic_when_scv_zero() {
        let sm = SizeModel::new(16_384.0, 0.0);
        let mut rng = stream_rng(0, "det");
        assert_eq!(sm.sample(&mut rng), 16_384);
        assert_eq!(sm.sample(&mut rng), 16_384);
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn fit_rejects_bad_mean() {
        let _ = IatModel::fit(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "SCV must be positive")]
    fn fit_rejects_bad_scv() {
        let _ = IatModel::fit(1.0, 0.0);
    }

    proptest::proptest! {
        /// Fitted models always produce nonnegative, finite inter-arrivals
        /// and roughly the right mean.
        #[test]
        fn prop_fit_mean(mean in 1.0f64..100.0, scv in 0.2f64..6.0) {
            let m = IatModel::fit(mean, scv);
            let (emean, _) = empirical_moments(&m, 20_000, 5);
            proptest::prop_assert!(emean.is_finite() && emean > 0.0);
            proptest::prop_assert!((emean - mean).abs() / mean < 0.2,
                "emean={emean} target={mean} scv={scv}");
        }
    }
}
