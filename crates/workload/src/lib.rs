//! I/O workload modeling for the SRC reproduction.
//!
//! The paper evaluates SRC on two trace families (Sec. IV-A):
//!
//! * **micro traces** — inter-arrival times and request sizes drawn from
//!   exponential distributions ([`micro`]);
//! * **synthetic traces** — generated from the summary statistics of real
//!   SNIA traces (Fujitsu VDI, Tencent CBS) through a two-phase
//!   Markov-modulated Poisson process, following the KPC-Toolbox
//!   methodology ([`mmpp`], [`synthetic`]).
//!
//! The [`features`] module implements the paper's workload feature
//! extractor: read/write ratio, mean and squared coefficient of variation
//! of request size and inter-arrival time per I/O type, and per-type
//! arrival flow speed. These form the `Ch` input of the throughput
//! prediction model (Eq. 1).
//!
//! # Example
//!
//! ```
//! use workload::micro::{MicroConfig, generate_micro};
//! use workload::features::extract_features;
//!
//! let cfg = MicroConfig::default();
//! let trace = generate_micro(&cfg, 42);
//! assert!(!trace.is_empty());
//! let feats = extract_features(trace.requests());
//! assert!(feats.read_ratio > 0.0 && feats.read_ratio < 1.0);
//! ```

pub mod features;
pub mod micro;
pub mod mmpp;
pub mod request;
pub mod source;
pub mod spatial;
pub mod synthetic;
pub mod trace;
pub mod trace_io;

pub use features::{extract_features, WorkloadFeatures};
pub use request::{IoType, Request};
pub use source::{ReplaySpec, WorkloadSource, WorkloadSpec};
pub use trace::Trace;
