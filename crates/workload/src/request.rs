//! The basic unit of work: an I/O request.

use serde::{Deserialize, Serialize};
use sim_engine::SimTime;

/// Read or write. The whole point of SRC is that network congestion
/// control affects these two asymmetrically on storage nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IoType {
    /// Data flows Target → Initiator (inbound flow in the paper's terms).
    Read,
    /// Data flows Initiator → Target (outbound flow).
    Write,
}

impl IoType {
    /// The other I/O type.
    pub fn other(self) -> IoType {
        match self {
            IoType::Read => IoType::Write,
            IoType::Write => IoType::Read,
        }
    }

    /// True for reads.
    pub fn is_read(self) -> bool {
        matches!(self, IoType::Read)
    }
}

/// One I/O request as submitted by an application on an Initiator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Unique, monotonically increasing identifier within a trace.
    pub id: u64,
    /// Read or write.
    pub op: IoType,
    /// Logical block address, in 4 KiB sectors.
    pub lba: u64,
    /// Transfer size in bytes (a positive multiple of the sector size in
    /// generated traces).
    pub size: u64,
    /// Arrival timestamp at the Initiator.
    pub arrival: SimTime,
}

/// Sector size used for LBA accounting (4 KiB, the de-facto standard).
pub const SECTOR_BYTES: u64 = 4096;

impl Request {
    /// Number of 4 KiB sectors this request spans.
    pub fn sectors(&self) -> u64 {
        self.size.div_ceil(SECTOR_BYTES)
    }

    /// Exclusive end LBA.
    pub fn lba_end(&self) -> u64 {
        self.lba + self.sectors()
    }

    /// Do two requests touch any common sector? Used by the SSQ
    /// consistency checker (paper Sec. III-A).
    pub fn overlaps(&self, other: &Request) -> bool {
        self.lba < other.lba_end() && other.lba < self.lba_end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(lba: u64, size: u64) -> Request {
        Request {
            id: 0,
            op: IoType::Read,
            lba,
            size,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn sector_math() {
        assert_eq!(req(0, 4096).sectors(), 1);
        assert_eq!(req(0, 4097).sectors(), 2);
        assert_eq!(req(10, 8192).lba_end(), 12);
    }

    #[test]
    fn overlap_detection() {
        let a = req(0, 8192); // sectors 0..2
        let b = req(1, 4096); // sector 1..2
        let c = req(2, 4096); // sector 2..3
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
        // Self-overlap.
        assert!(a.overlaps(&a));
    }

    #[test]
    fn io_type_helpers() {
        assert_eq!(IoType::Read.other(), IoType::Write);
        assert_eq!(IoType::Write.other(), IoType::Read);
        assert!(IoType::Read.is_read());
        assert!(!IoType::Write.is_read());
    }
}
