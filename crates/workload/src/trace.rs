//! A trace: a time-ordered sequence of requests, with summary statistics
//! and (de)serialization.

use crate::request::{IoType, Request};
use serde::{Deserialize, Serialize};
use sim_engine::stats::OnlineStats;
use sim_engine::{SimDuration, SimTime};
use std::io::{BufRead, Write as IoWrite};

/// A time-ordered I/O trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    requests: Vec<Request>,
}

/// Summary statistics of one I/O class within a trace.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ClassStats {
    /// Number of requests.
    pub count: u64,
    /// Mean inter-arrival time in microseconds.
    pub iat_mean_us: f64,
    /// Squared coefficient of variation of inter-arrival time.
    pub iat_scv: f64,
    /// Mean request size in bytes.
    pub size_mean: f64,
    /// Squared coefficient of variation of request size.
    pub size_scv: f64,
    /// Total bytes.
    pub total_bytes: u64,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Build from a request vector, sorting by `(arrival, id)`.
    pub fn from_requests(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| (r.arrival, r.id));
        Trace { requests }
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Merge two traces, preserving global arrival order. Request ids are
    /// reassigned to stay unique and monotone.
    pub fn merge(self, other: Trace) -> Trace {
        let mut all = self.requests;
        all.extend(other.requests);
        all.sort_by_key(|r| (r.arrival, r.id));
        for (i, r) in all.iter_mut().enumerate() {
            r.id = i as u64;
        }
        Trace { requests: all }
    }

    /// Arrival time of the last request (ZERO when empty).
    pub fn span(&self) -> SimTime {
        self.requests
            .last()
            .map(|r| r.arrival)
            .unwrap_or(SimTime::ZERO)
    }

    /// Requests whose arrival lies in `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> &[Request] {
        let lo = self.requests.partition_point(|r| r.arrival < from);
        let hi = self.requests.partition_point(|r| r.arrival < to);
        &self.requests[lo..hi]
    }

    /// Per-class summary statistics.
    pub fn class_stats(&self, op: IoType) -> ClassStats {
        class_stats_of(&self.requests, op)
    }

    /// Offered load of one class: total bytes / span, in bits per second.
    /// This matches the paper's "traffic load" definition (avg size / avg
    /// inter-arrival time).
    pub fn offered_load_bps(&self, op: IoType) -> f64 {
        let s = self.class_stats(op);
        if s.iat_mean_us <= 0.0 {
            return 0.0;
        }
        s.size_mean * 8.0 / (s.iat_mean_us * 1e-6)
    }

    /// Serialize as JSON-lines (one request per line).
    pub fn write_jsonl<W: IoWrite>(&self, mut w: W) -> std::io::Result<()> {
        for r in &self.requests {
            serde_json::to_writer(&mut w, r)?;
            writeln!(w)?;
        }
        Ok(())
    }

    /// Parse a JSON-lines trace.
    pub fn read_jsonl<R: BufRead>(r: R) -> std::io::Result<Trace> {
        let mut reqs = Vec::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let req: Request = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            reqs.push(req);
        }
        Ok(Trace::from_requests(reqs))
    }
}

/// Per-class statistics over an arbitrary request slice (used both for
/// whole traces and for the workload monitor's sliding windows).
pub fn class_stats_of(requests: &[Request], op: IoType) -> ClassStats {
    let mut iat = OnlineStats::new();
    let mut size = OnlineStats::new();
    let mut last_arrival: Option<SimTime> = None;
    let mut total_bytes = 0u64;
    let mut count = 0u64;
    for r in requests.iter().filter(|r| r.op == op) {
        count += 1;
        total_bytes += r.size;
        size.push(r.size as f64);
        if let Some(prev) = last_arrival {
            iat.push((r.arrival.since(prev)).as_us_f64());
        }
        last_arrival = Some(r.arrival);
    }
    ClassStats {
        count,
        iat_mean_us: iat.mean(),
        iat_scv: iat.scv(),
        size_mean: size.mean(),
        size_scv: size.scv(),
        total_bytes,
    }
}

/// Split a trace into contiguous time windows of width `w` (for the
/// workload monitor's prediction windows). Returns the window boundaries
/// and slices.
pub fn windows(trace: &Trace, w: SimDuration) -> Vec<(SimTime, &[Request])> {
    assert!(w > SimDuration::ZERO);
    let mut out = Vec::new();
    let span = trace.span();
    let mut t = SimTime::ZERO;
    while t <= span {
        let end = t + w;
        out.push((t, trace.window(t, end)));
        t = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(id: u64, op: IoType, at_us: u64, size: u64) -> Request {
        Request {
            id,
            op,
            lba: id * 100,
            size,
            arrival: SimTime::from_us(at_us),
        }
    }

    #[test]
    fn sorts_and_merges() {
        let a = Trace::from_requests(vec![
            mk(1, IoType::Read, 30, 4096),
            mk(0, IoType::Read, 10, 4096),
        ]);
        assert_eq!(a.requests()[0].arrival, SimTime::from_us(10));
        let b = Trace::from_requests(vec![mk(0, IoType::Write, 20, 8192)]);
        let m = a.merge(b);
        let times: Vec<u64> = m
            .requests()
            .iter()
            .map(|r| r.arrival.as_ps() / 1_000_000)
            .collect();
        assert_eq!(times, vec![10, 20, 30]);
        let ids: Vec<u64> = m.requests().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn merge_reassigns_ids_monotonically_for_overlapping_id_spaces() {
        // A replayed recording and a generated trace both number their
        // requests from 0. Merging must restore the documented "unique,
        // monotonically increasing id" invariant — interleaved arrival
        // order, no duplicate ids, ids dense in 0..n.
        let replayed = Trace::from_requests(vec![
            mk(0, IoType::Read, 5, 4096),
            mk(1, IoType::Read, 25, 4096),
            mk(2, IoType::Read, 45, 4096),
        ]);
        let synthetic = Trace::from_requests(vec![
            mk(0, IoType::Write, 15, 8192),
            mk(1, IoType::Write, 35, 8192),
        ]);
        let m = replayed.merge(synthetic);
        let ids: Vec<u64> = m.requests().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        for pair in m.requests().windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
            assert!(pair[0].id < pair[1].id);
        }
        // Merge in the other direction preserves the invariant too.
        let t = Trace::from_requests(vec![mk(7, IoType::Read, 100, 4096)])
            .merge(Trace::from_requests(vec![mk(7, IoType::Write, 1, 4096)]));
        assert_eq!(
            t.requests().iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn class_stats_basic() {
        // Reads at 0, 10, 20 us with sizes 4K, 8K, 4K.
        let t = Trace::from_requests(vec![
            mk(0, IoType::Read, 0, 4096),
            mk(1, IoType::Read, 10, 8192),
            mk(2, IoType::Read, 20, 4096),
            mk(3, IoType::Write, 5, 16384),
        ]);
        let s = t.class_stats(IoType::Read);
        assert_eq!(s.count, 3);
        assert!((s.iat_mean_us - 10.0).abs() < 1e-9);
        assert_eq!(s.iat_scv, 0.0);
        assert!((s.size_mean - (4096.0 + 8192.0 + 4096.0) / 3.0).abs() < 1e-9);
        assert_eq!(s.total_bytes, 16384);
        let w = t.class_stats(IoType::Write);
        assert_eq!(w.count, 1);
        assert_eq!(w.iat_mean_us, 0.0);
    }

    #[test]
    fn offered_load_matches_definition() {
        // 40 KB every 10 us = 32 Gbps.
        let reqs: Vec<Request> = (0..100)
            .map(|i| mk(i, IoType::Read, 10 * i, 40_000))
            .collect();
        let t = Trace::from_requests(reqs);
        let load = t.offered_load_bps(IoType::Read);
        assert!((load - 32e9).abs() / 32e9 < 1e-9, "load={load}");
    }

    #[test]
    fn window_slicing() {
        let t = Trace::from_requests((0..10).map(|i| mk(i, IoType::Read, i * 10, 4096)).collect());
        let w = t.window(SimTime::from_us(20), SimTime::from_us(50));
        assert_eq!(w.len(), 3); // arrivals 20, 30, 40
        assert!(t
            .window(SimTime::from_us(200), SimTime::from_us(300))
            .is_empty());
    }

    #[test]
    fn windows_partition_whole_trace() {
        let t = Trace::from_requests((0..25).map(|i| mk(i, IoType::Read, i * 7, 4096)).collect());
        let ws = windows(&t, SimDuration::from_us(50));
        let total: usize = ws.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, 25);
        // Boundaries advance by the window width.
        assert_eq!(ws[1].0, SimTime::from_us(50));
    }

    #[test]
    fn jsonl_round_trip() {
        let t = Trace::from_requests(vec![
            mk(0, IoType::Read, 1, 4096),
            mk(1, IoType::Write, 2, 8192),
        ]);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let t2 = Trace::read_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.requests()[1].op, IoType::Write);
        // Garbage input errors.
        assert!(Trace::read_jsonl(std::io::Cursor::new(b"not json\n".to_vec())).is_err());
    }

    #[test]
    fn empty_trace_properties() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.span(), SimTime::ZERO);
        assert_eq!(t.offered_load_bps(IoType::Read), 0.0);
    }
}
