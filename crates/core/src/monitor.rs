//! The Workload Monitor (paper Fig. 6): profiles the live request stream
//! and extracts the feature vector `Ch` over a sliding prediction window.

use sim_engine::{SimDuration, SimTime};
use std::collections::VecDeque;
use workload::{extract_features, Request, WorkloadFeatures};

/// Sliding-window request profiler.
///
/// The paper profiles "the workload characteristics in a user-specific
/// time window (e.g., 10 ms)"; [`WorkloadMonitor::features`] returns the
/// characteristics of the interval `[t - delta, t]`.
#[derive(Debug)]
pub struct WorkloadMonitor {
    window: SimDuration,
    seen: VecDeque<Request>,
}

impl WorkloadMonitor {
    /// Monitor with the given prediction window `delta`.
    ///
    /// # Panics
    /// Panics on a zero window.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        WorkloadMonitor {
            window,
            seen: VecDeque::new(),
        }
    }

    /// The configured prediction window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Record a request arriving at the Target at `now`. Requests must be
    /// observed in nondecreasing time order. Old entries are evicted
    /// lazily.
    pub fn observe(&mut self, req: &Request, now: SimTime) {
        debug_assert!(
            self.seen.back().is_none_or(|r| r.arrival <= now),
            "observations must be time-ordered"
        );
        let mut r = *req;
        r.arrival = now;
        self.seen.push_back(r);
        self.evict(now);
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now.saturating_sub(self.window);
        while self.seen.front().is_some_and(|r| r.arrival < cutoff) {
            self.seen.pop_front();
        }
    }

    /// Feature vector of the window ending at `now`.
    pub fn features(&mut self, now: SimTime) -> WorkloadFeatures {
        self.evict(now);
        self.seen.make_contiguous();
        extract_features(self.seen.as_slices().0)
    }

    /// Requests currently inside the window.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when no requests are in the window.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::IoType;

    fn req(id: u64, op: IoType, size: u64) -> Request {
        Request {
            id,
            op,
            lba: id,
            size,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn window_eviction() {
        let mut m = WorkloadMonitor::new(SimDuration::from_ms(10));
        for i in 0..20 {
            m.observe(&req(i, IoType::Read, 4096), SimTime::from_ms(i));
        }
        // At t=19ms the window [9, 19] holds arrivals 9..=19.
        let f = m.features(SimTime::from_ms(19));
        assert_eq!(m.len(), 11);
        assert_eq!(f.read_ratio, 1.0);
        assert!((f.read_iat_mean_us - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_features_are_default() {
        let mut m = WorkloadMonitor::new(SimDuration::from_ms(10));
        m.observe(&req(0, IoType::Write, 8192), SimTime::from_ms(0));
        let f = m.features(SimTime::from_ms(100));
        assert!(m.is_empty());
        assert_eq!(f, workload::WorkloadFeatures::default());
    }

    #[test]
    fn mixed_workload_ratio() {
        let mut m = WorkloadMonitor::new(SimDuration::from_ms(50));
        for i in 0..10 {
            let op = if i % 5 == 0 {
                IoType::Write
            } else {
                IoType::Read
            };
            m.observe(&req(i, op, 16_384), SimTime::from_us(i * 100));
        }
        let f = m.features(SimTime::from_ms(1));
        assert!((f.read_ratio - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = WorkloadMonitor::new(SimDuration::ZERO);
    }
}
