//! Algorithm 1 — SRC dynamic weight adjustment.
//!
//! `PredictWeightRatio(r, Ch)` searches increasing integer weight ratios
//! until the predicted read throughput converges (relative change below
//! `tau`), returning the ratio whose prediction lies closest to the
//! demanded sending rate `r`. `DynamicAdjustment` maps a stream of
//! congestion events to weight adjustments.

use crate::cache::PredictionCache;
use crate::tpm::{ThroughputPredictionModel, TPM_INPUT_LEN};
use serde::{Deserialize, Serialize};
use sim_engine::{Rate, SimTime};
use workload::WorkloadFeatures;

/// Convergence threshold `tau` from the paper (10 %).
pub const DEFAULT_TAU: f64 = 0.10;

/// Safety bound on the weight search (the paper's sweeps stop at 8; we
/// leave headroom).
pub const DEFAULT_MAX_WEIGHT: u32 = 16;

/// Pause (throttle) or retrieval (recover) notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CongestionKind {
    /// Congestion: reduce the sending rate to the demanded value.
    Pause,
    /// Congestion relieved: the demanded rate rose.
    Retrieval,
}

/// A congestion event delivered to SRC by the network congestion control
/// (Alg. 1 input `e_i`).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CongestionEvent {
    /// Event timestamp `t`.
    pub at: SimTime,
    /// Demanded data sending rate `r`.
    pub demanded: Rate,
    /// Pause or retrieval.
    pub kind: CongestionKind,
}

/// `PredictWeightRatio` (Alg. 1 lines 10–29): the weight ratio whose
/// predicted read throughput is closest to the demanded rate `r`.
///
/// Mirrors the pseudocode exactly: returns 1 immediately when even the
/// fair (w = 1) read throughput is below `r`; otherwise increases `w`
/// until the predicted read throughput changes by less than `tau`
/// (relative), tracking the argmin of `|TPUT_R - r|`.
///
/// Tie-break: the argmin comparison is strict (`dis < min_dis`), so when
/// several ratios predict the same distance to `r` — e.g. a TPM that is
/// flat in `w` — the *smallest* such ratio wins. That is the right bias:
/// a larger write-starving weight is only justified when it buys a
/// strictly closer read throughput.
pub fn predict_weight_ratio(
    tpm: &ThroughputPredictionModel,
    r_gbps: f64,
    ch: &WorkloadFeatures,
    tau: f64,
    max_weight: u32,
) -> u32 {
    predict_weight_ratio_cached(tpm, r_gbps, ch, tau, max_weight, None)
}

/// [`predict_weight_ratio`] with an optional exact-key prediction cache
/// (see [`PredictionCache`]): identical search, identical result — the
/// cache only skips forest traversals whose inputs were seen before.
/// The feature vector is built once and only its trailing weight slot
/// changes across the `w` loop.
pub fn predict_weight_ratio_cached(
    tpm: &ThroughputPredictionModel,
    r_gbps: f64,
    ch: &WorkloadFeatures,
    tau: f64,
    max_weight: u32,
    mut cache: Option<&mut PredictionCache>,
) -> u32 {
    assert!(tau > 0.0, "tau must be positive");
    assert!(max_weight >= 1);
    let mut x = [0.0f64; TPM_INPUT_LEN];
    ch.write_into(&mut x);
    let mut query = move |w: u32, cache: &mut Option<&mut PredictionCache>| match cache {
        Some(c) => c.predict(tpm, &mut x, w),
        None => tpm.predict_at(&mut x, w),
    };
    let mut w = 1u32;
    let mut w_star = 1u32;
    let (tput_r, _) = query(w, &mut cache);
    if tput_r < r_gbps {
        return w;
    }
    let mut min_dis = (tput_r - r_gbps).abs();
    let mut pre_tput = tput_r;
    loop {
        if w >= max_weight {
            break;
        }
        w += 1;
        let (cur_tput, _) = query(w, &mut cache);
        let dis = (cur_tput - r_gbps).abs();
        // Strict: ties keep the earlier (smaller) weight ratio.
        if dis < min_dis {
            min_dis = dis;
            w_star = w;
        }
        // Convergence: relative change of the predicted read throughput
        // under the previous and current ratios below tau.
        let rel = if pre_tput > 0.0 {
            (pre_tput - cur_tput).abs() / pre_tput
        } else {
            0.0
        };
        pre_tput = cur_tput;
        if rel < tau {
            break;
        }
    }
    w_star
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpm::{samples_to_dataset, ThroughputPredictionModel};
    use ml::Dataset;

    /// Build a synthetic TPM whose read throughput is `10 / w` Gbps and
    /// write throughput `2 + w` Gbps, independent of features — by
    /// training the forest on exactly that function (forests interpolate
    /// grids well).
    fn synthetic_tpm() -> (ThroughputPredictionModel, WorkloadFeatures) {
        let ch = WorkloadFeatures {
            read_ratio: 0.5,
            read_iat_mean_us: 10.0,
            write_iat_mean_us: 10.0,
            read_size_mean: 30_000.0,
            write_size_mean: 30_000.0,
            read_flow_bpus: 3_000.0,
            write_flow_bpus: 3_000.0,
            ..Default::default()
        };
        let mut x = Vec::new();
        let mut y = Vec::new();
        // Replicate rows so bootstrap sampling sees every grid point.
        for _rep in 0..8 {
            for w in 1..=12u32 {
                let mut row = ch.to_vec();
                row.push(w as f64);
                x.push(row);
                y.push(vec![10.0 / w as f64, 2.0 + w as f64]);
            }
        }
        let data = Dataset::new(x, y);
        (ThroughputPredictionModel::train(&data, 40, 0), ch)
    }

    #[test]
    fn returns_one_when_already_below_demand() {
        let (tpm, ch) = synthetic_tpm();
        // w=1 predicts ~10 Gbps; demand 20 Gbps → already below.
        assert_eq!(predict_weight_ratio(&tpm, 20.0, &ch, DEFAULT_TAU, 16), 1);
    }

    #[test]
    fn finds_ratio_near_demand() {
        let (tpm, ch) = synthetic_tpm();
        // Demand 5 Gbps: 10/w = 5 at w = 2.
        let w = predict_weight_ratio(&tpm, 5.0, &ch, 0.01, 16);
        assert!((2..=3).contains(&w), "w={w}");
        // Demand 2.5 Gbps: w = 4.
        let w = predict_weight_ratio(&tpm, 2.5, &ch, 0.01, 16);
        assert!((3..=5).contains(&w), "w={w}");
    }

    #[test]
    fn tau_stops_search_early() {
        let (tpm, ch) = synthetic_tpm();
        // With a huge tau the loop stops after the first step, so the
        // answer can be at most 2 even for tiny demands.
        let w = predict_weight_ratio(&tpm, 0.1, &ch, 10.0, 16);
        assert!(w <= 2, "w={w}");
    }

    #[test]
    fn max_weight_bounds_search() {
        let (tpm, ch) = synthetic_tpm();
        let w = predict_weight_ratio(&tpm, 0.0, &ch, 1e-6, 4);
        assert!(w <= 4);
    }

    #[test]
    fn flat_tpm_ties_resolve_to_smallest_weight() {
        // A TPM that is constant in w: every ratio predicts the same
        // distance to the demand, so the strict argmin must keep w = 1
        // no matter how small tau forces the search to run.
        let ch = WorkloadFeatures {
            read_ratio: 0.5,
            read_iat_mean_us: 10.0,
            write_iat_mean_us: 10.0,
            read_size_mean: 30_000.0,
            write_size_mean: 30_000.0,
            read_flow_bpus: 3_000.0,
            write_flow_bpus: 3_000.0,
            ..Default::default()
        };
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _rep in 0..8 {
            for w in 1..=12u32 {
                let mut row = ch.to_vec();
                row.push(w as f64);
                x.push(row);
                y.push(vec![6.0, 3.0]);
            }
        }
        let tpm = ThroughputPredictionModel::train(&Dataset::new(x, y), 40, 0);
        // Demand below the flat 6 Gbps prediction so the search actually
        // runs (above it the w=1 early-return fires).
        let w = predict_weight_ratio(&tpm, 2.0, &ch, 1e-9, 12);
        assert_eq!(w, 1, "flat predictions must tie-break to the smallest w");
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn bad_tau_rejected() {
        let (tpm, ch) = synthetic_tpm();
        let _ = predict_weight_ratio(&tpm, 1.0, &ch, 0.0, 8);
    }

    #[test]
    fn event_structs() {
        let e = CongestionEvent {
            at: SimTime::from_ms(5),
            demanded: Rate::from_gbps(6),
            kind: CongestionKind::Pause,
        };
        assert_eq!(e.kind, CongestionKind::Pause);
        assert_ne!(e.kind, CongestionKind::Retrieval);
        let _ = samples_to_dataset(&[]);
    }
}
