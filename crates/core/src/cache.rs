//! Epoch-keyed TPM prediction cache: an exact-key memo over
//! `(WorkloadFeatures, w)` queries.
//!
//! SRC re-queries the same weight grid on every control epoch
//! (`predict_weight_ratio` sweeps `w = 1..` against one feature
//! vector), and between epochs the monitor's sliding window often
//! hasn't changed — so identical inputs recur. The cache keys on the
//! **bit patterns** of the full input vector (the eleven features plus
//! the weight slot), so a hit returns exactly the value the forest
//! would have computed: results are unchanged by construction, no
//! tolerance argument needed.
//!
//! The store is a bounded two-way set-associative table with per-set
//! LRU, not a hash map: lookup cost is two key compares, eviction is
//! deterministic, and iteration order never influences results.

use crate::tpm::{ThroughputPredictionModel, TPM_INPUT_LEN};

/// Default number of sets (× 2 ways = 1024 bounded entries, ~13 KB).
pub const DEFAULT_SETS: usize = 512;

#[derive(Clone, Copy)]
struct CacheEntry {
    key: [u64; TPM_INPUT_LEN],
    value: (f64, f64),
    occupied: bool,
}

impl CacheEntry {
    const EMPTY: CacheEntry = CacheEntry {
        key: [0; TPM_INPUT_LEN],
        value: (0.0, 0.0),
        occupied: false,
    };
}

#[derive(Clone, Copy)]
struct CacheSet {
    ways: [CacheEntry; 2],
    /// The way to evict next (the least recently used of the two).
    lru: u8,
}

/// Bounded exact-key memo over TPM predictions (see module docs).
pub struct PredictionCache {
    sets: Vec<CacheSet>,
    mask: u64,
    hits: u64,
    misses: u64,
}

impl Default for PredictionCache {
    fn default() -> Self {
        Self::new(DEFAULT_SETS)
    }
}

impl PredictionCache {
    /// Build with `n_sets` two-way sets (must be a power of two).
    pub fn new(n_sets: usize) -> Self {
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        PredictionCache {
            sets: vec![
                CacheSet {
                    ways: [CacheEntry::EMPTY; 2],
                    lru: 0,
                };
                n_sets
            ],
            mask: (n_sets - 1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (each one ran the forest) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Empty the cache in place — every way unoccupied, LRU state and
    /// hit/miss counters zeroed — while keeping the set table
    /// allocated. A reset cache is observably identical to a newly
    /// built one of the same size; workspace reuse across simulation
    /// cells (where per-run hit/miss totals are part of pinned traces)
    /// depends on exactly that.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.ways = [CacheEntry::EMPTY; 2];
            set.lru = 0;
        }
        self.hits = 0;
        self.misses = 0;
    }

    /// Predict through the cache: `x` is the caller-held input buffer
    /// with features already written (as in
    /// [`ThroughputPredictionModel::predict_at`]). On a key match the
    /// stored value — exactly what the forest returned when it was
    /// inserted — comes back without traversal.
    pub fn predict(
        &mut self,
        tpm: &ThroughputPredictionModel,
        x: &mut [f64; TPM_INPUT_LEN],
        w: u32,
    ) -> (f64, f64) {
        x[TPM_INPUT_LEN - 1] = w as f64;
        let mut key = [0u64; TPM_INPUT_LEN];
        for (k, v) in key.iter_mut().zip(x.iter()) {
            *k = v.to_bits();
        }
        let set = &mut self.sets[(fnv1a(&key) & self.mask) as usize];
        for i in 0..2 {
            if set.ways[i].occupied && set.ways[i].key == key {
                self.hits += 1;
                set.lru = 1 - i as u8;
                return set.ways[i].value;
            }
        }
        self.misses += 1;
        let value = tpm.predict_at(x, w);
        let victim = if !set.ways[0].occupied {
            0
        } else if !set.ways[1].occupied {
            1
        } else {
            set.lru as usize
        };
        set.ways[victim] = CacheEntry {
            key,
            value,
            occupied: true,
        };
        set.lru = 1 - victim as u8;
        value
    }
}

/// FNV-1a over the key words — deterministic, no RNG, no `std` hasher.
fn fnv1a(key: &[u64; TPM_INPUT_LEN]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &word in key {
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpm::samples_to_dataset;
    use crate::tpm::{ThroughputPredictionModel, TrainingConfig};
    use ssd_sim::SsdConfig;
    use workload::WorkloadFeatures;

    fn tpm() -> ThroughputPredictionModel {
        let samples =
            crate::tpm::generate_training_samples(&SsdConfig::ssd_a(), &TrainingConfig::quick(), 5);
        ThroughputPredictionModel::train(&samples_to_dataset(&samples), 10, 5)
    }

    #[test]
    fn hit_returns_bitwise_identical_value() {
        let tpm = tpm();
        let mut cache = PredictionCache::new(64);
        let ch = WorkloadFeatures {
            read_ratio: 0.5,
            read_iat_mean_us: 12.0,
            write_iat_mean_us: 14.0,
            read_size_mean: 20_000.0,
            write_size_mean: 24_000.0,
            ..Default::default()
        };
        let mut x = [0.0f64; TPM_INPUT_LEN];
        ch.write_into(&mut x);
        for w in 1..=8 {
            let direct = tpm.predict(&ch, w);
            let miss = cache.predict(&tpm, &mut x, w);
            let hit = cache.predict(&tpm, &mut x, w);
            assert_eq!(direct.0.to_bits(), miss.0.to_bits());
            assert_eq!(direct.1.to_bits(), miss.1.to_bits());
            assert_eq!(miss.0.to_bits(), hit.0.to_bits());
            assert_eq!(miss.1.to_bits(), hit.1.to_bits());
        }
        assert_eq!(cache.misses(), 8);
        assert_eq!(cache.hits(), 8);
    }

    #[test]
    fn distinct_keys_do_not_collide_on_value() {
        let tpm = tpm();
        // A tiny 1-set cache forces evictions; correctness must hold
        // because keys are compared exactly, never assumed from the
        // hash.
        let mut cache = PredictionCache::new(1);
        let ch = WorkloadFeatures {
            read_ratio: 0.4,
            read_iat_mean_us: 30.0,
            write_iat_mean_us: 30.0,
            read_size_mean: 16_000.0,
            write_size_mean: 16_000.0,
            ..Default::default()
        };
        let mut x = [0.0f64; TPM_INPUT_LEN];
        ch.write_into(&mut x);
        for round in 0..3 {
            for w in 1..=6 {
                let got = cache.predict(&tpm, &mut x, w);
                let want = tpm.predict(&ch, w);
                assert_eq!(got.0.to_bits(), want.0.to_bits(), "round {round} w {w}");
                assert_eq!(got.1.to_bits(), want.1.to_bits(), "round {round} w {w}");
            }
        }
        assert!(cache.misses() >= 6, "evictions force re-computation");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = PredictionCache::new(7);
    }

    #[test]
    fn reset_is_observably_fresh() {
        let tpm = tpm();
        let ch = WorkloadFeatures {
            read_ratio: 0.5,
            read_iat_mean_us: 12.0,
            write_iat_mean_us: 14.0,
            read_size_mean: 20_000.0,
            write_size_mean: 24_000.0,
            ..Default::default()
        };
        let mut x = [0.0f64; TPM_INPUT_LEN];
        ch.write_into(&mut x);
        let mut script = |cache: &mut PredictionCache| {
            let mut got = Vec::new();
            for round in 0..2 {
                for w in 1..=6 {
                    let v = cache.predict(&tpm, &mut x, w);
                    got.push((round, w, v.0.to_bits(), v.1.to_bits()));
                }
            }
            got.push((9, 0, cache.hits(), cache.misses()));
            got
        };
        let mut reused = PredictionCache::new(64);
        let first = script(&mut reused);
        reused.reset();
        assert_eq!(reused.hits(), 0);
        assert_eq!(reused.misses(), 0);
        // Second run through the SAME storage must replay the first
        // exactly — same values, same hit/miss trajectory.
        let second = script(&mut reused);
        assert_eq!(first, second);
        // And match a genuinely fresh cache.
        let fresh = script(&mut PredictionCache::new(64));
        assert_eq!(first, fresh);
    }
}
