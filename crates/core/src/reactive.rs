//! The reactive baseline SRC argues against (Sec. II-C): "An intuitive
//! method is to monitor the current system status and reactively adjust
//! the request priority. However, such a method suffers from slow
//! response and control delay."
//!
//! [`ReactiveController`] implements that intuitive method — AIMD-style
//! weight stepping driven by the measured read throughput — so the
//! claim can be tested head-to-head against the TPM-based controller
//! (see `system_sim::controlled` and the `ablation_reactive` binary).

use crate::tpm::ThroughputPredictionModel;
use serde::{Deserialize, Serialize};
use sim_engine::SimTime;
use std::sync::Arc;
use workload::WorkloadFeatures;

/// A run-time weight controller: periodically told the demanded rate and
/// the measured read throughput, answers with a new weight ratio when it
/// wants a change.
pub trait RateController {
    /// One control tick. `demanded_gbps` is the rate the congestion
    /// control asks for; `measured_read_gbps` the read throughput
    /// observed over the last measurement window; `ch` the current
    /// workload features.
    fn control(
        &mut self,
        demanded_gbps: f64,
        measured_read_gbps: f64,
        ch: &WorkloadFeatures,
        now: SimTime,
    ) -> Option<u32>;

    /// The currently applied weight.
    fn current_weight(&self) -> u32;
}

/// Configuration of the reactive stepper.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReactiveConfig {
    /// Dead band around the demanded rate (relative) within which no
    /// adjustment happens.
    pub dead_band: f64,
    /// Weight step per tick.
    pub step: u32,
    /// Upper bound on the weight.
    pub max_weight: u32,
}

impl Default for ReactiveConfig {
    fn default() -> Self {
        ReactiveConfig {
            dead_band: 0.15,
            step: 1,
            max_weight: 16,
        }
    }
}

/// The measurement-driven stepper: if measured read throughput exceeds
/// the demanded rate, raise the weight one step; if it undershoots,
/// lower it one step. Converges — but only one step per control period.
#[derive(Clone, Debug)]
pub struct ReactiveController {
    cfg: ReactiveConfig,
    weight: u32,
}

impl ReactiveController {
    /// Fresh controller at w = 1.
    pub fn new(cfg: ReactiveConfig) -> Self {
        ReactiveController { cfg, weight: 1 }
    }
}

impl RateController for ReactiveController {
    fn control(
        &mut self,
        demanded_gbps: f64,
        measured_read_gbps: f64,
        _ch: &WorkloadFeatures,
        _now: SimTime,
    ) -> Option<u32> {
        if demanded_gbps <= 0.0 {
            return None;
        }
        let err = (measured_read_gbps - demanded_gbps) / demanded_gbps;
        let new = if err > self.cfg.dead_band {
            (self.weight + self.cfg.step).min(self.cfg.max_weight)
        } else if err < -self.cfg.dead_band {
            self.weight.saturating_sub(self.cfg.step).max(1)
        } else {
            self.weight
        };
        if new != self.weight {
            self.weight = new;
            Some(new)
        } else {
            None
        }
    }

    fn current_weight(&self) -> u32 {
        self.weight
    }
}

/// The TPM-based controller in [`RateController`] clothing: jumps
/// straight to Algorithm 1's answer whenever the demanded rate changes.
pub struct TpmRateController {
    tpm: Arc<ThroughputPredictionModel>,
    tau: f64,
    max_weight: u32,
    weight: u32,
    last_demand: Option<f64>,
}

impl TpmRateController {
    /// Build from a trained model.
    pub fn new(tpm: Arc<ThroughputPredictionModel>, tau: f64, max_weight: u32) -> Self {
        TpmRateController {
            tpm,
            tau,
            max_weight,
            weight: 1,
            last_demand: None,
        }
    }
}

impl RateController for TpmRateController {
    fn control(
        &mut self,
        demanded_gbps: f64,
        _measured_read_gbps: f64,
        ch: &WorkloadFeatures,
        _now: SimTime,
    ) -> Option<u32> {
        // Re-predict only when the demand changes (Algorithm 1 is
        // event-driven, not periodic).
        if self.last_demand == Some(demanded_gbps) {
            return None;
        }
        self.last_demand = Some(demanded_gbps);
        let w = crate::algorithm::predict_weight_ratio(
            &self.tpm,
            demanded_gbps,
            ch,
            self.tau,
            self.max_weight,
        );
        if w != self.weight {
            self.weight = w;
            Some(w)
        } else {
            None
        }
    }

    fn current_weight(&self) -> u32 {
        self.weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reactive_steps_toward_demand() {
        let mut c = ReactiveController::new(ReactiveConfig::default());
        let ch = WorkloadFeatures::default();
        // Measured 8 Gbps, demanded 2: raise one step per tick.
        assert_eq!(c.control(2.0, 8.0, &ch, SimTime::from_ms(1)), Some(2));
        assert_eq!(c.control(2.0, 6.0, &ch, SimTime::from_ms(2)), Some(3));
        assert_eq!(c.control(2.0, 4.0, &ch, SimTime::from_ms(3)), Some(4));
        // Within the dead band: hold.
        assert_eq!(c.control(2.0, 2.1, &ch, SimTime::from_ms(4)), None);
        // Undershoot: step back down.
        assert_eq!(c.control(2.0, 1.0, &ch, SimTime::from_ms(5)), Some(3));
        assert_eq!(c.current_weight(), 3);
    }

    #[test]
    fn reactive_respects_bounds() {
        let mut c = ReactiveController::new(ReactiveConfig {
            max_weight: 3,
            ..Default::default()
        });
        let ch = WorkloadFeatures::default();
        for _ in 0..10 {
            let _ = c.control(1.0, 100.0, &ch, SimTime::ZERO);
        }
        assert_eq!(c.current_weight(), 3);
        for _ in 0..10 {
            let _ = c.control(1.0, 0.0, &ch, SimTime::ZERO);
        }
        assert_eq!(c.current_weight(), 1);
        // Zero demand is ignored.
        assert_eq!(c.control(0.0, 5.0, &ch, SimTime::ZERO), None);
    }
}
