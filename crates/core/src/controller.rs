//! The run-time SRC controller (paper Fig. 6): workload monitor +
//! throughput prediction model + Algorithm 1, applied on every
//! congestion notification from the network congestion control.

use crate::algorithm::{predict_weight_ratio_cached, DEFAULT_MAX_WEIGHT, DEFAULT_TAU};
use crate::cache::PredictionCache;
use crate::monitor::WorkloadMonitor;
use crate::tpm::ThroughputPredictionModel;
use serde::{Deserialize, Serialize};
use sim_engine::{ProbeBuffer, Rate, SimDuration, SimTime, TraceRecord, TraceSink};
use std::sync::Arc;
use workload::Request;

/// Controller configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SrcConfig {
    /// Prediction window `delta` for the workload monitor (paper: e.g.
    /// 10 ms).
    pub prediction_window: SimDuration,
    /// Convergence threshold `tau` of Algorithm 1.
    pub tau: f64,
    /// Weight-search upper bound.
    pub max_weight: u32,
    /// Minimum spacing between weight recomputations — congestion
    /// notifications can arrive every 50 µs (per CNP), far faster than
    /// the control is meant to react.
    pub min_reaction_interval: SimDuration,
}

impl Default for SrcConfig {
    fn default() -> Self {
        SrcConfig {
            prediction_window: SimDuration::from_ms(10),
            tau: DEFAULT_TAU,
            max_weight: DEFAULT_MAX_WEIGHT,
            min_reaction_interval: SimDuration::from_ms(1),
        }
    }
}

/// One controller decision, for telemetry and the Fig. 9 experiment.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Decision {
    /// When the decision was made.
    pub at: SimTime,
    /// The demanded sending rate that triggered it.
    pub demanded: Rate,
    /// The weight ratio chosen.
    pub weight: u32,
}

/// The storage-side rate controller attached to one Target.
pub struct SrcController {
    tpm: Arc<ThroughputPredictionModel>,
    monitor: WorkloadMonitor,
    cfg: SrcConfig,
    current_weight: u32,
    last_reaction: Option<SimTime>,
    decisions: Vec<Decision>,
    probes: ProbeBuffer,
    scope: u64,
    /// Exact-key memo over this Target's TPM queries (bitwise-identical
    /// results; see [`PredictionCache`]).
    cache: PredictionCache,
}

impl SrcController {
    /// Build from a trained TPM (shared across a machine's Targets).
    pub fn new(tpm: impl Into<Arc<ThroughputPredictionModel>>, cfg: SrcConfig) -> Self {
        Self::with_cache(tpm, cfg, PredictionCache::default())
    }

    /// [`SrcController::new`] with caller-provided prediction-cache
    /// storage — the workspace-reuse seam: a sweep worker recovers the
    /// cache via [`SrcController::into_cache`] after each run and hands
    /// it (reset) to the next run's controller, so the ~13 KB set table
    /// is allocated once per worker instead of once per cell. The cache
    /// must be freshly built or [`PredictionCache::reset`]; a dirty one
    /// would replay another run's hit/miss trajectory.
    pub fn with_cache(
        tpm: impl Into<Arc<ThroughputPredictionModel>>,
        cfg: SrcConfig,
        cache: PredictionCache,
    ) -> Self {
        let tpm = tpm.into();
        SrcController {
            tpm,
            monitor: WorkloadMonitor::new(cfg.prediction_window),
            cfg,
            current_weight: 1,
            last_reaction: None,
            decisions: Vec::new(),
            probes: ProbeBuffer::default(),
            scope: 0,
            cache,
        }
    }

    /// Recover the prediction-cache storage for reuse (see
    /// [`SrcController::with_cache`]).
    pub fn into_cache(self) -> PredictionCache {
        self.cache
    }

    /// Enable or disable telemetry probes; `scope` tags the records
    /// (Target index in multi-target runs). Disabling drops buffered
    /// records.
    pub fn set_telemetry(&mut self, on: bool, scope: u64) {
        self.probes.set_enabled(on);
        self.scope = scope;
    }

    /// Take the buffered trace records (demand seen and weight chosen on
    /// each non-suppressed congestion notification).
    pub fn drain_probes(&mut self) -> Vec<TraceRecord> {
        self.probes.drain()
    }

    /// Drain buffered trace records straight into `sink`, preserving
    /// order and the probe buffer's capacity (the hot-loop form of
    /// [`SrcController::drain_probes`]).
    pub fn drain_probes_into(&mut self, sink: &mut dyn TraceSink) {
        self.probes.drain_into(sink);
    }

    /// Feed the monitor with a request arriving at the Target.
    pub fn observe(&mut self, req: &Request, now: SimTime) {
        self.monitor.observe(req, now);
    }

    /// A congestion notification arrived with the demanded data sending
    /// rate. Returns `Some(new_weight)` when the SSQ weights should
    /// change.
    pub fn on_congestion_notification(&mut self, demanded: Rate, now: SimTime) -> Option<u32> {
        if let Some(last) = self.last_reaction {
            if now.since(last) < self.cfg.min_reaction_interval {
                return None;
            }
        }
        self.last_reaction = Some(now);
        let ch = self.monitor.features(now);
        let w = predict_weight_ratio_cached(
            &self.tpm,
            demanded.as_gbps_f64(),
            &ch,
            self.cfg.tau,
            self.cfg.max_weight,
            Some(&mut self.cache),
        );
        self.decisions.push(Decision {
            at: now,
            demanded,
            weight: w,
        });
        self.probes.record(
            now,
            "src",
            self.scope,
            "demand_gbps",
            demanded.as_gbps_f64(),
        );
        self.probes
            .record(now, "src", self.scope, "weight", w as f64);
        if w != self.current_weight {
            self.current_weight = w;
            Some(w)
        } else {
            None
        }
    }

    /// The weight currently applied.
    pub fn current_weight(&self) -> u32 {
        self.current_weight
    }

    /// Decision log.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// The underlying prediction model.
    pub fn tpm(&self) -> &ThroughputPredictionModel {
        &self.tpm
    }

    /// TPM prediction-cache `(hits, misses)` accumulated by this
    /// controller's weight searches.
    pub fn tpm_cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::Dataset;
    use workload::{IoType, WorkloadFeatures};

    fn controller() -> SrcController {
        // Synthetic TPM: read tput ~ 10/w Gbps (see algorithm tests).
        let ch = WorkloadFeatures {
            read_ratio: 0.5,
            read_iat_mean_us: 10.0,
            write_iat_mean_us: 10.0,
            read_size_mean: 30_000.0,
            write_size_mean: 30_000.0,
            read_flow_bpus: 3_000.0,
            write_flow_bpus: 3_000.0,
            ..Default::default()
        };
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _rep in 0..8 {
            for w in 1..=12u32 {
                let mut row = ch.to_vec();
                row.push(w as f64);
                x.push(row);
                y.push(vec![10.0 / w as f64, 2.0 + w as f64]);
            }
        }
        let tpm = ThroughputPredictionModel::train(&Dataset::new(x, y), 40, 0);
        SrcController::new(tpm, SrcConfig::default())
    }

    fn feed(src: &mut SrcController, now_ms: u64) {
        // Keep the monitor populated with a heavy mixed workload.
        for i in 0..100u64 {
            let req = Request {
                id: now_ms * 1000 + i,
                op: if i % 2 == 0 {
                    IoType::Read
                } else {
                    IoType::Write
                },
                lba: i * 8,
                size: 30_000,
                arrival: SimTime::ZERO,
            };
            src.observe(
                &req,
                SimTime::from_ms(now_ms) + SimDuration::from_us(i * 10),
            );
        }
    }

    #[test]
    fn pause_raises_weight_retrieval_lowers_it() {
        let mut src = controller();
        feed(&mut src, 0);
        let w = src.on_congestion_notification(Rate::from_gbps_f64(3.3), SimTime::from_ms(1));
        let w = w.expect("first notification must decide");
        assert!(w >= 2, "pause should raise the weight, got {w}");
        assert_eq!(src.current_weight(), w);
        // Retrieval: demand above full-speed read throughput → w = 1.
        feed(&mut src, 2);
        let w2 = src.on_congestion_notification(Rate::from_gbps(20), SimTime::from_ms(5));
        assert_eq!(w2, Some(1));
        assert_eq!(src.current_weight(), 1);
        assert_eq!(src.decisions().len(), 2);
    }

    #[test]
    fn reaction_interval_suppresses_churn() {
        let mut src = controller();
        feed(&mut src, 0);
        let t = SimTime::from_ms(1);
        let _ = src.on_congestion_notification(Rate::from_gbps(3), t);
        // 50 µs later: suppressed.
        let again =
            src.on_congestion_notification(Rate::from_gbps(5), t + SimDuration::from_us(50));
        assert_eq!(again, None);
        assert_eq!(src.decisions().len(), 1);
    }

    #[test]
    fn telemetry_traces_decisions() {
        let mut src = controller();
        src.set_telemetry(true, 3);
        feed(&mut src, 0);
        let _ = src.on_congestion_notification(Rate::from_gbps_f64(3.3), SimTime::from_ms(1));
        // Suppressed notification: no decision, no probe.
        let _ = src.on_congestion_notification(
            Rate::from_gbps(5),
            SimTime::from_ms(1) + SimDuration::from_us(50),
        );
        let recs = src.drain_probes();
        assert_eq!(recs.len(), 2, "demand + weight per decision");
        assert_eq!(recs[0].metric, "demand_gbps");
        assert!((recs[0].value - 3.3).abs() < 1e-9);
        assert_eq!(recs[1].metric, "weight");
        assert_eq!(recs[0].scope, 3);
        assert!(src.drain_probes().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn unchanged_weight_returns_none() {
        let mut src = controller();
        feed(&mut src, 0);
        let t1 = SimTime::from_ms(1);
        let w1 = src.on_congestion_notification(Rate::from_gbps_f64(5.0), t1);
        assert!(w1.is_some());
        feed(&mut src, 3);
        let w2 = src.on_congestion_notification(Rate::from_gbps_f64(5.0), SimTime::from_ms(4));
        assert_eq!(w2, None, "same demand, same weight → no change signal");
        // But the decision is still logged.
        assert_eq!(src.decisions().len(), 2);
    }
}
