//! **SRC — Storage-side Rate Control**, the paper's contribution.
//!
//! When DCQCN throttles a Target's NIC because read data congests the
//! network, the SSD keeps serving reads the NIC cannot ship; the transmit
//! queue becomes the bottleneck and aggregate throughput collapses
//! (paper Fig. 2-b). SRC moves the rate control into the storage stack:
//!
//! 1. the **separate submission queue** (in the `nvme-queues` crate)
//!    gives the driver a write:read weight knob `w`;
//! 2. the [`tpm::ThroughputPredictionModel`] learns
//!    `TPUT_{R,W} = F(Ch, w)` (Eq. 1) with random-forest regression over
//!    workload features;
//! 3. [`algorithm::predict_weight_ratio`] (Algorithm 1) inverts the
//!    model: given the data sending rate DCQCN demands, find the `w`
//!    whose predicted read throughput lands closest;
//! 4. the [`controller::SrcController`] wires it together at run time —
//!    a [`monitor::WorkloadMonitor`] profiles the live request stream in
//!    prediction windows, congestion notifications trigger
//!    re-prediction, and the chosen `w` is applied to the SSQ.
//!
//! # Example
//!
//! ```no_run
//! use src_core::tpm::{ThroughputPredictionModel, TrainingConfig};
//! use src_core::controller::{SrcController, SrcConfig};
//! use ssd_sim::SsdConfig;
//!
//! let tpm = ThroughputPredictionModel::train_for_device(
//!     &SsdConfig::ssd_a(), &TrainingConfig::quick(), 42);
//! let mut src = SrcController::new(tpm, SrcConfig::default());
//! # let _ = src;
//! ```

pub mod algorithm;
pub mod cache;
pub mod controller;
pub mod monitor;
pub mod reactive;
pub mod tpm;

pub use algorithm::{
    predict_weight_ratio, predict_weight_ratio_cached, CongestionEvent, CongestionKind,
};
pub use cache::PredictionCache;
pub use controller::{SrcConfig, SrcController};
pub use monitor::WorkloadMonitor;
pub use reactive::{RateController, ReactiveConfig, ReactiveController, TpmRateController};
pub use tpm::{replay_training_samples, ThroughputPredictionModel, TrainingConfig};
