//! The Throughput Prediction Model (paper Sec. III-B): learns
//! `TPUT_{R,W} = F(Ch, w)` from device sweeps and predicts the read and
//! write throughput a given workload achieves under a given SSQ weight
//! ratio.

use ml::{Dataset, FlatForest, ModelKind, RandomForest, RandomForestParams};
use serde::{Deserialize, Serialize};
use sim_engine::{CheckpointSpec, ScenarioRunner};
use ssd_sim::SsdConfig;
use storage_node::{weight_sweep, weight_sweep_source, SweepPoint};
use workload::micro::{generate_micro, MicroConfig};
use workload::source::WorkloadSpec;
use workload::spatial::LbaModel;
use workload::synthetic::{StreamProfile, SyntheticConfig};
use workload::trace_io::fit_profiles;
use workload::{IoType, Trace, WorkloadFeatures};

/// Length of the TPM input vector: the workload features plus the
/// weight ratio appended as the final element.
pub const TPM_INPUT_LEN: usize = workload::features::N_FEATURES + 1;

/// A trained TPM: a random forest mapping `(Ch, w)` to
/// `[TPUT_R, TPUT_W]` in Gbps.
pub struct ThroughputPredictionModel {
    model: RandomForest,
    /// The same forest compiled into a flat SoA node table — the
    /// inference path every prediction actually runs (bitwise identical
    /// to `model`; see `ml::flat`).
    flat: FlatForest,
    /// Number of training samples.
    n_samples: usize,
}

/// Configuration of the training sweep: the grid of micro workloads and
/// weight ratios used to collect samples on a device.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Mean inter-arrival times to sweep, µs (per class).
    pub iat_means_us: Vec<f64>,
    /// Mean request sizes to sweep, bytes (per class).
    pub size_means: Vec<f64>,
    /// Weight ratios to sweep.
    pub weights: Vec<u32>,
    /// Requests per class per trace.
    pub requests_per_class: usize,
    /// Random-forest size.
    pub n_trees: usize,
    /// Independent traces (seeds) generated per grid cell.
    pub seeds_per_cell: usize,
    /// Read:write request-count mixes swept per cell (fraction of
    /// requests that are reads). Diversifies the `Ch` features so the
    /// model learns the workload dependence, not just the weight knob.
    pub read_mixes: Vec<f64>,
}

impl TrainingConfig {
    /// The full grid used by the experiments. The paper sweeps
    /// inter-arrival 10–25 µs on MQSim's default (several-GB/s) device;
    /// our device is ~4x slower (see DESIGN.md), so the grid stretches
    /// to 80 µs to span the same saturated-to-idle range — Fig. 5's
    /// light-cell fade-out needs genuinely unsaturated cells.
    pub fn full() -> Self {
        TrainingConfig {
            iat_means_us: vec![10.0, 20.0, 40.0, 80.0],
            size_means: vec![10_000.0, 20_000.0, 30_000.0, 40_000.0],
            weights: (1..=8).collect(),
            requests_per_class: 3_000,
            n_trees: 100,
            seeds_per_cell: 2,
            read_mixes: vec![0.33, 0.5, 0.67],
        }
    }

    /// A reduced grid for tests and quick starts.
    ///
    /// Two seeds per cell and 1200-request traces are the minimum at
    /// which the forest can separate workload signal from trace-sampling
    /// noise: with one 600-request seed per cell the cross-seed R² of
    /// the measured labels themselves is ~0.85 (irreducible noise) and a
    /// trained TPM lands near 0.4 — memorizing the noise. See
    /// `tests/pipeline.rs::tpm_generalizes_to_unseen_traces`.
    pub fn quick() -> Self {
        TrainingConfig {
            iat_means_us: vec![10.0, 60.0],
            size_means: vec![16_000.0, 32_000.0],
            weights: vec![1, 2, 3, 4, 6, 8],
            requests_per_class: 1_200,
            n_trees: 30,
            seeds_per_cell: 2,
            read_mixes: vec![0.5],
        }
    }
}

/// Generate TPM training samples by sweeping micro workloads on a
/// device. Each `(trace, w)` pair is one sample; the [`ScenarioRunner`]
/// sweeps workloads in parallel (each DES run itself stays
/// single-threaded and each trace's seed is a pure function of its grid
/// index, so the result is identical at any thread count).
///
/// With `SRCSIM_CHECKPOINT` set, per-workload sweeps are committed to a
/// `tpm_train` manifest as they finish, so an interrupted training
/// sweep resumes from its last completed workload.
pub fn generate_training_samples(
    ssd: &SsdConfig,
    cfg: &TrainingConfig,
    seed: u64,
) -> Vec<SweepPoint> {
    let ckpt = CheckpointSpec::from_env(
        "tpm_train",
        &format!("tpm_train ssd={ssd:?} cfg={cfg:?} seed={seed}"),
    );
    generate_training_samples_checkpointed(ssd, cfg, seed, ckpt.as_ref())
}

/// [`generate_training_samples`] with an explicit checkpoint manifest
/// (the env-independent form the resume tests drive directly).
pub fn generate_training_samples_checkpointed(
    ssd: &SsdConfig,
    cfg: &TrainingConfig,
    seed: u64,
    ckpt: Option<&CheckpointSpec>,
) -> Vec<SweepPoint> {
    let mut combos: Vec<(f64, f64, f64, usize)> = Vec::new();
    for &iat in &cfg.iat_means_us {
        for &size in &cfg.size_means {
            for &mix in &cfg.read_mixes {
                for k in 0..cfg.seeds_per_cell.max(1) {
                    combos.push((iat, size, mix, k));
                }
            }
        }
    }
    ScenarioRunner::from_env()
        .run_cells_resumable(ckpt, seed, &combos, |i, &(iat, size, mix, _k)| {
            let total = 2 * cfg.requests_per_class;
            let read_count = ((total as f64) * mix).round() as usize;
            let mc = MicroConfig {
                read_iat_mean_us: iat,
                write_iat_mean_us: iat,
                read_size_mean: size,
                write_size_mean: size,
                read_count: read_count.max(1),
                write_count: (total - read_count).max(1),
                ..MicroConfig::default()
            };
            let trace = generate_micro(&mc, seed.wrapping_add(i as u64));
            weight_sweep(ssd, &trace, &cfg.weights)
        })
        .into_iter()
        .flatten()
        .collect()
}

/// TPM training samples from a *recorded* workload: the paper's
/// fit-then-generate methodology (Sec. IV-A) closed over a replayed
/// trace instead of a SNIA download. Per-class `(mean, SCV)` profiles
/// are fitted to the recording ([`fit_profiles`]); MMPP workloads
/// generated from the fitted profiles — with inter-arrival means scaled
/// across the grid's intensity ratios so the forest sees the
/// operating-point dependence, and the recording's read/write mix
/// preserved — are swept over the weight grid to produce `(Ch, w)`
/// samples. Returns `None` when either I/O class has too few requests
/// to fit a profile.
///
/// Checkpointable like [`generate_training_samples`] (manifest label
/// `tpm_replay`).
pub fn replay_training_samples(
    ssd: &SsdConfig,
    trace: &Trace,
    cfg: &TrainingConfig,
    seed: u64,
) -> Option<Vec<SweepPoint>> {
    let (Some(read), Some(write)) = fit_profiles(trace) else {
        return None;
    };
    // Preserve the recording's read/write request mix in the generated
    // workloads — it is part of the `Ch` features the TPM consumes.
    let reads = trace.class_stats(IoType::Read).count as f64;
    let writes = trace.class_stats(IoType::Write).count as f64;
    let read_frac = reads / (reads + writes);
    let total = 2 * cfg.requests_per_class;
    let read_count = (((total as f64) * read_frac).round() as usize).clamp(1, total - 1);

    // Intensity diversity: scale both fitted inter-arrival means by the
    // grid's ratios relative to its densest point.
    let base_iat = cfg
        .iat_means_us
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let mut combos: Vec<(f64, usize)> = Vec::new();
    for &iat in &cfg.iat_means_us {
        for k in 0..cfg.seeds_per_cell.max(1) {
            combos.push((iat / base_iat, k));
        }
    }
    let ckpt = CheckpointSpec::from_env(
        "tpm_replay",
        &format!("tpm_replay ssd={ssd:?} read={read:?} write={write:?} cfg={cfg:?} seed={seed}"),
    );
    Some(
        ScenarioRunner::from_env()
            .run_cells_resumable(ckpt.as_ref(), seed, &combos, |i, &(scale, _k)| {
                let spec = WorkloadSpec::Synthetic(SyntheticConfig {
                    read: StreamProfile {
                        iat_mean_us: read.iat_mean_us * scale,
                        ..read
                    },
                    write: StreamProfile {
                        iat_mean_us: write.iat_mean_us * scale,
                        ..write
                    },
                    read_count,
                    write_count: total - read_count,
                    lba_space_sectors: 1 << 22,
                    lba_model: LbaModel::Uniform,
                });
                weight_sweep_source(ssd, &spec, seed.wrapping_add(i as u64), &cfg.weights)
            })
            .into_iter()
            .flatten()
            .collect(),
    )
}

/// Assemble sweep points into an ML dataset.
pub fn samples_to_dataset(samples: &[SweepPoint]) -> Dataset {
    let x = samples.iter().map(|s| s.x()).collect();
    let y = samples.iter().map(|s| s.y()).collect();
    Dataset::new(x, y)
}

impl ThroughputPredictionModel {
    /// Train on an explicit dataset.
    pub fn train(data: &Dataset, n_trees: usize, seed: u64) -> Self {
        let model = RandomForest::fit(
            data,
            &RandomForestParams {
                n_trees,
                ..Default::default()
            },
            seed,
        );
        assert_eq!(model.n_outputs(), 2, "TPM predicts [TPUT_R, TPUT_W]");
        let flat = FlatForest::from_forest(&model);
        ThroughputPredictionModel {
            model,
            flat,
            n_samples: data.len(),
        }
    }

    /// End-to-end: sweep the device, then train.
    pub fn train_for_device(ssd: &SsdConfig, cfg: &TrainingConfig, seed: u64) -> Self {
        let samples = generate_training_samples(ssd, cfg, seed);
        Self::train(&samples_to_dataset(&samples), cfg.n_trees, seed)
    }

    /// End-to-end from a *recorded* workload: fit the replayed trace's
    /// per-class profiles, sweep workloads regenerated from them, then
    /// train ([`replay_training_samples`]). `None` when the trace is too
    /// small to fit profiles for both I/O classes.
    pub fn train_for_replay(
        ssd: &SsdConfig,
        trace: &Trace,
        cfg: &TrainingConfig,
        seed: u64,
    ) -> Option<Self> {
        let samples = replay_training_samples(ssd, trace, cfg, seed)?;
        Some(Self::train(
            &samples_to_dataset(&samples),
            cfg.n_trees,
            seed,
        ))
    }

    /// Predict `(TPUT_R, TPUT_W)` in Gbps for workload `ch` under weight
    /// ratio `w`.
    pub fn predict(&self, ch: &WorkloadFeatures, w: u32) -> (f64, f64) {
        let mut x = [0.0f64; TPM_INPUT_LEN];
        ch.write_into(&mut x);
        self.predict_at(&mut x, w)
    }

    /// Hot-path prediction: `x` is a caller-held input buffer whose
    /// first `N_FEATURES` slots already hold the workload features (see
    /// [`workload::WorkloadFeatures::write_into`]); only the trailing
    /// weight slot is rewritten per query, so weight-sweep loops build
    /// the feature vector once. Runs the flat forest — allocation-free
    /// and bitwise identical to the boxed model.
    pub fn predict_at(&self, x: &mut [f64; TPM_INPUT_LEN], w: u32) -> (f64, f64) {
        x[TPM_INPUT_LEN - 1] = w as f64;
        let mut y = [0.0f64; 2];
        self.flat.predict_into(&x[..], &mut y);
        (y[0].max(0.0), y[1].max(0.0))
    }

    /// Breiman feature importance over `(Ch, w)`, normalized to 1. The
    /// last entry is the weight ratio's importance.
    pub fn feature_importance(&self) -> Vec<f64> {
        self.model.feature_importance()
    }

    /// Number of training samples.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }
}

/// Train every Table I model family on the same dataset and score them
/// with a train/test split; returns `(label, R²)` rows in table order.
pub fn table1_accuracy(data: &Dataset, train_frac: f64, seed: u64) -> Vec<(&'static str, f64)> {
    let (train, test) = ml::train_test_split(data, train_frac, seed);
    ModelKind::ALL
        .iter()
        .map(|kind| {
            let model = kind.fit(&train, seed);
            let pred = model.predict(&test.x);
            (kind.label(), ml::r2_score_multi(&test.y, &pred))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::Regressor;

    fn quick_samples() -> Vec<SweepPoint> {
        generate_training_samples(&SsdConfig::ssd_a(), &TrainingConfig::quick(), 9)
    }

    #[test]
    fn samples_cover_grid() {
        let cfg = TrainingConfig::quick();
        let s = quick_samples();
        assert_eq!(
            s.len(),
            cfg.iat_means_us.len()
                * cfg.size_means.len()
                * cfg.weights.len()
                * cfg.seeds_per_cell
                * cfg.read_mixes.len()
        );
        for p in &s {
            assert!(p.read_gbps >= 0.0 && p.write_gbps >= 0.0);
            assert!(p.read_gbps < 40.0, "throughput exceeds device ballpark");
        }
    }

    #[test]
    fn tpm_predicts_monotone_read_decrease() {
        let samples = quick_samples();
        let tpm = ThroughputPredictionModel::train(&samples_to_dataset(&samples), 30, 1);
        // Heavy workload features: read tput should not increase with w.
        let heavy = samples
            .iter()
            .find(|p| p.features.read_iat_mean_us < 12.0 && p.features.read_size_mean > 30_000.0)
            .expect("grid contains heavy cell")
            .features;
        let (r1, w1) = tpm.predict(&heavy, 1);
        let (r6, w6) = tpm.predict(&heavy, 6);
        assert!(r6 <= r1 + 0.3, "read {r1} -> {r6} should fall or hold");
        assert!(w6 + 0.3 >= w1, "write {w1} -> {w6} should rise or hold");
    }

    #[test]
    fn tpm_fits_its_training_data() {
        let samples = quick_samples();
        let data = samples_to_dataset(&samples);
        let tpm = ThroughputPredictionModel::train(&data, 30, 2);
        assert_eq!(tpm.n_samples(), data.len());
        // In-sample accuracy should be high (forests nearly interpolate).
        let preds: Vec<Vec<f64>> = data
            .x
            .iter()
            .map(|x| {
                let mut ch = workload::WorkloadFeatures::default();
                // Rebuild prediction through the public API: x already has
                // w appended, so call the model directly instead.
                let _ = &mut ch;
                tpm.model.predict_one(x)
            })
            .collect();
        let r2 = ml::r2_score_multi(&data.y, &preds);
        assert!(r2 > 0.8, "in-sample r2={r2}");
    }

    #[test]
    fn importance_is_distribution() {
        let samples = quick_samples();
        let tpm = ThroughputPredictionModel::train(&samples_to_dataset(&samples), 20, 3);
        let imp = tpm.feature_importance();
        assert_eq!(imp.len(), workload::features::N_FEATURES + 1);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn table1_ranks_forest_high() {
        let samples = quick_samples();
        let data = samples_to_dataset(&samples);
        let rows = table1_accuracy(&data, 0.6, 7);
        assert_eq!(rows.len(), 5);
        let rf = rows
            .iter()
            .find(|(l, _)| *l == "Random Forest Regression")
            .unwrap()
            .1;
        // At the quick grid's tiny sample count any model family can win
        // a given split; the Table I ranking (RF on top) is reproduced by
        // the full-grid `table1_regression` experiment binary. Here we
        // only require the forest to be a usable predictor.
        assert!(rf > 0.5, "rf r2={rf}");
        assert!(rows.iter().all(|(_, r2)| *r2 <= 1.0));
    }
}
