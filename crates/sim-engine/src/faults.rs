//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] is a serializable list of [`FaultEvent`]s, each a
//! window `[start, start + duration)` during which one [`FaultKind`]
//! applies to one [`FaultScope`]. The plan itself is pure data — the
//! simulators interpret it: the network applies link degradation and
//! loss windows, the SSD model applies latency spikes and fail-stop
//! windows, and the system loop makes target dropout visible to the
//! fabric protocol.
//!
//! Determinism contract: every random draw a fault consumes (e.g. a
//! per-packet loss decision) comes from a dedicated counter seeded by
//! [`FaultPlan::seed`], never from the simulators' own sequences, so a
//! run is a pure function of `(config, plan, seed)` and an **empty plan
//! changes nothing** — no events are scheduled, no draws are taken, and
//! results are byte-identical to a run without the subsystem.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// What part of the system a fault applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScope {
    /// One directed edge of the network topology, by link index.
    Link {
        /// Link index in the topology's edge list.
        index: usize,
    },
    /// One storage target, by target index.
    Target {
        /// Target index (`0..n_targets`).
        index: usize,
    },
    /// The whole system (e.g. fabric-wide CNP loss).
    Global,
}

/// What goes wrong during the fault window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Degrade a link: multiply its bandwidth by `bandwidth_factor`
    /// (in `(0, 1]`) and add `extra_delay` to its propagation delay.
    /// Scope must be [`FaultScope::Link`].
    LinkDegrade {
        /// Multiplier on the link's nominal rate, in `(0, 1]`.
        bandwidth_factor: f64,
        /// Added one-way propagation delay.
        extra_delay: SimDuration,
    },
    /// Drop arriving packets on a link with the given probability.
    /// Scope must be [`FaultScope::Link`].
    PacketLoss {
        /// Per-packet drop probability, in `[0, 1]`.
        probability: f64,
    },
    /// Suppress generated congestion-notification packets with the
    /// given probability. Scope must be [`FaultScope::Global`].
    CnpLoss {
        /// Per-CNP suppression probability, in `[0, 1]`.
        probability: f64,
    },
    /// Multiply every flash service time on a target's SSD by `factor`
    /// (≥ 1). Scope must be [`FaultScope::Target`].
    SsdLatencySpike {
        /// Multiplier on chip/channel service durations, ≥ 1.
        factor: f64,
    },
    /// The target's SSD stops serving: queued and new jobs sit until
    /// the window ends, then service resumes (fail-stop + restart).
    /// Scope must be [`FaultScope::Target`].
    TargetFailStop,
    /// The target drops off the fabric: arriving commands are discarded
    /// and completions are not delivered for the duration. Scope must
    /// be [`FaultScope::Target`].
    TargetDropout,
}

/// One fault: a kind, a scope, and an active window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// What part of the system is affected.
    pub scope: FaultScope,
    /// What goes wrong.
    pub kind: FaultKind,
    /// When the fault activates.
    pub start: SimTime,
    /// How long it stays active.
    pub duration: SimDuration,
}

impl FaultEvent {
    /// When the fault clears.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// A serializable, seeded schedule of faults. The default plan is
/// empty and injects nothing.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The fault events, in no particular order.
    pub events: Vec<FaultEvent>,
    /// Seed for every random draw faults consume (loss decisions).
    /// Independent of the simulation seed so the same plan perturbs
    /// different workload seeds identically.
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// An empty plan with a fault seed set.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            events: Vec::new(),
            seed,
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Append one fault event (builder-style).
    pub fn with(mut self, ev: FaultEvent) -> Self {
        self.events.push(ev);
        self
    }

    /// Append one fault event.
    pub fn push(&mut self, ev: FaultEvent) {
        self.events.push(ev);
    }

    /// Check every event for well-formedness: factors finite and in
    /// range, probabilities in `[0, 1]`, durations nonzero, and kinds
    /// paired with the scope they apply to.
    pub fn validate(&self) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            let scope_err = |want: &str| {
                Err(format!(
                    "fault event {i}: {:?} requires a {want} scope, got {:?}",
                    ev.kind, ev.scope
                ))
            };
            if ev.duration == SimDuration::ZERO {
                return Err(format!("fault event {i}: zero duration"));
            }
            match ev.kind {
                FaultKind::LinkDegrade {
                    bandwidth_factor,
                    extra_delay: _,
                } => {
                    if !matches!(ev.scope, FaultScope::Link { .. }) {
                        return scope_err("link");
                    }
                    if !bandwidth_factor.is_finite()
                        || bandwidth_factor <= 0.0
                        || bandwidth_factor > 1.0
                    {
                        return Err(format!(
                            "fault event {i}: bandwidth_factor {bandwidth_factor} not in (0, 1]"
                        ));
                    }
                }
                FaultKind::PacketLoss { probability } => {
                    if !matches!(ev.scope, FaultScope::Link { .. }) {
                        return scope_err("link");
                    }
                    if !probability.is_finite() || !(0.0..=1.0).contains(&probability) {
                        return Err(format!(
                            "fault event {i}: loss probability {probability} not in [0, 1]"
                        ));
                    }
                }
                FaultKind::CnpLoss { probability } => {
                    if !matches!(ev.scope, FaultScope::Global) {
                        return scope_err("global");
                    }
                    if !probability.is_finite() || !(0.0..=1.0).contains(&probability) {
                        return Err(format!(
                            "fault event {i}: CNP loss probability {probability} not in [0, 1]"
                        ));
                    }
                }
                FaultKind::SsdLatencySpike { factor } => {
                    if !matches!(ev.scope, FaultScope::Target { .. }) {
                        return scope_err("target");
                    }
                    if !factor.is_finite() || factor < 1.0 {
                        return Err(format!(
                            "fault event {i}: latency factor {factor} must be finite and >= 1"
                        ));
                    }
                }
                FaultKind::TargetFailStop | FaultKind::TargetDropout => {
                    if !matches!(ev.scope, FaultScope::Target { .. }) {
                        return scope_err("target");
                    }
                }
            }
        }
        Ok(())
    }
}

/// Deterministic `[0, 1)` draw sequence for fault loss decisions:
/// SplitMix64 over `seed + counter`, mapped to the unit interval. The
/// counter advances only when a fault actually consults it, so runs
/// without loss faults take no draws at all.
#[derive(Clone, Debug)]
pub struct FaultRng {
    seed: u64,
    counter: u64,
}

impl FaultRng {
    /// A fresh sequence for the given seed.
    pub fn new(seed: u64) -> Self {
        FaultRng { seed, counter: 0 }
    }

    /// Next draw in `[0, 1)`.
    pub fn next_draw(&mut self) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.counter += 1;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan::seeded(7)
            .with(FaultEvent {
                scope: FaultScope::Link { index: 3 },
                kind: FaultKind::LinkDegrade {
                    bandwidth_factor: 0.25,
                    extra_delay: SimDuration::from_us(50),
                },
                start: SimTime::from_ms(1),
                duration: SimDuration::from_ms(4),
            })
            .with(FaultEvent {
                scope: FaultScope::Global,
                kind: FaultKind::CnpLoss { probability: 0.5 },
                start: SimTime::from_ms(2),
                duration: SimDuration::from_ms(1),
            })
            .with(FaultEvent {
                scope: FaultScope::Target { index: 1 },
                kind: FaultKind::TargetFailStop,
                start: SimTime::from_ms(3),
                duration: SimDuration::from_ms(2),
            })
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn sample_plan_validates() {
        assert!(sample_plan().validate().is_ok());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = sample_plan();
        let json = serde_json::to_string(&plan).expect("plan serializes");
        let back: FaultPlan = serde_json::from_str(&json).expect("plan deserializes");
        assert_eq!(back, plan);
    }

    #[test]
    fn validate_rejects_bad_factor_probability_and_scope() {
        let bad_factor = FaultPlan::new().with(FaultEvent {
            scope: FaultScope::Link { index: 0 },
            kind: FaultKind::LinkDegrade {
                bandwidth_factor: 0.0,
                extra_delay: SimDuration::ZERO,
            },
            start: SimTime::ZERO,
            duration: SimDuration::from_us(1),
        });
        assert!(bad_factor
            .validate()
            .unwrap_err()
            .contains("bandwidth_factor"));

        let bad_prob = FaultPlan::new().with(FaultEvent {
            scope: FaultScope::Link { index: 0 },
            kind: FaultKind::PacketLoss { probability: 1.5 },
            start: SimTime::ZERO,
            duration: SimDuration::from_us(1),
        });
        assert!(bad_prob.validate().unwrap_err().contains("[0, 1]"));

        let bad_scope = FaultPlan::new().with(FaultEvent {
            scope: FaultScope::Global,
            kind: FaultKind::TargetDropout,
            start: SimTime::ZERO,
            duration: SimDuration::from_us(1),
        });
        assert!(bad_scope.validate().unwrap_err().contains("target"));

        let zero_dur = FaultPlan::new().with(FaultEvent {
            scope: FaultScope::Target { index: 0 },
            kind: FaultKind::TargetDropout,
            start: SimTime::ZERO,
            duration: SimDuration::ZERO,
        });
        assert!(zero_dur.validate().unwrap_err().contains("zero duration"));
    }

    #[test]
    fn fault_rng_is_deterministic_and_in_range() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..1000 {
            let x = a.next_draw();
            assert_eq!(x, b.next_draw());
            assert!((0.0..1.0).contains(&x));
        }
        // Different seeds diverge.
        let mut c = FaultRng::new(43);
        assert_ne!(a.next_draw(), c.next_draw());
    }

    #[test]
    fn event_end_is_start_plus_duration() {
        let ev = FaultEvent {
            scope: FaultScope::Target { index: 0 },
            kind: FaultKind::TargetDropout,
            start: SimTime::from_ms(5),
            duration: SimDuration::from_ms(2),
        };
        assert_eq!(ev.end(), SimTime::from_ms(7));
    }
}
