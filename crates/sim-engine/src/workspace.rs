//! Per-worker reusable simulation state: [`SimWorkspace`] is the bundle
//! a sweep worker thread carries from cell to cell so that event-queue
//! storage, step pools, scratch vectors, telemetry buffers, and
//! prediction-cache tables are allocated once per worker instead of
//! once per cell.
//!
//! # Reset contract
//!
//! Sweep throughput must never buy nondeterminism. Every type stored in
//! a workspace implements [`Scratch`]: `Default` construction plus a
//! `reset` that restores the **observable** `Default` state while
//! keeping allocations. Consumers (e.g. `system_sim::run_system_in`)
//! call `reset` on their scratch **at the start of every run**, before
//! any state is read — so even a scratch left dirty by a panicking or
//! truncated previous cell cannot leak into the next one, and a cell's
//! result stays a pure function of `(config, options, seed)` at any
//! thread count. The workspace itself never calls `reset`; it only
//! stores.
//!
//! # Keying
//!
//! Slots are keyed by type: each consumer defines one private scratch
//! struct holding everything its run reuses and fetches it with
//! [`SimWorkspace::slot`]. Different consumers compose in one workspace
//! without coordination (a worker running system cells and node-level
//! sweep cells back to back holds one scratch of each type).

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// Reusable per-worker state: `Default`-constructible, and resettable
/// to the observable `Default` state without releasing allocations.
///
/// `reset` must leave the value indistinguishable — through its public
/// API and in every effect on a simulation — from `T::default()`.
/// Purely diagnostic counters that no simulation result can observe
/// (e.g. cumulative queue-migration counts) may survive a reset, but
/// nothing else.
pub trait Scratch: Default + Send + 'static {
    /// Restore the observable `Default` state, keeping allocations.
    fn reset(&mut self);
}

/// A type-keyed store of [`Scratch`] values, one per worker thread (see
/// module docs). Handed to each worker by
/// [`crate::ScenarioRunner::run_with_workspace`] and reused across
/// every cell that worker claims.
#[derive(Default)]
pub struct SimWorkspace {
    slots: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl SimWorkspace {
    /// Create an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The workspace's `T` slot, created on first access via
    /// `T::default()`. The value comes back exactly as the previous
    /// user left it — callers reset it before reading any state (the
    /// module-level contract).
    pub fn slot<T: Scratch>(&mut self) -> &mut T {
        self.slots
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(T::default()))
            .downcast_mut::<T>()
            .expect("workspace slot is keyed by its own TypeId")
    }

    /// Number of distinct scratch types currently stored.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        calls: u64,
        buf: Vec<u8>,
    }
    impl Scratch for Counter {
        fn reset(&mut self) {
            self.calls = 0;
            self.buf.clear();
        }
    }

    #[derive(Default)]
    struct Other(u32);
    impl Scratch for Other {
        fn reset(&mut self) {
            self.0 = 0;
        }
    }

    #[test]
    fn slot_persists_across_accesses_and_keys_by_type() {
        let mut ws = SimWorkspace::new();
        ws.slot::<Counter>().calls = 7;
        ws.slot::<Counter>().buf.extend_from_slice(b"abc");
        ws.slot::<Other>().0 = 5;
        assert_eq!(ws.slot::<Counter>().calls, 7);
        assert_eq!(ws.slot::<Counter>().buf, b"abc");
        assert_eq!(ws.slot::<Other>().0, 5);
        assert_eq!(ws.n_slots(), 2);
    }

    #[test]
    fn reset_keeps_capacity_but_clears_observable_state() {
        let mut ws = SimWorkspace::new();
        let c = ws.slot::<Counter>();
        c.buf.reserve(1024);
        c.buf.extend_from_slice(&[1, 2, 3]);
        c.calls = 3;
        let cap = c.buf.capacity();
        c.reset();
        assert_eq!(c.calls, 0);
        assert!(c.buf.is_empty());
        assert_eq!(c.buf.capacity(), cap, "reset must not release storage");
    }
}
