//! Data-rate and byte-size arithmetic.
//!
//! Rates are stored as **bits per second** in `u64`; byte sizes as `u64`
//! bytes. Serialization time of `n` bytes at rate `r` is computed in
//! integer picoseconds with 128-bit intermediates so no precision is lost
//! even for multi-gigabyte transfers.

use crate::time::{SimDuration, PS_PER_SEC};
use core::fmt;
use serde::{Deserialize, Serialize};

/// A data rate in bits per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rate(pub u64);

impl Rate {
    /// Zero rate.
    pub const ZERO: Rate = Rate(0);

    /// Construct from gigabits per second.
    pub const fn from_gbps(g: u64) -> Self {
        Rate(g * 1_000_000_000)
    }
    /// Construct from megabits per second.
    pub const fn from_mbps(m: u64) -> Self {
        Rate(m * 1_000_000)
    }
    /// Construct from bits per second.
    pub const fn from_bps(b: u64) -> Self {
        Rate(b)
    }
    /// Construct from fractional gigabits per second.
    pub fn from_gbps_f64(g: f64) -> Self {
        Rate((g * 1e9).round().max(0.0) as u64)
    }

    /// Rate in bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }
    /// Rate as fractional Gbps.
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Rate in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 as f64 / 8.0
    }

    /// Time to serialize `bytes` at this rate. Returns
    /// [`SimDuration::MAX`] for a zero rate.
    pub fn tx_time(self, bytes: u64) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        let bits = (bytes as u128) * 8;
        let ps = bits * (PS_PER_SEC as u128) / (self.0 as u128);
        SimDuration::from_ps(ps.min(u64::MAX as u128) as u64)
    }

    /// Bytes transferable in `d` at this rate (floor).
    pub fn bytes_in(self, d: SimDuration) -> u64 {
        let bits = (self.0 as u128) * (d.as_ps() as u128) / (PS_PER_SEC as u128);
        (bits / 8).min(u64::MAX as u128) as u64
    }

    /// Scale by a factor in `[0, +inf)`, saturating.
    pub fn scale(self, f: f64) -> Rate {
        Rate((self.0 as f64 * f).round().clamp(0.0, u64::MAX as f64) as u64)
    }

    /// Element-wise minimum.
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }
    /// Element-wise maximum.
    pub fn max(self, other: Rate) -> Rate {
        Rate(self.0.max(other.0))
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Gbps", self.as_gbps_f64())
    }
}
impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Gbps", self.as_gbps_f64())
    }
}

/// A byte count with KiB/MiB/GiB constructors (binary units, as used by
/// SSD page and cache sizes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from bytes.
    pub const fn from_bytes(b: u64) -> Self {
        ByteSize(b)
    }
    /// Construct from binary kilobytes.
    pub const fn from_kib(k: u64) -> Self {
        ByteSize(k * 1024)
    }
    /// Construct from binary megabytes.
    pub const fn from_mib(m: u64) -> Self {
        ByteSize(m * 1024 * 1024)
    }
    /// Construct from binary gigabytes.
    pub const fn from_gib(g: u64) -> Self {
        ByteSize(g * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }
    /// Size in fractional KiB.
    pub fn as_kib_f64(self) -> f64 {
        self.0 as f64 / 1024.0
    }
    /// Size in fractional MiB.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.2}MiB", self.as_mib_f64())
        } else if self.0 >= 1024 {
            write!(f, "{:.2}KiB", self.as_kib_f64())
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// Compute an achieved rate from bytes moved over a duration.
pub fn achieved_rate(bytes: u64, over: SimDuration) -> Rate {
    if over == SimDuration::ZERO {
        return Rate::ZERO;
    }
    let bps = (bytes as u128) * 8 * (PS_PER_SEC as u128) / (over.as_ps() as u128);
    Rate(bps.min(u64::MAX as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_exact_at_40gbps() {
        // 1 byte at 40 Gbps = 8 bits / 40e9 bps = 200 ps exactly.
        let r = Rate::from_gbps(40);
        assert_eq!(r.tx_time(1), SimDuration::from_ps(200));
        assert_eq!(r.tx_time(1000), SimDuration::from_ps(200_000));
    }

    #[test]
    fn zero_rate_is_infinite_time() {
        assert_eq!(Rate::ZERO.tx_time(1), SimDuration::MAX);
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let r = Rate::from_gbps(10);
        let d = r.tx_time(12_345);
        assert_eq!(r.bytes_in(d), 12_345);
    }

    #[test]
    fn achieved_rate_round_trip() {
        // 5 MB over 1 ms = 40 Gbps.
        let r = achieved_rate(5_000_000, SimDuration::from_ms(1));
        assert_eq!(r, Rate::from_gbps(40));
        assert_eq!(achieved_rate(100, SimDuration::ZERO), Rate::ZERO);
    }

    #[test]
    fn scale_and_clamp() {
        let r = Rate::from_gbps(10);
        assert_eq!(r.scale(0.5), Rate::from_gbps(5));
        assert_eq!(r.scale(0.0), Rate::ZERO);
        assert_eq!(r.scale(-1.0), Rate::ZERO);
        assert_eq!(
            Rate::from_gbps(4).min(Rate::from_gbps(2)),
            Rate::from_gbps(2)
        );
        assert_eq!(
            Rate::from_gbps(4).max(Rate::from_gbps(2)),
            Rate::from_gbps(4)
        );
    }

    #[test]
    fn byte_size_units() {
        assert_eq!(ByteSize::from_kib(16).as_bytes(), 16384);
        assert_eq!(ByteSize::from_mib(256).as_bytes(), 256 * 1024 * 1024);
        assert_eq!(format!("{:?}", ByteSize::from_kib(4)), "4.00KiB");
        assert_eq!(format!("{:?}", ByteSize::from_mib(2)), "2.00MiB");
        assert_eq!(format!("{:?}", ByteSize::from_bytes(17)), "17B");
    }

    #[test]
    fn gbps_f64_round_trip() {
        let r = Rate::from_gbps_f64(35.2);
        assert!((r.as_gbps_f64() - 35.2).abs() < 1e-9);
    }
}
