//! Time-binned series for runtime throughput/pause curves (Figs. 7–10).

use crate::rate::Rate;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Accumulates `(time, amount)` samples into fixed-width time bins.
///
/// Used to produce the paper's per-millisecond read/write throughput and
/// pause-count curves. Bins are created lazily as time advances; querying
/// returns every bin from 0 to the last touched one (untouched bins are
/// zero).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimeBinSeries {
    bin_width: SimDuration,
    bins: Vec<f64>,
}

impl TimeBinSeries {
    /// New series with the given bin width.
    ///
    /// # Panics
    /// Panics if `bin_width` is zero.
    pub fn new(bin_width: SimDuration) -> Self {
        assert!(bin_width > SimDuration::ZERO, "bin width must be positive");
        TimeBinSeries {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// Index of the bin containing `t`.
    pub fn bin_of(&self, t: SimTime) -> usize {
        (t.as_ps() / self.bin_width.as_ps()) as usize
    }

    /// Add `amount` to the bin containing `t`.
    pub fn add(&mut self, t: SimTime, amount: f64) {
        let idx = self.bin_of(t);
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += amount;
    }

    /// Raw per-bin totals.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Number of materialized bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Sum over all bins.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Interpret per-bin totals as byte counts and convert each bin to an
    /// achieved [`Rate`].
    pub fn as_rates(&self) -> Vec<Rate> {
        self.bins
            .iter()
            .map(|&b| crate::rate::achieved_rate(b.max(0.0) as u64, self.bin_width))
            .collect()
    }

    /// Drop the first and last `frac` fraction of bins (the paper omits
    /// the first and last 10 % of the timeline to skip warmup/wrapup).
    /// Returns the trimmed slice.
    pub fn trimmed(&self, frac: f64) -> &[f64] {
        let n = self.bins.len();
        let cut = ((n as f64) * frac).floor() as usize;
        if 2 * cut >= n {
            return &[];
        }
        &self.bins[cut..n - cut]
    }

    /// Mean of the trimmed region interpreted as bytes/bin, as a rate.
    pub fn trimmed_mean_rate(&self, frac: f64) -> Rate {
        let t = self.trimmed(frac);
        if t.is_empty() {
            return Rate::ZERO;
        }
        let mean_bytes = t.iter().sum::<f64>() / t.len() as f64;
        crate::rate::achieved_rate(mean_bytes.max(0.0) as u64, self.bin_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate() {
        let mut s = TimeBinSeries::new(SimDuration::from_ms(1));
        s.add(SimTime::from_us(100), 10.0);
        s.add(SimTime::from_us(900), 5.0);
        s.add(SimTime::from_us(1500), 7.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.bins(), &[15.0, 7.0]);
        assert_eq!(s.total(), 22.0);
    }

    #[test]
    fn rates_conversion() {
        let mut s = TimeBinSeries::new(SimDuration::from_ms(1));
        // 5 MB in 1 ms bin = 40 Gbps.
        s.add(SimTime::from_us(10), 5_000_000.0);
        let rates = s.as_rates();
        assert_eq!(rates[0], Rate::from_gbps(40));
    }

    #[test]
    fn trimming() {
        let mut s = TimeBinSeries::new(SimDuration::from_ms(1));
        for i in 0..10 {
            s.add(SimTime::from_ms(i), 1.0 + i as f64);
        }
        let t = s.trimmed(0.1);
        assert_eq!(t.len(), 8);
        assert_eq!(t[0], 2.0);
        assert_eq!(t[7], 9.0);
        // Over-trimming yields empty.
        assert!(s.trimmed(0.6).is_empty());
        assert_eq!(s.trimmed_mean_rate(0.6), Rate::ZERO);
    }

    #[test]
    fn empty_series() {
        let s = TimeBinSeries::new(SimDuration::from_ms(1));
        assert!(s.is_empty());
        assert_eq!(s.total(), 0.0);
        assert!(s.as_rates().is_empty());
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_width_rejected() {
        let _ = TimeBinSeries::new(SimDuration::ZERO);
    }

    #[test]
    fn bin_of_boundaries() {
        let s = TimeBinSeries::new(SimDuration::from_ms(1));
        assert_eq!(s.bin_of(SimTime::ZERO), 0);
        assert_eq!(s.bin_of(SimTime::from_us(999)), 0);
        assert_eq!(s.bin_of(SimTime::from_ms(1)), 1);
    }
}
