//! Checkpoint/resume for [`ScenarioRunner`] sweeps.
//!
//! Long experiment grids (TPM training sweeps, the Table IV incast
//! ratios, the Fig. 10 intensity classes) are embarrassingly parallel
//! sets of *pure* cells: every cell's result is a function of
//! `(base_seed, cell_index)` and the sweep configuration only. That
//! purity makes durable progress free — a completed cell never has to
//! be recomputed, at any thread count, because recomputing it would
//! produce byte-identical output.
//!
//! # Manifest format
//!
//! A sweep manifest is a JSON-lines file next to the trace output. The
//! first line identifies the sweep; every following line is one
//! completed cell:
//!
//! ```text
//! {"kind":"sweep-manifest","version":1,"base_seed":42,"n_cells":8,"tag":…}
//! {"kind":"cell","index":3,"seed":…,"digest":…,"wall_ms":12,"payload":…}
//! ```
//!
//! * `tag` is an FNV-1a hash of a caller-supplied configuration
//!   fingerprint. [`CheckpointSpec::from_env`] also embeds it in the
//!   file name, so changing the sweep configuration (or seed) starts a
//!   fresh manifest instead of colliding with a stale one.
//! * `seed` is the canonical [`cell_seed`] derivation for the cell —
//!   informational; callers with a legacy pure-per-index derivation
//!   still conform.
//! * `digest` is FNV-1a over the serialized `payload` bytes exactly as
//!   written. It is re-verified on every load.
//! * `wall_ms` is the cell's compute wall time (informational only; it
//!   is excluded from the digest so manifests from machines of
//!   different speeds interoperate).
//!
//! # Atomicity and recovery
//!
//! Each record is appended with a single `write_all` of the whole line
//! (newline last) followed by `sync_data`, so a SIGKILL mid-sweep can
//! lose at most a torn *tail* — a final line with no terminating
//! newline. On open, such a tail is detected and truncated away; the
//! cell it described is simply recomputed. Any *newline-terminated*
//! line that fails to parse, fails its digest, or disagrees with a
//! duplicate record for the same index is real corruption or
//! configuration drift and is reported as a hard error (delete the
//! manifest to recompute from scratch).
//!
//! Cell records land in completion order, which is thread-schedule
//! dependent — the manifest file itself is not byte-stable across
//! runs. Results are: records carry their cell index, and
//! [`ScenarioRunner::run_cells_resumable`] returns results in index
//! order, so a resumed sweep is byte-identical to an uninterrupted one
//! at any thread count (`tests/checkpoint_resume.rs` asserts it).

use crate::runner::{cell_seed, ScenarioRunner};
use crate::workspace::SimWorkspace;
use serde::{Deserialize, Serialize, Value};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Environment variable naming the checkpoint path prefix, mirroring
/// `SRCSIM_TRACE`: when set, checkpoint-aware sweeps persist manifests
/// at `<prefix>.<label>.<tag>.ckpt.jsonl` and resume from them.
pub const CHECKPOINT_ENV: &str = "SRCSIM_CHECKPOINT";

/// Manifest schema version.
pub const MANIFEST_VERSION: u64 = 1;

/// FNV-1a 64-bit hash — the manifest's digest function. Stable across
/// platforms and fast enough to be negligible next to any cell.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Where a sweep checkpoints, and under what configuration identity.
#[derive(Clone, Debug)]
pub struct CheckpointSpec {
    path: PathBuf,
    tag: u64,
}

impl CheckpointSpec {
    /// Checkpoint at an explicit path. `fingerprint` must describe
    /// everything the cell results depend on besides `(base_seed,
    /// index)` — typically a `Debug` rendering of the sweep
    /// configuration. A manifest written under a different fingerprint
    /// is rejected on load.
    pub fn new(path: impl Into<PathBuf>, fingerprint: &str) -> Self {
        CheckpointSpec {
            path: path.into(),
            tag: fnv1a64(fingerprint.as_bytes()),
        }
    }

    /// Resolve the `SRCSIM_CHECKPOINT` env knob for the sweep `label`:
    /// `Some` manifest at `<prefix>.<label>.<tag>.ckpt.jsonl` when the
    /// variable is set, `None` (checkpointing off) otherwise. The
    /// fingerprint tag in the file name keeps sweeps of different
    /// configurations (or seeds) in different files, so a stale
    /// manifest is ignored rather than fatal.
    pub fn from_env(label: &str, fingerprint: &str) -> Option<CheckpointSpec> {
        let prefix = std::env::var_os(CHECKPOINT_ENV)?;
        if prefix.is_empty() {
            return None;
        }
        let tag = fnv1a64(fingerprint.as_bytes());
        let path = PathBuf::from(format!(
            "{}.{label}.{tag:016x}.ckpt.jsonl",
            prefix.to_string_lossy()
        ));
        Some(CheckpointSpec { path, tag })
    }

    /// Manifest path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Configuration-fingerprint tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }
}

/// Open handle appending committed cells; every append is one
/// `write_all` + `sync_data`.
struct ManifestWriter {
    file: File,
}

impl ManifestWriter {
    fn append_line(&mut self, line: &str) -> io::Result<()> {
        debug_assert!(line.ends_with('\n'));
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

fn header_line(base_seed: u64, n_cells: usize, tag: u64) -> String {
    let v = Value::Object(vec![
        ("kind".into(), Value::Str("sweep-manifest".into())),
        ("version".into(), Value::UInt(MANIFEST_VERSION)),
        ("base_seed".into(), Value::UInt(base_seed)),
        ("n_cells".into(), Value::UInt(n_cells as u64)),
        ("tag".into(), Value::UInt(tag)),
    ]);
    let mut s = serde_json::to_string(&v).expect("static value");
    s.push('\n');
    s
}

fn cell_line(index: usize, seed: u64, digest: u64, wall_ms: u64, payload_json: &str) -> String {
    // The payload is spliced in verbatim so the digest covers the exact
    // bytes on disk.
    format!(
        "{{\"kind\":\"cell\",\"index\":{index},\"seed\":{seed},\"digest\":{digest},\
         \"wall_ms\":{wall_ms},\"payload\":{payload_json}}}\n"
    )
}

fn corrupt(path: &Path, what: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!(
            "sweep manifest {}: {what} (delete the file to recompute from scratch)",
            path.display()
        ),
    )
}

/// Replay a manifest (tolerating a torn tail), verify its identity and
/// digests, truncate away the tail, and return the cached payloads by
/// index plus an appender positioned at the end.
fn open_manifest(
    spec: &CheckpointSpec,
    base_seed: u64,
    n_cells: usize,
) -> io::Result<(Vec<Option<Value>>, ManifestWriter)> {
    if let Some(dir) = spec.path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fs::create_dir_all(dir)?;
    }
    let bytes = match fs::read(&spec.path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };

    let mut cached: Vec<Option<Value>> = vec![None; n_cells];
    let mut digests: Vec<Option<u64>> = vec![None; n_cells];
    let mut valid_len: u64 = 0;
    let mut saw_header = false;
    let mut pos = 0usize;
    while let Some(rel) = bytes[pos..].iter().position(|&b| b == b'\n') {
        let line_end = pos + rel;
        let line = std::str::from_utf8(&bytes[pos..line_end])
            .map_err(|_| corrupt(&spec.path, "non-UTF-8 committed line"))?;
        let v = serde_json::parse_value(line)
            .map_err(|e| corrupt(&spec.path, format!("unparseable committed line: {e}")))?;
        if !saw_header {
            let expect = |f: &str| -> io::Result<u64> {
                u64::from_value(
                    v.get(f)
                        .ok_or_else(|| corrupt(&spec.path, format!("header missing `{f}`")))?,
                )
                .map_err(|e| corrupt(&spec.path, format!("header field `{f}`: {e}")))
            };
            if v.get("kind") != Some(&Value::Str("sweep-manifest".into())) {
                return Err(corrupt(&spec.path, "first line is not a sweep header"));
            }
            let (ver, seed, n, tag) = (
                expect("version")?,
                expect("base_seed")?,
                expect("n_cells")?,
                expect("tag")?,
            );
            if ver != MANIFEST_VERSION {
                return Err(corrupt(&spec.path, format!("manifest version {ver}")));
            }
            if seed != base_seed || n != n_cells as u64 || tag != spec.tag {
                return Err(corrupt(
                    &spec.path,
                    format!(
                        "written by a different sweep: manifest (base_seed={seed}, \
                         n_cells={n}, tag={tag:016x}) vs requested (base_seed={base_seed}, \
                         n_cells={n_cells}, tag={:016x})",
                        spec.tag
                    ),
                ));
            }
            saw_header = true;
        } else {
            if v.get("kind") != Some(&Value::Str("cell".into())) {
                return Err(corrupt(&spec.path, "committed line is not a cell record"));
            }
            let index = usize::from_value(
                v.get("index")
                    .ok_or_else(|| corrupt(&spec.path, "cell missing `index`"))?,
            )
            .map_err(|e| corrupt(&spec.path, format!("cell index: {e}")))?;
            if index >= n_cells {
                return Err(corrupt(
                    &spec.path,
                    format!("cell index {index} outside grid of {n_cells}"),
                ));
            }
            let digest = u64::from_value(
                v.get("digest")
                    .ok_or_else(|| corrupt(&spec.path, "cell missing `digest`"))?,
            )
            .map_err(|e| corrupt(&spec.path, format!("cell digest: {e}")))?;
            let payload = v
                .get("payload")
                .ok_or_else(|| corrupt(&spec.path, "cell missing `payload`"))?;
            let payload_json = serde_json::to_string(payload).expect("value serializes");
            if fnv1a64(payload_json.as_bytes()) != digest {
                return Err(corrupt(
                    &spec.path,
                    format!("cell {index} payload does not match its digest"),
                ));
            }
            match digests[index] {
                // Duplicate records for one cell must agree — a mismatch
                // means two different configurations wrote to one file.
                Some(prev) if prev != digest => {
                    return Err(corrupt(
                        &spec.path,
                        format!("cell {index} recorded twice with different digests"),
                    ));
                }
                Some(_) => {}
                None => {
                    digests[index] = Some(digest);
                    cached[index] = Some(payload.clone());
                }
            }
        }
        valid_len = (line_end + 1) as u64;
        pos = line_end + 1;
    }

    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&spec.path)?;
    if !saw_header {
        // Fresh file, or nothing but a torn header: start over.
        file.set_len(0)?;
        file.write_all(header_line(base_seed, n_cells, spec.tag).as_bytes())?;
        file.sync_data()?;
    } else if (valid_len as usize) < bytes.len() {
        // Drop the torn tail a killed run left behind; its cell will be
        // recomputed.
        file.set_len(valid_len)?;
        file.sync_data()?;
    }
    Ok((cached, ManifestWriter { file }))
}

/// Count the committed cell records in a manifest (test/CI helper: a
/// resumed sweep must recompute exactly `n_cells` minus this).
pub fn committed_cells(path: impl AsRef<Path>) -> io::Result<usize> {
    let bytes = fs::read(path.as_ref())?;
    let mut n = 0usize;
    let mut pos = 0usize;
    let mut first = true;
    while let Some(rel) = bytes[pos..].iter().position(|&b| b == b'\n') {
        if !first {
            n += 1;
        }
        first = false;
        pos += rel + 1;
    }
    Ok(n)
}

impl ScenarioRunner {
    /// [`ScenarioRunner::run_cells`] with durable progress: when `ckpt`
    /// is `Some`, completed cells are appended to the sweep manifest
    /// (append + fsync per cell) and a rerun replays the manifest,
    /// verifies that `(base_seed, grid shape, fingerprint tag)` match,
    /// recomputes only the missing cells, and returns results
    /// byte-identical to an uninterrupted run at any thread count.
    ///
    /// `base_seed` is the sweep's seed as recorded in the manifest
    /// header; `f` must derive any per-cell randomness purely from its
    /// index (the existing [`ScenarioRunner`] determinism contract).
    /// Cell results round-trip through the serde stub's JSON, which is
    /// lossless for this workspace's payload types (floats use
    /// shortest-round-trip formatting; non-finite values are tagged
    /// strings).
    ///
    /// # Panics
    /// Panics on manifest identity mismatch or corruption (torn tails
    /// excepted — they are truncated and recomputed) and on I/O errors
    /// while appending. Callers that would rather handle manifest
    /// problems than die use [`try_run_cells_resumable`]
    /// (`ScenarioRunner::try_run_cells_resumable`).
    pub fn run_cells_resumable<C, T, F>(
        &self,
        ckpt: Option<&CheckpointSpec>,
        base_seed: u64,
        cells: &[C],
        f: F,
    ) -> Vec<T>
    where
        C: Sync,
        T: Send + Serialize + Deserialize,
        F: Fn(usize, &C) -> T + Sync,
    {
        self.try_run_cells_resumable(ckpt, base_seed, cells, f)
            .unwrap_or_else(|e| panic!("checkpoint: {e}"))
    }

    /// [`run_cells_resumable`](ScenarioRunner::run_cells_resumable)
    /// surfacing manifest open/replay problems — identity mismatch,
    /// corruption, unreadable file — as `Err` (`InvalidData` for
    /// corruption) instead of panicking, so callers can wrap them in
    /// their own error types. I/O failures while *appending* a
    /// completed cell mid-sweep still panic: by then results have been
    /// handed out and silently dropping durability would be worse.
    pub fn try_run_cells_resumable<C, T, F>(
        &self,
        ckpt: Option<&CheckpointSpec>,
        base_seed: u64,
        cells: &[C],
        f: F,
    ) -> io::Result<Vec<T>>
    where
        C: Sync,
        T: Send + Serialize + Deserialize,
        F: Fn(usize, &C) -> T + Sync,
    {
        self.try_run_cells_resumable_with(ckpt, base_seed, cells, |_ws, i, c| f(i, c))
    }

    /// [`run_cells_resumable`](ScenarioRunner::run_cells_resumable)
    /// with per-worker reusable state (see
    /// [`ScenarioRunner::run_with_workspace`]): `f` additionally
    /// receives the claiming worker's [`SimWorkspace`]. Cells replayed
    /// from the manifest never call `f`, so a resumed sweep exercises
    /// the workspace only for the cells it actually recomputes —
    /// byte-identical either way under the workspace reset contract.
    pub fn run_cells_resumable_with<C, T, F>(
        &self,
        ckpt: Option<&CheckpointSpec>,
        base_seed: u64,
        cells: &[C],
        f: F,
    ) -> Vec<T>
    where
        C: Sync,
        T: Send + Serialize + Deserialize,
        F: Fn(&mut SimWorkspace, usize, &C) -> T + Sync,
    {
        self.try_run_cells_resumable_with(ckpt, base_seed, cells, f)
            .unwrap_or_else(|e| panic!("checkpoint: {e}"))
    }

    /// [`run_cells_resumable_with`](ScenarioRunner::run_cells_resumable_with)
    /// surfacing manifest open/replay problems as `Err` (see
    /// [`try_run_cells_resumable`](ScenarioRunner::try_run_cells_resumable)).
    pub fn try_run_cells_resumable_with<C, T, F>(
        &self,
        ckpt: Option<&CheckpointSpec>,
        base_seed: u64,
        cells: &[C],
        f: F,
    ) -> io::Result<Vec<T>>
    where
        C: Sync,
        T: Send + Serialize + Deserialize,
        F: Fn(&mut SimWorkspace, usize, &C) -> T + Sync,
    {
        let Some(spec) = ckpt else {
            return Ok(self.run_cells_with_workspace(cells, f));
        };
        let (cached, writer) = open_manifest(spec, base_seed, cells.len())?;
        let writer = Mutex::new(writer);
        Ok(self.run_with_workspace(cells.len(), |ws, i| {
            if let Some(v) = &cached[i] {
                return T::from_value(v).unwrap_or_else(|e| {
                    panic!(
                        "checkpoint: sweep manifest {}: cell {i} payload does not \
                         deserialize: {e} (delete the file to recompute from scratch)",
                        spec.path.display()
                    )
                });
            }
            let t0 = std::time::Instant::now();
            let out = f(ws, i, &cells[i]);
            let payload = serde_json::to_string(&out).expect("cell payload serializes");
            let digest = fnv1a64(payload.as_bytes());
            let line = cell_line(
                i,
                cell_seed(base_seed, i as u64),
                digest,
                t0.elapsed().as_millis() as u64,
                &payload,
            );
            writer
                .lock()
                .expect("manifest writer lock")
                .append_line(&line)
                .unwrap_or_else(|e| {
                    panic!(
                        "checkpoint: appending cell {i} to {}: {e}",
                        spec.path.display()
                    )
                });
            out
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "srcsim-ckpt-unit-{}-{name}.ckpt.jsonl",
            std::process::id()
        ));
        let _ = fs::remove_file(&p);
        p
    }

    #[test]
    fn fnv1a64_pinned() {
        // Standard FNV-1a test vectors; the digest is part of the
        // on-disk format, so it must never drift.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fresh_manifest_then_full_cache() {
        let path = tmp("fresh");
        let spec = CheckpointSpec::new(&path, "unit fresh");
        let runner = ScenarioRunner::serial();
        let first: Vec<(u64, f64)> =
            runner.run_cells_resumable(Some(&spec), 7, &[10u64, 20, 30], |i, &c| {
                (c + i as u64, i as f64 * 0.5)
            });
        assert_eq!(committed_cells(&path).unwrap(), 3);
        // Rerun: everything cached, closure must not run.
        let second: Vec<(u64, f64)> =
            runner.run_cells_resumable(Some(&spec), 7, &[10u64, 20, 30], |_, _| {
                panic!("cached cell recomputed")
            });
        assert_eq!(first, second);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn huge_float_payloads_replay_from_cache() {
        // |x| >= 2^63 floats serialize as plain digit strings (Display
        // never uses exponent form); replay must parse them back as
        // floats with the digest intact instead of dying on i64/u64
        // overflow — seen live in a fig10 SystemReport payload.
        let path = tmp("hugefloat");
        let spec = CheckpointSpec::new(&path, "unit hugefloat");
        let runner = ScenarioRunner::serial();
        let cells = [-6.895523070677849e19_f64, 3.4e20];
        let first: Vec<f64> = runner.run_cells_resumable(Some(&spec), 5, &cells, |_, &c| c);
        let second: Vec<f64> = runner.run_cells_resumable(Some(&spec), 5, &cells, |_, _| {
            panic!("cached cell recomputed")
        });
        assert_eq!(
            first.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            second.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_recomputed() {
        let path = tmp("torn");
        let spec = CheckpointSpec::new(&path, "unit torn");
        let runner = ScenarioRunner::serial();
        let full: Vec<u64> =
            runner
                .run_cells_resumable(Some(&spec), 1, &[1u64, 2, 3, 4], |i, &c| c * 100 + i as u64);
        // Chop bytes off the final record: a torn tail.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let resumed: Vec<u64> =
            runner
                .run_cells_resumable(Some(&spec), 1, &[1u64, 2, 3, 4], |i, &c| c * 100 + i as u64);
        assert_eq!(full, resumed);
        assert_eq!(committed_cells(&path).unwrap(), 4, "tail re-appended");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn identity_mismatch_is_fatal() {
        let path = tmp("identity");
        let spec = CheckpointSpec::new(&path, "unit identity");
        let runner = ScenarioRunner::serial();
        let _: Vec<u64> = runner.run_cells_resumable(Some(&spec), 3, &[1u64, 2], |_, &c| c);
        // Same file, different base seed.
        let boom = std::panic::catch_unwind(|| {
            let _: Vec<u64> = runner.run_cells_resumable(Some(&spec), 4, &[1u64, 2], |_, &c| c);
        });
        assert!(boom.is_err(), "base_seed drift must be rejected");
        // Same file, different fingerprint.
        let other = CheckpointSpec::new(&path, "unit identity CHANGED");
        let boom = std::panic::catch_unwind(|| {
            let _: Vec<u64> = runner.run_cells_resumable(Some(&other), 3, &[1u64, 2], |_, &c| c);
        });
        assert!(boom.is_err(), "fingerprint drift must be rejected");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tampered_payload_is_fatal() {
        let path = tmp("tamper");
        let spec = CheckpointSpec::new(&path, "unit tamper");
        let runner = ScenarioRunner::serial();
        let _: Vec<u64> = runner.run_cells_resumable(Some(&spec), 9, &[5u64, 6], |_, &c| c);
        // Flip a payload digit on a committed (newline-terminated) line.
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"payload\":5", "\"payload\":7", 1);
        assert_ne!(text, tampered, "tamper target present");
        fs::write(&path, tampered).unwrap();
        let boom = std::panic::catch_unwind(|| {
            let _: Vec<u64> = runner.run_cells_resumable(Some(&spec), 9, &[5u64, 6], |_, &c| c);
        });
        assert!(boom.is_err(), "digest mismatch must be rejected");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn try_variant_surfaces_corruption_as_err() {
        let path = tmp("try-corrupt");
        let spec = CheckpointSpec::new(&path, "unit try-corrupt");
        let runner = ScenarioRunner::serial();
        let ok: io::Result<Vec<u64>> =
            runner.try_run_cells_resumable(Some(&spec), 2, &[1u64, 2], |_, &c| c);
        assert_eq!(ok.unwrap(), vec![1, 2]);
        // Identity drift must come back as InvalidData, not a panic.
        let err: io::Result<Vec<u64>> =
            runner.try_run_cells_resumable(Some(&spec), 3, &[1u64, 2], |_, &c| c);
        let err = err.expect_err("base_seed drift must be an error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("different sweep"), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn env_spec_embeds_label_and_tag() {
        // Constructed directly (env mutation is process-global; the CI
        // selftest binary exercises the env path end-to-end).
        let spec = CheckpointSpec::new("out/run.table4.ckpt.jsonl", "fp");
        assert_eq!(spec.tag(), fnv1a64(b"fp"));
        assert!(spec.path().ends_with("run.table4.ckpt.jsonl"));
    }
}
